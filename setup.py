"""Legacy setuptools shim.

The project is PEP 621 (see pyproject.toml); this file only exists so
``python setup.py develop`` works on environments whose setuptools lacks
PEP 660 editable-install support (e.g. no ``wheel`` package available).
"""

from setuptools import setup

setup()
