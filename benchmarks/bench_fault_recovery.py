"""Fault recovery — goodput under rising fault intensity (robustness).

Sweeps a fault-intensity multiplier over the full injector surface
(adapter-swap failures/slowdowns, transient KV pressure, GPU
stragglers) and measures how goodput and SLO attainment degrade.  A
resilient runtime degrades *gracefully*: goodput shrinks with the fault
rate but never falls off a cliff, and every lost request is accounted
for by a typed abort reason rather than a crash.

A second experiment kills one replica of a 2-GPU cluster mid-run and
measures failover: the orphaned requests must be requeued and finish on
the survivor.
"""

from _common import ResultSink  # noqa: F401  (fixture lives in conftest)

from repro.core import SystemBuilder
from repro.runtime import FaultInjector, FaultKind, FaultSpec, MultiGPUServer
from repro.workloads import RetrievalWorkload

BASE_RATES = {
    "swap_fail_rate": 0.8,
    "swap_slow_rate": 0.5,
    "kv_pressure_rate": 0.4,
    "engine_slow_rate": 0.1,
}
INTENSITIES = [0.0, 0.5, 1.0, 2.0, 3.0]
ADAPTERS = 8  # over 2 GPU slots + flat skew -> constant swap churn
RATE_RPS = 12.0
DURATION_S = 8.0
SLO_S = 2.5


def _workload(seed=0):
    return RetrievalWorkload(
        adapter_ids=[f"lora-{i}" for i in range(ADAPTERS)],
        rate_rps=RATE_RPS,
        duration_s=DURATION_S,
        top_adapter_share=0.3,
        use_task_heads=False,
        slo_s=SLO_S,
        seed=seed,
    ).generate()


def _engine(intensity, seed=0):
    injector = None
    if intensity > 0:
        injector = FaultInjector.random(
            horizon_s=DURATION_S * 6,
            seed=seed,
            adapter_ids=[f"lora-{i}" for i in range(ADAPTERS)],
            engine_ids=("engine-0",),
            swap_window_s=1.0,
            **{k: v * intensity for k, v in BASE_RATES.items()},
        )
    builder = SystemBuilder(
        num_adapters=ADAPTERS,
        gpu_adapter_slots=2,
        fault_injector=injector,
        deadline_slo_factor=4.0,
    )
    return builder.build("v-lora")


def run_sweep():
    out = {}
    for intensity in INTENSITIES:
        engine = _engine(intensity)
        requests = _workload()
        engine.submit(requests)
        metrics = engine.run()
        assert metrics.num_completed + metrics.num_aborted == len(requests)
        slo = metrics.slo_attainment()
        out[intensity] = {
            "submitted": len(requests),
            "completed": metrics.num_completed,
            "aborted": metrics.num_aborted,
            "abort_reasons": metrics.abort_counts(),
            "goodput_rps": round(metrics.goodput_rps(), 3),
            "slo_attainment": round(slo, 3) if slo is not None else None,
            "swap_retries": metrics.swap_retries,
            "adapters_quarantined": metrics.adapters_quarantined,
            "mode_fallbacks": metrics.mode_fallbacks,
            "shed_events": metrics.shed_events,
            "kv_stall_iters": metrics.kv_stall_iters,
        }
    return out


def run_failover():
    injector = FaultInjector(
        [FaultSpec(FaultKind.ENGINE_FAIL, DURATION_S / 4, target="gpu-0")]
    )
    builder = SystemBuilder(
        num_adapters=ADAPTERS, fault_injector=injector,
        deadline_slo_factor=None,
    )
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), num_gpus=2,
    )
    requests = _workload(seed=1)
    server.submit(requests)
    metrics = server.run()
    return {
        "submitted": len(requests),
        "completed": metrics.num_completed,
        "aborted": metrics.num_aborted,
        "failover_events": metrics.failover_events,
        "engine_failures": metrics.engine_failures,
        "goodput_rps": round(metrics.goodput_rps(), 3),
    }


def test_fault_recovery_degrades_gracefully(benchmark, results):
    sweep = run_sweep()

    # One representative unit under the timer: a full faulted run.
    def unit():
        engine = _engine(1.0)
        engine.submit(_workload())
        return engine.run()

    benchmark.pedantic(unit, rounds=1, iterations=1)

    baseline = sweep[0.0]["goodput_rps"]
    assert baseline > 0
    for intensity, row in sweep.items():
        # Graceful degradation: goodput shrinks but never cliffs to
        # (near) zero, and the engine never crashed to get here.
        assert row["goodput_rps"] > 0.25 * baseline, (intensity, row)
        assert row["completed"] + row["aborted"] == row["submitted"]
    # Faults actually bit: the degraded runs record retries or stalls.
    worst = sweep[max(INTENSITIES)]
    assert worst["swap_retries"] + worst["kv_stall_iters"] > 0

    rows = [
        [
            intensity, row["completed"], row["aborted"],
            row["goodput_rps"], row["slo_attainment"],
            row["swap_retries"], row["shed_events"],
            "; ".join(f"{k}={v}" for k, v in
                      sorted(row["abort_reasons"].items())) or "-",
        ]
        for intensity, row in sweep.items()
    ]
    results.print_table(
        "fault recovery: goodput vs fault intensity (v-lora, "
        f"{RATE_RPS:.0f} rps, SLO {SLO_S}s)",
        ["intensity", "done", "aborted", "goodput_rps", "slo_att",
         "retries", "shed", "abort reasons"],
        rows,
    )
    results.save("fault_recovery_sweep", {
        "workload": {"rate_rps": RATE_RPS, "duration_s": DURATION_S,
                     "adapters": ADAPTERS, "slo_s": SLO_S},
        "base_rates": BASE_RATES,
        "sweep": {str(k): v for k, v in sweep.items()},
    })


def test_fault_recovery_failover(results):
    data = run_failover()
    assert data["engine_failures"] == 1
    assert data["failover_events"] > 0
    assert data["completed"] + data["aborted"] == data["submitted"]
    # The survivor absorbs the orphans: the run still mostly completes.
    assert data["completed"] >= 0.9 * data["submitted"]
    results.print_table(
        "fault recovery: 2-GPU failover (gpu-0 killed mid-run)",
        ["submitted", "completed", "aborted", "failovers", "goodput_rps"],
        [[data["submitted"], data["completed"], data["aborted"],
          data["failover_events"], data["goodput_rps"]]],
    )
    results.save("fault_recovery_failover", data)


def main() -> int:
    """Standalone entry for CI: dump results, fail on goodput collapse."""
    import json
    import sys

    sweep = run_sweep()
    failover = run_failover()
    payload = {
        "sweep": {str(k): v for k, v in sweep.items()},
        "failover": failover,
    }
    with open("BENCH_fault_recovery.json", "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    print(json.dumps(payload, indent=1, sort_keys=True))
    print("wrote BENCH_fault_recovery.json")
    collapsed = [
        k for k, row in payload["sweep"].items() if row["goodput_rps"] <= 0
    ]
    if failover["goodput_rps"] <= 0:
        collapsed.append("failover")
    if collapsed:
        print(f"goodput collapsed in: {collapsed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
