"""Fig. 6 — extra latency of unmerged inference vs. merged (base model).

Paper: serving 2-4 requests of 128-1024 input tokens, the unmerged
operators add 27-140 ms on top of merged inference — 40-61% of the base
model's own time — with dLoRA's Einsum the worst and the waste growing
with token count.
"""

import numpy as np

from _common import ms

from repro.hardware import A100_80GB
from repro.kernels import make_operator
from repro.models import QWEN_VL_7B, IterationCostModel
from repro.runtime.modes import InferenceMode, ModeExecutor

SYSTEMS = ("dlora", "s-lora", "punica", "atmm")
WORKLOADS = {
    "2x128": [128, 128],
    "2x(128-512)": [128, 512],
    "4x(128-1024)": [128, 384, 640, 1024],
    "4x1024": [1024, 1024, 1024, 1024],
}


def run_experiment():
    costs = IterationCostModel(QWEN_VL_7B, A100_80GB)
    out = {}
    for wl_name, tokens in WORKLOADS.items():
        base = costs.prefill_seconds(tokens)
        row = {"base_model_ms": ms(base)}
        for system in SYSTEMS:
            op = make_operator(system, A100_80GB)
            executor = ModeExecutor(QWEN_VL_7B, op, num_projections=2)
            adapter_tokens = {f"a{i}": t for i, t in enumerate(tokens)}
            ranks = {a: 64 for a in adapter_tokens}
            extra = executor.extra_seconds(
                InferenceMode.UNMERGED, adapter_tokens, ranks
            )
            row[system] = {
                "extra_ms": ms(extra),
                "pct_of_base": round(100 * extra / base, 1),
            }
        out[wl_name] = row
    return out


def test_fig06_unmerged_overhead(benchmark, results):
    data = run_experiment()
    op = make_operator("dlora", A100_80GB)
    executor = ModeExecutor(QWEN_VL_7B, op, num_projections=2)
    benchmark(
        executor.extra_seconds, InferenceMode.UNMERGED,
        {"a": 1024, "b": 512}, {"a": 64, "b": 64},
    )

    rows = []
    for wl, row in data.items():
        rows.append([
            wl, row["base_model_ms"],
            *(f"{row[s]['extra_ms']}ms ({row[s]['pct_of_base']}%)"
              for s in SYSTEMS),
        ])
    results.print_table(
        "Fig 6: unmerged extra latency (paper: 27-140ms, 40-61% of base)",
        ["workload", "base ms", *SYSTEMS], rows,
    )
    results.save("fig06_unmerged_overhead", data)

    # Shape assertions: the worst baseline lands in the paper's 27-140ms
    # band on the heavy workloads, the waste is a double-digit share of
    # base time for short requests, and ATMM cuts it by several times.
    heavy_extra = max(
        data[w][s]["extra_ms"]
        for w in ("4x(128-1024)", "4x1024") for s in ("dlora", "s-lora")
    )
    assert 20 < heavy_extra < 200
    assert data["2x128"]["dlora"]["pct_of_base"] > 25
    hetero = data["4x(128-1024)"]
    assert hetero["atmm"]["extra_ms"] < hetero["dlora"]["extra_ms"] / 3
    # dLoRA's padding makes the heterogeneous batch cost like the
    # uniform max-length batch.
    assert data["4x(128-1024)"]["dlora"]["extra_ms"] > \
        0.8 * data["4x1024"]["dlora"]["extra_ms"]
    # Overhead grows with token volume for the baselines.
    assert (data["4x1024"]["dlora"]["extra_ms"]
            > data["2x128"]["dlora"]["extra_ms"])
