"""Fig. 15 — V-LoRA accuracy vs SOTA small models across five tasks.

Paper: V-LoRA's fine-tuned adapters are 4.3-5 points better on VQA and
image captioning, and competitive with the domain small models on
object detection, video understanding, and referring expression (after
+24.5-62.2-point gains over the base LMM).

The three trainable families run real LoRA fine-tuning against small
models trained on the same domains; the two language-interface tasks
(VQA, captioning) have no TinyLMM analogue and use the calibrated
anchor values against the paper's small-model numbers.
"""

import numpy as np

from _accuracy_shared import fresh_base

from repro.generation import (
    FusionAccuracyOracle,
    IMAGE_CLASSIFICATION,
    OBJECT_DETECTION,
    VIDEO_CLASSIFICATION,
    LoRATrainer,
    make_domain,
    train_small_model,
)
from repro.models.zoo import SMALL_MODELS

TRAINABLE = {
    "object_detection": (OBJECT_DETECTION, "YOLO"),
    "video_understanding": (VIDEO_CLASSIFICATION, "VideoMAE"),
    "referring_expression": (IMAGE_CLASSIFICATION, "UNINEXT"),
}
ANCHORED = {
    "visual_qa": "OSCAR",
    "image_caption": "VisionMamba",
}


def run_experiment():
    out = {}
    for task, (family, small_name) in TRAINABLE.items():
        domain = make_domain(family, 0, n_train=160, n_test=128)
        small = train_small_model(domain, steps=150)
        model = fresh_base()
        model.add_lora(4, rng=np.random.default_rng(2))
        trainer = LoRATrainer(model, steps_per_domain=90)
        trainer.train([domain])
        vlora_acc = trainer.evaluate([domain]).per_domain[domain.name]
        out[task] = {
            "vlora_acc": round(100 * vlora_acc, 1),
            "small_model": small_name,
            "small_acc": round(
                100 * small.accuracy(domain.test_x, domain.test_y), 1
            ),
            "source": "measured (TinyLMM)",
        }
    oracle = FusionAccuracyOracle(jitter=0.0)
    for task, small_name in ANCHORED.items():
        out[task] = {
            "vlora_acc": round(100 * oracle.accuracy(task, 1), 1),
            "small_model": small_name,
            "small_acc": SMALL_MODELS[small_name].sota_accuracy,
            "source": "anchored (no language substrate)",
        }
    return out


def test_fig15_accuracy(benchmark, results):
    data = run_experiment()

    oracle = FusionAccuracyOracle()
    benchmark(oracle.accuracy, "visual_qa", 1, "x")

    rows = [
        [task, d["vlora_acc"], f"{d['small_model']}: {d['small_acc']}",
         d["source"]]
        for task, d in data.items()
    ]
    results.print_table(
        "Fig 15: V-LoRA vs SOTA small models (accuracy %)",
        ["task", "V-LoRA", "small model", "source"], rows,
    )
    results.save("fig15_accuracy", data)

    # The language tasks beat their small models by ~4-5 points.
    for task in ANCHORED:
        gap = data[task]["vlora_acc"] - data[task]["small_acc"]
        assert 2.0 < gap < 8.0, task
    # The vision tasks are competitive: within ~12 points of the small
    # model trained on the very same domain (paper: "competitive").
    for task in TRAINABLE:
        assert data[task]["vlora_acc"] > data[task]["small_acc"] - 12.0, task
        assert data[task]["vlora_acc"] > 80.0, task
