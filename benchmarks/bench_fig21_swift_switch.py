"""Fig. 21 — benefit of the swift inference-mode switcher.

Paper: on a two-adapter workload, V-LoRA (switching with the swift
switcher) delivers 1.2x / 1.4x speedups over dLoRA (slow switcher +
Einsum) and pure unmerged serving.
"""

from _common import ms, reduction

from repro.core import SystemBuilder
from repro.workloads import RetrievalWorkload

SYSTEMS = ("v-lora", "dlora", "unmerge-only")


def run_experiment():
    builder = SystemBuilder(num_adapters=2)
    out = {}
    for system in SYSTEMS:
        engine = builder.build(system)
        wl = RetrievalWorkload(
            builder.adapter_ids, rate_rps=10.0, duration_s=25.0,
            top_adapter_share=0.7, use_task_heads=False, seed=21,
        )
        engine.submit(wl.generate())
        metrics = engine.run()
        out[system] = {
            "mean_latency_s": round(metrics.mean_latency(), 4),
            "mode_switches": metrics.num_mode_switches,
            "switch_time_total_s": round(metrics.switch_time_total, 4),
        }
    return out


def test_fig21_swift_switch(benchmark, results):
    data = run_experiment()

    from repro.hardware import A100_80GB
    from repro.kernels import ATMMOperator, GemmCostModel
    from repro.models import QWEN_VL_7B, LoRAAdapterSpec
    from repro.runtime.switcher import SwiftSwitcher
    swift = SwiftSwitcher(QWEN_VL_7B,
                          ATMMOperator(GemmCostModel(A100_80GB)),
                          num_projections=2)
    benchmark(swift.merge_seconds, LoRAAdapterSpec("a", QWEN_VL_7B))

    vl = data["v-lora"]["mean_latency_s"]
    rows = [
        [s, f"{d['mean_latency_s']}s", d["mode_switches"],
         f"{d['switch_time_total_s']}s",
         f"{d['mean_latency_s'] / vl:.2f}x" if s != "v-lora" else "1.00x"]
        for s, d in data.items()
    ]
    results.print_table(
        "Fig 21: two-adapter serving with different switchers "
        "(paper: swift gives 1.2x vs dLoRA, 1.4x vs unmerged)",
        ["system", "mean latency", "switches", "switch time", "slowdown"],
        rows,
    )
    results.save("fig21_swift_switch", data)

    assert data["dlora"]["mean_latency_s"] > 1.05 * vl
    assert data["unmerge-only"]["mean_latency_s"] > 1.05 * vl
    # dLoRA burns far more wall time inside switches per switch event.
    if data["dlora"]["mode_switches"]:
        dlora_per = (data["dlora"]["switch_time_total_s"]
                     / data["dlora"]["mode_switches"])
        vlora_per = (data["v-lora"]["switch_time_total_s"]
                     / max(data["v-lora"]["mode_switches"], 1))
        assert dlora_per > 3 * vlora_per
