"""Fig. 14 — end-to-end average token latency across serving systems.

Paper: over two applications (visual retrieval on the Azure-shaped
trace, video analytics at one 30-frame chunk/s/stream) and three LMMs
(Qwen-VL-7B, LLaVA-1.5-7B, LLaVA-1.5-13B), V-LoRA cuts average token
latency by 72% / 50% / 20% vs dLoRA / Punica / S-LoRA on retrieval and
by 89% / 83% / 71% on video analytics, with most systems' inflection
point (queueing blow-up) appearing as the rate grows.

Baselines serve vision tasks through the LM head (they are generic LoRA
servers); V-LoRA's adapters bundle vision task heads (§4.2.2).
"""

from _common import ms, reduction

from repro.core import SystemBuilder
from repro.models import LLAVA15_13B, LLAVA15_7B, QWEN_VL_7B
from repro.workloads import RetrievalWorkload, VideoAnalyticsWorkload

SYSTEMS = ("v-lora", "s-lora", "punica", "dlora")
MODELS = {
    "Qwen-VL-7B": QWEN_VL_7B,
    "LLaVA-1.5-7B": LLAVA15_7B,
    "LLaVA-1.5-13B": LLAVA15_13B,
}
RETRIEVAL_RATES = (2.0, 6.0, 10.0, 14.0)
VIDEO_STREAMS = (2, 4, 6)

PAPER_REDUCTIONS = {
    "visual_retrieval": {"dlora": 72, "punica": 50, "s-lora": 20},
    "video_analytics": {"dlora": 89, "punica": 83, "s-lora": 71},
}


def _run(engine, requests):
    engine.submit(requests)
    metrics = engine.run()
    return ms(metrics.avg_token_latency())


def run_retrieval(model):
    builder = SystemBuilder(model=model, num_adapters=8)
    out = {}
    for rate in RETRIEVAL_RATES:
        row = {}
        for system in SYSTEMS:
            wl = RetrievalWorkload(
                builder.adapter_ids, rate_rps=rate, duration_s=20.0,
                use_task_heads=(system == "v-lora"), seed=14,
            )
            row[system] = _run(builder.build(system), wl.generate())
        out[rate] = row
    return out


def run_video(model):
    builder = SystemBuilder(model=model, num_adapters=4)
    out = {}
    for streams in VIDEO_STREAMS:
        row = {}
        for system in SYSTEMS:
            wl = VideoAnalyticsWorkload(
                builder.adapter_ids, num_streams=streams, duration_s=20.0,
                use_task_heads=(system == "v-lora"), seed=14,
            )
            row[system] = _run(builder.build(system), wl.generate())
        out[streams] = row
    return out


def test_fig14_e2e(benchmark, results):
    data = {"visual_retrieval": {}, "video_analytics": {}}
    for model_name, model in MODELS.items():
        data["visual_retrieval"][model_name] = run_retrieval(model)
        data["video_analytics"][model_name] = run_video(model)

    def one_iteration():
        builder = SystemBuilder(num_adapters=4)
        engine = builder.build("v-lora")
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=4.0,
                               duration_s=1.0, seed=0)
        engine.submit(wl.generate())
        engine.step()

    benchmark.pedantic(one_iteration, rounds=3, iterations=1)

    summary = {}
    for app, per_model in data.items():
        rows = []
        reductions = {s: [] for s in SYSTEMS[1:]}
        for model_name, sweep in per_model.items():
            for x, row in sweep.items():
                vl = row["v-lora"]
                rows.append([
                    model_name, x,
                    *(row[s] for s in SYSTEMS),
                    " / ".join(reduction(vl, row[s]) for s in SYSTEMS[1:]),
                ])
                for s in SYSTEMS[1:]:
                    reductions[s].append(1 - vl / row[s])
        results.print_table(
            f"Fig 14 ({app}): avg token latency (ms)",
            ["model", "load", *SYSTEMS, "V-LoRA cut (slora/punica/dlora)"],
            rows,
        )
        summary[app] = {
            s: f"-{100 * sum(v) / len(v):.0f}% "
               f"(paper -{PAPER_REDUCTIONS[app][s]}%)"
            for s, v in reductions.items()
        }
    results.print_table(
        "Fig 14 summary: mean V-LoRA latency reduction",
        ["application", *SYSTEMS[1:]],
        [[app, *(summary[app][s] for s in SYSTEMS[1:])] for app in summary],
    )
    # The paper notes "the inflection points of most serving systems
    # occur at 6" requests/s on their testbed; report ours.
    from repro.analysis import saturation_point
    knees = {}
    for system in SYSTEMS:
        series = {
            rate: data["visual_retrieval"]["Qwen-VL-7B"][rate][system]
            for rate in RETRIEVAL_RATES
        }
        knees[system] = saturation_point(series, blowup=3.0)
    results.print_table(
        "Fig 14: latency inflection point (Qwen-VL retrieval; paper: ~6 rps)",
        ["system", "knee (rps)"],
        [[k, v if v is not None else ">14"] for k, v in knees.items()],
    )
    summary["inflection_rps"] = {k: str(v) for k, v in knees.items()}
    results.save("fig14_e2e", {"sweeps": {
        app: {m: {str(x): row for x, row in sweep.items()}
              for m, sweep in per_model.items()}
        for app, per_model in data.items()
    }, "summary": summary})

    # Shape: V-LoRA wins everywhere; dLoRA is the worst baseline; the
    # video-analytics gap is the larger one (vision task heads).
    for app, per_model in data.items():
        for sweep in per_model.values():
            for row in sweep.values():
                assert row["v-lora"] <= min(row[s] for s in SYSTEMS[1:])
    hi_retr = data["visual_retrieval"]["Qwen-VL-7B"][RETRIEVAL_RATES[-1]]
    assert hi_retr["dlora"] == max(hi_retr.values())
    video = data["video_analytics"]["Qwen-VL-7B"][4]
    video_cut = 1 - video["v-lora"] / video["dlora"]
    retr_cut = 1 - hi_retr["v-lora"] / hi_retr["dlora"]
    assert video_cut > retr_cut
    assert video_cut > 0.5
