"""Table 3 — scaling to multiple GPUs.

Paper: with 1, 2, and 4 A100s, total system throughput reaches 6.07,
11.48, and 23.97 requests/s — near-linear data-parallel scaling.

We measure saturated throughput by overdriving each cluster size and
counting completions per second of simulated time.
"""

from _common import reduction

from repro.core import SystemBuilder
from repro.runtime import MultiGPUServer
from repro.workloads import RetrievalWorkload

GPU_COUNTS = (1, 2, 4)
PAPER_RPS = {1: 6.07, 2: 11.48, 4: 23.97}
DRIVE_RATE_PER_GPU = 40.0  # well past single-GPU capacity
DURATION_S = 15.0


def run_experiment():
    builder = SystemBuilder(num_adapters=8)
    out = {}
    for n in GPU_COUNTS:
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), num_gpus=n
        )
        wl = RetrievalWorkload(
            builder.adapter_ids, rate_rps=DRIVE_RATE_PER_GPU * n,
            duration_s=DURATION_S, seed=3,
        )
        server.submit(wl.generate())
        metrics = server.run()
        makespan = max(r.finish_time for r in metrics.records)
        out[n] = {
            "completed": metrics.num_completed,
            "throughput_rps": round(metrics.num_completed / makespan, 2),
        }
    return out


def test_table3_multigpu(benchmark, results):
    data = run_experiment()

    def one_gpu_burst():
        builder = SystemBuilder(num_adapters=4)
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), num_gpus=1
        )
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=10.0,
                               duration_s=2.0, seed=0)
        server.submit(wl.generate())
        server.run()

    benchmark.pedantic(one_gpu_burst, rounds=3, iterations=1)

    rows = [
        [n, data[n]["throughput_rps"], PAPER_RPS[n],
         f"{data[n]['throughput_rps'] / data[1]['throughput_rps']:.2f}x"]
        for n in GPU_COUNTS
    ]
    results.print_table(
        "Table 3: saturated throughput vs GPU count",
        ["GPUs", "measured rps", "paper rps", "scaling"], rows,
    )
    results.save("table3_multigpu", {str(k): v for k, v in data.items()})

    t1 = data[1]["throughput_rps"]
    # Near-linear scaling, as in the paper (1 : 1.89 : 3.95).
    assert data[2]["throughput_rps"] > 1.6 * t1
    assert data[4]["throughput_rps"] > 3.0 * t1
