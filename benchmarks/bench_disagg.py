"""Disaggregated prefill/decode serving vs colocated, at equal GPU count.

A colocated continuous-batching fleet interleaves prefills and decodes
on every replica: a fresh arrival's first token waits behind whole
decode iterations (head-of-line blocking), and the blocking compounds
with load.  Disaggregation (docs/DISAGGREGATION.md) splits the same
GPU count into a prefill pool and a decode pool with a priced KV
hand-off: arrivals only ever queue behind other *prefills*, so TTFT
decouples from decode residency — at the cost of one size-proportional
KV transfer per request, which this simulator charges on the wire like
an adapter swap-in.

The A/B: the same trace through

* ``colocated``  — N replicas, least-loaded dispatch (the baseline);
* ``disagg``     — N/2 prefill + N/2 decode replicas (equal GPU count).

Contract (CI-gated): disagg p99 TTFT <= 0.9x colocated at equal GPU
count at every swept rate, terminals stay exactly-once on both sides
of the boundary, and every request that finished on the disagg fleet
paid exactly one KV transfer (conservation of hand-offs).

Standalone mode (``python benchmarks/bench_disagg.py``) writes
``BENCH_disagg.json`` and exits non-zero on any contract break.
"""

from _common import ResultSink  # noqa: F401  (fixture lives in conftest)

from repro.core import SystemBuilder
from repro.runtime import DisaggConfig, MultiGPUServer, reset_request_ids
from repro.workloads import RetrievalWorkload

NUM_ADAPTERS = 8
NUM_GPUS = 4
DURATION_S = 20.0
RATES_RPS = (20.0, 40.0)
SEED = 0

#: Acceptance gate (the ISSUE's contract): disagg decode-path p99 TTFT
#: at most 0.9x the colocated fleet's, same GPU count, every rate.
P99_TTFT_GATE = 0.9


def _workload(adapter_ids, rate_rps, seed=SEED):
    """Decode-heavy retrieval trace (LM-head output, no task heads):
    the regime where colocated prefills queue behind decode batches."""
    return RetrievalWorkload(
        adapter_ids,
        rate_rps=rate_rps,
        duration_s=DURATION_S,
        use_task_heads=False,
        seed=seed,
    ).generate()


def _duplicate_terminals(requests, metrics):
    """Count of exactly-once violations (0 is the contract)."""
    rec_ids = [r.request_id for r in metrics.records]
    abort_ids = [a.request_id for a in metrics.aborts]
    dupes = (len(rec_ids) - len(set(rec_ids))
             + len(abort_ids) - len(set(abort_ids))
             + len(set(rec_ids) & set(abort_ids)))
    missing = {r.request_id for r in requests} - set(rec_ids) - set(abort_ids)
    return dupes, len(missing)


def _run(mode, rate_rps):
    reset_request_ids()
    builder = SystemBuilder(num_adapters=NUM_ADAPTERS, max_batch_size=8)
    disagg = None
    if mode == "disagg":
        disagg = DisaggConfig(prefill_replicas=NUM_GPUS // 2,
                              decode_replicas=NUM_GPUS // 2)
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), NUM_GPUS, disagg=disagg,
    )
    requests = _workload(builder.adapter_ids, rate_rps)
    server.submit(requests)
    metrics = server.run()
    summary = metrics.summary()
    dupes, lost = _duplicate_terminals(requests, metrics)
    return {
        "submitted": len(requests),
        "completed": metrics.num_completed,
        "aborted": metrics.num_aborted,
        "p50_ttft_s": round(metrics.ttft_percentile(50.0), 4),
        "p99_ttft_s": round(metrics.ttft_percentile(99.0), 4),
        "p99_latency_s": round(metrics.latency_percentile(99.0), 4),
        "kv_transfers": int(summary.get("kv_transfers", 0)),
        "kv_transfer_seconds": round(
            summary.get("kv_transfer_seconds", 0.0), 4),
        "kv_transfer_gb": round(
            summary.get("kv_transfer_bytes", 0.0) / 2**30, 3),
        "mode_switches": int(summary.get("mode_switches", 0)),
        "duplicate_terminals": dupes,
        "lost_requests": lost,
    }


def run_disagg_bench():
    return {
        "rates": {
            f"{rate:g}": {mode: _run(mode, rate)
                          for mode in ("colocated", "disagg")}
            for rate in RATES_RPS
        },
        "gates": {"p99_ttft_gate": P99_TTFT_GATE},
        "scale": {
            "num_adapters": NUM_ADAPTERS,
            "num_gpus": NUM_GPUS,
            "prefill_replicas": NUM_GPUS // 2,
            "decode_replicas": NUM_GPUS // 2,
            "duration_s": DURATION_S,
            "rates_rps": list(RATES_RPS),
        },
        "seed": SEED,
    }


def _check(data):
    for rate, pair in data["rates"].items():
        for mode, row in pair.items():
            assert row["duplicate_terminals"] == 0, (rate, mode, row)
            assert row["lost_requests"] == 0, (rate, mode, row)
            assert (row["completed"] + row["aborted"]
                    == row["submitted"]), (rate, mode, row)
        coloc, dis = pair["colocated"], pair["disagg"]
        # Equal GPU count, equal trace: disagg must not lose work.
        assert dis["completed"] == coloc["completed"], (rate, pair)
        # Every request that crossed the boundary paid exactly one
        # transfer; nothing crossed twice for free.
        assert dis["kv_transfers"] >= dis["completed"], (rate, dis)
        assert coloc["kv_transfers"] == 0, (rate, coloc)
        ratio = dis["p99_ttft_s"] / max(coloc["p99_ttft_s"], 1e-9)
        assert ratio <= P99_TTFT_GATE, (
            f"rate {rate}: disagg p99 TTFT {dis['p99_ttft_s']}s vs "
            f"colocated {coloc['p99_ttft_s']}s: ratio {ratio:.3f} > "
            f"gate {P99_TTFT_GATE}")


def _rows(data):
    rows = []
    for rate, pair in sorted(data["rates"].items(), key=lambda kv: float(kv[0])):
        for mode, r in pair.items():
            rows.append([rate, mode, r["completed"], r["p50_ttft_s"],
                         r["p99_ttft_s"], r["p99_latency_s"],
                         r["kv_transfers"], r["kv_transfer_seconds"]])
    return rows


def test_disagg_vs_colocated(results):
    data = run_disagg_bench()
    _check(data)
    results.print_table(
        f"disaggregated prefill/decode vs colocated "
        f"({NUM_GPUS} GPUs either way, {DURATION_S:.0f}s trace)",
        ["rps", "fleet", "done", "p50_ttft", "p99_ttft", "p99_lat",
         "kv_xfers", "wire_s"],
        _rows(data),
    )
    results.save("disagg_vs_colocated", data)


def main() -> int:
    """Standalone entry for CI: dump results, fail on contract breaks."""
    import json
    import sys

    payload = run_disagg_bench()
    with open("BENCH_disagg.json", "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    print(json.dumps(payload, indent=1, sort_keys=True))
    print("wrote BENCH_disagg.json")
    try:
        _check(payload)
    except AssertionError as exc:
        print(f"acceptance check failed: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
