"""Fig. 18 — operator latency stability (average, 90th, 95th percentile).

Paper: across 100 measured rounds, ATMM's latency fluctuation is the
smallest — 3x lower than S-LoRA and 2x lower than Punica and dLoRA —
because the offline-profiled tiling keeps SM occupancy regular.
"""

import numpy as np

from _common import ms

from repro.hardware import A100_80GB
from repro.kernels import make_operator

SYSTEMS = ("atmm", "s-lora", "punica", "dlora")
D = 4096
ROUNDS = 100
WARMUP = 10


def run_experiment():
    rng = np.random.default_rng(42)
    stats = {}
    for name in SYSTEMS:
        op = make_operator(name, A100_80GB)
        mean = op.pair_seconds([512, 256, 768], [64, 64, 64], D)
        samples = [op.sample_seconds(mean, rng)
                   for _ in range(WARMUP + ROUNDS)][WARMUP:]
        samples = np.array(samples)
        stats[name] = {
            "mean_ms": ms(float(samples.mean())),
            "p90_ms": ms(float(np.percentile(samples, 90))),
            "p95_ms": ms(float(np.percentile(samples, 95))),
            "fluctuation_ms": ms(float(samples.std())),
            "relative_fluctuation": round(
                float(samples.std() / samples.mean()), 4
            ),
        }
    return stats


def test_fig18_operator_stability(benchmark, results):
    stats = run_experiment()
    rng = np.random.default_rng(0)
    op = make_operator("atmm", A100_80GB)
    benchmark(op.sample_seconds, 1e-3, rng)

    rows = [
        [s, stats[s]["mean_ms"], stats[s]["p90_ms"], stats[s]["p95_ms"],
         stats[s]["relative_fluctuation"]]
        for s in SYSTEMS
    ]
    results.print_table(
        "Fig 18: operator stability over 100 rounds "
        "(paper: ATMM fluctuation 3x < S-LoRA, 2x < Punica/dLoRA)",
        ["operator", "mean ms", "p90 ms", "p95 ms", "rel. fluctuation"],
        rows,
    )
    results.save("fig18_operator_stability", stats)

    atmm = stats["atmm"]["relative_fluctuation"]
    assert stats["s-lora"]["relative_fluctuation"] > 2.0 * atmm
    assert stats["punica"]["relative_fluctuation"] > 1.4 * atmm
    assert stats["dlora"]["relative_fluctuation"] > 1.4 * atmm
    # Tail latency tracks the same ordering.
    assert stats["atmm"]["p95_ms"] <= min(
        stats[s]["p95_ms"] for s in SYSTEMS[1:]
    )
