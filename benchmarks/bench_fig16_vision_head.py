"""Fig. 16 — latency of the vision task head vs. the original LM head.

Paper: on video-analytics tasks the vision task head answers in one
decode round instead of an autoregressive sequence, cutting latency by
41-63% and letting one GPU handle 3-4 video streams in real time.
"""

from _common import ms, reduction

from repro.core import SystemBuilder
from repro.workloads import VideoAnalyticsWorkload

STREAM_COUNTS = (1, 2, 3, 4)


def run_experiment():
    builder = SystemBuilder(num_adapters=4)
    out = {}
    for streams in STREAM_COUNTS:
        row = {}
        for head, label in ((False, "lm_head"), (True, "vision_head")):
            engine = builder.build("v-lora")
            wl = VideoAnalyticsWorkload(
                builder.adapter_ids, num_streams=streams, duration_s=20.0,
                use_task_heads=head, seed=16,
            )
            engine.submit(wl.generate())
            metrics = engine.run()
            row[label] = {
                "mean_latency_ms": ms(metrics.mean_latency()),
                "p90_latency_ms": ms(metrics.latency_percentile(90)),
            }
        row["reduction_pct"] = round(
            100 * (1 - row["vision_head"]["mean_latency_ms"]
                   / row["lm_head"]["mean_latency_ms"]), 1
        )
        # Real time = every chunk's work finishes within its 1 s period.
        row["realtime"] = row["vision_head"]["p90_latency_ms"] < 1000.0
        out[streams] = row
    return out


def test_fig16_vision_head(benchmark, results):
    data = run_experiment()

    from repro.hardware import A100_80GB
    from repro.models import QWEN_VL_7B, IterationCostModel
    costs = IterationCostModel(QWEN_VL_7B, A100_80GB)
    benchmark(costs.decode_seconds_uniform, 8, 512, False, 101)

    rows = [
        [s,
         data[s]["lm_head"]["mean_latency_ms"],
         data[s]["vision_head"]["mean_latency_ms"],
         f"-{data[s]['reduction_pct']}%",
         "yes" if data[s]["realtime"] else "no"]
        for s in STREAM_COUNTS
    ]
    results.print_table(
        "Fig 16: LM head vs vision task head on video analytics "
        "(paper: 41-63% latency reduction; 3-4 real-time streams)",
        ["streams", "LM head ms", "vision head ms", "reduction", "real-time"],
        rows,
    )
    results.save("fig16_vision_head", {str(k): v for k, v in data.items()})

    for s in STREAM_COUNTS:
        assert data[s]["reduction_pct"] > 30  # paper: 41-63%
    # The paper's "3-4 streams in real time": 3 must hold here.
    assert data[2]["realtime"]
    assert data[3]["realtime"]
