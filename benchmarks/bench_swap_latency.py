"""§3.1 — adapter swap vs. small-model swap vs. ΔW swap.

Paper: swapping a LoRA adapter takes ~15 ms vs YOLO's 110 ms (-86%) and
OSCAR's 520 ms (-97%); pre-computed all-layer ΔW would cost ~1 s per
swap (§4.4.1), which is why V-LoRA stores only A and B.
"""

from _common import ms, reduction

from repro.hardware import A100_80GB, TransferModel
from repro.models import QWEN_VL_7B, LoRAAdapterSpec
from repro.models.zoo import SMALL_MODEL_INIT_S_PER_MB, SMALL_MODELS

PAPER_MS = {"adapter": 15, "YOLO": 110, "OSCAR": 520}


def run_experiment():
    transfer = TransferModel(A100_80GB)
    spec = LoRAAdapterSpec("a", QWEN_VL_7B)
    out = {
        "adapter": ms(transfer.swap_seconds(spec.ab_bytes)),
        "adapter_async": ms(
            transfer.swap_seconds(spec.ab_bytes, async_overlap=0.85)
        ),
        "delta_w": ms(transfer.swap_seconds(spec.delta_w_bytes)),
    }
    for name in ("YOLO", "OSCAR", "VideoMAE", "UNINEXT", "VisionMamba"):
        small = SMALL_MODELS[name]
        out[name] = ms(
            transfer.swap_seconds(small.size_bytes)
            + small.size_mb * SMALL_MODEL_INIT_S_PER_MB
        )
    return out


def test_swap_latency(benchmark, results):
    data = run_experiment()
    transfer = TransferModel(A100_80GB)
    spec = LoRAAdapterSpec("a", QWEN_VL_7B)
    benchmark(transfer.swap_seconds, spec.ab_bytes)

    rows = [
        ["LoRA adapter (A,B)", data["adapter"],
         f"paper ~{PAPER_MS['adapter']}ms"],
        ["LoRA adapter (async)", data["adapter_async"], "hidden behind compute"],
        ["All-layer ΔW", data["delta_w"], "why V-LoRA avoids it (§4.4.1)"],
        *[[name, data[name],
           f"paper ~{PAPER_MS[name]}ms" if name in PAPER_MS else ""]
          for name in ("YOLO", "OSCAR", "VideoMAE", "UNINEXT", "VisionMamba")],
    ]
    results.print_table("§3.1: swap latency", ["what", "ms", "note"], rows)
    results.save("swap_latency", data)

    assert 10 < data["adapter"] < 25              # paper: 15 ms
    assert data["adapter"] < 0.2 * data["YOLO"]   # paper: saves 86%
    assert data["adapter"] < 0.05 * data["OSCAR"]  # paper: saves 97%
    assert data["delta_w"] > 3 * data["adapter"]
