"""Overload protection — goodput through a traffic burst (robustness).

Drives a v-lora engine through three traffic phases: steady pre-burst
load, a ``LOAD_BURST`` window that time-compresses arrivals to >= 5x the
sustainable rate, and a drain phase.  Two engines see the identical
workload:

* **unprotected** — the plain engine (deadline aborts only); the burst
  floods the queue, prefills are wasted on requests that then blow their
  deadlines, and tail TTFT explodes;
* **protected** — SLO-aware admission control plus brownout tiers; the
  burst is turned away at the door, the queue stays near its watermark,
  and the requests that *are* accepted finish at pre-burst goodput.

A second experiment exercises the adapter circuit breaker: an adapter
whose swap-ins fail for a fixed window is opened (fail fast), half-open
probed after the cooldown, and must serve traffic again afterwards —
the legacy permanent quarantine would strand it forever.

Standalone mode (``python benchmarks/bench_overload.py [--small]``)
writes ``BENCH_overload.json`` and exits non-zero when the protected
engine's goodput collapses (CI chaos smoke).
"""

import numpy as np

from _common import ResultSink  # noqa: F401  (fixture lives in conftest)

from repro.core import SystemBuilder
from repro.runtime import (
    AdmissionConfig,
    BreakerConfig,
    BrownoutConfig,
    FaultInjector,
    FaultKind,
    FaultSpec,
)
from repro.workloads import RetrievalWorkload, apply_load_bursts

ADAPTERS = 4
BASE_RATE_RPS = 4.0
SLO_S = 2.0
DEADLINE_FACTOR = 3.0
# Phase boundaries (seconds): steady load, then every arrival of
# [PRE_S, PRE_S + BURST_SPAN_S) lands inside a BURST_FACTOR-x denser
# spike at the start of the window (~160 requests — several times the
# batch capacity — arriving in ~5 s against a ~10 rps saturated rate,
# so the unprotected queue's drain time dwarfs the 6 s deadline).
PRE_S = 6.0
BURST_SPAN_S = 40.0
BURST_FACTOR = 8.0
DURATION_S = PRE_S + BURST_SPAN_S


def _workload(scale=1.0, seed=0):
    requests = RetrievalWorkload(
        adapter_ids=[f"lora-{i}" for i in range(ADAPTERS)],
        rate_rps=BASE_RATE_RPS,
        duration_s=DURATION_S * scale,
        top_adapter_share=0.5,
        use_task_heads=False,
        slo_s=SLO_S,
        seed=seed,
    ).generate()
    window = FaultSpec(FaultKind.LOAD_BURST, PRE_S * scale,
                       BURST_SPAN_S * scale, magnitude=BURST_FACTOR)
    return apply_load_bursts(requests, [window]), window


def _protection():
    # Queue watermark sized so the drain time of an admitted request
    # stays inside the SLO at the engine's saturated rate; brownout's
    # watermark sits below it so the burst also engages decode caps.
    return dict(
        admission=AdmissionConfig(
            max_queue_depth=24,
            slo_reject=True,
        ),
        brownout=BrownoutConfig(queue_high=16, decode_cap=24),
    )


def _run(protected, scale=1.0, seed=0):
    requests, window = _workload(scale=scale, seed=seed)
    builder = SystemBuilder(
        num_adapters=ADAPTERS,
        deadline_slo_factor=DEADLINE_FACTOR,
        **(_protection() if protected else {}),
    )
    engine = builder.build("v-lora")
    engine.submit(requests)
    metrics = engine.run()
    assert metrics.num_completed + metrics.num_aborted == len(requests)

    def goodput(t0, t1):
        done = [r for r in metrics.records if t0 <= r.finish_time < t1]
        return len(done) / max(t1 - t0, 1e-9)

    pre_end = window.start
    # The burst phase runs from the spike to the drain's end.
    drain_end = max(
        [r.finish_time for r in metrics.records]
        + [a.abort_time for a in metrics.aborts]
    )
    ttfts = [r.ttft for r in metrics.records]
    slo = metrics.slo_attainment()
    return {
        "submitted": len(requests),
        "completed": metrics.num_completed,
        "aborted": metrics.num_aborted,
        "abort_reasons": metrics.abort_counts(),
        "goodput_pre_rps": round(goodput(1.0, pre_end), 3),
        "goodput_burst_rps": round(goodput(pre_end, drain_end), 3),
        "p99_ttft_s": round(float(np.percentile(ttfts, 99)), 3),
        "slo_attainment": round(slo, 3) if slo is not None else None,
        "admission_rejections": metrics.admission_rejections,
        "brownout_sheds": metrics.brownout_sheds,
        "brownout_truncations": metrics.brownout_truncations,
        "drain_end_s": round(drain_end, 3),
    }


def run_burst(scale=1.0):
    return {
        "unprotected": _run(False, scale=scale),
        "protected": _run(True, scale=scale),
    }


def run_breaker_recovery(scale=1.0):
    """Swap faults open the breaker; cooldown re-admits the adapter."""
    horizon = 10.0 * scale
    # The window must cover the scheduler's *first* lora-3 swap attempt
    # (Algorithm 1 batches by adapter group, so lora-3 is served well
    # after its first arrival) — 60% of the horizon does.
    fault_end = 6.0 * scale
    injector = FaultInjector([
        FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, 0.0, fault_end,
                  target="lora-3"),
    ])
    builder = SystemBuilder(
        num_adapters=ADAPTERS,
        gpu_adapter_slots=2,
        fault_injector=injector,
        breaker=BreakerConfig(failure_threshold=2, cooldown_s=0.5),
    )
    engine = builder.build("v-lora")
    requests = RetrievalWorkload(
        adapter_ids=[f"lora-{i}" for i in range(ADAPTERS)],
        rate_rps=BASE_RATE_RPS,
        duration_s=horizon,
        top_adapter_share=0.4,
        use_task_heads=False,
        seed=2,
    ).generate()
    engine.submit(requests)
    metrics = engine.run()
    recovered = [
        r for r in metrics.records
        if r.adapter_id == "lora-3" and r.arrival_time > fault_end
    ]
    return {
        "submitted": len(requests),
        "completed": metrics.num_completed,
        "aborted": metrics.num_aborted,
        "breaker_opens": metrics.breaker_opens,
        "breaker_half_opens": metrics.breaker_half_opens,
        "breaker_closes": metrics.breaker_closes,
        "post_recovery_completions": len(recovered),
    }


def _check_burst(data):
    """The acceptance criteria; raises AssertionError on regression."""
    prot, unprot = data["protected"], data["unprotected"]
    assert prot["goodput_pre_rps"] > 0
    # Protected: graceful degradation through the burst.
    assert prot["goodput_burst_rps"] >= 0.7 * prot["goodput_pre_rps"], data
    assert prot["p99_ttft_s"] <= SLO_S, data
    assert prot["admission_rejections"] > 0, data
    # Unprotected: the same burst measurably collapses service quality.
    assert unprot["p99_ttft_s"] >= 2.0 * prot["p99_ttft_s"], data
    assert unprot["slo_attainment"] < prot["slo_attainment"], data


def _check_breaker(data):
    assert data["breaker_opens"] >= 1, data
    assert data["breaker_closes"] >= 1, data
    assert data["post_recovery_completions"] > 0, data


def test_burst_protection(results):
    data = run_burst()
    _check_burst(data)
    rows = [
        [name, row["completed"], row["aborted"],
         row["goodput_pre_rps"], row["goodput_burst_rps"],
         row["p99_ttft_s"], row["slo_attainment"],
         row["admission_rejections"], row["brownout_sheds"]]
        for name, row in data.items()
    ]
    results.print_table(
        f"overload: {BURST_FACTOR:.0f}x burst at t={PRE_S}s "
        f"({BASE_RATE_RPS:.0f} rps base, SLO {SLO_S}s)",
        ["engine", "done", "aborted", "pre_rps", "burst_rps",
         "p99_ttft", "slo_att", "adm_rej", "sheds"],
        rows,
    )
    results.save("overload_burst", data)


def test_breaker_recovery(results):
    data = run_breaker_recovery()
    _check_breaker(data)
    results.print_table(
        "overload: adapter circuit breaker (swap faults 0-6s, "
        "cooldown 0.5s)",
        ["opens", "half_opens", "closes", "recovered", "done"],
        [[data["breaker_opens"], data["breaker_half_opens"],
          data["breaker_closes"], data["post_recovery_completions"],
          data["completed"]]],
    )
    results.save("overload_breaker", data)


def main() -> int:
    """Standalone entry for CI: dump results, fail on goodput collapse."""
    import json
    import sys

    scale = 0.5 if "--small" in sys.argv[1:] else 1.0
    payload = {
        "burst": run_burst(scale=scale),
        "breaker": run_breaker_recovery(scale=scale),
    }
    with open("BENCH_overload.json", "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    print(json.dumps(payload, indent=1, sort_keys=True))
    print("wrote BENCH_overload.json")
    failures = []
    if payload["burst"]["protected"]["goodput_burst_rps"] <= 0:
        failures.append("protected goodput collapsed to zero")
    if payload["breaker"]["post_recovery_completions"] <= 0:
        failures.append("breaker never re-admitted the adapter")
    if scale >= 1.0:
        # Full scale also enforces the graceful-degradation margins.
        try:
            _check_burst(payload["burst"])
            _check_breaker(payload["breaker"])
        except AssertionError as exc:
            failures.append(f"acceptance check failed: {exc}")
    if failures:
        print("; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
