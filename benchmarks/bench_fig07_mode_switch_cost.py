"""Fig. 7 — the cost of one inference-mode switch.

Paper scenario: 8 FCFS requests of 256 input tokens; slot 1 serves
requests 1-3 merged, slot 2 serves the heterogeneous requests 4-7
unmerged.  dLoRA's switch alone costs ~53 ms (64% of the merged slot's
time) and delays the last request by ~165 ms; a <10 ms switch would save
~45 ms of average response time.
"""

from _common import ms, reduction

from repro.hardware import A100_80GB
from repro.kernels import ATMMOperator, GemmCostModel
from repro.models import QWEN_VL_7B, IterationCostModel, LoRAAdapterSpec
from repro.runtime.modes import InferenceMode
from repro.runtime.switcher import DLoRASwitcher, SwiftSwitcher

M = InferenceMode


def run_experiment():
    cm = GemmCostModel(A100_80GB)
    costs = IterationCostModel(QWEN_VL_7B, A100_80GB)
    spec = LoRAAdapterSpec("lora-1", QWEN_VL_7B)
    swift = SwiftSwitcher(QWEN_VL_7B, ATMMOperator(cm), num_projections=2)
    dlora = DLoRASwitcher(QWEN_VL_7B, cm, num_projections=2)

    merged_slot = costs.prefill_seconds([256, 256, 256])
    out = {"merged_slot_3x256_ms": ms(merged_slot)}
    for name, switcher in (("dlora", dlora), ("v-lora", swift)):
        switch = switcher.switch_seconds(M.MERGED, M.UNMERGED, spec, None)
        # The last request waits for slot 1 plus the switch before its
        # own slot can begin.
        last_request_wait = merged_slot + switch
        out[name] = {
            "switch_ms": ms(switch),
            "switch_pct_of_merged_slot": round(100 * switch / merged_slot, 1),
            "last_request_wait_ms": ms(last_request_wait),
        }
    out["avg_saving_ms"] = round(
        out["dlora"]["switch_ms"] - out["v-lora"]["switch_ms"], 1
    )
    return out


def test_fig07_mode_switch_cost(benchmark, results):
    data = run_experiment()
    cm = GemmCostModel(A100_80GB)
    swift = SwiftSwitcher(QWEN_VL_7B, ATMMOperator(cm), num_projections=2)
    spec = LoRAAdapterSpec("lora-1", QWEN_VL_7B)
    benchmark(swift.merge_seconds, spec)

    rows = [
        ["dLoRA", data["dlora"]["switch_ms"],
         f"{data['dlora']['switch_pct_of_merged_slot']}%",
         data["dlora"]["last_request_wait_ms"], "paper: 53ms / 64% / 165ms"],
        ["V-LoRA", data["v-lora"]["switch_ms"],
         f"{data['v-lora']['switch_pct_of_merged_slot']}%",
         data["v-lora"]["last_request_wait_ms"], "paper: <10ms / <80ms wait"],
    ]
    results.print_table(
        "Fig 7: mode switch cost (8x256-token FCFS scenario)",
        ["system", "switch ms", "% of merged slot", "last-req wait ms", "paper"],
        rows,
    )
    results.save("fig07_mode_switch", data)

    assert data["dlora"]["switch_ms"] > 35      # paper: 53 ms
    assert data["v-lora"]["switch_ms"] < 10     # paper: <10 ms
    assert data["dlora"]["switch_ms"] > 5 * data["v-lora"]["switch_ms"]
