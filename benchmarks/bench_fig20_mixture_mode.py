"""Fig. 20 — latency gain of the mixture (deLoRA) mode.

Paper: serving starved requests immediately through the deLoRA branch
(instead of switching to unmerged) saves an average of 62% of the extra
computation while the starved requests stay below 50% of the maximum
batch size; beyond that, unmerged inference becomes the cheaper option.
"""

import numpy as np

from _common import ms

from repro.hardware import A100_80GB
from repro.kernels import ATMMOperator, GemmCostModel
from repro.models import QWEN_VL_7B
from repro.runtime.modes import InferenceMode, ModeExecutor

M = InferenceMode
MAX_BATCH = 32
TOKENS_PER_REQ = 256  # per-request tokens entering the layer


def run_experiment():
    executor = ModeExecutor(
        QWEN_VL_7B, ATMMOperator(GemmCostModel(A100_80GB)),
        num_projections=2,
    )
    out = {}
    for starved in (2, 4, 8, 12, 16, 20, 24, 28):
        merged_reqs = MAX_BATCH - starved
        adapter_tokens = {"merged": merged_reqs * TOKENS_PER_REQ}
        # Starved requests spread over 4 other adapters.
        for i in range(4):
            share = starved // 4 + (1 if i < starved % 4 else 0)
            if share:
                adapter_tokens[f"other-{i}"] = share * TOKENS_PER_REQ
        ranks = {a: 64 for a in adapter_tokens}
        mixture = executor.extra_seconds(
            M.MIXTURE, adapter_tokens, ranks, merged_adapter="merged"
        )
        unmerged = executor.extra_seconds(M.UNMERGED, adapter_tokens, ranks)
        out[starved] = {
            "starved_frac": round(starved / MAX_BATCH, 3),
            "mixture_ms": ms(mixture),
            "unmerged_ms": ms(unmerged),
            "saving_pct": round(100 * (1 - mixture / unmerged), 1),
        }
    return out


def test_fig20_mixture_mode(benchmark, results):
    data = run_experiment()
    executor = ModeExecutor(
        QWEN_VL_7B, ATMMOperator(GemmCostModel(A100_80GB)),
        num_projections=2,
    )
    benchmark(
        executor.extra_seconds, M.MIXTURE,
        {"merged": 24, "x": 8}, {"merged": 64, "x": 64},
        "merged",
    )

    rows = [
        [k, v["starved_frac"], v["mixture_ms"], v["unmerged_ms"],
         f"{v['saving_pct']}%"]
        for k, v in data.items()
    ]
    results.print_table(
        "Fig 20: deLoRA mixture vs unmerged extra compute "
        "(paper: ~62% average saving below 50% starved)",
        ["starved reqs", "fraction", "mixture ms", "unmerged ms", "saving"],
        rows,
    )
    results.save("fig20_mixture_mode", {str(k): v for k, v in data.items()})

    below_half = [v["saving_pct"] for v in data.values()
                  if v["starved_frac"] < 0.5]
    avg_saving = float(np.mean(below_half))
    assert avg_saving > 30  # paper: 62%
    # Saving shrinks as the starved fraction grows.
    fracs = sorted(data)
    assert data[fracs[0]]["saving_pct"] > data[fracs[-1]]["saving_pct"]
