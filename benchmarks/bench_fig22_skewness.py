"""Fig. 22 — end-to-end impact of request skewness (full systems).

Paper: across four skew levels, V-LoRA reduces average token latency by
76-81% vs dLoRA, 72-83% vs Punica, and 63-76% vs S-LoRA thanks to
timely mode switches and the mixture mode.
"""

from _common import ms, reduction

from repro.core import SystemBuilder
from repro.workloads import RetrievalWorkload

SYSTEMS = ("v-lora", "s-lora", "punica", "dlora")
SKEWS = (0.3, 0.5, 0.7, 0.9)


def run_experiment():
    builder = SystemBuilder(num_adapters=8)
    out = {}
    for skew in SKEWS:
        row = {}
        for system in SYSTEMS:
            engine = builder.build(system)
            wl = RetrievalWorkload(
                builder.adapter_ids, rate_rps=12.0, duration_s=25.0,
                top_adapter_share=skew,
                use_task_heads=(system == "v-lora"), seed=22,
            )
            engine.submit(wl.generate())
            metrics = engine.run()
            row[system] = ms(metrics.avg_token_latency())
        out[skew] = row
    return out


def test_fig22_skewness(benchmark, results):
    data = run_experiment()

    def quick_sim():
        builder = SystemBuilder(num_adapters=4)
        engine = builder.build("v-lora")
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=6.0,
                               duration_s=3.0, seed=1)
        engine.submit(wl.generate())
        engine.run()

    benchmark.pedantic(quick_sim, rounds=3, iterations=1)

    rows = []
    for skew, row in data.items():
        vl = row["v-lora"]
        rows.append([
            skew, *(row[s] for s in SYSTEMS),
            " / ".join(reduction(vl, row[s]) for s in SYSTEMS[1:]),
        ])
    results.print_table(
        "Fig 22: avg token latency (ms) vs skew "
        "(paper: -63..-76% S-LoRA, -72..-83% Punica, -76..-81% dLoRA)",
        ["skew", *SYSTEMS, "V-LoRA cut (slora/punica/dlora)"], rows,
    )
    results.save("fig22_skewness", {str(k): v for k, v in data.items()})

    for skew, row in data.items():
        assert row["v-lora"] <= min(row[s] for s in SYSTEMS[1:]), skew
    # Higher skew helps V-LoRA more (merge-friendlier workload).
    cut_low = 1 - data[0.3]["v-lora"] / data[0.3]["dlora"]
    cut_high = 1 - data[0.9]["v-lora"] / data[0.9]["dlora"]
    assert cut_high >= cut_low - 0.05
