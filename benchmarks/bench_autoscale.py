"""Elastic autoscaling — GPU-seconds vs SLO under diurnal + burst load.

Drives the same diurnal trace (trough-to-peak sinusoid with a
``LOAD_BURST`` spike near the first peak) through two clusters built
from identical engines:

* **static** — peak-provisioned: ``PEAK_REPLICAS`` replicas alive for
  the whole run, the capacity you must pre-buy to survive the peak;
* **autoscaled** — starts at one replica and lets the
  :class:`~repro.runtime.autoscaler.Autoscaler` grow toward
  ``PEAK_REPLICAS`` when the EWMA queue depth or the SLO-attainment
  floor demands it, then drain back down through the trough.

The contract under test: the autoscaled cluster spends **at most 80 %**
of the static cluster's GPU-seconds while matching its SLO attainment.
GPU-seconds for the static cluster are ``replicas × makespan`` (every
replica is up the whole run); the autoscaled cluster reports its exact
per-replica spawn-to-retire lifetimes via ``gpu_seconds_total``.

Standalone mode (``python benchmarks/bench_autoscale.py [--small]``)
writes ``BENCH_autoscale.json`` and exits non-zero when the efficiency
or SLO contract breaks (CI perf smoke).
"""

from _common import ResultSink  # noqa: F401  (fixture lives in conftest)

from repro.core import SystemBuilder
from repro.runtime import (
    AutoscaleConfig,
    Autoscaler,
    FaultInjector,
    FaultKind,
    FaultSpec,
    MultiGPUServer,
)
from repro.workloads import diurnal_burst_trace

ADAPTERS = 4
PEAK_RPS = 32.0
TROUGH_RPS = 2.0
PERIOD_S = 40.0
DURATION_S = 80.0
#: Peaky diurnal shape — busy hours are a small fraction of the day, so
#: peak provisioning wastes most of its GPU-seconds in the trough.
SHARPNESS = 3.0
SLO_S = 6.0
PEAK_REPLICAS = 4
#: Arrival-compression spike riding the first diurnal peak (t=20s) —
#: the autoscaler must absorb it on top of the sinusoid.
BURST = FaultSpec(FaultKind.LOAD_BURST, 18.0, 6.0, magnitude=3.0)


def _workload(scale=1.0, seed=0):
    return diurnal_burst_trace(
        [f"lora-{i}" for i in range(ADAPTERS)],
        peak_rps=PEAK_RPS,
        trough_rps=TROUGH_RPS,
        period_s=PERIOD_S * scale,
        duration_s=DURATION_S * scale,
        top_adapter_share=0.5,
        use_task_heads=False,
        slo_s=SLO_S,
        sharpness=SHARPNESS,
        seed=seed,
        injector=FaultInjector([FaultSpec(
            BURST.kind, BURST.start * scale, BURST.duration * scale,
            magnitude=BURST.magnitude,
        )]),
    )


def _autoscaler(scale=1.0):
    return Autoscaler(AutoscaleConfig(
        min_replicas=1,
        max_replicas=PEAK_REPLICAS,
        interval_s=0.5,
        target_queue_per_replica=4.0,
        down_fraction=0.7,
        slo_floor=0.9,
        ewma_alpha=0.5,
        down_cooldown_s=3.0 * scale,
        spinup_s=0.5,
        drain_timeout_s=20.0,
    ))


def _makespan(metrics):
    return max(
        [r.finish_time for r in metrics.records]
        + [a.abort_time for a in metrics.aborts]
    )


def _summarize(metrics, requests, gpu_seconds):
    slo = metrics.slo_attainment()
    return {
        "submitted": len(requests),
        "completed": metrics.num_completed,
        "aborted": metrics.num_aborted,
        "slo_attainment": round(slo, 4) if slo is not None else None,
        "gpu_seconds": round(gpu_seconds, 2),
        "makespan_s": round(_makespan(metrics), 2),
        "scale_up_events": metrics.scale_up_events,
        "scale_down_events": metrics.scale_down_events,
        "replicas_spawned": metrics.replicas_spawned,
        "replicas_retired": metrics.replicas_retired,
        "drain_requeues": metrics.drain_requeues,
    }


def run_autoscale_vs_static(scale=1.0, seed=0):
    builder = SystemBuilder(num_adapters=ADAPTERS, max_batch_size=16)
    factory = lambda: builder.build("v-lora")  # noqa: E731

    requests = _workload(scale=scale, seed=seed)
    static = MultiGPUServer.replicate(factory, PEAK_REPLICAS)
    static.submit([r for r in requests])
    static_metrics = static.run()
    assert (static_metrics.num_completed + static_metrics.num_aborted
            == len(requests))
    # Peak provisioning keeps every replica alive for the whole run.
    static_gpu_s = PEAK_REPLICAS * _makespan(static_metrics)

    requests2 = _workload(scale=scale, seed=seed)
    auto = MultiGPUServer.replicate(
        factory, 1, autoscaler=_autoscaler(scale=scale)
    )
    auto.submit(requests2)
    auto_metrics = auto.run()
    assert (auto_metrics.num_completed + auto_metrics.num_aborted
            == len(requests2))

    static_row = _summarize(static_metrics, requests, static_gpu_s)
    auto_row = _summarize(auto_metrics, requests2,
                          auto_metrics.gpu_seconds_total)
    return {
        "static": static_row,
        "autoscaled": auto_row,
        "gpu_seconds_ratio": round(
            auto_row["gpu_seconds"] / max(static_row["gpu_seconds"], 1e-9), 4
        ),
        "scale_events": [
            ev.to_dict() for ev in auto_metrics.scale_events
        ],
    }


def _check(data):
    """The acceptance criteria; raises AssertionError on regression."""
    static, auto = data["static"], data["autoscaled"]
    # Elasticity must save real money: <= 80% of peak-provisioned cost.
    assert data["gpu_seconds_ratio"] <= 0.8, data["gpu_seconds_ratio"]
    # ... at equal-or-better service quality.
    assert auto["slo_attainment"] is not None
    assert auto["slo_attainment"] >= static["slo_attainment"], (
        auto["slo_attainment"], static["slo_attainment"])
    # The run actually exercised the lifecycle, not a degenerate config.
    assert auto["scale_up_events"] >= 1, data
    assert auto["scale_down_events"] >= 1, data
    assert auto["replicas_retired"] >= 1, data


def test_autoscale_vs_static(results):
    data = run_autoscale_vs_static()
    _check(data)
    rows = [
        [name, row["completed"], row["aborted"], row["slo_attainment"],
         row["gpu_seconds"], row["scale_up_events"],
         row["scale_down_events"]]
        for name, row in (("static", data["static"]),
                          ("autoscaled", data["autoscaled"]))
    ]
    results.print_table(
        f"autoscale: diurnal {TROUGH_RPS:.0f}-{PEAK_RPS:.0f} rps + "
        f"{BURST.magnitude:.0f}x burst, SLO {SLO_S}s "
        f"(gpu-s ratio {data['gpu_seconds_ratio']})",
        ["cluster", "done", "aborted", "slo_att", "gpu_s", "ups", "downs"],
        rows,
    )
    results.save("autoscale_vs_static", {
        k: v for k, v in data.items() if k != "scale_events"
    })


def main() -> int:
    """Standalone entry for CI: dump results, fail on contract breaks."""
    import json
    import sys

    scale = 0.5 if "--small" in sys.argv[1:] else 1.0
    payload = run_autoscale_vs_static(scale=scale)
    with open("BENCH_autoscale.json", "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    print(json.dumps({k: v for k, v in payload.items()
                      if k != "scale_events"}, indent=1, sort_keys=True))
    print("wrote BENCH_autoscale.json")
    failures = []
    if scale >= 1.0:
        try:
            _check(payload)
        except AssertionError as exc:
            failures.append(f"acceptance check failed: {exc}")
    else:
        # Small mode still requires conservation and *some* savings.
        if payload["gpu_seconds_ratio"] >= 1.0:
            failures.append("autoscaling saved no GPU-seconds")
    if failures:
        print("; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
