"""Table 1 — tiling configuration x input shape latency matrix.

Paper: Punica's static config loses to Config 1 on Input 1 (low SM
utilization / small-tile traffic) and to Config 2 on Input 2; no single
configuration wins both inputs, motivating adaptive tiling.
"""

from _common import ms, reduction

from repro.hardware import A100_80GB
from repro.kernels import (
    CONFIG_1,
    CONFIG_2,
    PUNICA_CONFIG,
    ATMMOperator,
    GemmCostModel,
    GemmShape,
)

INPUTS = {
    "input1 (256x4096, 4096x32)": GemmShape(256, 4096, 32),
    "input2 (8192x4096, 4096x128)": GemmShape(8192, 4096, 128),
}
CONFIGS = {
    "Punica (16,64,64,16,16,64)": PUNICA_CONFIG,
    "Config1 (64,32,32,32,32,32)": CONFIG_1,
    "Config2 (128,64,128,64,32,64)": CONFIG_2,
}

#: Paper-reported milliseconds for the same matrix.
PAPER_MS = {
    ("Punica (16,64,64,16,16,64)", "input1 (256x4096, 4096x32)"): 0.087,
    ("Punica (16,64,64,16,16,64)", "input2 (8192x4096, 4096x128)"): 0.19,
    ("Config1 (64,32,32,32,32,32)", "input1 (256x4096, 4096x32)"): 0.07,
    ("Config1 (64,32,32,32,32,32)", "input2 (8192x4096, 4096x128)"): 0.12,
    ("Config2 (128,64,128,64,32,64)", "input1 (256x4096, 4096x32)"): 0.13,
    ("Config2 (128,64,128,64,32,64)", "input2 (8192x4096, 4096x128)"): 0.10,
}


def run_experiment():
    cm = GemmCostModel(A100_80GB)
    atmm = ATMMOperator(cm)
    matrix = {}
    for cfg_name, cfg in CONFIGS.items():
        for in_name, shape in INPUTS.items():
            matrix[(cfg_name, in_name)] = cm.gemm_seconds(shape, cfg)
    adaptive = {}
    for in_name, shape in INPUTS.items():
        cfg = atmm._lookup(shape.m, shape.k, shape.n)
        adaptive[in_name] = cm.gemm_seconds(shape, cfg)
    return matrix, adaptive


def test_table1_tiling(benchmark, results):
    matrix, adaptive = run_experiment()
    cm = GemmCostModel(A100_80GB)
    shape = INPUTS["input2 (8192x4096, 4096x128)"]
    benchmark(cm._gemm_seconds, shape, CONFIG_2)

    rows = []
    for cfg_name in CONFIGS:
        row = [cfg_name]
        for in_name in INPUTS:
            sim = ms(matrix[(cfg_name, in_name)])
            paper = PAPER_MS[(cfg_name, in_name)]
            row.append(f"{sim}ms (paper {paper}ms)")
        rows.append(row)
    adaptive_row = ["ATMM (adaptive)"]
    for in_name in INPUTS:
        adaptive_row.append(f"{ms(adaptive[in_name])}ms (<= best static)")
    rows.append(adaptive_row)
    results.print_table("Table 1: tiling config x input shape",
                        ["config", *INPUTS], rows)
    results.save("table1_tiling", {
        "simulated_ms": {f"{c} | {i}": ms(v) for (c, i), v in matrix.items()},
        "adaptive_ms": {i: ms(v) for i, v in adaptive.items()},
        "paper_ms": {f"{c} | {i}": v for (c, i), v in PAPER_MS.items()},
    })

    # Shape assertions: the paper's winners must win here too.
    i1 = "input1 (256x4096, 4096x32)"
    i2 = "input2 (8192x4096, 4096x128)"
    p, c1, c2 = list(CONFIGS)
    assert matrix[(c1, i1)] < matrix[(p, i1)] < matrix[(c2, i1)]
    assert matrix[(c2, i2)] < matrix[(c1, i2)] < matrix[(p, i2)]
    for in_name in INPUTS:
        best_static = min(matrix[(c, in_name)] for c in CONFIGS)
        assert adaptive[in_name] <= best_static * 1.001
