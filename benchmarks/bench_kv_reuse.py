"""Ablation (§5 "KV cache reuse") — prefix reuse for repeated images.

Multi-round VQA revisits the same image; reusing its KV blocks avoids
recomputing the (large) visual prefix at prefill.  This bench serves the
same image-heavy retrieval workload with and without prefix reuse.
"""

from _common import ms, reduction

from repro.core import SystemBuilder
from repro.runtime.engine import EngineConfig
from repro.workloads import RetrievalWorkload


def _build(builder, enable_reuse):
    engine = builder.build("v-lora")
    engine.config = EngineConfig(
        max_batch_size=engine.config.max_batch_size,
        num_projections=engine.config.num_projections,
        enable_prefix_reuse=enable_reuse,
        jitter_seed=engine.config.jitter_seed,
    )
    return engine


def run_experiment():
    builder = SystemBuilder(num_adapters=4)
    out = {}
    for reuse in (True, False):
        engine = _build(builder, reuse)
        wl = RetrievalWorkload(
            builder.adapter_ids, rate_rps=8.0, duration_s=25.0,
            image_reuse_prob=0.5, image_pool=6, seed=33,
        )
        engine.submit(wl.generate())
        metrics = engine.run()
        out["with_reuse" if reuse else "without_reuse"] = {
            "mean_latency_s": round(metrics.mean_latency(), 4),
            "mean_ttft_s": round(metrics.mean_ttft(), 4),
            "avg_token_latency_ms": ms(metrics.avg_token_latency()),
            "cached_prefixes": engine.kv.num_prefixes,
        }
    return out


def test_kv_reuse_ablation(benchmark, results):
    data = run_experiment()

    from repro.runtime.kv_cache import PagedKVCache
    kv = PagedKVCache(num_blocks=512, block_size=16)
    kv.allocate(0, 300, prefix_key="img", prefix_tokens=256)
    seq = [1]

    def hit():
        s = seq[0]
        seq[0] += 1
        kv.allocate(s, 300, prefix_key="img", prefix_tokens=256)
        kv.free(s)

    benchmark.pedantic(hit, rounds=50, iterations=1)

    rows = [
        [k, v["mean_ttft_s"], v["mean_latency_s"],
         v["avg_token_latency_ms"], v["cached_prefixes"]]
        for k, v in data.items()
    ]
    results.print_table(
        "KV prefix reuse ablation (multi-round VQA style workload)",
        ["variant", "mean TTFT s", "mean latency s", "avg tok lat ms",
         "prefixes"],
        rows,
    )
    results.save("kv_reuse_ablation", data)

    # Reuse cuts time-to-first-token (the prefill shrinks).
    assert data["with_reuse"]["mean_ttft_s"] < \
        data["without_reuse"]["mean_ttft_s"]
    assert data["with_reuse"]["mean_latency_s"] <= \
        data["without_reuse"]["mean_latency_s"] * 1.02
    assert data["with_reuse"]["cached_prefixes"] > 0
