"""Shared substrate for the accuracy-side benches (Figs. 3, 4, 5, 15).

Pretraining the TinyLMM once per benchmark session keeps the accuracy
benches fast; everything downstream deep-copies it.
"""

from __future__ import annotations

import copy
import functools

import numpy as np

from repro.generation import pretrain_base
from repro.nn import TinyLMMConfig

CONFIG = TinyLMMConfig(max_patches=12)


@functools.lru_cache(maxsize=1)
def shared_base():
    return pretrain_base(CONFIG, steps=150, seed=7)


def fresh_base():
    return copy.deepcopy(shared_base())


def pad_patches(x: np.ndarray, patches: int = CONFIG.max_patches) -> np.ndarray:
    if x.shape[1] == patches:
        return x
    if x.shape[1] > patches:
        return x[:, :patches]
    tail = np.repeat(x[:, -1:, :], patches - x.shape[1], axis=1)
    return np.concatenate([x, tail], axis=1)


def base_accuracy(model, domain) -> float:
    return model.accuracy(
        pad_patches(domain.test_x), domain.test_prompts(), domain.test_y
    )
