"""Fig. 4 — accuracy gain from domain-specific LoRA adapters.

Paper: fine-tuned LoRA adapters lift Qwen-VL by +45.2 points on image
classification (AID), +24.5 on object detection (Aircraft), and +62.2 on
video classification (UCF-101).  Here each family's shifted domain plays
the external dataset; the TinyLMM gains come from real LoRA training.
"""

import numpy as np

from _accuracy_shared import base_accuracy, fresh_base

from repro.generation import (
    IMAGE_CLASSIFICATION,
    OBJECT_DETECTION,
    VIDEO_CLASSIFICATION,
    LoRATrainer,
    make_domain,
)

PAPER_GAIN_PTS = {
    "image_classification": 45.2,
    "object_detection": 24.5,
    "video_classification": 62.2,
}


def run_experiment():
    out = {}
    for family in (IMAGE_CLASSIFICATION, OBJECT_DETECTION,
                   VIDEO_CLASSIFICATION):
        domain = make_domain(family, 0, n_train=160, n_test=128)
        model = fresh_base()
        base = base_accuracy(model, domain)
        model.add_lora(4, rng=np.random.default_rng(0))
        trainer = LoRATrainer(model, steps_per_domain=90)
        trainer.train([domain])
        tuned = trainer.evaluate([domain]).per_domain[domain.name]
        out[family.name] = {
            "base_acc": round(base, 3),
            "lora_acc": round(tuned, 3),
            "gain_pts": round(100 * (tuned - base), 1),
            "paper_gain_pts": PAPER_GAIN_PTS[family.name],
        }
    return out


def test_fig04_lora_gain(benchmark, results):
    data = run_experiment()

    model = fresh_base()
    model.add_lora(4, rng=np.random.default_rng(0))
    domain = make_domain(IMAGE_CLASSIFICATION, 0, n_train=64, n_test=32)
    trainer = LoRATrainer(model, steps_per_domain=5)
    benchmark.pedantic(trainer.train, args=([domain],),
                       rounds=2, iterations=1)

    rows = [
        [fam, d["base_acc"], d["lora_acc"],
         f"+{d['gain_pts']}", f"+{d['paper_gain_pts']}"]
        for fam, d in data.items()
    ]
    results.print_table(
        "Fig 4: LoRA accuracy gain per task family",
        ["family", "base", "LoRA", "gain (pts)", "paper gain"],
        rows,
    )
    results.save("fig04_lora_gain", data)

    for fam, d in data.items():
        assert d["gain_pts"] > 15, fam         # every task gains a lot
        assert d["lora_acc"] > 0.8, fam        # adapters reach high accuracy
    # Video classification shows the largest gain, as in the paper.
    assert data["video_classification"]["gain_pts"] == max(
        d["gain_pts"] for d in data.values()
    )
