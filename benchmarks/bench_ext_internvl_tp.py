"""Extension bench — the paper's future work (§6.4): larger LMMs.

"In future work, we can ... support larger LMM like InternVL2-76B."
This bench serves InternVL2-76B (Llama-3-70B backbone + InternViT-6B)
with Megatron-style tensor parallelism across 2/4/8 A100s and compares
the inter-GPU dispatch policies for the data-parallel 7B deployment.
"""

from _common import ms

from repro.core import SystemBuilder
from repro.models import INTERNVL2_76B
from repro.runtime import MultiGPUServer
from repro.workloads import RetrievalWorkload

TP_DEGREES = (4, 8)


def run_tp_experiment():
    out = {}
    for tp in TP_DEGREES:
        builder = SystemBuilder(model=INTERNVL2_76B, num_adapters=4,
                                tensor_parallel=tp, max_batch_size=16)
        engine = builder.build("v-lora")
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=2.0,
                               duration_s=20.0, seed=6)
        engine.submit(wl.generate())
        metrics = engine.run()
        out[tp] = {
            "avg_token_latency_ms": ms(metrics.avg_token_latency()),
            "mean_latency_s": round(metrics.mean_latency(), 3),
        }
    return out


def run_dispatch_experiment():
    builder = SystemBuilder(num_adapters=8)
    out = {}
    for dispatch in ("least-loaded", "round-robin", "adapter-affinity"):
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), 2, dispatch=dispatch
        )
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=20.0,
                               duration_s=20.0, top_adapter_share=0.3,
                               seed=6)
        server.submit(wl.generate())
        metrics = server.run()
        out[dispatch] = {
            "avg_token_latency_ms": ms(metrics.avg_token_latency()),
            "merged_fraction": round(
                metrics.mode_iterations.get("merged", 0)
                / max(metrics.iterations, 1), 3
            ),
            "per_engine_completed": server.per_engine_completed(),
        }
    return out


def test_ext_internvl_tp(benchmark, results):
    tp_data = run_tp_experiment()
    dispatch_data = run_dispatch_experiment()

    from repro.hardware import A100_80GB
    from repro.models import IterationCostModel
    costs = IterationCostModel(INTERNVL2_76B, A100_80GB, tp_degree=4)
    benchmark(costs.decode_seconds_uniform, 8, 512)

    results.print_table(
        "Extension: InternVL2-76B with tensor parallelism (future work)",
        ["TP degree", "avg token lat ms", "mean latency s"],
        [[tp, d["avg_token_latency_ms"], d["mean_latency_s"]]
         for tp, d in tp_data.items()],
    )
    results.print_table(
        "Extension: inter-GPU dispatch policies (2 GPUs)",
        ["dispatch", "avg token lat ms", "merged fraction", "per-engine"],
        [[k, v["avg_token_latency_ms"], v["merged_fraction"],
          v["per_engine_completed"]] for k, v in dispatch_data.items()],
    )
    results.save("ext_internvl_tp", {
        "tensor_parallel": {str(k): v for k, v in tp_data.items()},
        "dispatch": dispatch_data,
    })

    # More TP -> faster (sub-linearly).
    assert tp_data[8]["avg_token_latency_ms"] < \
        tp_data[4]["avg_token_latency_ms"]
    # Finding: at these loads, load balance dominates merge affinity —
    # pinning adapters to home replicas skews per-replica load and loses
    # to least-loaded dispatch.  Trading both off is exactly the
    # dLoRA-style inter-GPU orchestration the paper defers to future
    # work.
    assert dispatch_data["least-loaded"]["avg_token_latency_ms"] <= \
        dispatch_data["adapter-affinity"]["avg_token_latency_ms"] * 1.05

    def spread(d):
        counts = d["per_engine_completed"]
        return max(counts) - min(counts)

    assert spread(dispatch_data["adapter-affinity"]) >= \
        spread(dispatch_data["round-robin"])
