"""Fig. 23 — impact of the number of LoRA adapters.

Paper: as the adapter count grows past what the GPU keeps resident,
V-LoRA's latency stays nearly flat (pre-allocated contiguous slots,
asynchronous A/B swap, ΔW computed at runtime with ATMM) while dLoRA
degrades with its batched-GEMM swap path.
"""

from _common import ms

from repro.core import SystemBuilder
from repro.workloads import RetrievalWorkload

SYSTEMS = ("v-lora", "dlora")
ADAPTER_COUNTS = (4, 8, 16, 32)
GPU_SLOTS = 8  # adapters resident on GPU; beyond this, swaps happen


def run_experiment():
    out = {}
    for count in ADAPTER_COUNTS:
        builder = SystemBuilder(
            num_adapters=count,
            gpu_adapter_slots=min(count, GPU_SLOTS),
        )
        row = {}
        for system in SYSTEMS:
            engine = builder.build(system)
            wl = RetrievalWorkload(
                builder.adapter_ids, rate_rps=10.0, duration_s=25.0,
                top_adapter_share=max(0.5, 1.5 / count),
                use_task_heads=(system == "v-lora"), seed=23,
            )
            engine.submit(wl.generate())
            metrics = engine.run()
            row[system] = {
                "avg_token_latency_ms": ms(metrics.avg_token_latency()),
                "swap_ins": engine.adapters.total_swap_ins(),
            }
        out[count] = row
    return out


def test_fig23_adapter_count(benchmark, results):
    data = run_experiment()

    from repro.hardware import A100_80GB, TransferModel
    from repro.models import QWEN_VL_7B, LoRAAdapterSpec
    from repro.runtime.adapters import AdapterManager
    mgr = AdapterManager(
        [LoRAAdapterSpec(f"a{i}", QWEN_VL_7B) for i in range(16)],
        gpu_slots=4, transfer_model=TransferModel(A100_80GB),
    )
    benchmark(mgr.ensure_resident, ["a0", "a1"], 0.0)

    rows = [
        [count,
         *(f"{row[s]['avg_token_latency_ms']}ms "
           f"({row[s]['swap_ins']} swaps)" for s in SYSTEMS)]
        for count, row in data.items()
    ]
    results.print_table(
        "Fig 23: avg token latency vs adapter count "
        f"(GPU holds {GPU_SLOTS}; paper: V-LoRA nearly flat)",
        ["adapters", *SYSTEMS], rows,
    )
    results.save("fig23_adapter_count", {str(k): v for k, v in data.items()})

    # V-LoRA stays nearly flat from the no-swap to the swap regime,
    # and absorbs the 8x adapter growth better than dLoRA does.
    vl = {c: data[c]["v-lora"]["avg_token_latency_ms"]
          for c in ADAPTER_COUNTS}
    dl = {c: data[c]["dlora"]["avg_token_latency_ms"]
          for c in ADAPTER_COUNTS}
    assert vl[32] < 2.2 * vl[4]
    assert vl[32] - vl[4] < dl[32] - dl[4]
    # Swaps do occur once adapters exceed the GPU slots.
    assert data[32]["v-lora"]["swap_ins"] > 0
    # V-LoRA beats dLoRA at every count.
    for count, row in data.items():
        assert row["v-lora"]["avg_token_latency_ms"] < \
            row["dlora"]["avg_token_latency_ms"]
