"""Tail-tolerant dispatch — hedged requests vs the straggler tail.

Interactive vision applications live and die by p99 TTFT (§6.1): one
straggling replica (slow GPU, swap-stalled adapter) drags the tail even
when the rest of the fleet is idle.  This bench drives one fixed chaos
scenario — an 8x straggler plus adapter-swap slowdowns on an 8-replica
cluster — through three experiments:

* **hedged vs unhedged**: identical epoched control loops, hedging the
  only difference.  The contract: hedging cuts p99 TTFT to <= 0.8x the
  unhedged tail while adding <= 10% duplicate work (iterations), and
  the lease fence holds exactly-once terminals throughout;
* **threshold frontier**: the hedge percentile (p90/p95/p99) trades
  spawned twins against tail latency — lower percentiles hedge more;
* **retry storm**: an aggressive fixed hedge threshold wants to hedge
  nearly everything; the per-class retry budget must cap the
  amplification (and count the denials) instead of doubling load.

Standalone mode (``python benchmarks/bench_tail.py``) writes
``BENCH_tail.json`` and exits non-zero on any contract break (CI chaos
smoke; the full scenario runs in seconds, so there is no reduced
``--small`` variant — at half scale the fleet diverts around the
straggler and no tail forms to cut).
"""

from _common import ResultSink  # noqa: F401  (fixture lives in conftest)

from repro.core import SystemBuilder
from repro.runtime import (
    FaultInjector,
    FaultKind,
    FaultSpec,
    HedgeConfig,
    MultiGPUServer,
    RetryBudget,
    RetryBudgetConfig,
    TimeoutPolicy,
    reset_request_ids,
)
from repro.workloads import RetrievalWorkload

ADAPTERS = 4
RATE_RPS = 20.0
DURATION_S = 6.0
NUM_GPUS = 8
SEED = 0

#: Swept hedge percentiles (the frontier's x-axis); 95 is the default.
PERCENTILES = (90.0, 95.0, 99.0)
DEFAULT_PERCENTILE = 95.0

#: Acceptance gates (the ISSUE's contract).
P99_GATE = 0.8          # hedged p99 TTFT <= gate * unhedged p99 TTFT
OVERHEAD_GATE = 0.10    # duplicate work (iterations) <= 10% extra

#: A window never reached: the same epoched+fenced control loop as the
#: hedged runs, with hedging armed but permanently disarmed — so the
#: unhedged baseline differs by exactly one thing, the hedges.
_NEVER = HedgeConfig(min_observations=1_000_000, window=1_000_000)


def _chaos(scale=1.0):
    """One straggler plus swap slowdowns (the tail, not a death).

    The straggler starts *after* the hedge tracker has observed a
    window of healthy completions — the realistic gray-failure shape
    (a replica degrades mid-run), and the shape percentile-tracked
    hedging is built for: the threshold reflects the healthy fleet, so
    the straggler's requests cross it quickly instead of teaching the
    tracker that 15s is normal.
    """
    return FaultInjector([
        FaultSpec(FaultKind.ENGINE_SLOW, start=2.0 * scale,
                  duration=30.0 * scale, magnitude=8.0, target="gpu-0"),
        FaultSpec(FaultKind.ADAPTER_SWAP_SLOW, start=2.5 * scale,
                  duration=4.0 * scale, magnitude=8.0, target="lora-0"),
        FaultSpec(FaultKind.ADAPTER_SWAP_SLOW, start=4.0 * scale,
                  duration=3.0 * scale, magnitude=8.0, target="lora-2"),
    ])


def _ten_percent_budget():
    """Google SRE's 10% rule as a token bucket: no seed tokens, one
    token banked per ten fresh dispatches."""
    return RetryBudget(RetryBudgetConfig(ratio=0.1, burst=15.0,
                                         initial=0.0))


def _workload(scale=1.0, seed=SEED):
    return RetrievalWorkload(
        adapter_ids=[f"lora-{i}" for i in range(ADAPTERS)],
        rate_rps=RATE_RPS,
        duration_s=DURATION_S * scale,
        use_task_heads=False,
        slo_s=None,
        seed=seed,
    ).generate()


def _duplicate_terminals(requests, metrics):
    """Count of exactly-once violations (0 is the contract)."""
    rec_ids = [r.request_id for r in metrics.records]
    abort_ids = [a.request_id for a in metrics.aborts]
    dupes = (len(rec_ids) - len(set(rec_ids))
             + len(abort_ids) - len(set(abort_ids))
             + len(set(rec_ids) & set(abort_ids)))
    missing = {r.request_id for r in requests} - set(rec_ids) - set(abort_ids)
    return dupes, len(missing)


def _run(scale, seed, *, hedge, retry_budget=None, timeout_policy=None):
    reset_request_ids()
    builder = SystemBuilder(num_adapters=ADAPTERS, max_batch_size=8,
                            fault_injector=_chaos(scale))
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), NUM_GPUS, hedge=hedge,
        retry_budget=retry_budget, timeout_policy=timeout_policy,
        max_requeues=4,
    )
    requests = _workload(scale=scale, seed=seed)
    server.submit(requests)
    metrics = server.run()
    dupes, lost = _duplicate_terminals(requests, metrics)
    return {
        "submitted": len(requests),
        "completed": metrics.num_completed,
        "aborted": metrics.num_aborted,
        "p50_ttft_s": round(metrics.ttft_percentile(50.0), 4),
        "p99_ttft_s": round(metrics.ttft_percentile(99.0), 4),
        "p99_latency_s": round(metrics.latency_percentile(99.0), 4),
        "iterations": metrics.iterations,
        "hedges_fired": metrics.hedges_fired,
        "hedge_wins": metrics.hedge_wins,
        "hedge_losses": metrics.hedge_losses,
        "retry_budget_exhausted": metrics.retry_budget_exhausted,
        "duplicate_terminals": dupes,
        "lost_requests": lost,
    }


def run_tail_bench(scale=1.0, seed=SEED):
    # -- hedged vs unhedged (the headline A/B) ---------------------------
    unhedged = _run(scale, seed, hedge=_NEVER)
    # The budget IS the <= 10% rule: with ratio 0.1 and no seed
    # tokens, at most one request in ten can ever be duplicated — the
    # duplicate-work gate holds by construction, not by luck.
    hedged = _run(
        scale, seed,
        hedge=HedgeConfig(percentile=DEFAULT_PERCENTILE,
                          min_observations=12, window=256),
        retry_budget=_ten_percent_budget(),
    )
    # Duplicate work: the fraction of submitted requests that were run
    # twice (every fired hedge ends as exactly one fenced loser), plus
    # the raw engine-iteration ratio for the work-not-requests view.
    overhead = hedged["hedge_losses"] / max(hedged["submitted"], 1)
    headline = {
        "unhedged": unhedged,
        "hedged": hedged,
        "p99_ttft_ratio": round(
            hedged["p99_ttft_s"] / max(unhedged["p99_ttft_s"], 1e-9), 4),
        "duplicate_work_overhead": round(overhead, 4),
        "iteration_ratio": round(
            hedged["iterations"] / max(unhedged["iterations"], 1), 4),
    }

    # -- hedge-threshold frontier ----------------------------------------
    frontier = []
    for pct in PERCENTILES:
        row = _run(
            scale, seed,
            hedge=HedgeConfig(percentile=pct, min_observations=12,
                              window=256),
            retry_budget=_ten_percent_budget(),
        )
        row["percentile"] = pct
        frontier.append(row)

    # -- retry storm: the budget caps amplification ----------------------
    # A 0.05s fixed threshold wants to hedge nearly every request.
    storm_policy = TimeoutPolicy(hedge_after_s=0.05)
    uncapped = _run(scale, seed, hedge=HedgeConfig(),
                    timeout_policy=storm_policy)
    capped = _run(
        scale, seed, hedge=HedgeConfig(), timeout_policy=storm_policy,
        retry_budget=RetryBudget(RetryBudgetConfig(
            ratio=0.05, burst=5.0, initial=2.0)),
    )
    storm = {"uncapped": uncapped, "capped": capped}

    return {
        "headline": headline,
        "frontier": frontier,
        "storm": storm,
        "gates": {"p99_gate": P99_GATE, "overhead_gate": OVERHEAD_GATE},
        "scale": scale,
        "seed": seed,
    }


def _check(data):
    """The acceptance criteria; raises AssertionError on regression."""
    headline = data["headline"]
    rows = ([headline["unhedged"], headline["hedged"]]
            + data["frontier"]
            + [data["storm"]["uncapped"], data["storm"]["capped"]])
    # Exactly-once is unconditional: every run, zero duplicates.
    for row in rows:
        assert row["duplicate_terminals"] == 0, row
        assert row["lost_requests"] == 0, row
    # Hedging is actually off in the baseline and on everywhere else.
    assert headline["unhedged"]["hedges_fired"] == 0
    assert headline["hedged"]["hedges_fired"] > 0
    assert headline["hedged"]["hedge_wins"] > 0
    # Every fired hedge resolves to exactly one fenced loser.
    for row in rows:
        assert row["hedge_losses"] == row["hedges_fired"], row
    # The headline gates: tail cut, bounded duplicate work.
    assert headline["p99_ttft_ratio"] <= data["gates"]["p99_gate"], headline
    assert (headline["duplicate_work_overhead"]
            <= data["gates"]["overhead_gate"]), headline
    # The frontier hedges somewhere at every percentile.
    for row in data["frontier"]:
        assert row["hedges_fired"] > 0, row
    # The retry budget visibly caps the storm and counts its denials.
    storm = data["storm"]
    assert storm["uncapped"]["hedges_fired"] > 0
    assert (storm["capped"]["hedges_fired"]
            < storm["uncapped"]["hedges_fired"] / 2), storm
    assert storm["capped"]["retry_budget_exhausted"] > 0, storm


def test_tail_tolerant_dispatch(results):
    data = run_tail_bench()
    _check(data)
    headline = data["headline"]
    results.print_table(
        f"tail-tolerant dispatch: {NUM_GPUS} replicas, 8x straggler + "
        f"swap-slow chaos, {RATE_RPS:.0f} rps",
        ["mode", "done", "p50_ttft", "p99_ttft", "iters", "hedges",
         "wins", "dupes"],
        [[name, r["completed"], r["p50_ttft_s"], r["p99_ttft_s"],
          r["iterations"], r["hedges_fired"], r["hedge_wins"],
          r["duplicate_terminals"]]
         for name, r in (("unhedged", headline["unhedged"]),
                         ("hedged", headline["hedged"]))],
    )
    results.print_table(
        "hedge-threshold frontier (retry budget 10%)",
        ["pct", "p99_ttft", "hedges", "wins", "exhausted"],
        [[r["percentile"], r["p99_ttft_s"], r["hedges_fired"],
          r["hedge_wins"], r["retry_budget_exhausted"]]
         for r in data["frontier"]],
    )
    results.save("tail_tolerant_dispatch", data)


def main() -> int:
    """Standalone entry for CI: dump results, fail on contract breaks."""
    import json
    import sys

    payload = run_tail_bench()
    with open("BENCH_tail.json", "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    print(json.dumps(payload, indent=1, sort_keys=True))
    print("wrote BENCH_tail.json")
    try:
        _check(payload)
    except AssertionError as exc:
        print(f"acceptance check failed: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
