"""Fig. 17 — LoRA-batching operator latency across token batch sizes.

Paper: averaged over diverse inputs, ATMM is fastest at every batch
size — 2.7x vs S-LoRA, 2.3x vs Punica, 3.4x vs dLoRA overall; at the
decode stage (small shapes, left of the figure) ATMM stays within reach
of S-LoRA while beating dLoRA by 4.5x and Punica by 2.6x.
"""

import numpy as np

from _common import ms

from repro.hardware import A100_80GB
from repro.kernels import make_operator

SYSTEMS = ("atmm", "s-lora", "punica", "dlora")
D = 4096

#: Token batch sizes; <=64 is the decode regime, >=256 prefill.
BATCH_TOKENS = (8, 16, 32, 64, 256, 1024, 2048, 4096, 8192)


def _workload(total_tokens: int, rng: np.random.Generator):
    """Split a token budget over 2-4 request groups with rank 64."""
    groups = int(rng.integers(2, 5))
    cuts = np.sort(rng.choice(np.arange(1, total_tokens), groups - 1,
                              replace=False)) if total_tokens > groups else []
    sizes = np.diff([0, *cuts, total_tokens])
    sizes = [max(int(s), 1) for s in sizes]
    return sizes, [64] * len(sizes)


def run_experiment(rounds: int = 25):
    rng = np.random.default_rng(0)
    ops = {name: make_operator(name, A100_80GB) for name in SYSTEMS}
    series = {name: {} for name in SYSTEMS}
    for total in BATCH_TOKENS:
        workloads = [_workload(total, rng) for _ in range(rounds)]
        for name, op in ops.items():
            lat = np.mean([
                op.pair_seconds(tokens, ranks, D)
                for tokens, ranks in workloads
            ])
            series[name][total] = float(lat)
    return series


def speedups(series):
    out = {}
    for name in SYSTEMS[1:]:
        ratios = [
            series[name][t] / series["atmm"][t] for t in BATCH_TOKENS
        ]
        decode = [series[name][t] / series["atmm"][t]
                  for t in BATCH_TOKENS if t <= 64]
        out[name] = {
            "overall_speedup": round(float(np.mean(ratios)), 2),
            "decode_speedup": round(float(np.mean(decode)), 2),
        }
    return out


def test_fig17_operator_latency(benchmark, results):
    series = run_experiment()
    ratios = speedups(series)
    op = make_operator("atmm", A100_80GB)
    benchmark(op.pair_seconds, [256, 256, 512], [64, 64, 64], D)

    rows = [
        [t, *(ms(series[s][t]) for s in SYSTEMS)] for t in BATCH_TOKENS
    ]
    results.print_table(
        "Fig 17: operator latency (ms) vs token batch size",
        ["tokens", *SYSTEMS], rows,
    )
    results.print_table(
        "Fig 17: ATMM speedups (paper: 2.7x S-LoRA, 2.3x Punica, 3.4x "
        "dLoRA; decode 4.5x dLoRA, 2.6x Punica)",
        ["baseline", "overall", "decode-stage"],
        [[k, f"{v['overall_speedup']}x", f"{v['decode_speedup']}x"]
         for k, v in ratios.items()],
    )
    results.save("fig17_operator_latency", {
        "latency_ms": {s: {str(t): ms(v) for t, v in d.items()}
                       for s, d in series.items()},
        "speedups": ratios,
    })

    # ATMM wins at every batch size.
    for t in BATCH_TOKENS:
        assert series["atmm"][t] <= min(series[s][t] for s in SYSTEMS[1:])
    # Meaningful average speedups (paper: 2.3-3.4x).
    assert ratios["s-lora"]["overall_speedup"] > 1.8
    assert ratios["dlora"]["overall_speedup"] > 1.8
    # Decode stage: dLoRA much worse, S-LoRA comparable-ish.
    assert ratios["dlora"]["decode_speedup"] > 3.0
    assert ratios["s-lora"]["decode_speedup"] < \
        ratios["dlora"]["decode_speedup"]
