"""Fig. 5 — accuracy as a function of how many domains one adapter fuses.

Paper: training a separate adapter per small model keeps accuracy high;
fusing more knowledge into one adapter degrades it, at a rate that
depends on the task type — six fused image-classification models retain
>95% accuracy while video classification collapses quickly.

This bench measures the real curves by incremental LoRA training on the
TinyLMM and cross-checks the calibrated oracle used by serving-scale
fusion plans.
"""

import numpy as np

from _accuracy_shared import fresh_base

from repro.generation import (
    IMAGE_CLASSIFICATION,
    OBJECT_DETECTION,
    VIDEO_CLASSIFICATION,
    FusionAccuracyOracle,
    LoRATrainer,
    make_domains,
)

MAX_FUSED = 6
FAMILIES = (IMAGE_CLASSIFICATION, OBJECT_DETECTION, VIDEO_CLASSIFICATION)


def run_experiment():
    measured = {}
    for family in FAMILIES:
        domains = make_domains(family, MAX_FUSED, n_train=128, n_test=96)
        model = fresh_base()
        model.add_lora(4, rng=np.random.default_rng(1))
        trainer = LoRATrainer(model, steps_per_domain=80)
        curve = {}
        for k in range(1, MAX_FUSED + 1):
            trainer.train(domains[:k])
            curve[k] = round(trainer.evaluate(domains[:k]).min_accuracy, 3)
        measured[family.name] = curve
    oracle = FusionAccuracyOracle(jitter=0.0)
    oracle_curves = {
        family.name: {
            k: round(oracle.accuracy(family.name, k), 3)
            for k in range(1, MAX_FUSED + 1)
        }
        for family in FAMILIES
    }
    return measured, oracle_curves


def test_fig05_fusion_capacity(benchmark, results):
    measured, oracle_curves = run_experiment()

    oracle = FusionAccuracyOracle()
    benchmark(oracle.accuracy, "video_classification", 4, "salt")

    rows = []
    for fam, curve in measured.items():
        rows.append([
            f"{fam} (measured)",
            *(curve[k] for k in range(1, MAX_FUSED + 1)),
        ])
        rows.append([
            f"{fam} (oracle)",
            *(oracle_curves[fam][k] for k in range(1, MAX_FUSED + 1)),
        ])
    results.print_table(
        "Fig 5: min per-domain accuracy vs domains fused into one adapter",
        ["family", *[f"k={k}" for k in range(1, MAX_FUSED + 1)]], rows,
    )
    results.save("fig05_fusion_capacity", {
        "measured": measured, "oracle": oracle_curves,
    })

    img = measured["image_classification"]
    det = measured["object_detection"]
    vid = measured["video_classification"]
    # Every family starts strong alone.
    for fam, curve in measured.items():
        assert curve[1] > 0.85, fam
    # Image classification keeps most of its accuracy at six domains...
    assert img[MAX_FUSED] > 0.75
    # ...video classification collapses...
    assert vid[MAX_FUSED] < 0.5
    # ...and detection sits in between (averaged over the deep end).
    deep = range(4, MAX_FUSED + 1)
    img_d = np.mean([img[k] for k in deep])
    det_d = np.mean([det[k] for k in deep])
    vid_d = np.mean([vid[k] for k in deep])
    assert img_d > det_d > vid_d
    # The oracle reproduces the same ordering at k=6.
    o = {f.name: oracle_curves[f.name][MAX_FUSED] for f in FAMILIES}
    assert (o["image_classification"] > o["object_detection"]
            > o["video_classification"])
