"""Fig. 3 — the potential of LMMs: zero-shot transfer beats small models.

Paper: on domains neither model was trained on, Qwen-VL's broad
pretraining transfers (67.2% grounding F1 vs YOLO's 18.3%; 78.8% VQA vs
OSCAR's 73.3%).  Here the TinyLMM is pretrained on a broad multi-domain
mixture; the small model is trained on a *different* single domain, and
both are evaluated zero-shot on a held-out domain.
"""

import dataclasses

import numpy as np

from _accuracy_shared import base_accuracy, fresh_base

from repro.generation import (
    IMAGE_CLASSIFICATION,
    OBJECT_DETECTION,
    make_domain,
    train_small_model,
)

#: VQA-style evaluation runs close to the pretraining distribution
#: (VQAv2 is exactly what LMMs pretrain toward), so the held-out domain
#: carries only a mild shift.
VQA_LIKE = dataclasses.replace(IMAGE_CLASSIFICATION, domain_shift=0.5)

#: Fraction of VQA-style questions that require free-form multimodal
#: reasoning (reading the question, open vocabulary) that a closed-set
#: vision model like OSCAR structurally cannot answer.  This is the
#: substitution for Fig. 3(b)'s qualitative gap: the LMM answers every
#: question through its language interface; the small model only the
#: vision-answerable ones.
MULTIMODAL_ONLY_FRACTION = 0.2

#: Held-out domains use high indices so they never appear in pretraining
#: or in the other benches' adapter training.
HELDOUT_INDEX = 40
SOURCE_INDEX = 41


def run_experiment():
    out = {}
    for family, label in ((OBJECT_DETECTION, "zero-shot grounding"),
                          (VQA_LIKE, "visual answering")):
        heldout = make_domain(family, HELDOUT_INDEX, n_train=96,
                              n_test=128, prompt_id=7)
        source = make_domain(family, SOURCE_INDEX, n_train=160,
                             n_test=64, prompt_id=8)
        small = train_small_model(source, steps=150)
        lmm = fresh_base()
        lmm_acc = base_accuracy(lmm, heldout)
        small_acc = small.accuracy(heldout.test_x, heldout.test_y)
        if label == "visual answering":
            # VQA mixes vision-answerable questions with multimodal ones
            # the closed-set small model cannot parse at all.
            small_acc *= 1.0 - MULTIMODAL_ONLY_FRACTION
        out[label] = {
            "lmm_zero_shot": round(lmm_acc, 3),
            "small_model_off_domain": round(small_acc, 3),
            "small_model_home_domain": round(
                small.accuracy(source.test_x, source.test_y), 3
            ),
        }
    return out


def test_fig03_lmm_potential(benchmark, results):
    data = run_experiment()

    lmm = fresh_base()
    heldout = make_domain(OBJECT_DETECTION, HELDOUT_INDEX,
                          n_train=8, n_test=64, prompt_id=7)
    from _accuracy_shared import pad_patches
    x = pad_patches(heldout.test_x)
    benchmark(lmm.accuracy, x, heldout.test_prompts(), heldout.test_y)

    rows = [
        [task, d["lmm_zero_shot"], d["small_model_off_domain"],
         d["small_model_home_domain"]]
        for task, d in data.items()
    ]
    results.print_table(
        "Fig 3: zero-shot LMM vs small model on held-out domains "
        "(paper: 67.2 vs 18.3 grounding; 78.8 vs 73.3 VQA)",
        ["task", "LMM zero-shot", "small model (off-domain)",
         "small model (home)"],
        rows,
    )
    results.save("fig03_lmm_potential", data)

    grounding = data["zero-shot grounding"]
    vqa = data["visual answering"]
    # Grounding: the LMM's broad pretraining transfers; the narrow small
    # model does not (paper: 67.2 vs 18.3).
    assert grounding["lmm_zero_shot"] > \
        grounding["small_model_off_domain"] + 0.15
    # VQA: a modest LMM edge (paper: 78.8 vs 73.3).
    assert vqa["lmm_zero_shot"] > vqa["small_model_off_domain"]
    for task, d in data.items():
        # The small model is only strong at home (Fig. 3's premise).
        assert d["small_model_home_domain"] > 0.8, task
