"""Fig. 19 — scheduler comparison under adapter-popularity skew.

Paper: V-LoRA's policy (Algorithm 1) beats merge-only by 33%, unmerge-
only by 59%, and dLoRA by 21% in latency across skew levels: merge-only
wastes batch slots and switches constantly, unmerge-only pays permanent
extra compute, dLoRA wins only under heavy skew because of its slow
switch and Einsum operator.

All four schedulers here run on the same engine; merge-only/unmerge-only
use ATMM (they are V-LoRA ablations), so the difference is pure policy.
"""

import numpy as np

from _common import ms, reduction

from repro.core import SystemBuilder
from repro.workloads import RetrievalWorkload

SYSTEMS = ("v-lora", "merge-only", "unmerge-only", "dlora")
SKEWS = (0.3, 0.5, 0.7, 0.9)


def run_experiment():
    builder = SystemBuilder(num_adapters=8)
    out = {}
    for skew in SKEWS:
        row = {}
        for system in SYSTEMS:
            engine = builder.build(system)
            wl = RetrievalWorkload(
                builder.adapter_ids, rate_rps=10.0, duration_s=25.0,
                top_adapter_share=skew, use_task_heads=False, seed=11,
            )
            engine.submit(wl.generate())
            metrics = engine.run()
            row[system] = {
                "mean_latency_s": round(metrics.mean_latency(), 4),
                "avg_token_latency_ms": ms(metrics.avg_token_latency()),
                "mode_switches": metrics.num_mode_switches,
            }
        out[skew] = row
    return out


def test_fig19_scheduler_skew(benchmark, results):
    data = run_experiment()

    def one_decision():
        builder = SystemBuilder(num_adapters=4)
        engine = builder.build("v-lora")
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=4.0,
                               duration_s=2.0, seed=1)
        engine.submit(wl.generate())
        engine.step()

    benchmark.pedantic(one_decision, rounds=3, iterations=1)

    rows = []
    for skew, row in data.items():
        vl = row["v-lora"]["mean_latency_s"]
        rows.append([
            skew,
            *(f"{row[s]['mean_latency_s']}s" for s in SYSTEMS),
            " / ".join(
                reduction(vl, row[s]["mean_latency_s"])
                for s in SYSTEMS[1:]
            ),
        ])
    results.print_table(
        "Fig 19: scheduler latency under skew "
        "(paper: V-LoRA -33% merge-only, -59% unmerge-only, -21% dLoRA)",
        ["skew", *SYSTEMS, "V-LoRA reduction (mrg/unm/dLoRA)"], rows,
    )
    results.save("fig19_scheduler_skew", {str(k): v for k, v in data.items()})

    # V-LoRA is never worse than any alternative at any skew (small
    # tolerance for jitter), and strictly better on aggregate.
    for skew, row in data.items():
        vl = row["v-lora"]["mean_latency_s"]
        for s in SYSTEMS[1:]:
            assert vl <= row[s]["mean_latency_s"] * 1.05, (skew, s)
    for s in SYSTEMS[1:]:
        total_vl = sum(data[k]["v-lora"]["mean_latency_s"] for k in SKEWS)
        total_s = sum(data[k][s]["mean_latency_s"] for k in SKEWS)
        assert total_vl < total_s
    # merge-only switches far more than V-LoRA under low skew.
    assert data[0.3]["merge-only"]["mode_switches"] > \
        data[0.3]["v-lora"]["mode_switches"]
