"""Helpers shared by the benchmark files (kept importable as ``_common``)."""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Sequence

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


class ResultSink:
    """Pretty-prints and persists one experiment's output.

    Tables go to stdout *and* ``results/console.txt`` (pytest captures
    stdout of passing tests, so the file is the durable copy).
    """

    def __init__(self):
        RESULTS_DIR.mkdir(exist_ok=True)
        self.console_path = RESULTS_DIR / "console.txt"
        # One sink per bench session (the fixture is session-scoped):
        # start the console log fresh.
        self.console_path.write_text("")

    def save(self, experiment_id: str, payload: Dict) -> pathlib.Path:
        path = RESULTS_DIR / f"{experiment_id}.json"
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        return path

    def print_table(self, title: str, headers: Sequence[str],
                    rows: Sequence[Sequence]) -> None:
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
            else len(str(h))
            for i, h in enumerate(headers)
        ]
        line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
        chunk = [f"\n=== {title} ===", line, "-" * len(line)]
        for row in rows:
            chunk.append(
                "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
            )
        text = "\n".join(chunk)
        print(text)
        with open(self.console_path, "a") as fh:
            fh.write(text + "\n")


def reduction(vlora_value: float, baseline_value: float) -> str:
    """'-NN%' latency reduction string as the paper reports it."""
    if baseline_value <= 0:
        return "n/a"
    return f"-{(1.0 - vlora_value / baseline_value) * 100:.0f}%"


def ms(seconds: float) -> float:
    return round(seconds * 1e3, 3)
