"""Adapter-locality fleet routing — cache-state-aware placement at scale.

At S-LoRA scale (a thousand registered adapters, a few dozen GPU slots
per replica) the dominant dispatch cost is the adapter swap a
cache-miss dispatch forces, not queue depth.  This bench drives one
Zipf-skewed trace (1024 adapters, 8 replicas, 32 slots each — the hot
working set exceeds any single replica's slots but fits the fleet's)
through the three cluster dispatch policies:

* ``least-loaded`` — residency-blind: every replica's working set
  becomes the whole registry, so the fleet swaps constantly;
* ``adapter-affinity`` — crc32 hash pinning: perfect locality, but
  blind to load, so the Zipf head melts its home replicas' tails;
* ``locality`` — the fleet placement registry: consistent-hash homes
  with load-aware spill to adapter-resident replicas, hot-adapter
  replication, and load-bounded miss routing.

The contract: locality cuts total swap-ins to <= 0.6x least-loaded
(>= 40% less swap traffic) AND p99 TTFT to <= 0.8x least-loaded
(>= 20% better tail), while affinity's tail shows why locality without
load-awareness is not enough.  Terminals stay exactly-once under every
policy.

The headline rows run the synchronous-swap baseline engine (``s-lora``)
where the full wire time of every swap stalls the pipeline — the regime
where routing decides the tail.  A secondary table repeats the trace on
``v-lora`` engines (asynchronous overlapped swap) to show the swap-cut
carries over even when overlap already hides most of the stall.

Standalone mode (``python benchmarks/bench_locality.py``) writes
``BENCH_locality.json`` and exits non-zero on any contract break.
"""

from _common import ResultSink  # noqa: F401  (fixture lives in conftest)

from repro.core import SystemBuilder
from repro.runtime import AdapterPlacement, MultiGPUServer, reset_request_ids
from repro.workloads import RetrievalWorkload
from repro.workloads.skew import zipf_shares

NUM_ADAPTERS = 1024
NUM_GPUS = 8
GPU_SLOTS = 32
ADAPTER_RANK = 384
ZIPF_ALPHA = 1.0
ADAPTER_BURST = 4
RATE_RPS = 46.0
DURATION_S = 25.0
SEED = 0

#: Acceptance gates (the ISSUE's contract), vs least-loaded on the
#: synchronous-swap headline.
SWAP_GATE = 0.6         # locality swap-ins <= gate * least-loaded's
P99_GATE = 0.8          # locality p99 TTFT <= gate * least-loaded's

POLICIES = ("least-loaded", "adapter-affinity", "locality")


def _workload(adapter_ids, seed=SEED):
    """One Zipf-skewed retrieval trace shared by every policy run.

    ``zipf_shares`` puts the hot head on the low-index adapters; bursts
    of ``ADAPTER_BURST`` consecutive same-adapter requests model the
    per-stream locality real video workloads have (§6.1).
    """
    return RetrievalWorkload(
        adapter_ids,
        rate_rps=RATE_RPS,
        duration_s=DURATION_S,
        adapter_shares=zipf_shares(NUM_ADAPTERS, ZIPF_ALPHA),
        adapter_burst=ADAPTER_BURST,
        seed=seed,
    ).generate()


def _duplicate_terminals(requests, metrics):
    """Count of exactly-once violations (0 is the contract)."""
    rec_ids = [r.request_id for r in metrics.records]
    abort_ids = [a.request_id for a in metrics.aborts]
    dupes = (len(rec_ids) - len(set(rec_ids))
             + len(abort_ids) - len(set(abort_ids))
             + len(set(rec_ids) & set(abort_ids)))
    missing = {r.request_id for r in requests} - set(rec_ids) - set(abort_ids)
    return dupes, len(missing)


def _run(dispatch, system):
    """One policy over the trace; identical control loop for all three.

    Every run gets an :class:`AdapterPlacement` attached — for the
    baselines it is inert (their dispatch never consults it) but it
    forces the same epoched control loop locality runs under, so the
    A/B isolates the routing decision itself.
    """
    reset_request_ids()
    builder = SystemBuilder(
        num_adapters=NUM_ADAPTERS,
        gpu_adapter_slots=GPU_SLOTS,
        adapter_rank=ADAPTER_RANK,
        max_batch_size=32,
    )
    server = MultiGPUServer.replicate(
        lambda: builder.build(system), NUM_GPUS,
        dispatch=dispatch, placement=AdapterPlacement(),
    )
    requests = _workload(builder.adapter_ids)
    server.submit(requests)
    metrics = server.run()
    summary = metrics.summary()
    dupes, lost = _duplicate_terminals(requests, metrics)
    return {
        "submitted": len(requests),
        "completed": metrics.num_completed,
        "aborted": metrics.num_aborted,
        "swap_ins": int(summary.get("swap_ins", 0)),
        "swap_in_seconds": round(summary.get("swap_in_seconds", 0.0), 3),
        "adapter_cache_hit_ratio": round(
            summary.get("adapter_cache_hit_ratio", 1.0), 4),
        "placement_spills": int(summary.get("placement_spills", 0)),
        "placement_replications": int(
            summary.get("placement_replications", 0)),
        "p50_ttft_s": round(metrics.ttft_percentile(50.0), 4),
        "p99_ttft_s": round(metrics.ttft_percentile(99.0), 4),
        "p99_latency_s": round(metrics.latency_percentile(99.0), 4),
        "iterations": metrics.iterations,
        "duplicate_terminals": dupes,
        "lost_requests": lost,
    }


def run_locality_bench():
    data = {
        "headline": {d: _run(d, "s-lora") for d in POLICIES},
        "async_swap": {d: _run(d, "v-lora") for d in POLICIES},
        "gates": {"swap_gate": SWAP_GATE, "p99_gate": P99_GATE},
        "scale": {
            "num_adapters": NUM_ADAPTERS,
            "num_gpus": NUM_GPUS,
            "gpu_adapter_slots": GPU_SLOTS,
            "adapter_rank": ADAPTER_RANK,
            "zipf_alpha": ZIPF_ALPHA,
            "adapter_burst": ADAPTER_BURST,
            "rate_rps": RATE_RPS,
            "duration_s": DURATION_S,
        },
        "seed": SEED,
    }
    return data


def _check(data):
    for table in ("headline", "async_swap"):
        for name, row in data[table].items():
            assert row["duplicate_terminals"] == 0, (table, name, row)
            assert row["lost_requests"] == 0, (table, name, row)
            assert (row["completed"] + row["aborted"]
                    == row["submitted"]), (table, name, row)

    head = data["headline"]
    ll, loc = head["least-loaded"], head["locality"]
    swap_ratio = loc["swap_ins"] / max(ll["swap_ins"], 1)
    p99_ratio = loc["p99_ttft_s"] / max(ll["p99_ttft_s"], 1e-9)
    assert swap_ratio <= SWAP_GATE, (
        f"locality swap-ins {loc['swap_ins']} vs least-loaded "
        f"{ll['swap_ins']}: ratio {swap_ratio:.2f} > gate {SWAP_GATE}")
    assert p99_ratio <= P99_GATE, (
        f"locality p99 TTFT {loc['p99_ttft_s']}s vs least-loaded "
        f"{ll['p99_ttft_s']}s: ratio {p99_ratio:.2f} > gate {P99_GATE}")
    # Locality must beat blind hashing's tail: load-awareness is the
    # half affinity is missing.
    aff = head["adapter-affinity"]
    assert loc["p99_ttft_s"] < aff["p99_ttft_s"], (loc, aff)

    # The swap cut carries over to the async-overlap engine too.
    a_ll = data["async_swap"]["least-loaded"]
    a_loc = data["async_swap"]["locality"]
    assert a_loc["swap_ins"] < a_ll["swap_ins"], (a_loc, a_ll)


def _rows(table):
    return [
        [name, r["completed"], r["swap_ins"], r["swap_in_seconds"],
         r["adapter_cache_hit_ratio"], r["placement_spills"],
         r["p50_ttft_s"], r["p99_ttft_s"]]
        for name, r in table.items()
    ]


def test_adapter_locality_routing(results):
    data = run_locality_bench()
    _check(data)
    headers = ["policy", "done", "swaps", "stall_s", "hit", "spills",
               "p50_ttft", "p99_ttft"]
    results.print_table(
        f"adapter-locality routing: {NUM_ADAPTERS} adapters, "
        f"{NUM_GPUS}x{GPU_SLOTS} slots, Zipf a={ZIPF_ALPHA}, "
        f"{RATE_RPS:.0f} rps (sync swap)",
        headers, _rows(data["headline"]),
    )
    results.print_table(
        "same trace, async overlapped swap (v-lora)",
        headers, _rows(data["async_swap"]),
    )
    results.save("adapter_locality_routing", data)


def main() -> int:
    """Standalone entry for CI: dump results, fail on contract breaks."""
    import json
    import sys

    payload = run_locality_bench()
    with open("BENCH_locality.json", "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    print(json.dumps(payload, indent=1, sort_keys=True))
    print("wrote BENCH_locality.json")
    try:
        _check(payload)
    except AssertionError as exc:
        print(f"acceptance check failed: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
