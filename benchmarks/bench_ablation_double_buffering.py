"""Ablation (Appendix A) — ATMM's double-buffered pipelining.

ATMM allocates two staging buffers per tile so the next tile's loads
overlap the current tile's math.  This ablation re-runs the tiling
search with double buffering disabled everywhere and compares the best
achievable latency per shape — isolating how much of ATMM's win is the
pipeline versus the adaptive tile choice itself.
"""

import dataclasses

from _common import ms

from repro.hardware import A100_80GB
from repro.kernels import GemmCostModel, GemmShape, TilingSearch

SHAPES = {
    "decode (32x4096x64)": GemmShape(32, 4096, 64),
    "prefill (2048x4096x64)": GemmShape(2048, 4096, 64),
    "expand (2048x64x4096)": GemmShape(2048, 64, 4096),
    "delta-W (4096x64x4096)": GemmShape(4096, 64, 4096),
}


def run_experiment():
    cm = GemmCostModel(A100_80GB)
    search = TilingSearch(A100_80GB, coarse=True)
    single_configs = [
        dataclasses.replace(c, double_buffered=False)
        for c in search.configs
    ]
    out = {}
    for label, shape in SHAPES.items():
        best_db = min(cm.gemm_seconds(shape, c) for c in search.configs)
        best_single = min(
            cm.gemm_seconds(shape, c) for c in single_configs
        )
        out[label] = {
            "double_buffered_us": round(best_db * 1e6, 2),
            "single_buffered_us": round(best_single * 1e6, 2),
            "speedup_x": round(best_single / best_db, 2),
        }
    return out


def test_ablation_double_buffering(benchmark, results):
    data = run_experiment()

    cm = GemmCostModel(A100_80GB)
    from repro.kernels import CONFIG_2
    benchmark(cm._gemm_seconds, SHAPES["prefill (2048x4096x64)"], CONFIG_2)

    rows = [
        [label, d["double_buffered_us"], d["single_buffered_us"],
         f"{d['speedup_x']}x"]
        for label, d in data.items()
    ]
    results.print_table(
        "Appendix A ablation: double-buffered vs single-buffered ATMM "
        "(best config per shape)",
        ["shape", "double-buffered us", "single-buffered us", "speedup"],
        rows,
    )
    results.save("ablation_double_buffering", data)

    # Double buffering never hurts and visibly helps at least one shape.
    assert all(d["speedup_x"] >= 1.0 for d in data.values())
    assert max(d["speedup_x"] for d in data.values()) > 1.1
