"""Ablation — sensitivity of Algorithm 1 to the starvation tolerance θ.

θ gates when starving requests force the scheduler out of merged mode
(§4.4.3).  Too small: constant mixture/unmerged execution (overhead like
unmerge-only).  Too large: minority-adapter requests starve behind the
merged majority.  The sweep shows a broad healthy middle — the design
choice DESIGN.md calls out.
"""

import numpy as np

from _common import ms

from repro.core import SystemBuilder
from repro.workloads import RetrievalWorkload

THETAS = (0.05, 0.2, 0.5, 1.0, 3.0, 10.0)


def run_experiment():
    out = {}
    for theta in THETAS:
        builder = SystemBuilder(num_adapters=8, theta=theta)
        engine = builder.build("v-lora")
        wl = RetrievalWorkload(
            builder.adapter_ids, rate_rps=12.0, duration_s=25.0,
            top_adapter_share=0.7, use_task_heads=False, seed=7,
        )
        engine.submit(wl.generate())
        metrics = engine.run()
        by_adapter = metrics.by_adapter()
        minority = [
            r.latency for a, recs in by_adapter.items()
            if a != "lora-0" for r in recs
        ]
        out[theta] = {
            "mean_latency_s": round(metrics.mean_latency(), 4),
            "p99_latency_s": round(metrics.latency_percentile(99), 4),
            "minority_mean_latency_s": round(float(np.mean(minority)), 4),
            "mode_switches": metrics.num_mode_switches,
        }
    return out


def test_ablation_theta(benchmark, results):
    data = run_experiment()

    from repro.runtime.scheduler import SchedulingContext, VLoRAPolicy
    from repro.runtime import InferenceMode, Request
    policy = VLoRAPolicy(theta=0.5)
    reqs = [Request(adapter_id=f"a{i % 3}", arrival_time=0.0,
                    input_tokens=64, output_tokens=4) for i in range(32)]
    ctx = SchedulingContext(
        now=1.0, current_mode=InferenceMode.UNMERGED, current_merged=None,
        max_batch_size=16, est_iteration_seconds=0.02,
        est_switch_seconds=0.005,
    )
    benchmark(policy.schedule, reqs, ctx)

    rows = [
        [theta, d["mean_latency_s"], d["p99_latency_s"],
         d["minority_mean_latency_s"], d["mode_switches"]]
        for theta, d in data.items()
    ]
    results.print_table(
        "Algorithm 1 θ sensitivity (70% skew, 12 rps)",
        ["theta (s)", "mean lat", "p99 lat", "minority mean lat",
         "switches"],
        rows,
    )
    results.save("ablation_theta", {str(k): v for k, v in data.items()})

    # The default (0.5) sits in the healthy region: within 15% of the
    # best mean latency over the sweep.
    best = min(d["mean_latency_s"] for d in data.values())
    assert data[0.5]["mean_latency_s"] < 1.15 * best
    # A huge θ lets the minority starve relative to a moderate one.
    assert data[10.0]["minority_mean_latency_s"] >= \
        data[0.5]["minority_mean_latency_s"] * 0.9
