"""Shared fixtures for the per-figure/table benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation:
it runs the experiment on the simulated clock, prints the same
rows/series the paper reports, writes them to ``results/<id>.json``, and
times a representative unit of the system under pytest-benchmark.

Run them all with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from _common import ResultSink


@pytest.fixture(scope="session")
def results():
    return ResultSink()
