"""Gray-failure detection — the φ frontier under partition storms.

The φ-accrual detector trades **detection latency** against **duplicate
work**: a low ``phi_confirm`` seizes a silent replica's lease quickly
(real deaths detected fast) but confirms transient partitions as dead —
their in-flight work is re-dispatched and the partitioned replica's
late results arrive as fenced duplicates.  A high ``phi_confirm`` waits
out the partitions but leaves a truly dead replica's work stranded for
seconds.

This bench drives one fixed storm — two transient partitions, one
heartbeat-loss window, and one true engine death — through the same
3-replica cluster at several ``phi_confirm`` thresholds and charts the
frontier: confirmed-death latency vs fenced (zombie) completions and
false suspicions.  At every point on the frontier the lease fence must
hold **exactly-once delivery**: no request may ever reach two terminal
states, no matter how aggressively the detector confirms.

Standalone mode (``python benchmarks/bench_partition.py [--small]``)
writes ``BENCH_partition.json`` and exits non-zero when any swept
threshold produces a duplicate terminal or the frontier inverts
(CI chaos smoke).
"""

from _common import ResultSink  # noqa: F401  (fixture lives in conftest)

from repro.core import SystemBuilder
from repro.runtime import (
    FailureDetector,
    FailureDetectorConfig,
    FaultInjector,
    FaultKind,
    FaultSpec,
    MultiGPUServer,
    reset_request_ids,
)
from repro.workloads import RetrievalWorkload

ADAPTERS = 4
RATE_RPS = 16.0
DURATION_S = 6.0
NUM_GPUS = 3
NUM_HOSTS = 2
SEED = 0

#: Swept confirmation thresholds (the frontier's x-axis).  8.0 is the
#: runtime default; ``phi_suspect`` stays strictly below each point.
PHI_CONFIRMS = (2.0, 4.0, 8.0)
DEFAULT_PHI_CONFIRM = 8.0


def _storm(scale=1.0):
    """One fixed gray-failure storm (times scale with the workload).

    gpu-1 partitions long enough that aggressive thresholds confirm it
    dead while it keeps computing (zombie replay); gpu-2's partition is
    short (false suspicion that heals); gpu-0 drops heartbeats for a
    while (monitoring-path loss only) and then *actually* dies — the
    one event whose detection latency the frontier measures.
    """
    return FaultInjector([
        FaultSpec(FaultKind.NETWORK_PARTITION, 1.0 * scale, 2.5 * scale,
                  target="gpu-1"),
        FaultSpec(FaultKind.NETWORK_PARTITION, 4.0 * scale, 0.8 * scale,
                  target="gpu-2"),
        FaultSpec(FaultKind.HEARTBEAT_LOSS, 2.0 * scale, 1.0 * scale,
                  target="gpu-0"),
        FaultSpec(FaultKind.ENGINE_FAIL, 5.0 * scale, target="gpu-0"),
    ])


def _workload(scale=1.0, seed=SEED):
    return RetrievalWorkload(
        adapter_ids=[f"lora-{i}" for i in range(ADAPTERS)],
        rate_rps=RATE_RPS,
        duration_s=DURATION_S * scale,
        use_task_heads=False,
        slo_s=None,
        seed=seed,
    ).generate()


def _duplicate_terminals(requests, metrics):
    """Count of exactly-once violations (0 is the contract)."""
    rec_ids = [r.request_id for r in metrics.records]
    abort_ids = [a.request_id for a in metrics.aborts]
    dupes = (len(rec_ids) - len(set(rec_ids))
             + len(abort_ids) - len(set(abort_ids))
             + len(set(rec_ids) & set(abort_ids)))
    missing = {r.request_id for r in requests} - set(rec_ids) - set(abort_ids)
    return dupes, len(missing)


def run_phi_sweep(scale=1.0, seed=SEED):
    rows = []
    for phi_confirm in PHI_CONFIRMS:
        reset_request_ids()
        builder = SystemBuilder(num_adapters=ADAPTERS, max_batch_size=8,
                                fault_injector=_storm(scale))
        detector = FailureDetector(FailureDetectorConfig(
            phi_suspect=min(2.0, phi_confirm / 2.0),
            phi_confirm=phi_confirm,
        ))
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), NUM_GPUS,
            detector=detector, num_hosts=NUM_HOSTS, max_requeues=4,
        )
        requests = _workload(scale=scale, seed=seed)
        server.submit(requests)
        metrics = server.run()
        dupes, lost = _duplicate_terminals(requests, metrics)
        lat = metrics.detection_latencies
        rows.append({
            "phi_confirm": phi_confirm,
            "submitted": len(requests),
            "completed": metrics.num_completed,
            "aborted": metrics.num_aborted,
            "suspicions": metrics.suspicions,
            "false_suspicions": metrics.false_suspicions,
            "confirmed_dead": len(lat),
            "detection_latency_s": round(min(lat), 4) if lat else None,
            "fenced_completions": metrics.fenced_completions,
            "partition_heals": metrics.partition_heals,
            "failover_events": metrics.failover_events,
            "duplicate_terminals": dupes,
            "lost_requests": lost,
        })
    return {"rows": rows, "scale": scale, "seed": seed,
            "default_phi_confirm": DEFAULT_PHI_CONFIRM}


def _check(data):
    """The acceptance criteria; raises AssertionError on regression."""
    rows = data["rows"]
    assert len(rows) >= 3, "frontier needs >= 3 swept thresholds"
    # Exactly-once is unconditional: every threshold, zero duplicates.
    for row in rows:
        assert row["duplicate_terminals"] == 0, row
        assert row["lost_requests"] == 0, row
    # The true death is detected at every threshold...
    for row in rows:
        assert row["confirmed_dead"] >= 1, row
    # ...and detecting it costs more latency as phi_confirm rises.
    lats = [row["detection_latency_s"] for row in rows]
    assert lats == sorted(lats), lats
    # Aggressive confirmation of the long partition produces zombie
    # replay, and all of it is fenced.
    assert rows[0]["fenced_completions"] > 0, rows[0]
    # The default threshold rides out the monitoring-path faults.
    default = next(r for r in rows
                   if r["phi_confirm"] == data["default_phi_confirm"])
    assert default["duplicate_terminals"] == 0, default


def test_partition_phi_frontier(results):
    data = run_phi_sweep()
    _check(data)
    results.print_table(
        f"gray-failure frontier: {NUM_GPUS} replicas / {NUM_HOSTS} hosts, "
        f"partition storm + 1 true death, {RATE_RPS:.0f} rps",
        ["phi_conf", "done", "aborted", "susp", "false", "det_lat_s",
         "fenced", "dupes"],
        [[r["phi_confirm"], r["completed"], r["aborted"], r["suspicions"],
          r["false_suspicions"], r["detection_latency_s"],
          r["fenced_completions"], r["duplicate_terminals"]]
         for r in data["rows"]],
    )
    results.save("partition_phi_frontier", data)


def main() -> int:
    """Standalone entry for CI: dump results, fail on contract breaks."""
    import json
    import sys

    scale = 0.5 if "--small" in sys.argv[1:] else 1.0
    payload = run_phi_sweep(scale=scale)
    with open("BENCH_partition.json", "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    print(json.dumps(payload, indent=1, sort_keys=True))
    print("wrote BENCH_partition.json")
    try:
        _check(payload)
    except AssertionError as exc:
        print(f"acceptance check failed: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
