"""Kernel-search bench: vectorized ATMM tiling search + persistent store.

Not a paper figure — this measures the repro's stand-in for the paper's
CUTLASS-profiler sweep (§4.3.2, Algorithm 2) and its ahead-of-time
kernel store (§5), at the exact configuration ``default_table()`` uses
in every serving engine (A100-80GB, hidden dim 4096, ranks
{16, 32, 64, 128}, M up to 16384, coarse space):

* **search**: full table build via the seed's scalar ``shapes x
  configs`` double loop vs the batched-numpy path with ε-dominance
  pruning.  Winners, latencies, and the fallback must be identical
  entry-for-entry (``winners_identical``); the vectorized build must be
  >= 10x faster end to end (construction + sweep).
* **store**: cold save + warm load of the searched table through
  :class:`~repro.kernels.store.KernelTableStore`.  The warm load must
  beat *any* search — including the vectorized one — by >= 50x.
* **lookup**: the runtime O(1) path (bit-trick ``bucket_m`` + memo),
  reported as ns/lookup.

Any divergence raises, so the perf-smoke CI job fails if the vectorized
winners ever drift from the scalar reference.  Results land in
``BENCH_kernel_search.json`` at the repo root (plus
``results/kernel_search.json`` under pytest).  Run directly with
``python benchmarks/bench_kernel_search.py``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import time
from typing import Dict, List, Optional

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.hardware.gpu import get_gpu
from repro.kernels.search import OptimalTilingTable, TilingSearch
from repro.kernels.shapes import GemmShape
from repro.kernels.store import KernelTableStore, table_fingerprint

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_kernel_search.json"

#: The exact ``default_table()`` configuration.
GPU_NAME = "A100-80GB"
HIDDEN_DIMS = (4096,)
RANKS = (16, 32, 64, 128)
MAX_M = 16384
COARSE = True

SEARCH_REPEATS = 3
LOAD_REPEATS = 5
SPEEDUP_FLOOR = 10.0
WARM_LOAD_FLOOR = 50.0


def _build_table(gpu, vectorize: bool):
    """One end-to-end table build (construction + sweep), timed."""
    start = time.perf_counter()
    search = TilingSearch(gpu, coarse=COARSE)
    pairs = search.kn_pairs_for_model(HIDDEN_DIMS, RANKS)
    extra = [GemmShape(d, r, d) for d in HIDDEN_DIMS for r in RANKS]
    table, report = search.search(pairs, max_m=MAX_M, extra_shapes=extra,
                                  vectorize=vectorize)
    wall = time.perf_counter() - start
    return wall, table, report


def _tables_identical(a: OptimalTilingTable, b: OptimalTilingTable) -> bool:
    return (a._table == b._table and a._latency == b._latency
            and a.fallback == b.fallback)


def run_search_bench(gpu) -> Dict[str, object]:
    # Warm numpy (first ufunc dispatch pays one-time import costs that
    # would otherwise be billed to whichever variant runs first).
    _build_table(gpu, vectorize=True)

    walls = {"scalar": [], "vectorized": []}
    tables = {}
    report = None
    for _ in range(SEARCH_REPEATS):
        wall, table, _ = _build_table(gpu, vectorize=False)
        walls["scalar"].append(wall)
        tables["scalar"] = table
        wall, table, report = _build_table(gpu, vectorize=True)
        walls["vectorized"].append(wall)
        tables["vectorized"] = table

    identical = _tables_identical(tables["scalar"], tables["vectorized"])
    if not identical:
        diverged = [
            key for key in tables["scalar"]._table
            if tables["scalar"]._table.get(key)
            != tables["vectorized"]._table.get(key)
            or tables["scalar"]._latency.get(key)
            != tables["vectorized"]._latency.get(key)
        ]
        raise AssertionError(
            f"vectorized winners diverged from scalar for "
            f"{len(diverged)} of {len(tables['scalar']._table)} shapes: "
            f"{diverged[:5]}"
        )
    scalar = min(walls["scalar"])
    vectorized = min(walls["vectorized"])
    return {
        "num_shapes": report.num_shapes,
        "num_configs": report.num_configs,
        "num_profiles": report.num_profiles,
        "num_evals": report.num_evals,
        "pruned_configs": report.pruned_configs,
        "entries": len(tables["vectorized"]),
        "wall_seconds": {
            "scalar": round(scalar, 4),
            "vectorized": round(vectorized, 4),
        },
        "speedup": round(scalar / vectorized, 1),
        "winners_identical": True,
    }, tables["vectorized"], min(scalar, vectorized)


def run_store_bench(gpu, table: OptimalTilingTable,
                    min_search_s: float) -> Dict[str, object]:
    fingerprint = table_fingerprint(gpu, HIDDEN_DIMS, RANKS, MAX_M, COARSE)
    with tempfile.TemporaryDirectory(prefix="kernel-store-") as tmp:
        store = KernelTableStore(tmp)
        start = time.perf_counter()
        path = store.save(fingerprint, table, meta={"gpu": gpu.name})
        cold_save = time.perf_counter() - start
        size = path.stat().st_size

        loads = []
        loaded = None
        for _ in range(LOAD_REPEATS):
            start = time.perf_counter()
            loaded = store.load(fingerprint)
            loads.append(time.perf_counter() - start)
        warm_load = min(loads)
        if loaded is None or not _tables_identical(loaded, table):
            raise AssertionError("store round-trip changed the table")
    return {
        "file_bytes": size,
        "cold_save_ms": round(cold_save * 1e3, 3),
        "warm_load_ms": round(warm_load * 1e3, 3),
        "load_speedup_vs_search": round(min_search_s / warm_load, 1),
        "roundtrip_identical": True,
    }


def run_lookup_bench(table: OptimalTilingTable,
                     iters: int = 20_000) -> Dict[str, object]:
    shapes = [(m, 4096, r) for m in (1, 17, 300, 4096) for r in RANKS]
    start = time.perf_counter()
    for i in range(iters):
        m, k, n = shapes[i % len(shapes)]
        table.lookup(m, k, n)
    wall = time.perf_counter() - start
    return {
        "iterations": iters,
        "ns_per_lookup": round(wall / iters * 1e9, 1),
    }


def run_bench() -> Dict[str, object]:
    gpu = get_gpu(GPU_NAME)
    search_payload, table, min_search_s = run_search_bench(gpu)
    payload = {
        "bench": "kernel_search",
        "gpu": GPU_NAME,
        "hidden_dims": list(HIDDEN_DIMS),
        "ranks": list(RANKS),
        "max_m": MAX_M,
        "coarse": COARSE,
        "search": search_payload,
        "store": run_store_bench(gpu, table, min_search_s),
        "lookup": run_lookup_bench(table),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def _print_payload(payload: Dict[str, object]) -> None:
    search = payload["search"]
    store = payload["store"]
    lookup = payload["lookup"]
    print(f"search grid: {search['num_shapes']} shapes x "
          f"{search['num_configs']} configs "
          f"({search['num_evals']} of {search['num_profiles']} cells "
          f"evaluated after pruning)")
    print(f"  scalar     {search['wall_seconds']['scalar'] * 1e3:>9.1f} ms")
    print(f"  vectorized {search['wall_seconds']['vectorized'] * 1e3:>9.1f} ms")
    print(f"  speedup: {search['speedup']}x "
          f"(winners identical: {search['winners_identical']})")
    print(f"store: {store['file_bytes']}B file, "
          f"save {store['cold_save_ms']} ms, "
          f"warm load {store['warm_load_ms']} ms "
          f"({store['load_speedup_vs_search']}x faster than any search)")
    print(f"lookup: {lookup['ns_per_lookup']} ns")
    print(f"wrote {OUT_PATH}")


def _assert_floors(payload: Dict[str, object]) -> None:
    speedup = payload["search"]["speedup"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized search speedup {speedup}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
    load_speedup = payload["store"]["load_speedup_vs_search"]
    assert load_speedup >= WARM_LOAD_FLOOR, (
        f"warm store load only {load_speedup}x faster than search; "
        f"floor is {WARM_LOAD_FLOOR}x"
    )


def test_kernel_search(benchmark, results):
    payload = run_bench()
    _print_payload(payload)
    _assert_floors(payload)
    results.print_table(
        "ATMM tiling search (full default_table build)",
        ["path", "wall (ms)"],
        [["scalar", payload["search"]["wall_seconds"]["scalar"] * 1e3],
         ["vectorized", payload["search"]["wall_seconds"]["vectorized"] * 1e3],
         ["store warm load", payload["store"]["warm_load_ms"]]],
    )
    results.save("kernel_search", payload)

    gpu = get_gpu(GPU_NAME)
    search = TilingSearch(gpu, coarse=COARSE)
    pairs = search.kn_pairs_for_model(HIDDEN_DIMS, RANKS)
    table, _ = search.search(pairs, max_m=MAX_M)
    benchmark.pedantic(lambda: table.lookup(300, 4096, 64),
                       rounds=3, iterations=1000)


def main(argv: Optional[List[str]] = None) -> int:
    payload = run_bench()
    _print_payload(payload)
    _assert_floors(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
