"""Ablation — per-request vs batched prefill (the Punica runtime model).

Our Punica system model prefills one request per iteration (its
decode-centric BGMV design); every other system batches co-arriving
prefills vLLM-style.  This ablation isolates that modeling choice on an
otherwise identical engine so its contribution to Fig. 14's gaps is
visible and auditable.
"""

from _common import ms

from repro.core import SystemBuilder
from repro.runtime.engine import EngineConfig
from repro.workloads import RetrievalWorkload


def _engine(builder, batch_prefills: bool):
    engine = builder.build("punica")
    engine.config = EngineConfig(
        max_batch_size=engine.config.max_batch_size,
        num_projections=engine.config.num_projections,
        enable_prefix_reuse=False,
        jitter_seed=engine.config.jitter_seed,
        batch_prefills=batch_prefills,
    )
    return engine


def run_experiment():
    builder = SystemBuilder(num_adapters=8)
    out = {}
    for rate in (6.0, 12.0):
        row = {}
        for batched in (True, False):
            engine = _engine(builder, batched)
            wl = RetrievalWorkload(builder.adapter_ids, rate_rps=rate,
                                   duration_s=20.0,
                                   use_task_heads=False, seed=41)
            engine.submit(wl.generate())
            metrics = engine.run()
            key = "batched_prefill" if batched else "per_request_prefill"
            row[key] = {
                "avg_token_latency_ms": ms(metrics.avg_token_latency()),
                "mean_ttft_s": round(metrics.mean_ttft(), 4),
            }
        row["ttft_penalty_x"] = round(
            row["per_request_prefill"]["mean_ttft_s"]
            / row["batched_prefill"]["mean_ttft_s"], 2
        )
        out[rate] = row
    return out


def test_ablation_prefill_batching(benchmark, results):
    data = run_experiment()

    from repro.hardware import A100_80GB
    from repro.models import QWEN_VL_7B, IterationCostModel
    costs = IterationCostModel(QWEN_VL_7B, A100_80GB)
    benchmark(costs.prefill_seconds, [256, 256, 256, 256])

    rows = [
        [rate,
         row["batched_prefill"]["avg_token_latency_ms"],
         row["per_request_prefill"]["avg_token_latency_ms"],
         f"{row['ttft_penalty_x']}x"]
        for rate, row in data.items()
    ]
    results.print_table(
        "Ablation: batched vs per-request prefill (Punica runtime model)",
        ["rate rps", "batched (ms/tok)", "per-request (ms/tok)",
         "TTFT penalty"],
        rows,
    )
    results.save("ablation_prefill_batching",
                 {str(k): v for k, v in data.items()})

    for rate, row in data.items():
        assert row["per_request_prefill"]["avg_token_latency_ms"] >= \
            row["batched_prefill"]["avg_token_latency_ms"] * 0.98
    # The penalty grows with load (more co-arriving prefills to serialize).
    assert data[12.0]["ttft_penalty_x"] >= data[6.0]["ttft_penalty_x"] * 0.9
