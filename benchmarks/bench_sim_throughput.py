"""Simulator scale-out bench: memoized engine + parallel sweeps.

Not a paper figure — this measures the simulator itself, in simulated
requests per wall-clock second, so the evaluation suite can scale to
million-request traces:

* **engine**: one 50k-request Azure-shaped retrieval trace (bursty
  arrivals at ~1.5x capacity, so the backlog deepens the way long
  traces do) served by the vectorized SoA core
  (:class:`~repro.runtime.soa_core.SoAServingEngine`), the current
  object engine (cost memoization + incremental queue/active-set
  state), and the pre-optimization seed snapshot
  (``_legacy_engine.SeedServingEngine``).  All must produce identical
  metrics to full float precision; at full scale the object engine
  must be >= 5x faster than the seed and the SoA core >= 10x.
* **sweep**: the Fig 14 retrieval grid (4 systems x 4 rates) run
  serially and with ``SweepRunner(parallel=4)``.  Cell metrics must be
  identical; the parallel run must be >= 3x faster.
* **engine_10m** (opt-in: ``--ten-million`` / ``BENCH_SIM_10M=1``): a
  10M-request Azure-shaped trace streamed through
  :meth:`AzureLLMTrace.event_blocks` into
  :meth:`SoAServingEngine.submit_arrays` with
  ``materialize_records=False`` — headline numbers come from
  :meth:`array_summary`, no per-request Python objects anywhere.

Results land in ``BENCH_sim_throughput.json`` at the repo root (plus
``results/sim_throughput.json`` when run under pytest).  Scale knobs:

* script: ``python benchmarks/bench_sim_throughput.py [num_requests]``
  (default 50000 — the acceptance configuration, a few minutes of
  seed-engine wall clock);
* pytest / CI smoke: ``BENCH_SIM_REQUESTS`` env var (default 4000 so
  the suite stays quick); speedup floors are only asserted at full
  scale.
"""

from __future__ import annotations

import json
import os
import pathlib
import resource
import sys
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _legacy_engine import SeedServingEngine

from repro.analysis.sweep import SweepRunner
from repro.core.builder import SystemBuilder
from repro.runtime.request import Request, reset_request_ids
from repro.runtime.soa_core import SoAServingEngine
from repro.workloads.retrieval import RetrievalWorkload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_sim_throughput.json"

FULL_SCALE_REQUESTS = 50_000
#: ~1.5x the 8-adapter v-lora capacity (~8 rps): the backlog grows for
#: the whole arrival window, which is what makes long traces expensive.
ENGINE_RATE_RPS = 12.0
SWEEP_RATES = (2.0, 6.0, 10.0, 14.0)
SWEEP_SYSTEMS = ("v-lora", "s-lora", "punica", "dlora")
SWEEP_DURATION_S = 40.0
SWEEP_PARALLEL = 4
SEED = 14


def _comparable_summary(metrics) -> Dict[str, float]:
    """Metrics summary minus the cache's own observability counters."""
    summary = metrics.summary()
    summary.pop("cost_cache_hits", None)
    summary.pop("cost_cache_misses", None)
    return summary


def _generate_trace(builder: SystemBuilder, num_requests: int,
                    ) -> List[Request]:
    """A deterministic Azure-shaped trace of exactly ``num_requests``."""
    duration_s = num_requests / ENGINE_RATE_RPS * 1.1
    reset_request_ids()
    requests = RetrievalWorkload(
        builder.adapter_ids, rate_rps=ENGINE_RATE_RPS,
        duration_s=duration_s, use_task_heads=True, seed=SEED,
    ).generate()
    if len(requests) < num_requests:
        raise RuntimeError(
            f"trace too short: {len(requests)} < {num_requests}"
        )
    return requests[:num_requests]


def _peak_rss_mb() -> float:
    """Process-lifetime peak RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_engine(num_requests: int, engine_cls=None,
                enable_cost_cache: bool = True,
                ) -> Tuple[float, Dict[str, float], float]:
    """(wall seconds, comparable summary, peak RSS MiB) for one variant."""
    builder = SystemBuilder(num_adapters=8,
                            enable_cost_cache=enable_cost_cache)
    requests = _generate_trace(builder, num_requests)
    engine = builder.build("v-lora", engine_cls=engine_cls)
    engine.submit(requests)
    start = time.perf_counter()
    metrics = engine.run()
    wall = time.perf_counter() - start
    return wall, _comparable_summary(metrics), _peak_rss_mb()


def run_engine_bench(num_requests: int) -> Dict[str, object]:
    # The SoA leg runs first so its recorded peak RSS is its own —
    # ru_maxrss is a process-lifetime high-water mark, so later legs
    # report max(own footprint, everything before them).
    variants = {
        "soa": dict(engine_cls=SoAServingEngine),
        "optimized": dict(),
        "cache_disabled": dict(enable_cost_cache=False),
        "seed": dict(engine_cls=SeedServingEngine),
    }
    walls: Dict[str, float] = {}
    summaries: Dict[str, Dict[str, float]] = {}
    rss: Dict[str, float] = {}
    for name, kwargs in variants.items():
        walls[name], summaries[name], rss[name] = _run_engine(
            num_requests, **kwargs)
    for name in ("soa", "cache_disabled", "seed"):
        if summaries[name] != summaries["optimized"]:
            diff = {
                k: (summaries["optimized"].get(k), summaries[name].get(k))
                for k in set(summaries["optimized"]) | set(summaries[name])
                if summaries["optimized"].get(k) != summaries[name].get(k)
            }
            raise AssertionError(
                f"metrics diverged between optimized and {name}: {diff}"
            )
    return {
        "num_requests": num_requests,
        "rate_rps": ENGINE_RATE_RPS,
        "wall_seconds": {k: round(v, 3) for k, v in walls.items()},
        "sim_requests_per_sec": {
            k: round(num_requests / v, 1) for k, v in walls.items()
        },
        "peak_rss_mb": {k: round(v, 1) for k, v in rss.items()},
        "speedup_vs_seed": {
            "optimized": round(walls["seed"] / walls["optimized"], 2),
            "soa": round(walls["seed"] / walls["soa"], 2),
        },
        "metrics_identical": True,
        "completed": summaries["optimized"]["completed"],
    }


def _sweep_factory(builder: SystemBuilder, duration_s: float):
    def factory(rate: float, system: str) -> List[Request]:
        return RetrievalWorkload(
            builder.adapter_ids, rate_rps=float(rate),
            duration_s=duration_s,
            use_task_heads=(system == "v-lora"), seed=SEED,
        ).generate()
    return factory


def _sweep_cells(result) -> List[Tuple[object, str, Dict[str, float]]]:
    return [(c.axis_value, c.system, _comparable_summary(c.metrics))
            for c in result.cells]


def run_sweep_bench(duration_s: float = SWEEP_DURATION_S,
                    ) -> Dict[str, object]:
    builder = SystemBuilder(num_adapters=8)
    runner = SweepRunner(builder, systems=SWEEP_SYSTEMS)
    factory = _sweep_factory(builder, duration_s)

    reset_request_ids()
    start = time.perf_counter()
    serial = runner.run("rate_rps", SWEEP_RATES, factory)
    serial_wall = time.perf_counter() - start

    reset_request_ids()
    start = time.perf_counter()
    parallel = runner.run("rate_rps", SWEEP_RATES, factory,
                          parallel=SWEEP_PARALLEL)
    parallel_wall = time.perf_counter() - start

    if _sweep_cells(serial) != _sweep_cells(parallel):
        raise AssertionError("parallel sweep diverged from serial sweep")
    mode = parallel.metadata.get("mode")
    payload = {
        "cells": len(serial.cells),
        "systems": list(SWEEP_SYSTEMS),
        "rates": list(SWEEP_RATES),
        "duration_s": duration_s,
        "parallel": SWEEP_PARALLEL,
        "wall_seconds": {
            "serial": round(serial_wall, 3),
            "parallel": round(parallel_wall, 3),
        },
        "cells_identical": True,
        # What the parallel=N request actually did (the runner
        # auto-degrades to serial on single-CPU hosts / tiny grids).
        "mode": mode,
        "degrade_reason": parallel.metadata.get("degrade_reason"),
    }
    # A serial-degraded "parallel" run is two serial runs; the ratio is
    # timing noise, not a speedup — don't report one.
    if mode == "parallel":
        payload["speedup"] = round(serial_wall / parallel_wall, 2)
    return payload


def run_ten_million_bench(num_requests: int = 10_000_000,
                          ) -> Dict[str, object]:
    """Stream a 10M-request Azure-shaped trace through the SoA core.

    No ``Request`` objects and no per-request records exist at any
    point: arrivals stream in as numpy blocks and results come out of
    :meth:`array_summary`.  Single-variant — the object core would take
    hours at this scale; the point is the recorded wall time.
    """
    import numpy as np

    from repro.workloads.azure import AzureTraceConfig, AzureTraceGenerator

    builder = SystemBuilder(num_adapters=8)
    engine = builder.build("v-lora", core="soa")
    engine.materialize_records = False
    trace = AzureTraceGenerator(AzureTraceConfig(
        rate_rps=ENGINE_RATE_RPS, seed=SEED))
    num_adapters = len(builder.adapter_ids)
    rng = np.random.default_rng(SEED)
    submit_wall = time.perf_counter()
    for block in trace.event_blocks(num_requests):
        n = block["arrival"].size
        engine.submit_arrays(
            rng.integers(0, num_adapters, size=n),
            block["arrival"],
            block["input_tokens"],
            # Task-head traffic (one decode round each) keeps the
            # workload classification-shaped, like the paper's vision
            # tasks; the trace's output lengths would make this a
            # multi-hour generation bench instead.
            np.ones(n, dtype=np.int64),
            use_task_head=True,
        )
    submit_wall = time.perf_counter() - submit_wall
    start = time.perf_counter()
    # ~0.76 engine iterations per request at this load; the default
    # 2M-iteration runaway guard is sized for 50k-request traces.
    engine.run(max_iterations=30_000_000)
    wall = time.perf_counter() - start
    summary = engine.array_summary()
    return {
        "num_requests": num_requests,
        "rate_rps": ENGINE_RATE_RPS,
        "submit_wall_seconds": round(submit_wall, 3),
        "run_wall_seconds": round(wall, 3),
        "sim_requests_per_sec": round(num_requests / wall, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "completed": summary["completed"],
        "aborted": summary["aborted"],
        "iterations": summary["iterations"],
    }


def run_bench(num_requests: int,
              ten_million: bool = False) -> Dict[str, object]:
    full_scale = num_requests >= FULL_SCALE_REQUESTS
    # The parallel sweep only expresses a wall-clock win when the host
    # actually has cores to fan out over; the cell-for-cell identity
    # check holds regardless.
    cpu_count = len(os.sched_getaffinity(0)) if hasattr(
        os, "sched_getaffinity") else (os.cpu_count() or 1)
    payload = {
        "bench": "sim_throughput",
        "full_scale": full_scale,
        "cpu_count": cpu_count,
        "engine": run_engine_bench(num_requests),
        "sweep": run_sweep_bench(
            duration_s=150.0 if full_scale else SWEEP_DURATION_S
        ),
    }
    if ten_million:
        payload["engine_10m"] = run_ten_million_bench()
    elif OUT_PATH.exists():
        # Keep the last recorded 10M leg: it's opt-in (tens of minutes)
        # and dropping it on every small rerun would lose the record.
        try:
            prior = json.loads(OUT_PATH.read_text())
            if "engine_10m" in prior:
                payload["engine_10m"] = prior["engine_10m"]
        except (ValueError, OSError):
            pass
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def _print_payload(payload: Dict[str, object]) -> None:
    engine = payload["engine"]
    sweep = payload["sweep"]
    print(f"engine trace: {engine['num_requests']} requests @ "
          f"{engine['rate_rps']} rps")
    for name, wall in engine["wall_seconds"].items():
        rps = engine["sim_requests_per_sec"][name]
        mb = engine["peak_rss_mb"][name]
        print(f"  {name:<16} {wall:>8.2f}s  {rps:>9.1f} sim req/s"
              f"  (rss <= {mb:.0f} MiB)")
    speedups = engine["speedup_vs_seed"]
    print(f"  speedup vs seed: soa {speedups['soa']}x, "
          f"optimized {speedups['optimized']}x "
          f"(metrics identical: {engine['metrics_identical']})")
    print(f"sweep grid: {sweep['cells']} cells, parallel={sweep['parallel']} "
          f"(mode: {sweep['mode']})")
    print(f"  serial   {sweep['wall_seconds']['serial']:>8.2f}s")
    print(f"  parallel {sweep['wall_seconds']['parallel']:>8.2f}s")
    if "speedup" in sweep:
        print(f"  speedup: {sweep['speedup']}x "
              f"(cells identical: {sweep['cells_identical']})")
    else:
        print(f"  (serial-degraded: no speedup reported; "
              f"cells identical: {sweep['cells_identical']})")
    ten = payload.get("engine_10m")
    if ten:
        print(f"10M-request SoA leg: {ten['run_wall_seconds']:.1f}s run "
              f"(+{ten['submit_wall_seconds']:.1f}s submit), "
              f"{ten['sim_requests_per_sec']:.0f} sim req/s, "
              f"rss <= {ten['peak_rss_mb']:.0f} MiB")
    print(f"wrote {OUT_PATH}")


def _assert_floors(payload: Dict[str, object]) -> None:
    speedups = payload["engine"]["speedup_vs_seed"]
    sweep_speedup = payload["sweep"].get("speedup")
    if not payload["full_scale"]:
        print(f"(small trace: speedup floors not asserted; "
              f"engine {speedups}, sweep {sweep_speedup})")
        return
    assert speedups["optimized"] >= 5.0, (
        f"object-engine speedup {speedups['optimized']}x below the 5x floor"
    )
    assert speedups["soa"] >= 10.0, (
        f"SoA-engine speedup {speedups['soa']}x below the 10x floor"
    )
    if payload["cpu_count"] >= SWEEP_PARALLEL:
        assert payload["sweep"]["mode"] == "parallel", (
            "sweep degraded to serial on a multi-core host"
        )
        assert sweep_speedup >= 3.0, (
            f"sweep speedup {sweep_speedup}x below the 3x floor"
        )
    else:
        print(f"(only {payload['cpu_count']} CPU(s): the 3x parallel-sweep "
              f"floor needs >= {SWEEP_PARALLEL} cores; "
              f"identity still asserted)")


def test_sim_throughput(benchmark, results):
    num_requests = int(os.environ.get("BENCH_SIM_REQUESTS", "4000"))
    payload = run_bench(
        num_requests, ten_million=bool(os.environ.get("BENCH_SIM_10M")))
    _print_payload(payload)
    _assert_floors(payload)
    results.print_table(
        "Simulator throughput (sim requests / wall second)",
        ["variant", "wall (s)", "sim req/s"],
        [[name, payload["engine"]["wall_seconds"][name],
          payload["engine"]["sim_requests_per_sec"][name]]
         for name in ("soa", "optimized", "cache_disabled", "seed")],
    )
    results.save("sim_throughput", payload)

    def one_iteration():
        builder = SystemBuilder(num_adapters=4)
        engine = builder.build("v-lora")
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=4.0,
                               duration_s=1.0, seed=0)
        engine.submit(wl.generate())
        engine.step()

    benchmark.pedantic(one_iteration, rounds=3, iterations=1)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    ten_million = "--ten-million" in argv
    if ten_million:
        argv.remove("--ten-million")
    if os.environ.get("BENCH_SIM_10M"):
        ten_million = True
    num_requests = int(argv[0]) if argv else FULL_SCALE_REQUESTS
    payload = run_bench(num_requests, ten_million=ten_million)
    _print_payload(payload)
    _assert_floors(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
