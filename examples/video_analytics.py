#!/usr/bin/env python3
"""Video analytics: multi-stream serving with vision task heads.

Each camera stream ingests one 30-frame chunk per second and issues
object-detection and video-understanding requests.  The example shows
the §4.2.2 effect: answering through the adapters' vision task heads
(one decode round) instead of the autoregressive LM head keeps 3-4
streams real-time on one simulated A100.

Run:  python examples/video_analytics.py [max_streams]
"""

import sys

from repro import SystemBuilder, VideoAnalyticsWorkload


def serve(builder, streams: int, use_heads: bool):
    engine = builder.build("v-lora")
    workload = VideoAnalyticsWorkload(
        builder.adapter_ids, num_streams=streams, duration_s=30.0,
        use_task_heads=use_heads, seed=5,
    )
    engine.submit(workload.generate())
    return engine.run()


def main(max_streams: int) -> None:
    builder = SystemBuilder(num_adapters=4)
    print(f"model={builder.model.name}  chunk=30 frames/s/stream  "
          "(det on 4 sampled frames + 1 video-understanding per chunk)\n")
    print(f"{'streams':>8} | {'LM head p90':>12} | {'task head p90':>14} "
          f"| {'cut':>6} | real-time?")
    print("-" * 64)
    for streams in range(1, max_streams + 1):
        lm = serve(builder, streams, use_heads=False)
        head = serve(builder, streams, use_heads=True)
        p90_lm = lm.latency_percentile(90)
        p90_head = head.latency_percentile(90)
        cut = 100 * (1 - head.mean_latency() / lm.mean_latency())
        realtime = "yes" if p90_head < 1.0 else "NO"
        print(f"{streams:>8} | {p90_lm * 1e3:>10.1f}ms | "
              f"{p90_head * 1e3:>12.1f}ms | {cut:>5.1f}% | {realtime}")
    print("\n(real-time = p90 end-to-end latency within the 1 s chunk "
          "period, with vision task heads)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
