#!/usr/bin/env python3
"""Watch Algorithm 1 orchestrate inference modes (a live Fig. 7/13).

Drives the engine through three traffic phases and renders the traced
mode timeline:

1. a single application hammers one adapter   -> merged slots,
2. a second application trickles in           -> mixture (deLoRA) slots,
3. traffic spreads over many adapters         -> unmerged slots.

Run:  python examples/mode_timeline.py
"""

from repro import SystemBuilder
from repro.runtime import Request


def phase_requests(adapters, start, duration, rate, output_tokens, seed0):
    """A uniform-rate burst over the given adapters."""
    reqs = []
    count = int(duration * rate)
    for i in range(count):
        reqs.append(Request(
            adapter_id=adapters[i % len(adapters)],
            arrival_time=start + i / rate,
            input_tokens=256,
            output_tokens=output_tokens,
            task_name="referring_expression",
        ))
    return reqs


def main() -> None:
    builder = SystemBuilder(num_adapters=6, max_batch_size=16, theta=0.8)
    engine = builder.build("v-lora")
    tracer = engine.attach_tracer()
    ids = builder.adapter_ids

    requests = (
        # Phase 1 (0-8s): one camera app -> pure merged serving.
        phase_requests(ids[:1], start=0.0, duration=8.0, rate=6.0,
                       output_tokens=12, seed0=0)
        # Phase 2 (8-16s): the first app keeps the GPU busy while a
        # second app trickles in -> mixture (deLoRA) slots.
        + phase_requests(ids[:1], start=8.0, duration=8.0, rate=14.0,
                         output_tokens=20, seed0=1)
        + phase_requests(ids[1:2], start=8.0, duration=8.0, rate=1.5,
                         output_tokens=20, seed0=2)
        # Phase 3 (16-24s): traffic spreads -> unmerged serving.
        + phase_requests(ids, start=16.0, duration=8.0, rate=6.0,
                         output_tokens=12, seed0=3)
    )
    engine.submit(requests)
    metrics = engine.run()

    print(f"iterations={metrics.iterations}  "
          f"switches={metrics.num_mode_switches} "
          f"(total switch time {metrics.switch_time_total * 1e3:.1f} ms)\n")
    print(tracer.render_timeline(width=76))

    print("\ntime per mode:")
    total = sum(tracer.time_by_mode().values())
    for mode, seconds in sorted(tracer.time_by_mode().items()):
        print(f"  {mode:>9}: {seconds:7.2f}s ({100 * seconds / total:4.1f}%)")

    switchy = tracer.switch_events()
    print(f"\n{len(switchy)} switches; first few:")
    for e in switchy[:6]:
        print(f"  t={e.start:7.3f}s -> {e.mode:<9} "
              f"(switch cost {e.switch_seconds * 1e3:.1f} ms, "
              f"batch {e.batch_size}, {len(e.adapters)} adapter(s))")

    print(f"\nmean latency {metrics.mean_latency() * 1e3:.1f} ms, "
          f"avg token latency {metrics.avg_token_latency() * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
