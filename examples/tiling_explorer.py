#!/usr/bin/env python3
"""Explore ATMM's profile-based tiling search (Algorithm 2).

Runs the offline sweep for a model's LoRA shapes, prints which tiling
configuration wins at each token-dimension bucket, and shows the gap
between adaptive and static tiling for a few interesting shapes.

Run:  python examples/tiling_explorer.py [hidden_dim] [rank]
"""

import sys

from repro.hardware import A100_80GB
from repro.kernels import (
    CONFIG_2,
    PUNICA_CONFIG,
    SLORA_CONFIG,
    GemmCostModel,
    GemmShape,
    TilingSearch,
)


def main(hidden_dim: int, rank: int) -> None:
    gpu = A100_80GB
    search = TilingSearch(gpu, coarse=False)
    print(f"gpu={gpu.name}  search space: {len(search.configs)} "
          f"hardware-valid configurations")

    pairs = search.kn_pairs_for_model([hidden_dim], [rank])
    table, report = search.search(pairs, max_m=8192)
    print(f"profiled {report.num_shapes} shapes "
          f"({report.num_profiles} (shape, config) evaluations); "
          f"{report.distinct_winners} distinct winning configs\n")

    print("winning configuration per shrink-GEMM bucket "
          f"(m x {hidden_dim} @ {hidden_dim} x {rank}):")
    for m in search.m_buckets(8192):
        cfg = table.lookup(m, hidden_dim, rank)
        lat = table.profiled_latency(m, hidden_dim, rank)
        print(f"  m<={m:<6} -> {cfg}   ({lat * 1e6:.2f} us)")

    print("\nadaptive vs static on three regimes:")
    cm = GemmCostModel(gpu)
    for label, shape in (
        ("decode (8 tokens)", GemmShape(8, hidden_dim, rank)),
        ("prefill (2k tokens)", GemmShape(2048, hidden_dim, rank)),
        ("delta-W (d x r x d)", GemmShape(hidden_dim, rank, hidden_dim)),
    ):
        best = table.lookup(shape.m, shape.k, shape.n)
        row = {
            "ATMM": cm.gemm_seconds(shape, best),
            "Punica-static": cm.gemm_seconds(shape, PUNICA_CONFIG),
            "S-LoRA-static": cm.gemm_seconds(shape, SLORA_CONFIG),
            "big-tile-static": cm.gemm_seconds(shape, CONFIG_2),
        }
        cells = "  ".join(f"{k}={v * 1e6:8.2f}us" for k, v in row.items())
        print(f"  {label:<20} {cells}")
        why = cm.breakdown(shape, best)
        print(f"  {'':<20} winner {best}: {why['blocks']} blocks, "
              f"SM util {why['sm_utilization']:.2f}, "
              f"warp eff {why['warp_efficiency']:.2f}, "
              f"padding waste {why['padding_waste'] * 100:.0f}%, "
              f"{why['bound']}-bound")


if __name__ == "__main__":
    dim = int(sys.argv[1]) if len(sys.argv) > 1 else 4096
    rank = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    main(dim, rank)
