#!/usr/bin/env python3
"""Quickstart: stand up V-LoRA end to end in ~30 lines.

Offline phase: pack external knowledge (here described by task family +
accuracy floor; the calibrated oracle plans the packing) into the
minimum number of LoRA adapters.  Online phase: serve a visual-retrieval
request stream and print the serving metrics.

Run:  python examples/quickstart.py
"""

from repro import KnowledgeItem, RetrievalWorkload, VLoRA, VLoRAConfig


def main() -> None:
    # --- offline: accuracy-aware adapter generation (§4.2) -------------
    vlora = VLoRA(VLoRAConfig(max_batch_size=32, theta=0.5))
    knowledge = (
        [KnowledgeItem(f"aerial-scene-{i}", "image_classification", 0.90)
         for i in range(4)]
        + [KnowledgeItem(f"traffic-cam-{i}", "object_detection", 0.80)
           for i in range(3)]
        + [KnowledgeItem(f"action-{i}", "video_classification", 0.88)
           for i in range(2)]
    )
    plan = vlora.prepare_adapters(knowledge)
    print(f"packed {len(knowledge)} knowledge items into "
          f"{plan.num_adapters} adapters "
          f"({plan.mean_domains_per_adapter:.1f} domains/adapter, "
          f"{plan.num_rollbacks} rollbacks)")
    for adapter in plan.adapters:
        names = ", ".join(i.name for i in adapter.items)
        print(f"  {adapter.adapter_id}: {names}")

    # --- online: orchestrated serving (§4.3-4.4) -----------------------
    workload = RetrievalWorkload(
        vlora.adapter_ids, rate_rps=6.0, duration_s=30.0,
        top_adapter_share=0.6, seed=0,
    )
    metrics = vlora.serve(workload.generate())

    print("\nserving summary (simulated A100-80GB, Qwen-VL-7B):")
    for key, value in metrics.summary().items():
        print(f"  {key:>24}: {value:.3f}")


if __name__ == "__main__":
    main()
