#!/usr/bin/env python3
"""Host multiple vision applications on one V-LoRA instance (Fig. 8).

A video-analytics app (tight 1 s SLO, per-camera detection + action
domains) and a visual-retrieval app (relaxed SLO, QA/caption/reference
domains) register their knowledge; the shared offline fusion packs it
into adapters, and one engine serves both streams.  The report shows
per-application latency and SLO attainment.

Run:  python examples/multi_app_deployment.py
"""

from repro.apps import Deployment, video_analytics_app, visual_retrieval_app
from repro.core import VLoRAConfig


def main() -> None:
    apps = [
        video_analytics_app(num_streams=2, duration_s=20.0,
                            latency_slo_s=1.0, num_domains=2, seed=1),
        visual_retrieval_app(rate_rps=4.0, duration_s=20.0,
                             latency_slo_s=10.0, num_domains=3, seed=2),
    ]
    deployment = Deployment(apps, VLoRAConfig(max_batch_size=32))

    plan = deployment.prepare()
    print(f"offline phase: {sum(len(a.knowledge) for a in apps)} knowledge "
          f"items -> {plan.num_adapters} adapters "
          f"({plan.num_rollbacks} rollbacks)")
    for app in apps:
        routed = deployment.adapters_for(app.name)
        print(f"  {app.name}: adapters {routed}")

    print("\nonline phase: serving both applications on one engine ...")
    reports = deployment.serve()
    print(f"{'application':<18}{'done':>6}{'mean':>10}{'p99':>10}"
          f"{'SLO attained':>14}")
    for name, report in reports.items():
        slo = (f"{report.slo_attainment * 100:.0f}%"
               if report.slo_attainment is not None else "-")
        print(f"{name:<18}{report.completed:>6}"
              f"{report.mean_latency_s * 1e3:>9.1f}m"
              f"{report.p99_latency_s * 1e3:>9.1f}m"
              f"{slo:>14}")


if __name__ == "__main__":
    main()
