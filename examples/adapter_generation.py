#!/usr/bin/env python3
"""Accuracy-aware knowledge fusion on the real training substrate.

A miniature Fig. 10: six domains of external knowledge — some that fuse
well (image classification), some that conflict (video classification) —
are packed by the greedy accuracy-aware algorithm running *real* LoRA
training on the numpy TinyLMM.  Watch the rollback happen when fusing a
conflicting domain would break an accuracy floor.

Run:  python examples/adapter_generation.py   (~2-3 minutes of training)
"""

import numpy as np

from repro.generation import (
    IMAGE_CLASSIFICATION,
    VIDEO_CLASSIFICATION,
    KnowledgeFusion,
    KnowledgeItem,
    LoRATrainer,
    TrainerEvaluator,
    make_domains,
    pretrain_base,
)
from repro.nn import TinyLMMConfig


def main() -> None:
    print("pretraining the base TinyLMM (the 'public checkpoint') ...")
    model = pretrain_base(TinyLMMConfig(max_patches=12), steps=150, seed=7)
    model.add_lora(rank=4, rng=np.random.default_rng(1))
    trainer = LoRATrainer(model, steps_per_domain=70)

    image_domains = make_domains(IMAGE_CLASSIFICATION, 3,
                                 n_train=128, n_test=96)
    video_domains = make_domains(VIDEO_CLASSIFICATION, 3,
                                 n_train=128, n_test=96)
    items = [
        KnowledgeItem(d.name, d.family.name, required_accuracy=req, dataset=d)
        for d, req in (
            [(d, 0.75) for d in image_domains]
            + [(d, 0.75) for d in video_domains]
        )
    ]
    print(f"fusing {len(items)} knowledge items "
          "(floors: 75% accuracy each) with real LoRA training ...")
    fusion = KnowledgeFusion(TrainerEvaluator(trainer), adapter_prefix="vl")
    result = fusion.fuse(items)

    print(f"\n=> {result.num_adapters} adapters, "
          f"{result.num_rollbacks} rollbacks, "
          f"{result.num_evaluations} train+eval rounds")
    for adapter in result.adapters:
        print(f"\n  {adapter.adapter_id} "
              f"({adapter.num_domains} domains fused):")
        for item in adapter.items:
            acc = adapter.achieved[item.name]
            print(f"    {item.name:<28} accuracy {acc:.3f} "
                  f"(floor {item.required_accuracy})")
    if result.violations:
        print(f"\n  items that could not meet their floor even alone: "
              f"{result.violations}")


if __name__ == "__main__":
    main()
