#!/usr/bin/env python3
"""Free-form query routing into V-LoRA (the paper's §2 scenario).

"The police officer can find the right target when only given a
text-described query such as 'A boy wearing a red sweater lost at the
corner'" — this example registers adapters with example queries, routes
a mixed query stream with the embedding router, attaches per-application
SLOs, and serves everything through one engine.

Run:  python examples/query_routing.py
"""

from repro.core import SystemBuilder
from repro.models import QWEN_VL_7B, LoRAAdapterSpec
from repro.router import EmbeddingRouter, RoutedFrontend

QUERIES = [
    ("find the boy wearing a red sweater at the corner", 0.0),
    ("what is the weather like in this picture", 0.3),
    ("locate the white delivery van on the street", 0.7),
    ("describe what this person is doing in the video clip", 1.1),
    ("how many bicycles are parked near the entrance", 1.6),
    ("find the dog running across the road", 2.0),
    ("what action is the crowd performing", 2.4),
]


def main() -> None:
    router = EmbeddingRouter()
    router.register("det-lora", "object_detection", [
        "find the person wearing red at the corner",
        "locate the car on the street",
        "find the animal in the frame",
    ])
    router.register("vqa-lora", "visual_qa", [
        "what is happening in this picture",
        "how many objects are there",
        "what is the weather like",
    ])
    router.register("video-lora", "video_understanding", [
        "describe the action in the video",
        "what activity is the person performing in the clip",
    ])
    frontend = RoutedFrontend(router=router, use_task_heads=True)

    specs = [
        LoRAAdapterSpec("det-lora", QWEN_VL_7B, task_head_classes=96),
        LoRAAdapterSpec("vqa-lora", QWEN_VL_7B),
        LoRAAdapterSpec("video-lora", QWEN_VL_7B, task_head_classes=101),
    ]
    engine = SystemBuilder(adapter_specs=specs).build("v-lora")

    requests = []
    for query, t in QUERIES:
        req = frontend.make_request(query, arrival_time=t)
        req.slo_s = 2.0  # every application demands a 2 s answer
        route = router.route(query)
        print(f"[route {route.confidence:4.2f}] {query!r}")
        print(f"    -> {req.adapter_id} ({req.task_name}, "
              f"{'task head' if req.use_task_head else 'LM head'}, "
              f"{req.output_tokens} round(s))")
        requests.append(req)

    engine.submit(requests)
    metrics = engine.run()
    print(f"\ncompleted {metrics.num_completed} requests, "
          f"mean latency {metrics.mean_latency() * 1e3:.1f} ms, "
          f"SLO attainment {metrics.slo_attainment() * 100:.0f}%")


if __name__ == "__main__":
    main()
