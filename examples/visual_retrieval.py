#!/usr/bin/env python3
"""Visual retrieval: compare V-LoRA against S-LoRA, Punica, and dLoRA.

Serves the Azure-trace-shaped visual-retrieval workload (VQA +
captioning + referring expression) through all four systems at a sweep
of request rates and prints the Fig.-14-style comparison.

Run:  python examples/visual_retrieval.py [rate ...]
"""

import sys

from repro import RetrievalWorkload, SystemBuilder

SYSTEMS = ("v-lora", "s-lora", "punica", "dlora")


def main(rates) -> None:
    builder = SystemBuilder(num_adapters=8)
    print(f"model={builder.model.name}  gpu={builder.gpu.name}  "
          f"adapters={builder.num_adapters}\n")
    header = f"{'rate':>6} | " + " | ".join(f"{s:>12}" for s in SYSTEMS)
    print(header)
    print("-" * len(header))
    for rate in rates:
        cells = []
        for system in SYSTEMS:
            engine = builder.build(system)
            workload = RetrievalWorkload(
                builder.adapter_ids, rate_rps=rate, duration_s=30.0,
                top_adapter_share=0.6,
                # Only V-LoRA bundles vision task heads with its adapters.
                use_task_heads=(system == "v-lora"),
                seed=1,
            )
            engine.submit(workload.generate())
            metrics = engine.run()
            cells.append(f"{metrics.avg_token_latency() * 1e3:9.2f}ms")
        print(f"{rate:>6} | " + " | ".join(f"{c:>12}" for c in cells))
    print("\n(avg token latency; lower is better — V-LoRA should win "
          "every row, dLoRA trail)")


if __name__ == "__main__":
    rates = [float(r) for r in sys.argv[1:]] or [2.0, 6.0, 10.0, 14.0]
    main(rates)
