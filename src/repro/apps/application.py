"""Vision application descriptions (Fig. 8's dotted and solid arrows)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.generation.fusion import KnowledgeItem
from repro.generation.heads import TASK_PROFILES
from repro.runtime.request import Request
from repro.workloads.retrieval import RetrievalWorkload
from repro.workloads.video import VideoAnalyticsWorkload

#: A workload factory: adapter ids (routed for this app) -> requests.
WorkloadFn = Callable[[Sequence[str]], List[Request]]


@dataclass
class VisionApplication:
    """One application: knowledge in, requests out, an SLO to honor.

    Attributes
    ----------
    name:
        Application name; stamped onto its requests' ``task_name``-level
        accounting via the per-app report.
    knowledge:
        Knowledge items the offline phase must pack (dotted arrows of
        Fig. 8).  Their ``family_name`` routes the app's tasks to the
        adapters that absorbed them.
    tasks:
        The vision tasks this application issues.
    workload:
        Factory building the request stream given the adapter ids the
        deployment routed to this app (solid arrows of Fig. 8).
    latency_slo_s:
        Per-request latency constraint (§4.4: "guaranteeing each vision
        application's latency constraint"); stamped onto every request.
    """

    name: str
    knowledge: List[KnowledgeItem]
    tasks: List[str]
    workload: WorkloadFn
    latency_slo_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("application needs a name")
        if not self.knowledge:
            raise ValueError(f"{self.name}: needs at least one knowledge item")
        unknown = [t for t in self.tasks if t not in TASK_PROFILES]
        if unknown:
            raise ValueError(f"{self.name}: unknown tasks {unknown}")
        if self.latency_slo_s is not None and self.latency_slo_s <= 0:
            raise ValueError(f"{self.name}: latency_slo_s must be positive")

    def build_requests(self, adapter_ids: Sequence[str]) -> List[Request]:
        """Materialize the request stream against the routed adapters."""
        if not adapter_ids:
            raise ValueError(f"{self.name}: no adapters routed")
        requests = self.workload(adapter_ids)
        for r in requests:
            r.slo_s = self.latency_slo_s
        return requests


def video_analytics_app(
    name: str = "video-analytics",
    num_streams: int = 2,
    duration_s: float = 20.0,
    accuracy_floor: float = 0.85,
    latency_slo_s: float = 1.0,
    num_domains: int = 2,
    seed: int = 0,
) -> VisionApplication:
    """A video-analytics application: per-camera detection + action
    recognition domains, one chunk per second per stream, tight SLO."""
    knowledge = (
        [KnowledgeItem(f"{name}/det-{i}", "object_detection",
                       accuracy_floor) for i in range(num_domains)]
        + [KnowledgeItem(f"{name}/act-{i}", "video_classification",
                         accuracy_floor) for i in range(num_domains)]
    )

    def workload(adapter_ids: Sequence[str]) -> List[Request]:
        return VideoAnalyticsWorkload(
            adapter_ids, num_streams=num_streams, duration_s=duration_s,
            use_task_heads=True, seed=seed,
        ).generate()

    return VisionApplication(
        name=name,
        knowledge=knowledge,
        tasks=["object_detection", "video_understanding"],
        workload=workload,
        latency_slo_s=latency_slo_s,
    )


def visual_retrieval_app(
    name: str = "visual-retrieval",
    rate_rps: float = 4.0,
    duration_s: float = 20.0,
    accuracy_floor: float = 0.75,
    latency_slo_s: Optional[float] = 8.0,
    num_domains: int = 3,
    seed: int = 0,
) -> VisionApplication:
    """A visual-retrieval application: QA/caption/reference domains on
    the Azure-shaped trace, throughput-oriented SLO."""
    families = ["visual_qa", "image_caption", "referring_expression"]
    knowledge = [
        KnowledgeItem(f"{name}/{families[i % 3]}-{i}", families[i % 3],
                      accuracy_floor)
        for i in range(num_domains)
    ]

    def workload(adapter_ids: Sequence[str]) -> List[Request]:
        return RetrievalWorkload(
            adapter_ids, rate_rps=rate_rps, duration_s=duration_s,
            use_task_heads=True, seed=seed,
        ).generate()

    return VisionApplication(
        name=name,
        knowledge=knowledge,
        tasks=families,
        workload=workload,
        latency_slo_s=latency_slo_s,
    )
