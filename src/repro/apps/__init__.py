"""Vision applications: the consumer-facing layer of Fig. 8.

The paper frames V-LoRA's inputs as *applications*: each brings external
knowledge (small models / datasets) with accuracy requirements into the
offline phase, and a request stream with a latency constraint into the
online phase.  This package provides that abstraction:

* :class:`~repro.apps.application.VisionApplication` — knowledge items +
  workload + SLO for one application;
* ready-made :func:`~repro.apps.application.video_analytics_app` and
  :func:`~repro.apps.application.visual_retrieval_app` factories;
* :class:`~repro.apps.deployment.Deployment` — registers applications,
  runs the offline fusion across all of their knowledge, routes each
  application's tasks to the fused adapters, serves the combined stream,
  and reports per-application latency/SLO attainment.
"""

from repro.apps.application import (
    VisionApplication,
    video_analytics_app,
    visual_retrieval_app,
)
from repro.apps.deployment import ApplicationReport, Deployment

__all__ = [
    "VisionApplication",
    "video_analytics_app",
    "visual_retrieval_app",
    "Deployment",
    "ApplicationReport",
]
