"""Deployment: applications in, fused adapters and per-app metrics out."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apps.application import VisionApplication
from repro.core.vlora import VLoRA, VLoRAConfig
from repro.generation.fusion import FusionResult
from repro.runtime.metrics import MetricsCollector, RequestRecord
from repro.runtime.request import Request


@dataclass
class ApplicationReport:
    """Per-application serving outcome."""

    name: str
    completed: int
    mean_latency_s: float
    p99_latency_s: float
    slo_attainment: Optional[float]
    adapters: List[str]


class Deployment:
    """One V-LoRA instance hosting multiple vision applications.

    Offline: every application's knowledge items are packed together by
    the accuracy-aware fusion, so independent applications can share an
    adapter when their knowledge coexists (the economy §4.2.1 is after).
    Online: each application's requests run against the adapters that
    absorbed its knowledge; reports are per application.
    """

    def __init__(self, applications: Sequence[VisionApplication],
                 config: Optional[VLoRAConfig] = None):
        if not applications:
            raise ValueError("need at least one application")
        names = [a.name for a in applications]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate application names in {names}")
        self.applications = list(applications)
        self.vlora = VLoRA(config)
        self._fusion: Optional[FusionResult] = None
        self._routing: Dict[str, List[str]] = {}
        self._request_owner: Dict[int, str] = {}

    # -- offline phase -----------------------------------------------------------

    def prepare(self) -> FusionResult:
        """Run the shared fusion and build each app's adapter routing."""
        items = [k for app in self.applications for k in app.knowledge]
        result = self.vlora.prepare_adapters(items)
        self._fusion = result
        owner_by_item = {
            item.name: app.name
            for app in self.applications for item in app.knowledge
        }
        self._routing = {app.name: [] for app in self.applications}
        for adapter in result.adapters:
            owners = {owner_by_item[i.name] for i in adapter.items}
            for owner in owners:
                self._routing[owner].append(adapter.adapter_id)
        missing = [a for a, ids in self._routing.items() if not ids]
        if missing:
            raise RuntimeError(f"applications without adapters: {missing}")
        return result

    @property
    def fusion(self) -> FusionResult:
        if self._fusion is None:
            raise RuntimeError("call prepare() first")
        return self._fusion

    def adapters_for(self, app_name: str) -> List[str]:
        """Adapter ids routed to one application."""
        if app_name not in self._routing:
            raise KeyError(f"unknown application {app_name!r}")
        return list(self._routing[app_name])

    # -- online phase -----------------------------------------------------------------

    def serve(self) -> Dict[str, ApplicationReport]:
        """Generate every app's workload, serve the union, report per app."""
        if self._fusion is None:
            self.prepare()
        all_requests: List[Request] = []
        for app in self.applications:
            requests = app.build_requests(self._routing[app.name])
            for r in requests:
                self._request_owner[r.request_id] = app.name
            all_requests.extend(requests)
        metrics = self.vlora.serve(all_requests)
        return self._split_reports(metrics)

    def _split_reports(
        self, metrics: MetricsCollector
    ) -> Dict[str, ApplicationReport]:
        per_app: Dict[str, List[RequestRecord]] = {
            app.name: [] for app in self.applications
        }
        for record in metrics.records:
            owner = self._request_owner.get(record.request_id)
            if owner is not None:
                per_app[owner].append(record)
        reports = {}
        for app in self.applications:
            records = per_app[app.name]
            if not records:
                raise RuntimeError(
                    f"application {app.name!r} completed no requests"
                )
            latencies = np.array([r.latency for r in records])
            with_slo = [r for r in records if r.slo_s is not None]
            attainment = (
                sum(1 for r in with_slo if r.latency <= r.slo_s)
                / len(with_slo) if with_slo else None
            )
            reports[app.name] = ApplicationReport(
                name=app.name,
                completed=len(records),
                mean_latency_s=float(latencies.mean()),
                p99_latency_s=float(np.percentile(latencies, 99)),
                slo_attainment=attainment,
                adapters=self.adapters_for(app.name),
            )
        return reports
