"""repro — a full reproduction of V-LoRA (EuroSys 2025).

V-LoRA is an end-to-end LoRA-LMM serving system for vision applications:
accuracy-aware LoRA adapter generation (§4.2), adaptive-tiling LoRA
adapter batching (ATMM, §4.3), and flexible adapter orchestration with
merged / unmerged / mixture inference modes (§4.4).

Quick start::

    from repro import VLoRA, KnowledgeItem, RetrievalWorkload

    vlora = VLoRA()
    vlora.prepare_adapters([
        KnowledgeItem("aid", "image_classification", 0.90),
        KnowledgeItem("ucf", "video_classification", 0.85),
    ])
    workload = RetrievalWorkload(vlora.adapter_ids, rate_rps=4.0)
    metrics = vlora.serve(workload.generate())
    print(metrics.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

from repro.core import SYSTEM_NAMES, SystemBuilder, VLoRA, VLoRAConfig, build_engine
from repro.generation.fusion import KnowledgeItem
from repro.workloads import RetrievalWorkload, VideoAnalyticsWorkload

__version__ = "1.0.0"

__all__ = [
    "VLoRA",
    "VLoRAConfig",
    "SystemBuilder",
    "build_engine",
    "SYSTEM_NAMES",
    "KnowledgeItem",
    "RetrievalWorkload",
    "VideoAnalyticsWorkload",
    "__version__",
]
