"""ATMM: the Adaptive-Tiling Matrix Multiplication operator (§4.3).

At runtime ATMM receives the concatenated activations of all requests in
the batch plus the stacked adapter matrices, looks up the optimal tiling
configuration for the *aggregate* input shape in the hash table built
offline by :class:`~repro.kernels.search.TilingSearch`, and executes the
pre-compiled kernel for that configuration.  Double buffering (modelled in
the cost model via ``double_buffered=True``) hides tile loads behind math.

Besides unmerged-inference batching, ATMM powers:

* the **swift mode switcher** (§4.4.1) — all-layer ΔW = B x A computed in
  one grouped launch, merged in-place (:meth:`ATMMOperator.delta_w_seconds`);
* the **mixture (deLoRA) mode** (§4.4.2) — the deLoRA branch is just one
  more adapter group in the grouped GEMM.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hardware.gpu import GPUSpec
from repro.hardware.memory import FP16_BYTES
from repro.kernels.base import LoRAOperator
from repro.kernels.cost_model import GemmCostModel
from repro.kernels.search import OptimalTilingTable, TilingSearch, default_table
from repro.kernels.shapes import GemmShape, GroupedGemm


class ATMMOperator(LoRAOperator):
    """Adaptive-tiling grouped-GEMM operator."""

    name = "ATMM"
    #: §6.3.2 / Fig. 18 — ATMM is the most stable operator.
    jitter_frac = 0.02

    def __init__(
        self,
        cost_model: GemmCostModel,
        table: Optional[OptimalTilingTable] = None,
        hidden_dims: Sequence[int] = (4096,),
        ranks: Sequence[int] = (16, 32, 64, 128),
    ):
        super().__init__(cost_model)
        if table is None:
            table = default_table(
                cost_model.gpu, hidden_dims=hidden_dims, ranks=ranks
            )
        self.table = table
        # Lazy searcher: a shape the offline sweep did not anticipate is
        # profiled once on first sight and cached in the table, mirroring
        # the paper's "compile kernels for every possible input shape"
        # guarantee without enumerating the world up front.
        self._searcher: Optional[TilingSearch] = None
        # (m, k, n) -> TilingConfig: one dict probe on the serving hot
        # path instead of contains() + lookup() (each of which re-packs
        # the shape key).  Safe to memoize — table entries are
        # insert-once and the profile-on-miss happens before the first
        # memo write for a shape.
        self._cfg_memo: dict = {}
        # (layers, hidden, rank, projections, fuse) -> seconds: the
        # switcher re-costs ΔW on every mode-switch estimate and the
        # result is a pure function of these five ints.
        self._dw_memo: dict = {}
        # (token_counts, ranks, hidden) -> seconds.  Adapter-identity-
        # free: two batches whose group token counts land in the same
        # order share an entry even when the adapters differ, so this
        # dedupes across merged-adapter choices and across modes.
        self._pair_memo: dict = {}

    @classmethod
    def for_gpu(cls, gpu: GPUSpec, **kwargs) -> "ATMMOperator":
        return cls(GemmCostModel(gpu), **kwargs)

    # -- config selection -----------------------------------------------------

    def select_config(self, grouped: GroupedGemm):
        """Pick one launch-wide configuration for a grouped GEMM.

        The hash table is keyed on single-GEMM shapes; for a grouped
        launch ATMM keys on the aggregate token dimension (sum of group
        Ms) with the group's K and max N — the shape that dominates both
        the block count and the traffic.
        """
        total_m = sum(p.m for p in grouped.problems)
        k = grouped.problems[0].k
        n = grouped.max_n
        return self._lookup(total_m, k, n)

    def _lookup(self, m: int, k: int, n: int):
        if not self.table.contains(m, k, n):
            self._profile_into_table(m, k, n)
        return self.table.lookup(m, k, n)

    def _profile_into_table(self, m: int, k: int, n: int) -> None:
        from repro.kernels.search import bucket_m, shape_key

        if self._searcher is None:
            self._searcher = TilingSearch(self.cost_model.gpu,
                                          cost_model=self.cost_model,
                                          coarse=True)
        shape = GemmShape(bucket_m(m), k, n)
        cfg, lat = self._searcher.profile_shape_vectorized(shape)
        self.table.insert(shape_key(shape.m, shape.k, shape.n), cfg, lat)

    # -- LoRAOperator API -------------------------------------------------------

    def pair_seconds(
        self,
        token_counts: Sequence[int],
        ranks: Sequence[int],
        hidden_dim: int,
    ) -> float:
        # Shape-free fast path: the (shrink, expand) grouped GEMMs are
        # fully described by the dimension lists — shrink group i is
        # ``(m_i × d) @ (d × r_i)``, expand is ``(m_i × r_i) @ (r_i × d)``
        # — so the cost model is driven via grouped_seconds_mnk without
        # building GemmShape/GroupedGemm objects (pure per-call churn on
        # the serving engine's cost-miss path).  Config selection keys
        # match select_config exactly: aggregate m, the group K, max N.
        token_counts, ranks = self._validated(token_counts, ranks)
        if hidden_dim <= 0:
            raise ValueError(
                f"GEMM dims must be positive, got hidden_dim={hidden_dim}"
            )
        key = (tuple(token_counts), tuple(ranks), hidden_dim)
        memoized = self._pair_memo.get(key)
        if memoized is not None:
            return memoized
        total_m = sum(token_counts)
        hiddens = [hidden_dim] * len(token_counts)
        t = self.cost_model.grouped_seconds_mnk(
            token_counts, hiddens, ranks,
            self._config_for(total_m, hidden_dim, max(ranks)),
        )
        t += self.cost_model.grouped_seconds_mnk(
            token_counts, ranks, hiddens,
            self._config_for(total_m, ranks[0], hidden_dim),
        )
        if len(self._pair_memo) >= 65536:
            self._pair_memo.clear()
        self._pair_memo[key] = t
        return t

    def _config_for(self, m: int, k: int, n: int):
        key = (m, k, n)
        cfg = self._cfg_memo.get(key)
        if cfg is None:
            cfg = self._lookup(m, k, n)
            if len(self._cfg_memo) >= 65536:
                self._cfg_memo.clear()
            self._cfg_memo[key] = cfg
        return cfg

    # -- mode-switch support ------------------------------------------------------

    def delta_w_seconds(
        self,
        num_layers: int,
        hidden_dim: int,
        rank: int,
        num_projections: int = 4,
        fuse_merge: bool = True,
    ) -> float:
        """One-shot all-layer ΔW = B x A, optionally fused with the merge add.

        §4.4.1: the swift switcher computes the LoRA matrices of the
        entire model and adds/subtracts them onto/from the base weights in
        one shot.  With the merge fused into the GEMM epilogue the extra
        traffic is one read + one write of each target weight matrix.
        """
        if num_layers <= 0 or num_projections <= 0:
            raise ValueError("num_layers and num_projections must be positive")
        key = (num_layers, hidden_dim, rank, num_projections, fuse_merge)
        memoized = self._dw_memo.get(key)
        if memoized is not None:
            return memoized
        problems = [
            GemmShape(hidden_dim, rank, hidden_dim)
            for _ in range(num_layers * num_projections)
        ]
        grouped = GroupedGemm.of(problems)
        cfg = self._lookup(hidden_dim, rank, hidden_dim)
        t = self.cost_model.grouped_seconds(grouped, cfg)
        if fuse_merge:
            # Epilogue: read W, write W (the ΔW never round-trips to HBM).
            nbytes = (
                2 * num_layers * num_projections
                * hidden_dim * hidden_dim * FP16_BYTES
            )
            t += self.cost_model.elementwise_seconds(nbytes)
        self._dw_memo[key] = t
        return t
