"""Persistent on-disk store for ATMM tiling tables.

The paper amortizes the offline profile search by shipping an
ahead-of-time compiled kernel set (§5); here the analogue is a versioned
cache directory of searched tiling tables.  A table file is keyed by a
fingerprint over everything that determines its contents:

* the full :class:`~repro.hardware.gpu.GPUSpec` (not just the name — a
  custom spec with, say, fewer SMs must not alias a registry GPU);
* the search inputs (hidden dims, ranks, ``max_m``, ``coarse``);
* the cost-model version fingerprint (formula constants) and the
  configuration-space fingerprint (enumeration bounds);
* the store format version.

Any change to the cost model, the search space, or the on-disk layout
changes the fingerprint, so stale tables are simply never looked up —
and a file whose recorded fingerprint or version disagrees with its
filename (hand-edited, truncated, corrupted) loads as a miss, never an
error.  Writes are atomic (temp file + ``os.replace``) so concurrent
processes cannot observe a half-written table.

The store is **opt-in**: :func:`resolve_store_dir` returns ``None``
unless a directory is passed explicitly or the ``REPRO_KERNEL_STORE_DIR``
environment variable is set, so library use never writes outside paths
the user chose.  The ``repro kernels search`` CLI defaults to the
per-user cache directory (:func:`default_user_store_dir`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from typing import List, Optional, Sequence, Union

from repro.hardware.gpu import GPUSpec
from repro.kernels.cost_model import GemmCostModel
from repro.kernels.search import OptimalTilingTable
from repro.kernels.tiling import search_space_fingerprint

#: Bump to invalidate every previously written store file.
STORE_FORMAT_VERSION = 1

#: Environment variable that opts library code (``default_table``) into
#: the persistent store.
ENV_STORE_DIR = "REPRO_KERNEL_STORE_DIR"


def default_user_store_dir() -> pathlib.Path:
    """Per-user cache directory for prebuilt tables (XDG-aware)."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro" / "kernel-tables"


def resolve_store_dir(
    explicit: Optional[Union[str, pathlib.Path]] = None,
) -> Optional[pathlib.Path]:
    """Resolve the store directory, or ``None`` when the store is off.

    Precedence: explicit argument, then ``REPRO_KERNEL_STORE_DIR``.  An
    empty string in either place disables the store.
    """
    if explicit is not None:
        return pathlib.Path(explicit) if str(explicit) else None
    env = os.environ.get(ENV_STORE_DIR)
    if env:
        return pathlib.Path(env)
    return None


def table_fingerprint(
    gpu: GPUSpec,
    hidden_dims: Sequence[int],
    ranks: Sequence[int],
    max_m: int,
    coarse: bool,
    cost_model: Optional[GemmCostModel] = None,
) -> str:
    """Content fingerprint for a searched table (hex, 16 chars).

    Two searches share a fingerprint iff they are guaranteed to produce
    the same table.
    """
    model = cost_model or GemmCostModel(gpu)
    doc = {
        "store_version": STORE_FORMAT_VERSION,
        "table_format": OptimalTilingTable.FORMAT_VERSION,
        "gpu": dataclasses.asdict(gpu),
        "hidden_dims": sorted(int(d) for d in hidden_dims),
        "ranks": sorted(int(r) for r in ranks),
        "max_m": int(max_m),
        "coarse": bool(coarse),
        "cost_model": model.version_fingerprint(),
        "search_space": search_space_fingerprint(),
    }
    blob = json.dumps(doc, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class KernelTableStore:
    """Directory of fingerprint-keyed tiling-table files."""

    def __init__(self, root: Union[str, pathlib.Path]):
        self.root = pathlib.Path(root)

    def path_for(self, fingerprint: str) -> pathlib.Path:
        return self.root / f"table-{fingerprint}.json"

    def load(self, fingerprint: str) -> Optional[OptimalTilingTable]:
        """Load a stored table, or ``None`` on any kind of miss.

        Missing file, unreadable JSON, wrong store version, fingerprint
        mismatch, and malformed payloads are all treated identically: a
        cache miss.  The caller searches and overwrites.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict):
            return None
        if doc.get("store_version") != STORE_FORMAT_VERSION:
            return None
        if doc.get("fingerprint") != fingerprint:
            return None
        payload = doc.get("table")
        if not isinstance(payload, dict):
            return None
        try:
            return OptimalTilingTable.from_payload(payload)
        except (KeyError, TypeError, ValueError, IndexError):
            return None

    def save(
        self,
        fingerprint: str,
        table: OptimalTilingTable,
        meta: Optional[dict] = None,
    ) -> pathlib.Path:
        """Atomically persist a table under its fingerprint.

        The document embeds the fingerprint and store version so a
        renamed or stale file is rejected at load time.  ``meta`` is
        free-form provenance (GPU name, dims, ...) for ``kernels
        inspect``; it does not affect loading.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {
            "store_version": STORE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "meta": meta or {},
            "table": table.to_payload(),
        }
        path = self.path_for(fingerprint)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f".{fingerprint}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def entries(self) -> List[dict]:
        """Describe every readable table file in the store (for CLI)."""
        if not self.root.is_dir():
            return []
        out = []
        for path in sorted(self.root.glob("table-*.json")):
            info = {
                "path": str(path),
                "fingerprint": path.stem.replace("table-", "", 1),
                "size_bytes": path.stat().st_size,
            }
            try:
                with open(path) as fh:
                    doc = json.load(fh)
                info["store_version"] = doc.get("store_version")
                info["meta"] = doc.get("meta", {})
                table = doc.get("table", {})
                info["num_entries"] = len(table.get("entries", []))
                info["num_configs"] = len(table.get("configs", []))
                info["stale"] = (
                    doc.get("store_version") != STORE_FORMAT_VERSION
                    or doc.get("fingerprint") != info["fingerprint"]
                )
            except (OSError, ValueError):
                info["stale"] = True
                info["error"] = "unreadable"
            out.append(info)
        return out
