"""GEMM problem shapes.

A LoRA adapter application for a batch of tokens is two GEMMs per
projection (Fig. 2a):

* *shrink*:  ``x (m×d)  @  A (d×r)   -> (m×r)``
* *expand*:  ``(m×r)    @  B (r×d)   -> (m×d)``

When several requests in a batch invoke *different* adapters, the batching
operators face a **grouped GEMM**: a set of independent problems with
heterogeneous ``m`` (request token counts) and possibly heterogeneous ``r``
(adapter ranks).  :class:`GroupedGemm` is that set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class GemmShape:
    """One ``(m × k) @ (k × n)`` matrix-multiplication problem."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if self.m <= 0 or self.k <= 0 or self.n <= 0:
            raise ValueError(f"GEMM dims must be positive, got {self!r}")

    @property
    def flops(self) -> int:
        """Useful floating-point operations (multiply-adds counted as 2)."""
        return 2 * self.m * self.k * self.n

    @property
    def input_bytes_fp16(self) -> int:
        """Bytes of the two input operands in FP16."""
        return 2 * (self.m * self.k + self.k * self.n)

    @property
    def output_bytes_fp16(self) -> int:
        """Bytes of the output in FP16."""
        return 2 * self.m * self.n

    def padded_to(self, m: int, n: int) -> "GemmShape":
        """Return this shape padded up to ``m`` rows and ``n`` columns."""
        if m < self.m or n < self.n:
            raise ValueError(
                f"cannot pad {self!r} down to m={m}, n={n}"
            )
        return GemmShape(m, self.k, n)


@dataclass(frozen=True)
class GroupedGemm:
    """A set of independent GEMM problems executed by one logical operator call.

    ``problems[i]`` is the i-th group's shape; groups share no operands.
    """

    problems: Tuple[GemmShape, ...]

    def __post_init__(self) -> None:
        if not self.problems:
            raise ValueError("GroupedGemm needs at least one problem")

    @classmethod
    def of(cls, problems: Iterable[GemmShape]) -> "GroupedGemm":
        return cls(tuple(problems))

    @property
    def num_groups(self) -> int:
        return len(self.problems)

    @property
    def total_flops(self) -> int:
        return sum(p.flops for p in self.problems)

    @property
    def max_m(self) -> int:
        return max(p.m for p in self.problems)

    @property
    def max_n(self) -> int:
        return max(p.n for p in self.problems)

    def padded_batch(self) -> "GroupedGemm":
        """The batched-GEMM view: every problem padded to the max m and n.

        This is what a vanilla batched GEMM (dLoRA's Einsum path) executes,
        and is the source of the padding waste §4.3.1 describes.
        """
        m, n = self.max_m, self.max_n
        return GroupedGemm.of(p.padded_to(m, n) for p in self.problems)


def lora_gemm_shapes(
    token_counts: Sequence[int],
    hidden_dim: int,
    ranks: Sequence[int],
) -> Tuple[GroupedGemm, GroupedGemm]:
    """Build the (shrink, expand) grouped GEMMs for one LoRA application.

    Parameters
    ----------
    token_counts:
        Tokens per request group (requests hitting the same adapter are
        pre-aggregated by the caller).
    hidden_dim:
        The model hidden size ``d``.
    ranks:
        Adapter rank per group, aligned with ``token_counts``.

    Returns
    -------
    (shrink, expand):
        ``shrink[i] = (m_i × d) @ (d × r_i)``,
        ``expand[i] = (m_i × r_i) @ (r_i × d)``.
    """
    if len(token_counts) != len(ranks):
        raise ValueError(
            f"token_counts ({len(token_counts)}) and ranks ({len(ranks)}) "
            "must align"
        )
    if not token_counts:
        raise ValueError("need at least one request group")
    shrink: List[GemmShape] = []
    expand: List[GemmShape] = []
    for m, r in zip(token_counts, ranks):
        shrink.append(GemmShape(m, hidden_dim, r))
        expand.append(GemmShape(m, r, hidden_dim))
    return GroupedGemm.of(shrink), GroupedGemm.of(expand)
