"""Baseline LoRA-batching operator models: S-LoRA, Punica, dLoRA/Einsum.

§3.2 (C2) and §6.3.2 characterize each baseline's failure mode:

* **S-LoRA** — custom fine-grained CUDA-core kernel.  Tiny tiles plus
  split-K keep SMs busy on decode-sized inputs (it matches ATMM there,
  Fig. 17 left) but the CUDA-core peak is ~4x below Tensor cores and the
  tiny tiles amplify HBM traffic, so it falls behind at prefill sizes.
* **Punica** — CUTLASS Tensor-core kernel with one static tiling
  configuration (Table 1 row 1).  Good at mid sizes; on small inputs the
  64-wide N tile plus no split-K leaves most SMs idle, on large inputs the
  16-row M tile launches excessive global-memory transfers (Fig. 12a).
* **dLoRA (Einsum)** — PyTorch ``einsum`` lowers to padded batched GEMM
  with permute/reshape passes around it; every request pads to the batch
  max length and every adapter to the max rank, and the repeated kernel
  launches dominate at the decode stage (§6.3.2: 4.5x slower than ATMM).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hardware.gpu import GPUSpec
from repro.kernels.base import LoRAOperator
from repro.kernels.cost_model import GemmCostModel
from repro.kernels.shapes import GemmShape, GroupedGemm
from repro.kernels.tiling import (
    CONFIG_1,
    CONFIG_2,
    PUNICA_CONFIG,
    SLORA_CONFIG,
    TilingConfig,
)


class SLoRAOperator(LoRAOperator):
    """S-LoRA's static fine-grained CUDA-core kernel."""

    name = "S-LoRA"
    #: Fig. 18 — ATMM reduces fluctuation 3x vs S-LoRA.
    jitter_frac = 0.06

    config: TilingConfig = SLORA_CONFIG

    def pair_seconds(self, token_counts, ranks, hidden_dim) -> float:
        shrink, expand = self._grouped(token_counts, ranks, hidden_dim)
        t = self.cost_model.grouped_seconds(shrink, self.config)
        t += self.cost_model.grouped_seconds(expand, self.config)
        return t


class PunicaOperator(LoRAOperator):
    """Punica's static CUTLASS Tensor-core kernel (SGMV)."""

    name = "Punica"
    #: Fig. 18 — ATMM reduces fluctuation 2x vs Punica.
    jitter_frac = 0.04

    config: TilingConfig = PUNICA_CONFIG

    def pair_seconds(self, token_counts, ranks, hidden_dim) -> float:
        shrink, expand = self._grouped(token_counts, ranks, hidden_dim)
        t = self.cost_model.grouped_seconds(shrink, self.config)
        t += self.cost_model.grouped_seconds(expand, self.config)
        return t


class EinsumOperator(LoRAOperator):
    """dLoRA's ``torch.einsum`` unmerged-inference path.

    Modelled as: pad every group to the batch-max (m, rank), run a batched
    GEMM under a cuBLAS-like heuristic config pick, bracketed by
    permute/contiguous passes (extra launches + one round trip of the
    padded operands through HBM), plus framework dispatch overhead.
    """

    name = "dLoRA"
    #: Fig. 18 — ATMM reduces fluctuation 2x vs dLoRA.
    jitter_frac = 0.04

    #: cuBLAS-ish heuristic candidates: one small-, one large-tile config.
    _HEURISTIC_CONFIGS = (
        TilingConfig(bm=32, bk=32, bn=32, wm=16, wk=16, wn=16,
                     double_buffered=False),
        TilingConfig(bm=128, bk=32, bn=64, wm=64, wk=32, wn=32,
                     double_buffered=False),
    )

    #: einsum string parsing + dispatcher + autograd bookkeeping per call.
    FRAMEWORK_OVERHEAD_S = 25e-6

    #: permute/reshape kernels einsum inserts around the batched GEMM.
    EXTRA_LAUNCHES = 3

    def _heuristic_config(self, shape: GemmShape) -> TilingConfig:
        """cuBLAS-style pick: large tiles once the padded M is large."""
        return self._HEURISTIC_CONFIGS[1 if shape.m >= 256 else 0]

    def _padded_uniform(self, grouped: GroupedGemm) -> GroupedGemm:
        """Pad every problem to the group max along m, k, and n."""
        m = grouped.max_m
        n = grouped.max_n
        k = max(p.k for p in grouped.problems)
        return GroupedGemm.of(
            GemmShape(m, k, n) for _ in grouped.problems
        )

    def _batched_seconds(self, grouped: GroupedGemm) -> float:
        padded = self._padded_uniform(grouped)
        cfg = self._heuristic_config(padded.problems[0])
        t = self.cost_model.batched_padded_seconds(
            padded, cfg, extra_launches=self.EXTRA_LAUNCHES
        )
        # Permute/contiguous passes stream the padded operands once more.
        extra_bytes = sum(
            p.input_bytes_fp16 + p.output_bytes_fp16 for p in padded.problems
        )
        t += self.cost_model.elementwise_seconds(extra_bytes)
        return t + self.FRAMEWORK_OVERHEAD_S

    def pair_seconds(self, token_counts, ranks, hidden_dim) -> float:
        shrink, expand = self._grouped(token_counts, ranks, hidden_dim)
        return self._batched_seconds(shrink) + self._batched_seconds(expand)


def make_operator(
    name: str,
    gpu: GPUSpec,
    cost_model: Optional[GemmCostModel] = None,
) -> LoRAOperator:
    """Factory for operators by figure label.

    Accepted names (case-insensitive): ``atmm``/``v-lora``, ``s-lora``,
    ``punica``, ``dlora``/``einsum``.
    """
    from repro.kernels.atmm import ATMMOperator  # local import: avoids cycle

    cm = cost_model or GemmCostModel(gpu)
    key = name.lower().replace("_", "-")
    if key in ("atmm", "v-lora", "vlora"):
        return ATMMOperator(cm)
    if key in ("s-lora", "slora"):
        return SLoRAOperator(cm)
    if key == "punica":
        return PunicaOperator(cm)
    if key in ("dlora", "d-lora", "einsum"):
        return EinsumOperator(cm)
    raise ValueError(
        f"unknown operator {name!r}; expected one of "
        "atmm, s-lora, punica, dlora"
    )
