"""Profile-based optimal tiling search (§4.3.2, Algorithm 2).

The search treats kernel latency as a black box (here: the analytical
cost model standing in for CUTLASS Profiler), profiles every
hardware-valid tiling configuration for every reachable input shape, and
records the argmin in a hash table keyed by the input shape.  At runtime
ATMM does an O(1) lookup (§4.3.1, Fig. 24).

Expert-knowledge pruning from the paper:

* hardware side — tile dims are powers of two, at least 16, and must fit
  double-buffered in shared memory / the register file (already encoded in
  :func:`repro.kernels.tiling.enumerate_configs`);
* input side — the model dimension fixes K (or N) to a handful of values
  (e.g. 4096 for Qwen-VL), ranks are few, and the token dimension M is
  bucketed, so the shape space is small enough to sweep offline
  (<30 minutes on the paper's testbed; seconds here).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.hardware.gpu import GPUSpec
from repro.kernels.cost_model import GemmCostModel
from repro.kernels.shapes import GemmShape
from repro.kernels.tiling import TilingConfig, enumerate_configs

#: Largest token dimension the search profiles (MaxBS * max seq len).
DEFAULT_MAX_M = 16384


def bucket_m(m: int) -> int:
    """Round the token dimension up to its profiling bucket.

    Buckets are powers of two (minimum 16): the search profiles each
    bucket's upper edge, so a lookup with any ``m`` inside the bucket
    returns a configuration valid (and near-optimal) for it.
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    b = 16
    while b < m:
        b <<= 1
    return b


def shape_key(m: int, k: int, n: int) -> int:
    """Pack a (bucketed) shape into a single integer hash-table key.

    Mirrors the paper's implementation detail (§5): the hash table keys
    input shapes with a 128-bit unsigned integer.
    """
    if min(m, k, n) <= 0:
        raise ValueError(f"shape dims must be positive, got ({m},{k},{n})")
    if max(m, k, n) >= (1 << 32):
        raise ValueError(f"shape dim exceeds 32-bit key field: ({m},{k},{n})")
    return m | (k << 32) | (n << 64)


@dataclass
class SearchReport:
    """Summary statistics from one search run."""

    num_shapes: int = 0
    num_configs: int = 0
    num_profiles: int = 0
    distinct_winners: int = 0
    entries: Dict[int, Tuple[GemmShape, TilingConfig, float]] = field(
        default_factory=dict
    )


class OptimalTilingTable:
    """Hash table mapping shape keys to their optimal tiling configuration."""

    def __init__(self, fallback: Optional[TilingConfig] = None):
        self._table: Dict[int, TilingConfig] = {}
        self._latency: Dict[int, float] = {}
        self.fallback = fallback

    def __len__(self) -> int:
        return len(self._table)

    def insert(self, key: int, cfg: TilingConfig, latency_s: float) -> None:
        self._table[key] = cfg
        self._latency[key] = latency_s

    def lookup(self, m: int, k: int, n: int) -> TilingConfig:
        """Return the optimal configuration for an input shape.

        ``m`` is bucketed before lookup.  If the exact (k, n) pair was not
        profiled, falls back to the table-wide fallback configuration
        (ATMM always registers one) rather than failing at runtime.
        """
        key = shape_key(bucket_m(m), k, n)
        cfg = self._table.get(key)
        if cfg is not None:
            return cfg
        if self.fallback is not None:
            return self.fallback
        raise KeyError(
            f"no tiling entry for shape ({m},{k},{n}) and no fallback set"
        )

    def lookup_shape(self, shape: GemmShape) -> TilingConfig:
        return self.lookup(shape.m, shape.k, shape.n)

    def contains(self, m: int, k: int, n: int) -> bool:
        return shape_key(bucket_m(m), k, n) in self._table

    def profiled_latency(self, m: int, k: int, n: int) -> Optional[float]:
        """The offline-profiled latency for a shape's bucket, if recorded."""
        return self._latency.get(shape_key(bucket_m(m), k, n))

    # -- persistence --------------------------------------------------------

    def save(self, path: Union[str, pathlib.Path]) -> None:
        """Persist the table as JSON.

        This plays the role of the paper's ahead-of-time compiled kernel
        store (§5): the offline search runs once, the serving process
        loads the table at startup.
        """
        payload = {
            "fallback": self.fallback.to_dict() if self.fallback else None,
            "entries": [
                {
                    "key": str(key),
                    "config": cfg.to_dict(),
                    "latency_s": self._latency.get(key),
                }
                for key, cfg in self._table.items()
            ],
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "OptimalTilingTable":
        """Inverse of :meth:`save`."""
        with open(path) as fh:
            payload = json.load(fh)
        fallback = (
            TilingConfig.from_dict(payload["fallback"])
            if payload.get("fallback") else None
        )
        table = cls(fallback=fallback)
        for entry in payload.get("entries", []):
            table.insert(
                int(entry["key"]),
                TilingConfig.from_dict(entry["config"]),
                float(entry["latency_s"]) if entry.get("latency_s")
                is not None else float("nan"),
            )
        return table


class TilingSearch:
    """Algorithm 2: sweep shapes x configs, record per-shape winners."""

    def __init__(
        self,
        gpu: GPUSpec,
        cost_model: Optional[GemmCostModel] = None,
        include_split_k: bool = True,
        coarse: bool = False,
    ):
        self.gpu = gpu
        self.cost_model = cost_model or GemmCostModel(gpu)
        configs = enumerate_configs(gpu, include_split_k=include_split_k)
        if coarse:
            # Keep a representative subset for fast test runs: drop the
            # rectangular warp-tile variants, keep all block tiles.
            configs = [c for c in configs if c.wm == c.wn and c.wk == c.wm]
        if not configs:
            raise RuntimeError(f"no valid tiling configurations for {gpu.name}")
        self.configs = configs

    def m_buckets(self, max_m: int = DEFAULT_MAX_M) -> List[int]:
        """Power-of-two M buckets up to ``max_m``."""
        buckets = []
        b = 16
        while b <= max_m:
            buckets.append(b)
            b <<= 1
        return buckets

    def kn_pairs_for_model(
        self, hidden_dims: Sequence[int], ranks: Sequence[int]
    ) -> List[Tuple[int, int]]:
        """The (K, N) pairs LoRA serving reaches for the given model dims.

        For each hidden dim ``d`` and rank ``r``: shrink GEMMs are
        ``(m, d, r)`` and expand GEMMs are ``(m, r, d)``; the mode switcher
        additionally computes ΔW = B x A as ``(d, r, d)``.
        """
        pairs = set()
        for d in hidden_dims:
            for r in ranks:
                pairs.add((d, r))   # shrink
                pairs.add((r, d))   # expand / delta-W
        return sorted(pairs)

    def search(
        self,
        kn_pairs: Iterable[Tuple[int, int]],
        max_m: int = DEFAULT_MAX_M,
        extra_shapes: Iterable[GemmShape] = (),
    ) -> Tuple[OptimalTilingTable, SearchReport]:
        """Run the sweep and build the hash table.

        Parameters
        ----------
        kn_pairs:
            (K, N) pairs to profile across all M buckets.
        max_m:
            Largest M bucket.
        extra_shapes:
            Additional exact shapes to profile (e.g. ΔW shapes ``(d,r,d)``).
        """
        report = SearchReport(num_configs=len(self.configs))
        shapes: List[GemmShape] = []
        for k, n in kn_pairs:
            for m in self.m_buckets(max_m):
                shapes.append(GemmShape(m, k, n))
        for s in extra_shapes:
            shapes.append(GemmShape(bucket_m(s.m), s.k, s.n))

        table = OptimalTilingTable()
        winners = set()
        for shape in shapes:
            best_cfg, best_lat = self.profile_shape(shape)
            key = shape_key(shape.m, shape.k, shape.n)
            table.insert(key, best_cfg, best_lat)
            report.entries[key] = (shape, best_cfg, best_lat)
            winners.add(best_cfg)
            report.num_profiles += len(self.configs)
        report.num_shapes = len(shapes)
        report.distinct_winners = len(winners)

        # Register a sane fallback for shapes outside the profiled set.
        mid = GemmShape(1024, 4096, 4096)
        fallback_cfg, _ = self.profile_shape(mid)
        table.fallback = fallback_cfg
        return table, report

    def profile_shape(self, shape: GemmShape) -> Tuple[TilingConfig, float]:
        """Profile every configuration for one shape; return the winner."""
        best_cfg: Optional[TilingConfig] = None
        best_lat = float("inf")
        for cfg in self.configs:
            lat = self.cost_model.gemm_seconds(shape, cfg)
            if lat < best_lat:
                best_lat = lat
                best_cfg = cfg
        assert best_cfg is not None
        return best_cfg, best_lat


_TABLE_CACHE: Dict[tuple, OptimalTilingTable] = {}


def default_table(
    gpu: GPUSpec,
    hidden_dims: Sequence[int] = (4096,),
    ranks: Sequence[int] = (16, 32, 64, 128),
    max_m: int = DEFAULT_MAX_M,
    coarse: bool = True,
) -> OptimalTilingTable:
    """Build (or fetch from the process-wide cache) an ATMM tiling table.

    The cache plays the role of the paper's ahead-of-time compiled kernel
    set: the search runs once per (gpu, dims, ranks) tuple per process.
    """
    key = (gpu.name, tuple(sorted(hidden_dims)), tuple(sorted(ranks)), max_m, coarse)
    table = _TABLE_CACHE.get(key)
    if table is None:
        search = TilingSearch(gpu, coarse=coarse)
        pairs = search.kn_pairs_for_model(hidden_dims, ranks)
        extra = [GemmShape(d, r, d) for d in hidden_dims for r in ranks]
        table, _ = search.search(pairs, max_m=max_m, extra_shapes=extra)
        _TABLE_CACHE[key] = table
    return table
