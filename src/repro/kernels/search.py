"""Profile-based optimal tiling search (§4.3.2, Algorithm 2).

The search treats kernel latency as a black box (here: the analytical
cost model standing in for CUTLASS Profiler), profiles every
hardware-valid tiling configuration for every reachable input shape, and
records the argmin in a hash table keyed by the input shape.  At runtime
ATMM does an O(1) lookup (§4.3.1, Fig. 24).

Expert-knowledge pruning from the paper:

* hardware side — tile dims are powers of two, at least 16, and must fit
  double-buffered in shared memory / the register file (already encoded in
  :func:`repro.kernels.tiling.enumerate_configs`);
* input side — the model dimension fixes K (or N) to a handful of values
  (e.g. 4096 for Qwen-VL), ranks are few, and the token dimension M is
  bucketed, so the shape space is small enough to sweep offline
  (<30 minutes on the paper's testbed; seconds here).

Two executions of the sweep coexist:

* the **scalar reference** (``search(..., vectorize=False)`` /
  :meth:`TilingSearch.profile_shape`) — the seed's ``shapes x configs``
  double loop, kept as the ground truth;
* the **vectorized path** (default) — one batched cost-model evaluation
  per ``(K, N)`` pair via
  :meth:`~repro.kernels.cost_model.GemmCostModel.gemm_seconds_batch`,
  plus ε-dominance pruning across M buckets.  Winners and latencies are
  bit-identical to the scalar path (property-tested); only wall time
  changes.

Ahead-of-time amortization (§5): :func:`default_table` consults the
persistent kernel-table store (:mod:`repro.kernels.store`) before
searching, so serving processes, benches, and parallel sweep workers
load a prebuilt table from disk instead of re-profiling.
"""

from __future__ import annotations

import json
import math
import pathlib
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.hardware.gpu import GPUSpec
from repro.kernels.cost_model import GemmCostModel
from repro.kernels.shapes import GemmShape
from repro.kernels.tiling import TilingConfig, TilingConfigSpace

#: Largest token dimension the search profiles (MaxBS * max seq len).
DEFAULT_MAX_M = 16384

#: Dominance-pruning margin: after probing every other M bucket of a
#: (K, N) pair, configurations that were never within (1 + ε) of the
#: probe winner are dropped for the remaining buckets.  0.5 keeps every
#: true winner with >= 1.4x margin across all registry GPUs (the worst
#: observed requirement is ε ≈ 0.36) while discarding ~80 % of the
#: space; the kernel-search bench re-asserts winner equivalence on every
#: run.
DEFAULT_PRUNE_EPS = 0.5

#: Probe every ``stride``-th M bucket (plus the largest) before pruning.
PRUNE_PROBE_STRIDE = 2

#: Below this many buckets per (K, N) the probe set is the whole group,
#: so pruning cannot save anything — sweep directly.
MIN_PRUNE_BUCKETS = 4


def bucket_m(m: int) -> int:
    """Round the token dimension up to its profiling bucket.

    Buckets are powers of two (minimum 16): the search profiles each
    bucket's upper edge, so a lookup with any ``m`` inside the bucket
    returns a configuration valid (and near-optimal) for it.

    Implemented with the int bit-length trick (runtime lookup fast
    path): ``2 ** ceil(log2(m))``, floored at 16, with no loop.
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    if m <= 16:
        return 16
    return 1 << (m - 1).bit_length()


def shape_key(m: int, k: int, n: int) -> int:
    """Pack a (bucketed) shape into a single integer hash-table key.

    Mirrors the paper's implementation detail (§5): the hash table keys
    input shapes with a 128-bit unsigned integer.
    """
    if min(m, k, n) <= 0:
        raise ValueError(f"shape dims must be positive, got ({m},{k},{n})")
    if max(m, k, n) >= (1 << 32):
        raise ValueError(f"shape dim exceeds 32-bit key field: ({m},{k},{n})")
    return m | (k << 32) | (n << 64)


@dataclass
class SearchReport:
    """Summary statistics from one search run."""

    num_shapes: int = 0
    num_configs: int = 0
    num_profiles: int = 0
    #: Cost-model cells actually evaluated (== ``num_profiles`` on the
    #: scalar path; smaller under dominance pruning).
    num_evals: int = 0
    #: Configurations dropped by ε-dominance pruning, summed over groups.
    pruned_configs: int = 0
    vectorized: bool = False
    distinct_winners: int = 0
    entries: Dict[int, Tuple[GemmShape, TilingConfig, float]] = field(
        default_factory=dict
    )


class OptimalTilingTable:
    """Hash table mapping shape keys to their optimal tiling configuration."""

    #: On-disk payload format.  v2 deduplicates configurations (entries
    #: reference a config index), which makes warm store loads ~3x
    #: faster than the v1 config-per-entry layout; v1 files still load.
    FORMAT_VERSION = 2

    #: Entries kept in the exact-shape lookup memo before it is cleared
    #: wholesale (memoization, not state).
    _MEMO_CAP = 4096

    def __init__(self, fallback: Optional[TilingConfig] = None):
        self._table: Dict[int, TilingConfig] = {}
        self._latency: Dict[int, float] = {}
        self._fallback = fallback
        # Runtime fast path: exact (m, k, n) -> config for recent hits,
        # skipping bucket_m + shape_key on repeat lookups.
        self._memo: Dict[Tuple[int, int, int], TilingConfig] = {}

    def __len__(self) -> int:
        return len(self._table)

    @property
    def fallback(self) -> Optional[TilingConfig]:
        return self._fallback

    @fallback.setter
    def fallback(self, cfg: Optional[TilingConfig]) -> None:
        self._fallback = cfg
        self._memo.clear()

    def insert(self, key: int, cfg: TilingConfig, latency_s: float) -> None:
        self._table[key] = cfg
        self._latency[key] = latency_s
        self._memo.clear()

    def lookup(self, m: int, k: int, n: int) -> TilingConfig:
        """Return the optimal configuration for an input shape.

        ``m`` is bucketed before lookup.  If the exact (k, n) pair was not
        profiled, falls back to the table-wide fallback configuration
        (ATMM always registers one) rather than failing at runtime.
        Recent ``(m, k, n)`` hits are memoized so the serving hot path
        pays one dict probe instead of bucketing + key packing.
        """
        memo_key = (m, k, n)
        cfg = self._memo.get(memo_key)
        if cfg is not None:
            return cfg
        key = shape_key(bucket_m(m), k, n)
        cfg = self._table.get(key)
        if cfg is None:
            if self._fallback is None:
                raise KeyError(
                    f"no tiling entry for shape ({m},{k},{n}) and no "
                    f"fallback set"
                )
            cfg = self._fallback
        if len(self._memo) >= self._MEMO_CAP:
            self._memo.clear()
        self._memo[memo_key] = cfg
        return cfg

    def lookup_shape(self, shape: GemmShape) -> TilingConfig:
        return self.lookup(shape.m, shape.k, shape.n)

    def contains(self, m: int, k: int, n: int) -> bool:
        return shape_key(bucket_m(m), k, n) in self._table

    def profiled_latency(self, m: int, k: int, n: int) -> Optional[float]:
        """The offline-profiled latency for a shape's bucket, if recorded."""
        return self._latency.get(shape_key(bucket_m(m), k, n))

    # -- persistence --------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-serializable form (shared by :meth:`save` and the store).

        Distinct configurations are stored once; entries reference them
        by index.  The search typically finds a few dozen winners for
        ~100 shapes, so deduplication shrinks files ~2.5x and makes the
        warm-load path (store hit at process start) proportionally
        faster.
        """
        config_index: Dict[TilingConfig, int] = {}
        configs: List[dict] = []

        def index_of(cfg: TilingConfig) -> int:
            idx = config_index.get(cfg)
            if idx is None:
                idx = len(configs)
                config_index[cfg] = idx
                configs.append(cfg.to_dict())
            return idx

        entries = [
            [str(key), index_of(cfg), self._latency.get(key)]
            for key, cfg in self._table.items()
        ]
        return {
            "format": self.FORMAT_VERSION,
            "fallback": self._fallback.to_dict() if self._fallback else None,
            "configs": configs,
            "entries": entries,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "OptimalTilingTable":
        """Inverse of :meth:`to_payload`; also reads the legacy v1 layout.

        Raises ``KeyError`` / ``TypeError`` / ``ValueError`` on malformed
        payloads — the store turns those into a cache miss.
        """
        fallback = (
            TilingConfig.from_dict(payload["fallback"])
            if payload.get("fallback") else None
        )
        table = cls(fallback=fallback)

        def latency_of(raw) -> float:
            return float(raw) if raw is not None else float("nan")

        if payload.get("format", 1) >= 2:
            configs = [TilingConfig.from_dict(d) for d in payload["configs"]]
            for key, cfg_idx, latency in payload["entries"]:
                table.insert(int(key), configs[cfg_idx], latency_of(latency))
        else:
            # v1: one config dict per entry.
            for entry in payload.get("entries", []):
                table.insert(
                    int(entry["key"]),
                    TilingConfig.from_dict(entry["config"]),
                    latency_of(entry.get("latency_s")),
                )
        return table

    def save(self, path: Union[str, pathlib.Path]) -> None:
        """Persist the table as JSON.

        This plays the role of the paper's ahead-of-time compiled kernel
        store (§5): the offline search runs once, the serving process
        loads the table at startup.  (For versioned, fingerprint-keyed,
        atomically-written persistence use
        :class:`repro.kernels.store.KernelTableStore`.)
        """
        with open(path, "w") as fh:
            json.dump(self.to_payload(), fh, indent=1, sort_keys=True)

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "OptimalTilingTable":
        """Inverse of :meth:`save`."""
        with open(path) as fh:
            payload = json.load(fh)
        return cls.from_payload(payload)


class TilingSearch:
    """Algorithm 2: sweep shapes x configs, record per-shape winners.

    Configurations live in a :class:`TilingConfigSpace` (struct-of-array
    columns in canonical enumeration order); ``configs`` materializes
    the object list lazily for the scalar reference path.  Ties in the
    cost model are broken deterministically by the first configuration
    in canonical order — the scalar loop's strict ``<``, the vectorized
    path's first-occurrence ``argmin``, and any reloaded table all agree.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        cost_model: Optional[GemmCostModel] = None,
        include_split_k: bool = True,
        coarse: bool = False,
    ):
        self.gpu = gpu
        self.cost_model = cost_model or GemmCostModel(gpu)
        space = TilingConfigSpace.enumerate_space(
            gpu, include_split_k=include_split_k
        )
        if coarse:
            # Keep a representative subset for fast test runs: drop the
            # rectangular warp-tile variants, keep all block tiles.
            space = space.select(
                (space.wm == space.wn) & (space.wk == space.wm)
            )
        if len(space) == 0:
            raise RuntimeError(f"no valid tiling configurations for {gpu.name}")
        self.space = space
        self._configs: Optional[List[TilingConfig]] = None

    @property
    def configs(self) -> List[TilingConfig]:
        """The configuration objects, materialized on first use."""
        if self._configs is None:
            self._configs = self.space.configs()
        return self._configs

    def m_buckets(self, max_m: int = DEFAULT_MAX_M) -> List[int]:
        """Power-of-two M buckets up to ``max_m``."""
        buckets = []
        b = 16
        while b <= max_m:
            buckets.append(b)
            b <<= 1
        return buckets

    def kn_pairs_for_model(
        self, hidden_dims: Sequence[int], ranks: Sequence[int]
    ) -> List[Tuple[int, int]]:
        """The (K, N) pairs LoRA serving reaches for the given model dims.

        For each hidden dim ``d`` and rank ``r``: shrink GEMMs are
        ``(m, d, r)`` and expand GEMMs are ``(m, r, d)``; the mode switcher
        additionally computes ΔW = B x A as ``(d, r, d)``.
        """
        pairs = set()
        for d in hidden_dims:
            for r in ranks:
                pairs.add((d, r))   # shrink
                pairs.add((r, d))   # expand / delta-W
        return sorted(pairs)

    def search(
        self,
        kn_pairs: Iterable[Tuple[int, int]],
        max_m: int = DEFAULT_MAX_M,
        extra_shapes: Iterable[GemmShape] = (),
        vectorize: bool = True,
        prune_eps: Optional[float] = DEFAULT_PRUNE_EPS,
    ) -> Tuple[OptimalTilingTable, SearchReport]:
        """Run the sweep and build the hash table.

        Parameters
        ----------
        kn_pairs:
            (K, N) pairs to profile across all M buckets.
        max_m:
            Largest M bucket.
        extra_shapes:
            Additional exact shapes to profile (e.g. ΔW shapes ``(d,r,d)``).
        vectorize:
            Evaluate the cost model in batched numpy (default) instead
            of the seed's scalar double loop.  Winners and latencies are
            identical either way; only wall time differs.
        prune_eps:
            ε for dominance pruning on the vectorized path (``None``
            disables pruning; ignored when ``vectorize=False``).
        """
        report = SearchReport(num_configs=len(self.space),
                              vectorized=vectorize)
        shapes: List[GemmShape] = []
        for k, n in kn_pairs:
            for m in self.m_buckets(max_m):
                shapes.append(GemmShape(m, k, n))
        for s in extra_shapes:
            shapes.append(GemmShape(bucket_m(s.m), s.k, s.n))

        if vectorize:
            winners = self._winners_vectorized(shapes, prune_eps, report)
        else:
            winners = {}
            for shape in shapes:
                mkn = (shape.m, shape.k, shape.n)
                if mkn not in winners:
                    winners[mkn] = self.profile_shape(shape)
                report.num_profiles += len(self.space)
            report.num_evals = report.num_profiles

        table = OptimalTilingTable()
        distinct = set()
        for shape in shapes:
            best_cfg, best_lat = winners[(shape.m, shape.k, shape.n)]
            key = shape_key(shape.m, shape.k, shape.n)
            table.insert(key, best_cfg, best_lat)
            report.entries[key] = (shape, best_cfg, best_lat)
            distinct.add(best_cfg)
        report.num_shapes = len(shapes)
        report.distinct_winners = len(distinct)

        # Register a sane fallback for shapes outside the profiled set.
        mid = GemmShape(1024, 4096, 4096)
        if vectorize:
            fallback_cfg, _ = self.profile_shape_vectorized(mid)
        else:
            fallback_cfg, _ = self.profile_shape(mid)
        table.fallback = fallback_cfg
        return table, report

    def profile_shape(self, shape: GemmShape) -> Tuple[TilingConfig, float]:
        """Profile every configuration for one shape; return the winner.

        This is the scalar reference path (the seed's inner loop).  The
        strict ``<`` keeps the *first* configuration in canonical order
        on exact latency ties, matching the vectorized ``argmin``.
        """
        best_cfg: Optional[TilingConfig] = None
        best_lat = float("inf")
        for cfg in self.configs:
            lat = self.cost_model.gemm_seconds(shape, cfg)
            if lat < best_lat:
                best_lat = lat
                best_cfg = cfg
        assert best_cfg is not None
        return best_cfg, best_lat

    def profile_shape_vectorized(
        self, shape: GemmShape
    ) -> Tuple[TilingConfig, float]:
        """Batched-evaluation twin of :meth:`profile_shape` (same winner)."""
        lat = self.cost_model.gemm_seconds_batch([shape], self.space)[0]
        j = int(lat.argmin())
        return self.space.config(j), float(lat[j])

    # -- vectorized sweep ---------------------------------------------------

    def _winners_vectorized(
        self,
        shapes: Sequence[GemmShape],
        prune_eps: Optional[float],
        report: SearchReport,
    ) -> Dict[Tuple[int, int, int], Tuple[TilingConfig, float]]:
        """Per-unique-shape winners via batched evaluation + pruning."""
        groups: Dict[Tuple[int, int], List[int]] = {}
        for shape in shapes:
            ms = groups.setdefault((shape.k, shape.n), [])
            if shape.m not in ms:
                ms.append(shape.m)
        winners: Dict[Tuple[int, int, int], Tuple[TilingConfig, float]] = {}
        for (k, n), ms in groups.items():
            idx, lats, evals, pruned = self._search_group(k, n, ms, prune_eps)
            for m, j, lat in zip(ms, idx, lats):
                winners[(m, k, n)] = (self.space.config(j), float(lat))
            report.num_evals += evals
            report.pruned_configs += pruned
            report.num_profiles += len(ms) * len(self.space)
        return winners

    def _search_group(
        self,
        k: int,
        n: int,
        ms: Sequence[int],
        prune_eps: Optional[float],
    ) -> Tuple[np.ndarray, np.ndarray, int, int]:
        """Sweep one (K, N) pair's M buckets.

        Returns ``(winner_idx, winner_lat, evals, pruned)`` aligned with
        ``ms``.  With pruning: every ``PRUNE_PROBE_STRIDE``-th bucket
        (plus the largest) is probed against the full configuration
        space; configurations never within ``(1 + ε)`` of a probe winner
        are dropped before the remaining buckets are swept.  Argmin over
        the survivor columns preserves canonical-order tie-breaking
        because survivor indices stay ascending.
        """
        cm = self.cost_model
        num_configs = len(self.space)
        shapes = [GemmShape(m, k, n) for m in ms]
        if (prune_eps is None or len(ms) < MIN_PRUNE_BUCKETS
                or num_configs <= 1):
            lat = cm.gemm_seconds_batch(shapes, self.space)
            win = lat.argmin(axis=1)
            return win, lat[np.arange(len(ms)), win], lat.size, 0

        probe_pos = list(range(0, len(ms), PRUNE_PROBE_STRIDE))
        if probe_pos[-1] != len(ms) - 1:
            probe_pos.append(len(ms) - 1)
        rest_pos = [i for i in range(len(ms)) if i not in set(probe_pos)]

        probe_lat = cm.gemm_seconds_batch(
            [shapes[i] for i in probe_pos], self.space
        )
        probe_min = probe_lat.min(axis=1, keepdims=True)
        survive = (probe_lat <= (1.0 + prune_eps) * probe_min).any(axis=0)
        surv_idx = np.nonzero(survive)[0]

        win = np.empty(len(ms), dtype=np.int64)
        lats = np.empty(len(ms), dtype=np.float64)
        probe_win = probe_lat.argmin(axis=1)
        win[probe_pos] = probe_win
        lats[probe_pos] = probe_lat[np.arange(len(probe_pos)), probe_win]

        evals = probe_lat.size
        if rest_pos:
            rest_lat = cm.gemm_seconds_batch(
                [shapes[i] for i in rest_pos], self.space,
                config_idx=surv_idx,
            )
            rel_win = rest_lat.argmin(axis=1)
            win[rest_pos] = surv_idx[rel_win]
            lats[rest_pos] = rest_lat[np.arange(len(rest_pos)), rel_win]
            evals += rest_lat.size
        pruned = (num_configs - len(surv_idx)) * len(rest_pos)
        return win, lats, evals, pruned


#: Process-wide table cache keyed by the store fingerprint.  Guarded by
#: a lock so concurrent engines in one process neither race the dict nor
#: duplicate a search.
_TABLE_CACHE: Dict[str, OptimalTilingTable] = {}
_TABLE_CACHE_LOCK = threading.Lock()


def clear_table_cache() -> None:
    """Drop the process-wide table cache (tests / long-lived tools)."""
    with _TABLE_CACHE_LOCK:
        _TABLE_CACHE.clear()


def default_table(
    gpu: GPUSpec,
    hidden_dims: Sequence[int] = (4096,),
    ranks: Sequence[int] = (16, 32, 64, 128),
    max_m: int = DEFAULT_MAX_M,
    coarse: bool = True,
    store_dir: Optional[Union[str, pathlib.Path]] = None,
) -> OptimalTilingTable:
    """Build (or fetch from cache / disk) an ATMM tiling table.

    Lookup order, mirroring the paper's ahead-of-time compiled kernel
    set (§5):

    1. the process-wide in-memory cache (one search per fingerprint per
       process, thread-safe);
    2. the persistent on-disk store, when configured — ``store_dir``
       argument, else the ``REPRO_KERNEL_STORE_DIR`` environment
       variable (see :mod:`repro.kernels.store`).  Parallel sweep
       workers inherit the environment, so a prebuilt table is loaded
       by every worker instead of re-searched;
    3. the vectorized tiling search, whose result is written back to the
       store (best-effort, atomic) for the next process.
    """
    from repro.kernels import store as store_mod

    fingerprint = store_mod.table_fingerprint(
        gpu, hidden_dims, ranks, max_m, coarse
    )
    table = _TABLE_CACHE.get(fingerprint)
    if table is not None:
        return table
    with _TABLE_CACHE_LOCK:
        table = _TABLE_CACHE.get(fingerprint)
        if table is not None:
            return table
        root = store_mod.resolve_store_dir(store_dir)
        store = store_mod.KernelTableStore(root) if root is not None else None
        loaded = False
        if store is not None:
            disk_table = store.load(fingerprint)
            if disk_table is not None:
                table = disk_table
                loaded = True
        if table is None:
            search = TilingSearch(gpu, coarse=coarse)
            pairs = search.kn_pairs_for_model(hidden_dims, ranks)
            extra = [GemmShape(d, r, d) for d in hidden_dims for r in ranks]
            table, _ = search.search(pairs, max_m=max_m, extra_shapes=extra)
        if store is not None and not loaded:
            try:
                store.save(fingerprint, table, meta={
                    "gpu": gpu.name,
                    "hidden_dims": sorted(hidden_dims),
                    "ranks": sorted(ranks),
                    "max_m": max_m,
                    "coarse": coarse,
                })
            except OSError:
                pass  # the store is an optimization, never a failure
        _TABLE_CACHE[fingerprint] = table
    return table
