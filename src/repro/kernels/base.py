"""Common interface for LoRA-adapter batching operators.

An operator answers one question for the serving engine: *how long does it
take to apply a batch of heterogeneous LoRA adapters to one projection's
activations?*  That cost is two grouped GEMMs (shrink + expand, Fig. 2a)
plus an elementwise add of the LoRA output onto the base output, and it is
exactly where S-LoRA, Punica, dLoRA, and ATMM differ (§3.2 C2, §6.3.2).
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.hardware.memory import FP16_BYTES
from repro.kernels.cost_model import GemmCostModel
from repro.kernels.shapes import lora_gemm_shapes


class LoRAOperator(abc.ABC):
    """Latency model for one LoRA-batching operator implementation.

    Attributes
    ----------
    name:
        Operator name as used in figures ("ATMM", "S-LoRA", ...).
    jitter_frac:
        Run-to-run latency fluctuation as a fraction of the mean; drives
        the stability comparison (Fig. 18).  ATMM's adaptive tiling keeps
        SM occupancy and memory phases regular, so its jitter is the
        smallest.
    """

    name: str = "abstract"
    jitter_frac: float = 0.0

    def __init__(self, cost_model: GemmCostModel):
        self.cost_model = cost_model

    # -- required per-implementation pieces ---------------------------------

    @abc.abstractmethod
    def pair_seconds(
        self,
        token_counts: Sequence[int],
        ranks: Sequence[int],
        hidden_dim: int,
    ) -> float:
        """Latency of shrink + expand grouped GEMMs for one projection."""

    # -- shared pieces -------------------------------------------------------

    def add_seconds(self, total_tokens: int, hidden_dim: int) -> float:
        """Elementwise add of the LoRA output onto the base output.

        Memory bound: read base output + read LoRA output + write result.
        """
        nbytes = 3 * total_tokens * hidden_dim * FP16_BYTES
        return (
            self.cost_model.elementwise_seconds(nbytes)
            + self.cost_model.launch_seconds(1)
        )

    def layer_seconds(
        self,
        token_counts: Sequence[int],
        ranks: Sequence[int],
        hidden_dim: int,
        num_projections: int = 4,
    ) -> float:
        """Full extra latency one transformer layer pays for unmerged LoRA."""
        total = sum(token_counts)
        per_proj = self.pair_seconds(token_counts, ranks, hidden_dim)
        per_proj += self.add_seconds(total, hidden_dim)
        return per_proj * num_projections

    def sample_seconds(
        self, mean_seconds: float, rng: Optional[np.random.Generator] = None
    ) -> float:
        """One latency sample with this operator's run-to-run jitter.

        Deterministic (returns the mean) when ``rng`` is ``None``.
        """
        if rng is None or self.jitter_frac == 0.0:
            return mean_seconds
        sample = rng.normal(mean_seconds, self.jitter_frac * mean_seconds)
        # A run can never beat the in-kernel lower bound by much; clamp.
        return max(sample, mean_seconds * 0.5)

    # -- convenience ----------------------------------------------------------

    @staticmethod
    def _validated(token_counts: Sequence[int], ranks: Sequence[int]):
        if len(token_counts) == 0:
            raise ValueError("need at least one request group")
        if len(token_counts) != len(ranks):
            raise ValueError("token_counts and ranks must align")
        if any(t <= 0 for t in token_counts):
            raise ValueError(f"token counts must be positive: {token_counts}")
        if any(r <= 0 for r in ranks):
            raise ValueError(f"ranks must be positive: {ranks}")
        return list(token_counts), list(ranks)

    def _grouped(self, token_counts, ranks, hidden_dim):
        token_counts, ranks = self._validated(token_counts, ranks)
        return lora_gemm_shapes(token_counts, hidden_dim, ranks)
