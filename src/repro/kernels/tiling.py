"""Tiling configurations and hardware-validity rules (§4.3.1).

A tiled GEMM splits the ``(M×K) @ (K×N)`` problem into *thread-block
tiles*: each block computes a ``bm × bn`` output tile, marching over K in
``bk``-wide steps.  Inside a block, *warp tiles* of ``wm × wn`` (stepping
``wk`` over the block's K-chunk) are assigned to warps.  Table 1 writes a
configuration as ``(a, b, c, d, e, f)`` = thread-block tiles ``a×b``,
``b×c`` and warp tiles ``d×e``, ``e×f``; in our notation that is
``(bm, bk, bn, wm, wk, wn)``.

We additionally model *split-K* (``split_k`` partitions of the K dimension
computed by separate blocks and reduced at the end).  Split-K is how
fine-grained kernels such as S-LoRA's keep SMs busy on the tiny ``M``
shapes of the decode stage, at the price of extra reduction traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.hardware.gpu import GPUSpec
from repro.hardware.memory import FP16_BYTES, MemoryHierarchy

#: Minimum tile dimension the hardware supports (Tensor-core fragment).
MIN_TILE = 16

#: Maximum warps a thread block may hold (1024 threads / 32).
MAX_WARPS_PER_BLOCK = 32


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class TilingConfig:
    """One tiling configuration for a tiled GEMM kernel.

    Attributes
    ----------
    bm, bk, bn:
        Thread-block tile: the block computes ``bm × bn`` output,
        stepping ``bk`` along K.
    wm, wk, wn:
        Warp tile within the block.
    split_k:
        Number of K-partitions computed by distinct blocks (1 = no split).
    double_buffered:
        Whether the kernel double-buffers tile staging (ATMM does; §4.3.1
        "pipeline data loading and computing").
    tensor_cores:
        Whether the inner product runs on Tensor cores (requires 16-aligned
        warp tiles) or CUDA cores.
    """

    bm: int
    bk: int
    bn: int
    wm: int
    wk: int
    wn: int
    split_k: int = 1
    double_buffered: bool = True
    tensor_cores: bool = True

    def __post_init__(self) -> None:
        for name in ("bm", "bk", "bn", "wm", "wk", "wn"):
            v = getattr(self, name)
            if v < MIN_TILE:
                raise ValueError(f"{name}={v} below hardware minimum {MIN_TILE}")
            if not _is_pow2(v):
                raise ValueError(f"{name}={v} must be a power of two")
        if self.wm > self.bm or self.wn > self.bn or self.wk > self.bk:
            raise ValueError(f"warp tile exceeds block tile in {self}")
        if self.bm % self.wm or self.bn % self.wn or self.bk % self.wk:
            raise ValueError(f"warp tile must evenly divide block tile in {self}")
        if self.split_k < 1:
            raise ValueError(f"split_k must be >= 1, got {self.split_k}")
        if self.warps_per_block > MAX_WARPS_PER_BLOCK:
            raise ValueError(
                f"{self.warps_per_block} warps/block exceeds "
                f"{MAX_WARPS_PER_BLOCK}"
            )

    # -- derived -----------------------------------------------------------

    @property
    def warps_per_block(self) -> int:
        return (self.bm // self.wm) * (self.bn // self.wn)

    @property
    def smem_tile_bytes(self) -> int:
        """Shared-memory bytes staged per K-step (A tile + B tile)."""
        return FP16_BYTES * (self.bm * self.bk + self.bk * self.bn)

    @property
    def regfile_warp_bytes(self) -> int:
        """Register bytes per warp: accumulator (FP32) + operand fragments."""
        acc = 4 * self.wm * self.wn
        frag = FP16_BYTES * (self.wm * self.wk + self.wk * self.wn)
        return acc + frag

    def is_valid_for(self, gpu: GPUSpec) -> bool:
        """Whether this configuration can run on ``gpu`` at all."""
        hier = MemoryHierarchy(gpu)
        if not hier.smem_fits(self.smem_tile_bytes, self.double_buffered):
            return False
        if not hier.regfile_fits(
            self.regfile_warp_bytes, self.warps_per_block, self.double_buffered
        ):
            return False
        return True

    def as_tuple(self) -> tuple:
        """Table-1 style ``(bm, bk, bn, wm, wk, wn)`` tuple."""
        return (self.bm, self.bk, self.bn, self.wm, self.wk, self.wn)

    def to_dict(self) -> dict:
        """JSON-serializable form (for persisted tiling tables)."""
        return {
            "bm": self.bm, "bk": self.bk, "bn": self.bn,
            "wm": self.wm, "wk": self.wk, "wn": self.wn,
            "split_k": self.split_k,
            "double_buffered": self.double_buffered,
            "tensor_cores": self.tensor_cores,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TilingConfig":
        """Inverse of :meth:`to_dict`; validates like the constructor."""
        return cls(**data)

    def __str__(self) -> str:
        extra = f", split_k={self.split_k}" if self.split_k > 1 else ""
        return f"Tiling{self.as_tuple()}{extra}"


#: Punica's static configuration (Table 1, first row).
PUNICA_CONFIG = TilingConfig(bm=16, bk=64, bn=64, wm=16, wk=16, wn=64)

#: S-LoRA's fine-grained CUDA-core kernel: tiny tiles plus split-K so tiny
#: decode shapes still fill the SMs; runs on CUDA cores, not Tensor cores.
SLORA_CONFIG = TilingConfig(
    bm=16, bk=32, bn=16, wm=16, wk=16, wn=16, split_k=4, tensor_cores=False
)

#: Table 1's Config 1 — balanced mid-size tiles.
CONFIG_1 = TilingConfig(bm=64, bk=32, bn=32, wm=32, wk=32, wn=32)

#: Table 1's Config 2 — large tiles, best for large inputs.
CONFIG_2 = TilingConfig(bm=128, bk=64, bn=128, wm=64, wk=32, wn=64)


_BLOCK_DIMS = (16, 32, 64, 128, 256)
_WARP_DIMS = (16, 32, 64)
_SPLIT_KS = (1, 2, 4, 8)


def enumerate_configs(
    gpu: GPUSpec,
    include_split_k: bool = True,
    tensor_cores: Optional[bool] = None,
) -> List[TilingConfig]:
    """Enumerate all hardware-valid tiling configurations for ``gpu``.

    This is the search space of Algorithm 2.  Expert-knowledge pruning
    (§4.3.2): every dimension is a power of two and at least 16; tiles must
    fit double-buffered in shared memory / the register file; warps per
    block are bounded.

    Parameters
    ----------
    gpu:
        Target device.
    include_split_k:
        Whether to include split-K variants (enlarges the space ~4x).
    tensor_cores:
        Restrict to Tensor-core (True) or CUDA-core (False) kernels;
        ``None`` includes both.
    """
    core_options = (True, False) if tensor_cores is None else (tensor_cores,)
    split_options = _SPLIT_KS if include_split_k else (1,)
    out: List[TilingConfig] = []
    for cfg in _enumerate_raw(core_options, split_options):
        if cfg.is_valid_for(gpu):
            out.append(cfg)
    return out


def canonical_key(cfg: TilingConfig) -> Tuple[int, ...]:
    """Total order over configurations matching the enumeration order.

    ``enumerate_configs`` already yields configurations in this order;
    the explicit key exists so every consumer (the scalar argmin, the
    vectorized argmin, and reloaded tables) can *assert* a stable
    ordering rather than rely on enumeration happening to be sorted.
    Ties in the cost model are broken by the first configuration under
    this order.
    """
    return (
        cfg.bm, cfg.bk, cfg.bn, cfg.wm, cfg.wk, cfg.wn,
        0 if cfg.tensor_cores else 1,
        cfg.split_k,
        0 if cfg.double_buffered else 1,
    )


#: Bump when the enumeration rules or dimension menus change, so
#: persisted kernel tables built against the old space are invalidated.
SEARCH_SPACE_VERSION = 1


def search_space_fingerprint() -> dict:
    """The enumeration parameters that define the search space.

    Part of the persistent kernel-table store key: a store file built
    against a different space (or different validity rules) must never
    be served.
    """
    return {
        "version": SEARCH_SPACE_VERSION,
        "min_tile": MIN_TILE,
        "max_warps_per_block": MAX_WARPS_PER_BLOCK,
        "block_dims": list(_BLOCK_DIMS),
        "warp_dims": list(_WARP_DIMS),
        "split_ks": list(_SPLIT_KS),
    }


class TilingConfigSpace:
    """Struct-of-arrays view of a set of tiling configurations.

    The vectorized search sweeps thousands of configurations per shape;
    materializing a :class:`TilingConfig` per candidate (with its
    ``__post_init__`` validation) dominated the seed's ahead-of-time
    cost.  This class keeps the whole space as parallel numpy columns —
    in the same canonical order as :func:`enumerate_configs` — and only
    materializes ``TilingConfig`` objects for winners, on demand.
    """

    _COLUMNS = ("bm", "bk", "bn", "wm", "wk", "wn", "split_k")

    def __init__(
        self,
        bm: np.ndarray, bk: np.ndarray, bn: np.ndarray,
        wm: np.ndarray, wk: np.ndarray, wn: np.ndarray,
        split_k: np.ndarray,
        tensor_cores: np.ndarray,
        double_buffered: np.ndarray,
    ):
        self.bm = bm
        self.bk = bk
        self.bn = bn
        self.wm = wm
        self.wk = wk
        self.wn = wn
        self.split_k = split_k
        self.tensor_cores = tensor_cores
        self.double_buffered = double_buffered
        lengths = {len(a) for a in self._arrays()}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")
        self._config_cache: dict = {}

    def _arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.bm, self.bk, self.bn, self.wm, self.wk, self.wn,
                self.split_k, self.tensor_cores, self.double_buffered)

    def __len__(self) -> int:
        return len(self.bm)

    # -- derived columns ----------------------------------------------------

    @property
    def warps_per_block(self) -> np.ndarray:
        return (self.bm // self.wm) * (self.bn // self.wn)

    @property
    def smem_tile_bytes(self) -> np.ndarray:
        return FP16_BYTES * (self.bm * self.bk + self.bk * self.bn)

    # -- construction -------------------------------------------------------

    @classmethod
    def enumerate_space(
        cls,
        gpu: GPUSpec,
        include_split_k: bool = True,
        tensor_cores: Optional[bool] = None,
    ) -> "TilingConfigSpace":
        """Vectorized equivalent of :func:`enumerate_configs`.

        Produces the identical configuration sequence (asserted by
        tests) without constructing the intermediate objects: candidate
        tuples come from the same nested loops, the shared-memory and
        register-file validity rules are applied as array masks.
        """
        core_options = (True, False) if tensor_cores is None else (tensor_cores,)
        split_options = _SPLIT_KS if include_split_k else (1,)
        rows: List[Tuple[int, int, int, int, int, int, int, bool]] = []
        for bm in _BLOCK_DIMS:
            for bk in _BLOCK_DIMS:
                for bn in _BLOCK_DIMS:
                    for wm in _WARP_DIMS:
                        if wm > bm or bm % wm:
                            continue
                        for wk in _WARP_DIMS:
                            if wk > bk or bk % wk:
                                continue
                            for wn in _WARP_DIMS:
                                if wn > bn or bn % wn:
                                    continue
                                if (bm // wm) * (bn // wn) > MAX_WARPS_PER_BLOCK:
                                    continue
                                for tc in core_options:
                                    for sk in split_options:
                                        rows.append(
                                            (bm, bk, bn, wm, wk, wn, sk, tc)
                                        )
        if not rows:
            return cls(*(np.empty(0, dtype=np.int64) for _ in range(7)),
                       np.empty(0, dtype=bool), np.empty(0, dtype=bool))
        cols = np.array([r[:7] for r in rows], dtype=np.int64).T
        tc_col = np.array([r[7] for r in rows], dtype=bool)
        db_col = np.ones(len(rows), dtype=bool)
        space = cls(*cols, tc_col, db_col)
        # Hardware validity (TilingConfig.is_valid_for), vectorized.
        # Enumeration always builds double-buffered kernels, so both
        # capacity checks reserve twice the working set.
        smem_ok = space.smem_tile_bytes * 2 <= gpu.shared_mem_per_sm_bytes
        regfile_warp_bytes = (
            4 * space.wm * space.wn
            + FP16_BYTES * (space.wm * space.wk + space.wk * space.wn)
        )
        regfile_ok = (
            regfile_warp_bytes * space.warps_per_block * 2
            <= gpu.register_file_per_sm_bytes
        )
        return space.select(smem_ok & regfile_ok)

    @classmethod
    def from_configs(cls, configs: Sequence[TilingConfig]) -> "TilingConfigSpace":
        """Column view of an explicit configuration list (order preserved)."""
        configs = list(configs)
        def col(attr, dtype):
            return np.array([getattr(c, attr) for c in configs], dtype=dtype)
        space = cls(
            col("bm", np.int64), col("bk", np.int64), col("bn", np.int64),
            col("wm", np.int64), col("wk", np.int64), col("wn", np.int64),
            col("split_k", np.int64),
            col("tensor_cores", bool), col("double_buffered", bool),
        )
        space._config_cache = dict(enumerate(configs))
        return space

    def select(self, mask_or_index: np.ndarray) -> "TilingConfigSpace":
        """Sub-space keeping only the masked/indexed rows, order preserved."""
        return TilingConfigSpace(*(a[mask_or_index] for a in self._arrays()))

    # -- materialization ----------------------------------------------------

    def config(self, i: int) -> TilingConfig:
        """Materialize (and cache) the i-th configuration."""
        i = int(i)
        cfg = self._config_cache.get(i)
        if cfg is None:
            cfg = TilingConfig(
                bm=int(self.bm[i]), bk=int(self.bk[i]), bn=int(self.bn[i]),
                wm=int(self.wm[i]), wk=int(self.wk[i]), wn=int(self.wn[i]),
                split_k=int(self.split_k[i]),
                double_buffered=bool(self.double_buffered[i]),
                tensor_cores=bool(self.tensor_cores[i]),
            )
            self._config_cache[i] = cfg
        return cfg

    def configs(self) -> List[TilingConfig]:
        """Materialize the full list (the scalar search path uses this)."""
        return [self.config(i) for i in range(len(self))]


def _enumerate_raw(core_options, split_options) -> Iterator[TilingConfig]:
    for bm in _BLOCK_DIMS:
        for bk in _BLOCK_DIMS:
            for bn in _BLOCK_DIMS:
                for wm in _WARP_DIMS:
                    if wm > bm or bm % wm:
                        continue
                    for wk in _WARP_DIMS:
                        if wk > bk or bk % wk:
                            continue
                        for wn in _WARP_DIMS:
                            if wn > bn or bn % wn:
                                continue
                            warps = (bm // wm) * (bn // wn)
                            if warps > MAX_WARPS_PER_BLOCK:
                                continue
                            for tc in core_options:
                                for sk in split_options:
                                    yield TilingConfig(
                                        bm=bm, bk=bk, bn=bn,
                                        wm=wm, wk=wk, wn=wn,
                                        split_k=sk, tensor_cores=tc,
                                    )
