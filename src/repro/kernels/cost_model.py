"""Analytical latency model for tiled GEMM kernels.

This is the reproduction's stand-in for running CUDA kernels on an A100.
It models the mechanisms §3.2 / §4.3.1 / Fig. 12 attribute latency to:

* **Wave quantization / SM utilization** — a kernel with fewer thread
  blocks than SMs leaves SMs idle (Fig. 12b: Config 2 uses 64 of 108 SMs
  on a small input); a kernel whose block count is just above a multiple
  of the SM count pays a nearly-empty trailing wave.
* **Global-memory traffic** — each block re-reads its A and B tiles for
  every K-step, so small tiles amplify HBM traffic (Fig. 12a: Punica's
  small tiles launch more transfers).
* **Padding waste** — tiles overhanging the matrix edge still compute.
* **Split-K reduction traffic** — partial accumulators spill to global
  memory and are reduced.
* **Kernel-launch overhead** — fixed host cost per launch; Einsum-style
  implementations that launch per layer/adapter pay it repeatedly.
* **Warp-level occupancy** — a block with a single warp cannot keep the
  SM's Tensor pipes busy or hide shared-memory latency, so small-tile
  configurations (e.g. Punica's 16x64 block = 1 warp) run each block well
  below the per-SM peak.  This is why Table 1's Config 1 beats Punica on
  Input 1 even though both leave most SMs idle.
* **Pipelining** — double-buffered kernels (ATMM) overlap loads with
  math almost perfectly; single-buffered kernels overlap less.

All returns are **seconds**.  The model is deterministic; operator-level
jitter (Fig. 18) is injected by the operators, not here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Union

import numpy as np

from repro.hardware.gpu import GPUSpec
from repro.hardware.memory import FP16_BYTES
from repro.kernels.shapes import GemmShape, GroupedGemm
from repro.kernels.tiling import TilingConfig, TilingConfigSpace

#: Bump whenever any latency formula or model constant changes meaning.
#: Part of the persistent kernel-table fingerprint: a table profiled
#: under an older model version must be re-searched, not served.
COST_MODEL_VERSION = 1


@dataclass(frozen=True)
class KernelLaunch:
    """Accounting record for one kernel launch produced by an operator."""

    name: str
    seconds: float
    num_blocks: int
    flops: int


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class GemmCostModel:
    """Latency model for tiled GEMM on a specific GPU.

    Parameters
    ----------
    gpu:
        Device specification.
    mem_efficiency:
        Fraction of peak HBM bandwidth achievable by a well-coalesced
        kernel (DRAM pages, ECC); ~0.8 on A100 in practice.
    tensor_core_efficiency / cuda_core_efficiency:
        Fraction of peak math achievable once resident (pipe bubbles,
        instruction mix).
    overlap_residual:
        Fraction of the smaller of (compute, memory) time that is *not*
        hidden by overlap for a double-buffered kernel.  Single-buffered
        kernels pay ``overlap_residual_single``.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        mem_efficiency: float = 0.80,
        tensor_core_efficiency: float = 0.70,
        cuda_core_efficiency: float = 0.85,
        overlap_residual: float = 0.05,
        overlap_residual_single: float = 0.35,
    ):
        if not 0 < mem_efficiency <= 1:
            raise ValueError(f"mem_efficiency must be in (0,1], got {mem_efficiency}")
        self.gpu = gpu
        self.mem_efficiency = mem_efficiency
        self.tensor_core_efficiency = tensor_core_efficiency
        self.cuda_core_efficiency = cuda_core_efficiency
        self.overlap_residual = overlap_residual
        self.overlap_residual_single = overlap_residual_single
        # Methods are hot inside the serving engine; memoize on the
        # (hashable, frozen) shape/config dataclasses.
        self.gemm_seconds = lru_cache(maxsize=200_000)(self._gemm_seconds)  # type: ignore[method-assign]

    # -- block-level geometry ------------------------------------------------

    def num_blocks(self, shape: GemmShape, cfg: TilingConfig) -> int:
        """Thread blocks launched for ``shape`` under ``cfg``."""
        grid = _ceil_div(shape.m, cfg.bm) * _ceil_div(shape.n, cfg.bn)
        return grid * cfg.split_k

    def sm_utilization(self, blocks: int) -> float:
        """Average fraction of SMs busy across the kernel's waves."""
        if blocks <= 0:
            raise ValueError(f"blocks must be positive, got {blocks}")
        waves = _ceil_div(blocks, self.gpu.num_sms)
        return blocks / (waves * self.gpu.num_sms)

    #: Warps per block needed to saturate an SM's math pipes.
    WARPS_FOR_PEAK = 4
    #: Per-SM efficiency floor for a single-warp block.
    MIN_WARP_EFFICIENCY = 0.25

    def warp_efficiency(self, cfg: TilingConfig) -> float:
        """Per-SM math efficiency given the block's warp count.

        Scales sub-linearly up to :data:`WARPS_FOR_PEAK` warps (diminishing
        returns from dual-issue and latency hiding), capped at 1.
        """
        return self._warp_efficiency_from_count(cfg.warps_per_block)

    def _warp_efficiency_from_count(self, warps_per_block: int) -> float:
        frac = warps_per_block / self.WARPS_FOR_PEAK
        if frac >= 1.0:
            return 1.0
        return max(self.MIN_WARP_EFFICIENCY, frac ** 0.7)

    def _core_peak(self, cfg: TilingConfig) -> float:
        """Achievable FLOP/s at full SM occupancy for this config."""
        if cfg.tensor_cores:
            base = self.gpu.tensor_flops * self.tensor_core_efficiency
        else:
            base = self.gpu.cuda_flops * self.cuda_core_efficiency
        return base * self.warp_efficiency(cfg)

    #: Unhidden cycles per warp-level K iteration (address math, smem
    #: load-use latency, pipeline drain at the tile boundary).
    KSTEP_OVERHEAD_CYCLES = 60.0

    def _kstep_overhead_per_block(self, cfg: TilingConfig, k_per_split: int) -> float:
        """Serial per-block overhead from warp-level K iterations, seconds.

        A warp steps ``k_per_split / wk`` times through its K extent; each
        step carries fixed instruction overhead that a small ``wk``
        amortizes poorly (this is Fig. 12a's "more launching data transfer
        times" for Punica's small tiles).  Double buffering hides half of
        it.
        """
        iters = _ceil_div(k_per_split, cfg.wk)
        cycles = self.KSTEP_OVERHEAD_CYCLES * (1.0 if cfg.double_buffered else 2.0)
        return iters * cycles / (self.gpu.sm_clock_ghz * 1e9)

    # -- component times ----------------------------------------------------

    def _compute_seconds(self, shape: GemmShape, cfg: TilingConfig) -> float:
        """Math time: padded FLOPs over the achievable roofline."""
        blocks = self.num_blocks(shape, cfg)
        k_per_split = _ceil_div(shape.k, cfg.split_k)
        ksteps = _ceil_div(k_per_split, cfg.bk)
        # Every block multiplies full tiles, padding included.
        padded_flops = blocks * (cfg.bm * cfg.bn) * (ksteps * cfg.bk) * 2
        util = self.sm_utilization(blocks)
        math_time = padded_flops / (self._core_peak(cfg) * util)
        # Overheads serialize per block; blocks/(SMs*util) = wave count.
        overhead = (
            self._kstep_overhead_per_block(cfg, k_per_split)
            * blocks / (self.gpu.num_sms * util)
        )
        return math_time + overhead

    def _memory_seconds(self, shape: GemmShape, cfg: TilingConfig) -> float:
        """HBM time: tile loads (with K-step redundancy) + output traffic."""
        blocks = self.num_blocks(shape, cfg)
        k_per_split = _ceil_div(shape.k, cfg.split_k)
        ksteps = _ceil_div(k_per_split, cfg.bk)
        load_bytes = blocks * ksteps * cfg.smem_tile_bytes
        out_bytes = blocks * cfg.bm * cfg.bn * FP16_BYTES
        if cfg.split_k > 1:
            # FP32 partials written by each split and re-read by the
            # reduction pass, then the final FP16 store.
            grid = blocks // cfg.split_k
            partial = grid * cfg.bm * cfg.bn * 4
            out_bytes = partial * cfg.split_k * 2 + out_bytes
        total = load_bytes + out_bytes
        return total / (self.gpu.hbm_bytes_per_s * self.mem_efficiency)

    # -- public API -----------------------------------------------------------

    def _gemm_seconds(self, shape: GemmShape, cfg: TilingConfig) -> float:
        """In-kernel latency of one GEMM (no launch overhead)."""
        c = self._compute_seconds(shape, cfg)
        m = self._memory_seconds(shape, cfg)
        residual = (
            self.overlap_residual if cfg.double_buffered
            else self.overlap_residual_single
        )
        return max(c, m) + residual * min(c, m)

    def version_fingerprint(self) -> dict:
        """The model parameters a profiled table depends on.

        Part of the persistent kernel-table store key: changing any of
        these (or bumping :data:`COST_MODEL_VERSION` after a formula
        change) invalidates every stored table built before it.
        """
        return {
            "version": COST_MODEL_VERSION,
            "mem_efficiency": self.mem_efficiency,
            "tensor_core_efficiency": self.tensor_core_efficiency,
            "cuda_core_efficiency": self.cuda_core_efficiency,
            "overlap_residual": self.overlap_residual,
            "overlap_residual_single": self.overlap_residual_single,
            "kstep_overhead_cycles": self.KSTEP_OVERHEAD_CYCLES,
            "warps_for_peak": self.WARPS_FOR_PEAK,
            "min_warp_efficiency": self.MIN_WARP_EFFICIENCY,
        }

    def gemm_seconds_batch(
        self,
        shapes: Sequence[GemmShape],
        configs: Union[TilingConfigSpace, Sequence[TilingConfig]],
        config_idx: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """In-kernel latency for the whole ``shapes x configs`` grid.

        Vectorized twin of :meth:`gemm_seconds`: returns a float64 array
        of shape ``(len(shapes), n_configs)`` whose every cell is
        **bit-identical** to the scalar evaluation (property-tested in
        ``tests/kernels/test_search_vectorized.py``).  Bit-identity
        holds because each scalar arithmetic step maps 1:1 onto an array
        op in the same order: all block/byte counts stay exact in int64
        (well under 2^53, so int->float conversion at the division sites
        rounds identically to CPython), and the per-config scalars that
        involve transcendental math (``warp_efficiency``'s power) are
        computed per distinct warp count with ordinary Python floats and
        broadcast.

        Parameters
        ----------
        shapes:
            Problems to evaluate (rows).
        configs:
            A :class:`~repro.kernels.tiling.TilingConfigSpace` or an
            explicit configuration sequence (columns).
        config_idx:
            Optional row indices restricting ``configs`` to a subset —
            used by the search's dominance pruning to sweep survivors
            without rebuilding column arrays.
        """
        if not isinstance(configs, TilingConfigSpace):
            configs = TilingConfigSpace.from_configs(configs)
        gpu = self.gpu
        sms = gpu.num_sms

        m = np.array([p.m for p in shapes], dtype=np.int64)[:, None]
        k = np.array([p.k for p in shapes], dtype=np.int64)[:, None]
        n = np.array([p.n for p in shapes], dtype=np.int64)[:, None]

        def col(a: np.ndarray) -> np.ndarray:
            return (a if config_idx is None else a[config_idx])[None, :]

        bm, bk, bn = col(configs.bm), col(configs.bk), col(configs.bn)
        wk = col(configs.wk)
        split_k = col(configs.split_k)
        smem = col(configs.smem_tile_bytes)
        warps = col(configs.warps_per_block)
        tc = col(configs.tensor_cores)
        db = col(configs.double_buffered)

        # Per-config model scalars, computed with Python floats exactly
        # as the scalar path does, then broadcast.
        eff = np.empty(warps.shape, dtype=np.float64)
        for w in np.unique(warps):
            eff[warps == w] = self._warp_efficiency_from_count(int(w))
        base_tensor = gpu.tensor_flops * self.tensor_core_efficiency
        base_cuda = gpu.cuda_flops * self.cuda_core_efficiency
        core_peak = np.where(tc, base_tensor, base_cuda) * eff
        cycles = self.KSTEP_OVERHEAD_CYCLES * np.where(db, 1.0, 2.0)
        residual = np.where(
            db, self.overlap_residual, self.overlap_residual_single
        )

        # -- geometry (exact int64, mirrors num_blocks/sm_utilization) --
        bmbn = bm * bn
        blocks = (-(-m // bm)) * (-(-n // bn)) * split_k
        waves = -(-blocks // sms)
        util = blocks / (waves * sms)
        k_per_split = -(-k // split_k)
        ksteps = -(-k_per_split // bk)

        # -- _compute_seconds ------------------------------------------
        padded_flops = blocks * bmbn * (ksteps * bk) * 2
        math_time = padded_flops / (core_peak * util)
        iters = -(-k_per_split // wk)
        kstep_overhead = iters * cycles / (gpu.sm_clock_ghz * 1e9)
        compute = math_time + kstep_overhead * blocks / (sms * util)

        # -- _memory_seconds -------------------------------------------
        load_bytes = blocks * ksteps * smem
        out_bytes = blocks * bmbn * FP16_BYTES
        grid = blocks // split_k
        split_out = (grid * bmbn * 4) * split_k * 2 + out_bytes
        total_bytes = load_bytes + np.where(split_k > 1, split_out, out_bytes)
        memory = total_bytes / (gpu.hbm_bytes_per_s * self.mem_efficiency)

        return (np.maximum(compute, memory)
                + residual * np.minimum(compute, memory))

    def launch_seconds(self, num_launches: int = 1) -> float:
        """Host-side launch overhead for ``num_launches`` kernels."""
        if num_launches < 0:
            raise ValueError(f"num_launches must be >= 0, got {num_launches}")
        return num_launches * self.gpu.kernel_launch_us * 1e-6

    def gemm_with_launch(self, shape: GemmShape, cfg: TilingConfig) -> float:
        """One GEMM including a single kernel launch."""
        return self.gemm_seconds(shape, cfg) + self.launch_seconds(1)

    def grouped_seconds(
        self, grouped: GroupedGemm, cfg: TilingConfig
    ) -> float:
        """Grouped GEMM executed in **one** kernel launch under one config.

        This is the S-LoRA / Punica / ATMM execution style: the block grids
        of all groups are concatenated into one launch, so SM utilization
        is computed over the *total* block count while per-group tile
        geometry (and padding waste) is preserved.
        """
        # Loop invariants hoisted (the call sits under the engine's cost
        # cache misses): every hoisted value is the same expression the
        # per-group code evaluated, computed once, so each group's float
        # contributions are bit-identical to the unhoisted loop's.
        bm, bn, bk = cfg.bm, cfg.bn, cfg.bk
        split_k, wk = cfg.split_k, cfg.wk
        bmbn = bm * bn
        smem_tile = cfg.smem_tile_bytes
        core_peak = self._core_peak(cfg)
        num_sms = self.gpu.num_sms
        mem_bw = self.gpu.hbm_bytes_per_s * self.mem_efficiency
        kstep_cycles = self.KSTEP_OVERHEAD_CYCLES * (
            1.0 if cfg.double_buffered else 2.0
        )
        clock_hz = self.gpu.sm_clock_ghz * 1e9
        geometry = [
            (p, _ceil_div(p.m, bm) * _ceil_div(p.n, bn) * split_k)
            for p in grouped.problems
        ]
        util = self.sm_utilization(sum(b for _, b in geometry))
        compute = 0.0
        memory = 0.0
        for p, blocks in geometry:
            k_per_split = _ceil_div(p.k, split_k)
            ksteps = _ceil_div(k_per_split, bk)
            padded_flops = blocks * bmbn * (ksteps * bk) * 2
            compute += padded_flops / core_peak
            compute += (
                (_ceil_div(k_per_split, wk) * kstep_cycles / clock_hz)
                * blocks / num_sms
            )
            load_bytes = blocks * ksteps * smem_tile
            out_bytes = blocks * bmbn * FP16_BYTES
            if split_k > 1:
                grid = blocks // split_k
                partial = grid * bmbn * 4
                out_bytes = partial * split_k * 2 + out_bytes
            memory += (load_bytes + out_bytes) / mem_bw
        compute /= util
        residual = (
            self.overlap_residual if cfg.double_buffered
            else self.overlap_residual_single
        )
        in_kernel = max(compute, memory) + residual * min(compute, memory)
        return in_kernel + self.launch_seconds(1)

    def grouped_seconds_mnk(
        self, ms: Sequence[int], ks: Sequence[int], ns: Sequence[int],
        cfg: TilingConfig,
    ) -> float:
        """Bit-identical twin of :meth:`grouped_seconds` over parallel
        ``(m, k, n)`` integer lists.

        The serving engine's LoRA extra-cost tower evaluates thousands
        of small grouped GEMMs per run; taking the dimensions directly
        skips the per-call :class:`GemmShape`/:class:`GroupedGemm`
        wrapper churn while every arithmetic expression — and therefore
        every rounding — matches :meth:`grouped_seconds` exactly (same
        hoisted invariants, same per-group accumulation order).
        """
        bm, bn, bk = cfg.bm, cfg.bn, cfg.bk
        split_k, wk = cfg.split_k, cfg.wk
        bmbn = bm * bn
        smem_tile = cfg.smem_tile_bytes
        core_peak = self._core_peak(cfg)
        num_sms = self.gpu.num_sms
        mem_bw = self.gpu.hbm_bytes_per_s * self.mem_efficiency
        kstep_cycles = self.KSTEP_OVERHEAD_CYCLES * (
            1.0 if cfg.double_buffered else 2.0
        )
        clock_hz = self.gpu.sm_clock_ghz * 1e9
        blocks_list = [
            _ceil_div(m, bm) * _ceil_div(n, bn) * split_k
            for m, n in zip(ms, ns)
        ]
        util = self.sm_utilization(sum(blocks_list))
        compute = 0.0
        memory = 0.0
        for k, blocks in zip(ks, blocks_list):
            k_per_split = _ceil_div(k, split_k)
            ksteps = _ceil_div(k_per_split, bk)
            padded_flops = blocks * bmbn * (ksteps * bk) * 2
            compute += padded_flops / core_peak
            compute += (
                (_ceil_div(k_per_split, wk) * kstep_cycles / clock_hz)
                * blocks / num_sms
            )
            load_bytes = blocks * ksteps * smem_tile
            out_bytes = blocks * bmbn * FP16_BYTES
            if split_k > 1:
                grid = blocks // split_k
                partial = grid * bmbn * 4
                out_bytes = partial * split_k * 2 + out_bytes
            memory += (load_bytes + out_bytes) / mem_bw
        compute /= util
        residual = (
            self.overlap_residual if cfg.double_buffered
            else self.overlap_residual_single
        )
        in_kernel = max(compute, memory) + residual * min(compute, memory)
        return in_kernel + self.launch_seconds(1)

    def batched_padded_seconds(
        self, grouped: GroupedGemm, cfg: TilingConfig,
        extra_launches: int = 0,
    ) -> float:
        """Grouped GEMM executed as a **padded batched GEMM** (dLoRA style).

        Every problem is padded to the max ``m`` and max ``n`` of the
        group — the padding waste §4.3.1 pins on batched GEMM — and the
        batch runs in one launch plus ``extra_launches`` auxiliary kernels
        (Einsum's reshape/permute passes).
        """
        padded = grouped.padded_batch()
        total_blocks = sum(self.num_blocks(p, cfg) for p in padded.problems)
        util = self.sm_utilization(total_blocks)
        compute = sum(self._compute_blockless(p, cfg) for p in padded.problems)
        memory = sum(self._memory_seconds(p, cfg) for p in padded.problems)
        compute /= util
        residual = (
            self.overlap_residual if cfg.double_buffered
            else self.overlap_residual_single
        )
        in_kernel = max(compute, memory) + residual * min(compute, memory)
        return in_kernel + self.launch_seconds(1 + extra_launches)

    def _compute_blockless(self, shape: GemmShape, cfg: TilingConfig) -> float:
        """Compute time at full utilization (utilization applied by caller)."""
        blocks = self.num_blocks(shape, cfg)
        k_per_split = _ceil_div(shape.k, cfg.split_k)
        ksteps = _ceil_div(k_per_split, cfg.bk)
        padded_flops = blocks * (cfg.bm * cfg.bn) * (ksteps * cfg.bk) * 2
        t = padded_flops / self._core_peak(cfg)
        t += (
            self._kstep_overhead_per_block(cfg, k_per_split)
            * blocks / self.gpu.num_sms
        )
        return t

    def breakdown(self, shape: GemmShape, cfg: TilingConfig) -> dict:
        """Explain one (shape, config) evaluation.

        Returns the model's intermediate quantities — block count, SM
        utilization, warp efficiency, compute vs memory time — so tools
        (and the tiling explorer) can show *why* a configuration wins.
        """
        blocks = self.num_blocks(shape, cfg)
        k_per_split = _ceil_div(shape.k, cfg.split_k)
        ksteps = _ceil_div(k_per_split, cfg.bk)
        padded_flops = blocks * (cfg.bm * cfg.bn) * (ksteps * cfg.bk) * 2
        compute = self._compute_seconds(shape, cfg)
        memory = self._memory_seconds(shape, cfg)
        return {
            "blocks": blocks,
            "waves": _ceil_div(blocks, self.gpu.num_sms),
            "sm_utilization": self.sm_utilization(blocks),
            "warp_efficiency": self.warp_efficiency(cfg),
            "padded_flops": padded_flops,
            "useful_flops": shape.flops,
            "padding_waste": 1.0 - shape.flops / padded_flops,
            "compute_seconds": compute,
            "memory_seconds": memory,
            "bound": "compute" if compute >= memory else "memory",
            "total_seconds": self.gemm_seconds(shape, cfg),
        }

    def elementwise_seconds(self, nbytes_touched: int) -> float:
        """Memory-bound elementwise pass (e.g. ΔW add/subtract during merge)."""
        if nbytes_touched < 0:
            raise ValueError(f"nbytes_touched must be >= 0, got {nbytes_touched}")
        return nbytes_touched / (self.gpu.hbm_bytes_per_s * self.mem_efficiency)
