"""Kernel-level cost model, ATMM, and baseline LoRA batching operators.

This package substitutes for the CUDA/CUTLASS layer of the paper:

* :mod:`repro.kernels.shapes` — GEMM problem shapes, including grouped
  (heterogeneous) LoRA batches.
* :mod:`repro.kernels.tiling` — tiling configurations and their
  hardware-validity rules (§4.3.1, Table 1, Fig. 12).
* :mod:`repro.kernels.cost_model` — analytical latency model for a tiled
  GEMM on a :class:`~repro.hardware.gpu.GPUSpec` (wave quantization,
  memory traffic, launch overhead, padding waste).
* :mod:`repro.kernels.search` — the profile-based optimal tiling search
  (Algorithm 2) that builds ATMM's shape->config hash table.
* :mod:`repro.kernels.atmm` — the Adaptive-Tiling Matrix Multiplication
  operator (§4.3).
* :mod:`repro.kernels.baseline_ops` — S-LoRA, Punica, and dLoRA (Einsum)
  operator models (§3.2, §6.3.2).
"""

from repro.kernels.shapes import GemmShape, GroupedGemm, lora_gemm_shapes
from repro.kernels.tiling import (
    CONFIG_1,
    CONFIG_2,
    PUNICA_CONFIG,
    SLORA_CONFIG,
    TilingConfig,
    TilingConfigSpace,
    enumerate_configs,
)
from repro.kernels.cost_model import GemmCostModel, KernelLaunch
from repro.kernels.search import (
    OptimalTilingTable,
    TilingSearch,
    default_table,
    shape_key,
)
from repro.kernels.store import KernelTableStore, table_fingerprint
from repro.kernels.atmm import ATMMOperator
from repro.kernels.baseline_ops import (
    EinsumOperator,
    LoRAOperator,
    PunicaOperator,
    SLoRAOperator,
    make_operator,
)

__all__ = [
    "GemmShape",
    "GroupedGemm",
    "lora_gemm_shapes",
    "TilingConfig",
    "TilingConfigSpace",
    "enumerate_configs",
    "PUNICA_CONFIG",
    "SLORA_CONFIG",
    "CONFIG_1",
    "CONFIG_2",
    "GemmCostModel",
    "KernelLaunch",
    "TilingSearch",
    "OptimalTilingTable",
    "default_table",
    "KernelTableStore",
    "table_fingerprint",
    "shape_key",
    "ATMMOperator",
    "LoRAOperator",
    "SLoRAOperator",
    "PunicaOperator",
    "EinsumOperator",
    "make_operator",
]
