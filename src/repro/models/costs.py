"""Per-iteration base-model latency (prefill / decode / vision encode).

The serving engine advances its simulated clock by these costs.  The base
model computation is identical across V-LoRA and all baselines — systems
differ only in the LoRA operator, the mode switches, and the schedule — so
a roofline treatment is sufficient here while the kernel-level tiling
model (:mod:`repro.kernels`) carries the differentiating costs.

Calibration sanity (A100-80GB, Qwen-VL-7B):

* one decode step ~= weights read (13 GB) / effective HBM bandwidth
  plus per-layer launch overheads -> ~9-11 ms;
* prefill runs ~0.07-0.1 ms per input token (paper: "<1 ms per token");
* the LM head over a 152 k vocab adds ~0.8 ms per decode step, which the
  vision task head (§4.2.2) replaces with a negligible ~100-class GEMV.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from repro.hardware.gpu import GPUSpec
from repro.hardware.memory import FP16_BYTES
from repro.kernels.cost_model import GemmCostModel
from repro.models.config import ModelConfig


class IterationCostModel:
    """Latency of one engine iteration for a fixed (model, GPU) pair."""

    #: Achievable fraction of Tensor-core peak for large dense GEMMs.
    DENSE_EFFICIENCY = 0.50
    #: Fused kernels launched per transformer layer (qkv, attn, o, mlp).
    KERNELS_PER_LAYER = 4
    #: Fixed per-iteration software overhead (scheduler step, batch prep).
    ITERATION_OVERHEAD_S = 0.4e-3

    def __init__(self, model: ModelConfig, gpu: GPUSpec,
                 cost_model: GemmCostModel = None, tp_degree: int = 1):
        if tp_degree < 1:
            raise ValueError(f"tp_degree must be >= 1, got {tp_degree}")
        self.model = model
        self.gpu = gpu
        self.tp_degree = tp_degree
        self.cost_model = cost_model or GemmCostModel(gpu)
        # Memoize per *instance*: a class-level ``@lru_cache`` on a method
        # closes over ``self``, so one shared cache pins every instance
        # alive and mixes entries across (model, GPU, tp) configurations.
        self.decode_seconds_uniform = lru_cache(maxsize=4096)(
            self._decode_seconds_uniform
        )
        # Tensor parallelism shards every weight matrix across GPUs:
        # per-GPU compute and weight traffic shrink by tp, at the cost of
        # two all-reduces of the activations per layer (Megatron-style).
        self._peak = gpu.tensor_flops * self.DENSE_EFFICIENCY * tp_degree
        self._bw = (gpu.hbm_bytes_per_s * self.cost_model.mem_efficiency
                    * tp_degree)
        self._layer_weight_bytes = (
            model.num_layers * model.params_per_layer * FP16_BYTES
        )
        self._launches = (
            model.num_layers * self.KERNELS_PER_LAYER
            * gpu.kernel_launch_us * 1e-6
        )

    def _allreduce_seconds(self, tokens: int) -> float:
        """Two ring all-reduces per layer of (tokens x d) activations."""
        if self.tp_degree == 1:
            return 0.0
        bytes_per = tokens * self.model.hidden_dim * FP16_BYTES
        ring = 2.0 * (self.tp_degree - 1) / self.tp_degree
        per_layer = 2 * (
            ring * bytes_per / self.gpu.nvlink_bytes_per_s
            + 2 * (self.tp_degree - 1) * self.gpu.nvlink_latency_us * 1e-6
        )
        return self.model.num_layers * per_layer

    # -- phases ---------------------------------------------------------------

    def prefill_seconds(
        self, token_counts: Sequence[int], num_images: int = 0
    ) -> float:
        """One prefill iteration over requests with the given input lengths.

        Includes causal attention over each request's own prefix and the
        vision encoder for any images entering with this batch.
        """
        if not token_counts:
            raise ValueError("prefill needs at least one request")
        if any(t <= 0 for t in token_counts):
            raise ValueError(f"token counts must be positive: {token_counts}")
        total = sum(token_counts)
        flops = total * self.model.flops_per_token()
        for t in token_counts:
            # Causal attention: average context of t/2 per new token.
            flops += self.model.attention_flops(t, max(t // 2, 1))
        compute = flops / self._peak
        # Weights stream through once per iteration; activations are minor.
        mem = self._layer_weight_bytes / self._bw
        t = max(compute, mem) + 0.1 * min(compute, mem)
        t += self._launches + self.ITERATION_OVERHEAD_S
        t += self._allreduce_seconds(total)
        t += self.vision_encode_seconds(num_images)
        return t

    def decode_seconds(
        self,
        context_lens: Sequence[int],
        lm_head: bool = True,
        task_head_classes: int = 0,
    ) -> float:
        """One decode step for a batch with the given per-request contexts.

        ``lm_head=False`` with ``task_head_classes > 0`` models a vision
        task head answering in this single round (§4.2.2).
        """
        if not context_lens:
            raise ValueError("decode needs at least one request")
        if any(c <= 0 for c in context_lens):
            raise ValueError(f"context lengths must be positive: {context_lens}")
        batch = len(context_lens)
        flops = batch * self.model.flops_per_token()
        flops += sum(
            self.model.attention_flops(1, c) for c in context_lens
        )
        compute = flops / self._peak
        kv_bytes = sum(context_lens) * self.model.kv_bytes_per_token
        mem = (self._layer_weight_bytes + kv_bytes) / self._bw
        t = max(compute, mem) + 0.1 * min(compute, mem)
        t += self._launches + self.ITERATION_OVERHEAD_S
        t += self._allreduce_seconds(batch)
        if lm_head:
            t += self.head_seconds(batch, self.model.vocab_size)
        if task_head_classes > 0:
            t += self.head_seconds(batch, task_head_classes)
        return t

    def head_seconds(self, batch: int, num_classes: int) -> float:
        """One output head pass: ``(batch x d) @ (d x num_classes)``."""
        if batch <= 0 or num_classes <= 0:
            raise ValueError("batch and num_classes must be positive")
        flops = 2.0 * batch * self.model.hidden_dim * num_classes
        wbytes = self.model.hidden_dim * num_classes * FP16_BYTES
        return max(flops / self._peak, wbytes / self._bw) + self.cost_model.launch_seconds(1)

    def vision_encode_seconds(self, num_images: int) -> float:
        """Vision receptor cost for ``num_images`` images entering the batch."""
        if num_images < 0:
            raise ValueError(f"num_images must be >= 0, got {num_images}")
        if num_images == 0:
            return 0.0
        enc = self.model.vision_encoder
        compute = num_images * enc.flops_per_image / self._peak
        wbytes = enc.num_params * FP16_BYTES
        mem = wbytes / self._bw
        return max(compute, mem) + self.cost_model.launch_seconds(num_images)

    def decode_seconds_stats(
        self,
        batch: int,
        total_context: int,
        lm_head: bool = True,
        task_head_classes: int = 0,
    ) -> float:
        """One decode step from sufficient statistics (batch, Σ context).

        Bit-identical to :meth:`decode_seconds` on any batch with the
        same size and total context length: the cost model is affine in
        the per-request context lengths (attention FLOPs and KV traffic
        are both linear in ``c``), and every intermediate product/sum is
        an exact integer-valued float far below 2**53, so the reduction
        loses nothing.  This is what lets the engine's memoized cost
        layer key decode iterations on ``(batch, total_context)`` instead
        of the full per-request KV-length vector.
        """
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        if total_context < batch:
            raise ValueError(
                f"total_context {total_context} below batch size {batch} "
                f"(context lengths are positive)"
            )
        flops = batch * self.model.flops_per_token()
        flops += self.model.attention_flops(1, total_context)
        compute = flops / self._peak
        kv_bytes = total_context * self.model.kv_bytes_per_token
        mem = (self._layer_weight_bytes + kv_bytes) / self._bw
        t = max(compute, mem) + 0.1 * min(compute, mem)
        t += self._launches + self.ITERATION_OVERHEAD_S
        t += self._allreduce_seconds(batch)
        if lm_head:
            t += self.head_seconds(batch, self.model.vocab_size)
        if task_head_classes > 0:
            t += self.head_seconds(batch, task_head_classes)
        return t

    # -- convenience -------------------------------------------------------------

    def _decode_seconds_uniform(
        self, batch: int, context_len: int,
        lm_head: bool = True, task_head_classes: int = 0,
    ) -> float:
        """Memoized decode step for a uniform-context batch (hot path).

        Exposed as ``decode_seconds_uniform`` (wrapped per instance in
        ``__init__`` so caches are never shared across GPU configs).
        """
        return self.decode_seconds(
            [context_len] * batch, lm_head=lm_head,
            task_head_classes=task_head_classes,
        )
