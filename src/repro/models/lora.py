"""LoRA adapter specifications and size accounting.

§4.4.1 hinges on the size asymmetry this module encodes:

* the factorized adapter (A and B) is tiny — tens of MB for rank 64 on a
  7B model — so V-LoRA keeps adapters resident on GPU (or swaps them
  cheaply) and computes ΔW = B x A *at runtime* with ATMM;
* the materialized ΔW is as large as the target weights themselves
  (~GBs for all layers), so the alternative design — pre-computing ΔW in
  host memory and swapping it in on a mode switch — pays ~1 s per swap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.hardware.memory import FP16_BYTES
from repro.models.config import ModelConfig

#: Default rank used throughout the paper's evaluation (§6.1).
DEFAULT_RANK = 64


@dataclass(frozen=True)
class LoRAAdapterSpec:
    """Static description of one LoRA adapter for a given base model.

    Attributes
    ----------
    adapter_id:
        Stable identifier used by the scheduler and memory manager.
    model:
        Base model this adapter targets.
    rank:
        Low-rank dimension ``r``.
    num_projections:
        LoRA-targeted projection matrices per layer.  The default of 2
        (q and v, the classic recipe) best reconciles the paper's own
        size and latency arithmetic (43 MB adapters, ~3 GB ΔW per
        adapter, 53 ms dLoRA switch, <10 ms swift switch).
    task_head_classes:
        Output cardinality of the vision task head bundled with the
        adapter (§4.2.2); 0 means the adapter answers through the LM head.
    """

    adapter_id: str
    model: ModelConfig
    rank: int = DEFAULT_RANK
    num_projections: int = 2
    task_head_classes: int = 0

    def __post_init__(self) -> None:
        if self.rank <= 0:
            raise ValueError(f"rank must be positive, got {self.rank}")
        if self.num_projections <= 0:
            raise ValueError("num_projections must be positive")
        if self.task_head_classes < 0:
            raise ValueError("task_head_classes must be >= 0")
        if self.rank > self.model.hidden_dim:
            raise ValueError(
                f"rank {self.rank} exceeds hidden dim {self.model.hidden_dim}"
            )

    # -- sizes ---------------------------------------------------------------

    @property
    def ab_params(self) -> int:
        """Parameters of the factorized adapter (A: d x r, B: r x d, per layer)."""
        d = self.model.hidden_dim
        per_layer = 2 * d * self.rank * self.num_projections
        head = d * self.task_head_classes
        return self.model.num_layers * per_layer + head

    @property
    def ab_bytes(self) -> int:
        """FP16 bytes of A and B — what V-LoRA stores and swaps."""
        return self.ab_params * FP16_BYTES

    @property
    def delta_w_bytes(self) -> int:
        """FP16 bytes of the materialized all-layer ΔW — what V-LoRA avoids."""
        d = self.model.hidden_dim
        return self.model.num_layers * self.num_projections * d * d * FP16_BYTES

    @property
    def has_task_head(self) -> bool:
        return self.task_head_classes > 0

    # -- math bookkeeping ------------------------------------------------------

    def delta_w_gemm_shape(self) -> Tuple[int, int, int]:
        """(m, k, n) of one per-layer ΔW = B x A product."""
        d = self.model.hidden_dim
        return (d, self.rank, d)

    def with_head(self, num_classes: int) -> "LoRAAdapterSpec":
        """A copy of this spec carrying a vision task head."""
        return LoRAAdapterSpec(
            adapter_id=self.adapter_id,
            model=self.model,
            rank=self.rank,
            num_projections=self.num_projections,
            task_head_classes=num_classes,
        )
