"""Domain-specific small models the paper compares and swaps against.

§3.1 measures swapping a LoRA adapter (~15 ms) against swapping YOLO
(~110 ms) and OSCAR (~520 ms); §6.1 uses five small models as accuracy
baselines.  Serving-side, only sizes matter (swap latency); accuracy-side
behaviour lives in :mod:`repro.generation.small_models`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SmallModelSpec:
    """A conventional domain-specific vision model.

    Attributes
    ----------
    name:
        Model family name as used in the paper.
    task:
        The vision task it serves.
    size_mb:
        On-disk / in-memory weight footprint in MB.
    sota_accuracy:
        Reference accuracy on its home dataset (percent), used by the
        Fig. 15 comparison as the small-model bar.
    """

    name: str
    task: str
    size_mb: float
    sota_accuracy: float

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ValueError(f"size_mb must be positive, got {self.size_mb}")
        if not 0 <= self.sota_accuracy <= 100:
            raise ValueError(
                f"sota_accuracy must be a percentage, got {self.sota_accuracy}"
            )

    @property
    def size_bytes(self) -> int:
        return int(self.size_mb * 1e6)


#: The five small models of §6.1, with their paper-reported context:
#: YOLO 18.3% zero-shot grounding F1 / 110 ms swap; OSCAR 73.3% VQA /
#: 520 ms swap; the rest anchor Fig. 15's small-model bars.
SMALL_MODELS = {
    "YOLO": SmallModelSpec("YOLO", "object_detection", 90.0, 84.0),
    "OSCAR": SmallModelSpec("OSCAR", "visual_qa", 440.0, 73.3),
    "VideoMAE": SmallModelSpec("VideoMAE", "video_understanding", 660.0, 91.3),
    "UNINEXT": SmallModelSpec("UNINEXT", "referring_expression", 1400.0, 89.0),
    "VisionMamba": SmallModelSpec("VisionMamba", "image_caption", 196.0, 80.5),
}


def get_small_model(name: str) -> SmallModelSpec:
    """Look up a small-model spec by name."""
    try:
        return SMALL_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(SMALL_MODELS))
        raise KeyError(f"unknown small model {name!r}; known: {known}") from None


#: Per-MB framework initialization cost when swapping a *small model* in
#: (layer construction, weight copy into framework tensors).  Adapters
#: skip this entirely: V-LoRA pre-allocates contiguous adapter slots, so
#: an adapter swap is a pure memcpy (§3.1, §4.4.1).
SMALL_MODEL_INIT_S_PER_MB = 1.1e-3
