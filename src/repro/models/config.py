"""LMM model configurations (paper Table 2).

| Model         | Vision Encoder      | Size | Layer # | Dimension |
|---------------|---------------------|------|---------|-----------|
| Qwen-VL-7B    | Openclip-ViT (1.9B) | 18GB | 32      | 4096      |
| LLaVA-1.5-7B  | CLIP-ViT (0.3B)     | 13GB | 32      | 4096      |
| LLaVA-1.5-13B | CLIP-ViT (0.3B)     | 24GB | 40      | 5120      |
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.memory import FP16_BYTES


@dataclass(frozen=True)
class VisionEncoderConfig:
    """The visual receptor: ViT encoder + vision-language projector."""

    name: str
    num_params: int
    image_tokens: int = 256

    def __post_init__(self) -> None:
        if self.num_params <= 0 or self.image_tokens <= 0:
            raise ValueError("vision encoder params and tokens must be positive")

    @property
    def flops_per_image(self) -> float:
        """~2 FLOPs per parameter per visual token."""
        return 2.0 * self.num_params * self.image_tokens


@dataclass(frozen=True)
class ModelConfig:
    """One LMM: the LLM backbone plus its visual receptor.

    Attributes map onto Table 2; derived sizes feed the memory manager
    and the iteration cost model.
    """

    name: str
    num_layers: int
    hidden_dim: int
    num_heads: int
    intermediate_dim: int
    vocab_size: int
    vision_encoder: VisionEncoderConfig
    max_context: int = 8192

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.hidden_dim <= 0:
            raise ValueError("layers and hidden dim must be positive")
        if self.hidden_dim % self.num_heads:
            raise ValueError(
                f"hidden_dim {self.hidden_dim} not divisible by "
                f"num_heads {self.num_heads}"
            )

    @property
    def head_dim(self) -> int:
        return self.hidden_dim // self.num_heads

    @property
    def params_per_layer(self) -> int:
        """Parameters of one transformer layer (attention + gated MLP)."""
        d, i = self.hidden_dim, self.intermediate_dim
        attn = 4 * d * d              # q, k, v, o
        mlp = 3 * d * i               # gate, up, down
        return attn + mlp

    @property
    def backbone_params(self) -> int:
        """LLM backbone parameters (layers + embeddings + LM head)."""
        embed = 2 * self.vocab_size * self.hidden_dim
        return self.num_layers * self.params_per_layer + embed

    @property
    def total_params(self) -> int:
        return self.backbone_params + self.vision_encoder.num_params

    @property
    def weight_bytes(self) -> int:
        """FP16 weight footprint in device memory."""
        return self.total_params * FP16_BYTES

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes one token occupies across all layers (FP16)."""
        return 2 * self.num_layers * self.hidden_dim * FP16_BYTES

    def flops_per_token(self) -> float:
        """Dense FLOPs to push one token through the backbone (no attention)."""
        return 2.0 * self.num_layers * self.params_per_layer

    def attention_flops(self, new_tokens: int, context_len: int) -> float:
        """Attention score+value FLOPs for ``new_tokens`` against a context."""
        return 4.0 * new_tokens * context_len * self.hidden_dim * self.num_layers


QWEN_VL_7B = ModelConfig(
    name="Qwen-VL-7B",
    num_layers=32,
    hidden_dim=4096,
    num_heads=32,
    intermediate_dim=11008,
    vocab_size=151936,
    vision_encoder=VisionEncoderConfig("Openclip-ViT-bigG", 1_900_000_000),
)

LLAVA15_7B = ModelConfig(
    name="LLaVA-1.5-7B",
    num_layers=32,
    hidden_dim=4096,
    num_heads=32,
    intermediate_dim=11008,
    vocab_size=32000,
    vision_encoder=VisionEncoderConfig("CLIP-ViT-L", 300_000_000, image_tokens=576),
)

LLAVA15_13B = ModelConfig(
    name="LLaVA-1.5-13B",
    num_layers=40,
    hidden_dim=5120,
    num_heads=40,
    intermediate_dim=13824,
    vocab_size=32000,
    vision_encoder=VisionEncoderConfig("CLIP-ViT-L", 300_000_000, image_tokens=576),
)

#: Paper §6.4 future work: "support larger LMM like InternVL2-76B".
#: Llama-3-70B backbone + InternViT-6B visual receptor; needs tensor
#: parallelism to fit (152 GB of weights vs 80 GB per A100).
INTERNVL2_76B = ModelConfig(
    name="InternVL2-76B",
    num_layers=80,
    hidden_dim=8192,
    num_heads=64,
    intermediate_dim=28672,
    vocab_size=128256,
    vision_encoder=VisionEncoderConfig("InternViT-6B", 5_900_000_000),
)

_REGISTRY = {
    m.name: m
    for m in (QWEN_VL_7B, LLAVA15_7B, LLAVA15_13B, INTERNVL2_76B)
}


def get_model(name: str) -> ModelConfig:
    """Look up a model configuration by its Table 2 name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


def list_models() -> list:
    """Names of all registered models, sorted."""
    return sorted(_REGISTRY)
