"""LMM model configurations and per-iteration cost models.

* :mod:`repro.models.config` — the Table 2 model zoo (Qwen-VL-7B,
  LLaVA-1.5-7B/13B) plus their vision encoders.
* :mod:`repro.models.lora` — LoRA adapter specifications: sizes of the
  A/B matrices vs. the materialized ΔW, merge math bookkeeping.
* :mod:`repro.models.costs` — base-model iteration latency (prefill /
  decode / vision encode / LM head vs task head) on a given GPU.
* :mod:`repro.models.zoo` — the domain-specific small models used for
  swap-latency and accuracy comparisons (YOLO, OSCAR, ...).
"""

from repro.models.config import (
    INTERNVL2_76B,
    LLAVA15_13B,
    LLAVA15_7B,
    QWEN_VL_7B,
    ModelConfig,
    VisionEncoderConfig,
    get_model,
    list_models,
)
from repro.models.costs import IterationCostModel
from repro.models.lora import LoRAAdapterSpec
from repro.models.zoo import SMALL_MODELS, SmallModelSpec, get_small_model

__all__ = [
    "ModelConfig",
    "VisionEncoderConfig",
    "QWEN_VL_7B",
    "LLAVA15_7B",
    "LLAVA15_13B",
    "INTERNVL2_76B",
    "get_model",
    "list_models",
    "LoRAAdapterSpec",
    "IterationCostModel",
    "SmallModelSpec",
    "SMALL_MODELS",
    "get_small_model",
]
