"""Memory hierarchy and host-transfer model.

Two concerns live here:

* :class:`MemoryHierarchy` — capacity checks used by the tiling validity
  rules (a thread-block tile must fit, double-buffered, in shared memory;
  warp tiles must fit in the register file).
* :class:`TransferModel` / :class:`HostLink` — latency of moving bytes
  between host and device.  This is what makes LoRA-adapter swap (~43 MB)
  cheap relative to small-model swap (§3.1: 15 ms vs 110-520 ms) and what
  makes pre-computed-ΔW swap (~3 GB) prohibitively slow (§4.4.1: ~1 s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import GPUSpec

FP16_BYTES = 2
FP32_BYTES = 4


@dataclass(frozen=True)
class HostLink:
    """A host<->device link with bandwidth and fixed per-transfer latency."""

    bandwidth_gbps: float
    latency_us: float = 10.0

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to move ``nbytes`` across the link, in seconds."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_us * 1e-6 + nbytes / (self.bandwidth_gbps * 1e9)


class MemoryHierarchy:
    """Capacity view over a :class:`GPUSpec` used for tiling validity."""

    def __init__(self, gpu: GPUSpec):
        self.gpu = gpu

    def smem_fits(self, tile_bytes: int, double_buffered: bool = True) -> bool:
        """Whether a thread-block tile's staging buffers fit in shared memory.

        ATMM double-buffers every tile (one buffer computing, one
        prefetching), so the default check reserves twice the tile bytes.
        """
        factor = 2 if double_buffered else 1
        return tile_bytes * factor <= self.gpu.shared_mem_per_sm_bytes

    def regfile_fits(self, warp_tile_bytes: int, warps_per_block: int,
                     double_buffered: bool = True) -> bool:
        """Whether the per-block register working set fits the register file."""
        factor = 2 if double_buffered else 1
        need = warp_tile_bytes * warps_per_block * factor
        return need <= self.gpu.register_file_per_sm_bytes

    def hbm_fits(self, nbytes: int) -> bool:
        """Whether ``nbytes`` fits in device memory."""
        return 0 <= nbytes <= self.gpu.hbm_capacity_bytes


class TransferModel:
    """Latency model for host<->device movement of model state.

    The paper's numbers (measured on A100 + PCIe 4):

    * LoRA adapter (A, B only, rank 64): ~43 MB -> ~15 ms including
      framework overhead.
    * YOLO small model: ~110 ms; OSCAR: ~520 ms.
    * Pre-computed all-layer ΔW for Qwen-VL-7B: ~3 GB -> ~1 s.

    A pure bandwidth model would put 43 MB at ~1.7 ms; the measured 15 ms
    includes allocator and framework overhead, which we model as a fixed
    per-swap software cost.
    """

    #: fixed software overhead per swap operation (allocator, stream sync)
    SWAP_SOFTWARE_OVERHEAD_S = 13e-3

    def __init__(self, gpu: GPUSpec):
        self.gpu = gpu
        self.link = HostLink(gpu.pcie_bandwidth_gbps, gpu.pcie_latency_us)

    def raw_transfer_seconds(self, nbytes: int) -> float:
        """Pure link time for ``nbytes`` (no software overhead)."""
        return self.link.transfer_seconds(nbytes)

    def swap_seconds(self, nbytes: int, async_overlap: float = 0.0,
                     software_overhead_s: float = None) -> float:
        """End-to-end swap latency for ``nbytes`` of model state.

        Parameters
        ----------
        nbytes:
            Payload size.
        async_overlap:
            Fraction in ``[0, 1]`` of the *transfer* hidden behind compute
            (V-LoRA swaps adapters asynchronously; §5 "LoRA adapter swap").
            The software overhead is never hidden.
        software_overhead_s:
            Per-swap software cost.  Defaults to
            :data:`SWAP_SOFTWARE_OVERHEAD_S` (framework allocation +
            layer binding).  V-LoRA's pre-allocated contiguous adapter
            slots reduce a swap to a plain memcpy (§4.4.1), so its
            manager passes a much smaller value.
        """
        if not 0.0 <= async_overlap <= 1.0:
            raise ValueError(f"async_overlap must be in [0,1], got {async_overlap}")
        overhead = (self.SWAP_SOFTWARE_OVERHEAD_S
                    if software_overhead_s is None else software_overhead_s)
        if overhead < 0:
            raise ValueError(f"software_overhead_s must be >= 0, got {overhead}")
        wire = self.raw_transfer_seconds(nbytes)
        return overhead + wire * (1.0 - async_overlap)
