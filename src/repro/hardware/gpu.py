"""GPU device specifications.

The cost model in :mod:`repro.kernels.cost_model` is parameterized by a
:class:`GPUSpec`.  The defaults below are taken from vendor datasheets; the
paper's testbed is a single NVIDIA A100 80GB (:data:`A100_80GB`).

Only properties that influence tiled-GEMM behaviour are modelled:

* streaming-multiprocessor (SM) count — wave quantization,
* peak FP16 throughput on Tensor cores and CUDA cores — the compute roof,
* HBM bandwidth — the memory roof,
* shared-memory / register-file capacity per SM — tiling validity,
* kernel-launch overhead — Einsum-style launch storms,
* host link bandwidth — adapter/model swap latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU device.

    Attributes
    ----------
    name:
        Human-readable device name, e.g. ``"A100-80GB"``.
    num_sms:
        Number of streaming multiprocessors.
    sm_clock_ghz:
        Boost clock in GHz.
    tensor_tflops_fp16:
        Peak FP16 Tensor-core throughput in TFLOP/s (dense).
    cuda_tflops_fp16:
        Peak FP16 CUDA-core (non-tensor) throughput in TFLOP/s.
    hbm_bandwidth_gbps:
        HBM bandwidth in GB/s.
    hbm_capacity_gb:
        Device memory capacity in GB.
    shared_mem_per_sm_kb:
        Shared memory (configurable L1 carve-out) per SM in KiB.
    register_file_per_sm_kb:
        Register file per SM in KiB.
    l2_cache_mb:
        L2 cache size in MB.
    max_threads_per_sm:
        Thread-residency limit per SM.
    warp_size:
        Threads per warp.
    kernel_launch_us:
        Fixed host-side launch latency per kernel in microseconds.
    pcie_bandwidth_gbps:
        Effective host<->device link bandwidth in GB/s.
    pcie_latency_us:
        Per-transfer fixed link latency in microseconds.
    """

    name: str
    num_sms: int
    sm_clock_ghz: float
    tensor_tflops_fp16: float
    cuda_tflops_fp16: float
    hbm_bandwidth_gbps: float
    hbm_capacity_gb: float
    shared_mem_per_sm_kb: int = 164
    register_file_per_sm_kb: int = 256
    l2_cache_mb: float = 40.0
    max_threads_per_sm: int = 2048
    warp_size: int = 32
    kernel_launch_us: float = 6.0
    pcie_bandwidth_gbps: float = 25.0
    pcie_latency_us: float = 10.0
    nvlink_bandwidth_gbps: float = 300.0
    nvlink_latency_us: float = 3.0

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError(f"num_sms must be positive, got {self.num_sms}")
        if self.tensor_tflops_fp16 <= 0 or self.cuda_tflops_fp16 <= 0:
            raise ValueError("peak throughputs must be positive")
        if self.hbm_bandwidth_gbps <= 0:
            raise ValueError("hbm_bandwidth_gbps must be positive")

    # -- derived quantities ------------------------------------------------

    @property
    def tensor_flops(self) -> float:
        """Peak Tensor-core FP16 throughput in FLOP/s."""
        return self.tensor_tflops_fp16 * 1e12

    @property
    def cuda_flops(self) -> float:
        """Peak CUDA-core FP16 throughput in FLOP/s."""
        return self.cuda_tflops_fp16 * 1e12

    @property
    def hbm_bytes_per_s(self) -> float:
        """HBM bandwidth in bytes/s."""
        return self.hbm_bandwidth_gbps * 1e9

    @property
    def hbm_capacity_bytes(self) -> int:
        """Device memory capacity in bytes."""
        return int(self.hbm_capacity_gb * (1 << 30))

    @property
    def shared_mem_per_sm_bytes(self) -> int:
        """Shared memory per SM in bytes."""
        return self.shared_mem_per_sm_kb * 1024

    @property
    def register_file_per_sm_bytes(self) -> int:
        """Register file per SM in bytes."""
        return self.register_file_per_sm_kb * 1024

    @property
    def pcie_bytes_per_s(self) -> float:
        """Host link bandwidth in bytes/s."""
        return self.pcie_bandwidth_gbps * 1e9

    @property
    def nvlink_bytes_per_s(self) -> float:
        """GPU-to-GPU interconnect bandwidth in bytes/s."""
        return self.nvlink_bandwidth_gbps * 1e9

    def flops_per_sm(self, tensor: bool = True) -> float:
        """Peak per-SM throughput in FLOP/s for the chosen core type."""
        total = self.tensor_flops if tensor else self.cuda_flops
        return total / self.num_sms


A100_80GB = GPUSpec(
    name="A100-80GB",
    num_sms=108,
    sm_clock_ghz=1.41,
    tensor_tflops_fp16=312.0,
    cuda_tflops_fp16=78.0,
    hbm_bandwidth_gbps=2039.0,
    hbm_capacity_gb=80.0,
    shared_mem_per_sm_kb=164,
    register_file_per_sm_kb=256,
    l2_cache_mb=40.0,
)

A100_40GB = GPUSpec(
    name="A100-40GB",
    num_sms=108,
    sm_clock_ghz=1.41,
    tensor_tflops_fp16=312.0,
    cuda_tflops_fp16=78.0,
    hbm_bandwidth_gbps=1555.0,
    hbm_capacity_gb=40.0,
)

A10 = GPUSpec(
    name="A10",
    num_sms=72,
    sm_clock_ghz=1.70,
    tensor_tflops_fp16=125.0,
    cuda_tflops_fp16=31.2,
    hbm_bandwidth_gbps=600.0,
    hbm_capacity_gb=24.0,
    shared_mem_per_sm_kb=100,
    l2_cache_mb=6.0,
)

H100_80GB = GPUSpec(
    name="H100-80GB",
    num_sms=132,
    sm_clock_ghz=1.98,
    tensor_tflops_fp16=989.0,
    cuda_tflops_fp16=133.8,
    hbm_bandwidth_gbps=3350.0,
    hbm_capacity_gb=80.0,
    shared_mem_per_sm_kb=228,
    l2_cache_mb=50.0,
)

_REGISTRY = {
    spec.name: spec for spec in (A100_80GB, A100_40GB, A10, H100_80GB)
}


def get_gpu(name: str) -> GPUSpec:
    """Return a registered :class:`GPUSpec` by name.

    Raises
    ------
    KeyError
        If ``name`` is not a registered device.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown GPU {name!r}; known devices: {known}") from None


def list_gpus() -> list:
    """Return the names of all registered devices, sorted."""
    return sorted(_REGISTRY)
