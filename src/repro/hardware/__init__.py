"""Analytical GPU hardware model.

This package substitutes for the physical NVIDIA A100 testbed the paper
uses.  It exposes device specifications (:class:`~repro.hardware.gpu.GPUSpec`)
and a memory-hierarchy transfer model (:mod:`repro.hardware.memory`) that
the kernel cost model in :mod:`repro.kernels` consumes.
"""

from repro.hardware.gpu import (
    A10,
    A100_40GB,
    A100_80GB,
    H100_80GB,
    GPUSpec,
    get_gpu,
    list_gpus,
)
from repro.hardware.memory import (
    HostLink,
    MemoryHierarchy,
    TransferModel,
)

__all__ = [
    "A10",
    "A100_40GB",
    "A100_80GB",
    "H100_80GB",
    "GPUSpec",
    "get_gpu",
    "list_gpus",
    "HostLink",
    "MemoryHierarchy",
    "TransferModel",
]
