"""Tail-tolerant dispatch: hedged requests, retry budgets, timeout policy.

Interactive vision applications are judged by p99 TTFT, not mean
throughput (§6.1) — and at S-LoRA adapter counts one swap-stalled or
straggling replica drags the tail even when the rest of the fleet is
healthy.  This module supplies the three classic tail-tolerance
primitives (Dean & Barroso, "The Tail at Scale"; Google SRE's retry
budgets), built on PR 6's lease-fenced exactly-once machinery:

* :func:`capped_exponential_backoff` — the one shared backoff curve
  behind the engine's swap retries and the cluster's failover requeues
  (previously duplicated ad hoc at both call sites);
* :class:`TimeoutPolicy` — one deadline-aware policy object
  consolidating the runtime's formerly scattered timing constants
  (swap retry backoff, requeue backoff, breaker cooldown, drain
  timeout) plus the tail-tolerance deadlines (``hedge_after_s``,
  ``give_up_after_s``);
* :class:`RetryBudget` — a per-priority-class token bucket that gates
  *every* speculative or repeated dispatch (hedges, swap retries,
  failover requeues) so correlated failures degrade to single-shot
  dispatch instead of amplifying load into a retry storm;
* :class:`HedgeConfig` / :class:`HedgeTracker` — percentile-tracked
  hedge thresholds: when a request's time in flight crosses the
  observed p95 (configurable) of recent completions in its priority
  class, the cluster dispatches a second copy to a different healthy
  replica; first completion wins and the loser is fenced
  (``hedge_losses``), never double-terminating the request.

Everything here is plain simulation state driven by the caller's clock:
deterministic, replayable, and **off by default** — a cluster built
without a :class:`HedgeConfig`, :class:`RetryBudget`, or
:class:`TimeoutPolicy` is bit-identical to the pre-hedging runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.runtime.metrics import StreamingQuantile

__all__ = [
    "capped_exponential_backoff",
    "TimeoutPolicy",
    "RetryBudgetConfig",
    "RetryBudget",
    "HedgeConfig",
    "HedgeTracker",
]


def capped_exponential_backoff(base_s: float, attempt: int,
                               cap_s: float) -> float:
    """Delay before retry number ``attempt`` (1-based): min(base·2^(n-1), cap).

    The single backoff curve shared by the engine's adapter-swap retries
    (``attempt`` = consecutive swap failures) and the cluster's failover
    requeues (``attempt`` = requeue count).  ``attempt <= 1`` pays the
    base delay; the delay doubles per attempt and saturates at ``cap_s``.
    """
    if base_s < 0 or cap_s < 0:
        raise ValueError("backoff base and cap must be >= 0")
    if base_s == 0.0:
        return 0.0
    return min(base_s * 2.0 ** max(0, attempt - 1), cap_s)


@dataclass(frozen=True)
class TimeoutPolicy:
    """One deadline-aware home for the runtime's timing constants.

    Before this policy object existed, each timeout lived in a different
    config: swap retry backoff in :class:`~repro.runtime.engine.EngineConfig`,
    requeue backoff in :class:`~repro.runtime.cluster.MultiGPUServer`'s
    kwargs, breaker cooldown in
    :class:`~repro.runtime.overload.BreakerConfig`, and the drain timeout
    in :class:`~repro.runtime.autoscaler.AutoscaleConfig`.  Attaching a
    ``TimeoutPolicy`` overrides them all from one place; every field
    left ``None`` defers to the legacy knob, so a default-constructed
    policy changes nothing.

    The two new deadlines are the tail-tolerance ones: ``hedge_after_s``
    fixes the hedge threshold (bypassing the percentile tracker), and
    ``give_up_after_s`` bounds any request's total time in the system —
    threaded through the engine's existing deadline machinery
    (``AbortReason.DEADLINE_EXCEEDED``) for requests that carry no
    deadline of their own.
    """

    #: Engine adapter-swap retry backoff (overrides ``EngineConfig``).
    swap_retry_base_s: Optional[float] = None
    swap_retry_cap_s: Optional[float] = None
    #: Cluster failover-requeue backoff (overrides the cluster kwargs).
    requeue_backoff_s: Optional[float] = None
    requeue_backoff_cap_s: Optional[float] = None
    #: Adapter circuit-breaker cooldown (overrides the implicit
    #: permanent quarantine when no explicit ``BreakerConfig`` is set).
    breaker_cooldown_s: Optional[float] = None
    #: Scale-down drain timeout (overrides ``AutoscaleConfig``).
    drain_timeout_s: Optional[float] = None
    #: Fixed hedge threshold: hedge any request in flight longer than
    #: this.  ``None`` uses the percentile-tracked threshold instead.
    hedge_after_s: Optional[float] = None
    #: Hard bound on any request's time in system; requests without
    #: their own ``deadline_s`` inherit it at cluster submit.
    give_up_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("swap_retry_base_s", "swap_retry_cap_s",
                     "requeue_backoff_cap_s", "breaker_cooldown_s",
                     "drain_timeout_s", "hedge_after_s",
                     "give_up_after_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if (self.requeue_backoff_s is not None
                and self.requeue_backoff_s < 0):
            raise ValueError("requeue_backoff_s must be >= 0")

    def requeue_backoff(self, attempt: int, base_s: float, cap_s: float,
                        deadline_s: Optional[float] = None) -> float:
        """Failover-requeue delay for retry ``attempt``, deadline-aware.

        Policy fields override the caller's legacy ``base_s``/``cap_s``
        when set.  A request carrying a deadline never backs off longer
        than the deadline itself — delaying a retry past the point where
        the answer can no longer arrive in time only wastes the retry.
        """
        base = base_s if self.requeue_backoff_s is None else self.requeue_backoff_s
        cap = (cap_s if self.requeue_backoff_cap_s is None
               else self.requeue_backoff_cap_s)
        if deadline_s is not None:
            cap = min(cap, deadline_s)
        return capped_exponential_backoff(base, attempt, cap)

    def swap_backoff(self, attempt: int, base_s: float,
                     cap_s: float) -> float:
        """Adapter-swap retry delay for failure number ``attempt``."""
        base = base_s if self.swap_retry_base_s is None else self.swap_retry_base_s
        cap = cap_s if self.swap_retry_cap_s is None else self.swap_retry_cap_s
        return capped_exponential_backoff(base, attempt, cap)


@dataclass(frozen=True)
class RetryBudgetConfig:
    """Knobs for :class:`RetryBudget`.

    ``ratio`` is the classic SRE rule ("retries may add at most 10% to
    traffic"): every first-time dispatch earns its priority class
    ``ratio`` tokens, every speculative or repeated dispatch (hedge,
    swap retry, failover requeue) spends one.  ``burst`` caps how many
    tokens a class can bank, so a long quiet period cannot fund an
    unbounded storm later; ``initial`` seeds each bucket so early
    failures are not starved before traffic has accrued credit.
    """

    ratio: float = 0.1
    burst: float = 20.0
    initial: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {self.ratio}")
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        if not 0.0 <= self.initial <= self.burst:
            raise ValueError(
                f"initial must be in [0, burst], got {self.initial}"
            )


class RetryBudget:
    """Per-priority-class token bucket gating retries and hedges.

    One shared instance sits between the cluster and every replica
    engine, so *all* redundant work — hedged copies, swap retries,
    failover requeues — draws down the same budget.  Under isolated
    failures the bucket stays topped up and every retry is allowed;
    under correlated failure (mass requeue, every adapter failing) the
    bucket drains and the runtime degrades to single-shot dispatch
    instead of amplifying the overload.  ``exhausted`` counts denials
    (surfaced as the ``retry_budget_exhausted`` metric).
    """

    def __init__(self, config: Optional[RetryBudgetConfig] = None):
        self.config = config or RetryBudgetConfig()
        self._tokens: Dict[int, float] = {}
        self.exhausted = 0
        self.spent = 0

    def _bucket(self, priority: int) -> float:
        return self._tokens.setdefault(priority, self.config.initial)

    def tokens(self, priority: int) -> float:
        """Current balance of the class's bucket (for tests/benches)."""
        return self._bucket(priority)

    def deposit(self, priority: int) -> None:
        """Credit one first-time dispatch in ``priority``'s class."""
        self._tokens[priority] = min(
            self._bucket(priority) + self.config.ratio, self.config.burst
        )

    def try_spend(self, priority: int) -> bool:
        """Spend one token for a retry/hedge; False when exhausted."""
        balance = self._bucket(priority)
        if balance >= 1.0:
            self._tokens[priority] = balance - 1.0
            self.spent += 1
            return True
        self.exhausted += 1
        return False


@dataclass(frozen=True)
class HedgeConfig:
    """Knobs for cluster-level hedged dispatch.

    A request whose time in flight exceeds its priority class's
    ``percentile`` of recently observed completion latencies (window of
    ``window`` samples, armed only after ``min_observations``) is
    speculatively re-dispatched to a different healthy replica — at most
    once per request.  ``interval_s`` is the control-epoch length when
    neither an autoscaler nor a failure detector already provides one.
    """

    percentile: float = 95.0
    min_observations: int = 16
    window: int = 256
    interval_s: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile < 100.0:
            raise ValueError(
                f"percentile must be in (0, 100), got {self.percentile}"
            )
        if self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if self.window < self.min_observations:
            raise ValueError("window must be >= min_observations")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")


class HedgeTracker:
    """Percentile-tracked hedge thresholds per priority class.

    Observes every accepted completion's end-to-end latency through a
    sliding-window :class:`~repro.runtime.metrics.StreamingQuantile`;
    :meth:`threshold` answers "how long is suspiciously long for this
    class right now?".  ``None`` until enough completions were seen —
    hedging stays disarmed while the system knows nothing (unless a
    :class:`TimeoutPolicy` supplies a fixed ``hedge_after_s``).
    """

    def __init__(self, config: HedgeConfig,
                 policy: Optional[TimeoutPolicy] = None):
        self.config = config
        self.policy = policy
        self._quantiles: Dict[int, StreamingQuantile] = {}

    def observe(self, priority: int, latency_s: float) -> None:
        q = self._quantiles.get(priority)
        if q is None:
            q = StreamingQuantile(window=self.config.window)
            self._quantiles[priority] = q
        q.observe(latency_s)

    def threshold(self, priority: int) -> Optional[float]:
        if self.policy is not None and self.policy.hedge_after_s is not None:
            return self.policy.hedge_after_s
        q = self._quantiles.get(priority)
        if q is None or len(q) < self.config.min_observations:
            return None
        return q.quantile(self.config.percentile)
