"""Scheduling policies: Algorithm 1 and the baselines it is compared to.

The orchestrator's greedy heuristic (§4.4.3):

1. run **merged** whenever possible — fastest, zero extra cost;
2. when starvation appears, prefer **mixture** (no merged->unmerged
   switch cost, extra compute only for the minority), then **unmerged**.

Starvation is tracked by a per-request *credit*: waiting time plus the
estimated execution time in the current mode plus the mode-switch
latency; a request whose credit exceeds the tolerance θ is starving.
"""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.runtime.modes import InferenceMode
from repro.runtime.request import Request


@dataclass(slots=True)
class SchedulingContext:
    """What the engine tells the policy about the world."""

    now: float
    current_mode: InferenceMode
    current_merged: Optional[str]
    max_batch_size: int
    est_iteration_seconds: float
    est_switch_seconds: float
    #: True when ``candidates`` already arrive in FCFS order
    #: (arrival_time, request_id); policies may then skip their sorts —
    #: bit-identical, since that key is a total order (ids are unique).
    candidates_fcfs: bool = False
    #: Incrementally maintained ``adapter -> live request count`` equal
    #: to ``Counter(r.adapter_id for r in candidates)``; ``None`` when
    #: the engine filtered the candidate set (counts would be stale).
    #: Policies must treat it as read-only.
    adapter_counts: Optional[Dict[str, int]] = None


@dataclass(slots=True)
class SoAScheduleContext:
    """SoA twin of :class:`SchedulingContext`.

    The struct-of-arrays core identifies adapters by *index* into its
    interned adapter table rather than by id string;
    ``current_merged`` is that index (``-1`` = no merged adapter).
    Candidates are implicit: the queue view passed alongside always
    exposes the full live set in FCFS order with fresh per-adapter
    counts, so the ``candidates_fcfs`` / ``adapter_counts`` flags of the
    object context are structurally always true here.
    """

    now: float
    current_mode: InferenceMode
    current_merged: int
    max_batch_size: int
    est_iteration_seconds: float
    est_switch_seconds: float


@dataclass(slots=True)
class SoADecision:
    """SoA twin of :class:`SchedulerDecision`.

    ``batch`` holds pool indices in batch order; ``merged`` is an
    adapter index (``-1`` = none).  Constructed only by the
    ``schedule_soa`` fast paths, which guarantee the invariants that
    :class:`SchedulerDecision.__post_init__` checks on the object path.
    """

    batch: np.ndarray
    mode: InferenceMode
    merged: int = -1


@dataclass(slots=True)
class SchedulerDecision:
    """What to run next."""

    batch: List[Request]
    mode: InferenceMode
    merged_adapter: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.batch:
            raise ValueError("a decision needs a non-empty batch")
        if self.mode in (InferenceMode.MERGED, InferenceMode.MIXTURE):
            if self.merged_adapter is None:
                raise ValueError(f"{self.mode} requires a merged adapter")
        if self.mode is InferenceMode.MERGED:
            foreign = {
                r.adapter_id for r in self.batch
            } - {self.merged_adapter}
            if foreign:
                raise ValueError(
                    f"merged batch contains foreign adapters {sorted(foreign)}"
                )


def pick_shed_victim(pool: Sequence[Request],
                     now: float) -> Optional[Request]:
    """The cheapest request to abort under overload.

    Lowest priority class goes first (overload protection's contract:
    background work is shed before interactive work), then lowest
    credit.  Credit is the anti-starvation currency (§4.4.3): a low
    credit means the request has waited least and loses least progress.
    Policies that do not maintain credits leave it at 0, so ties break
    toward the youngest arrival (shed the newest work first, like
    S-LoRA's early-abort admission control).  With every request at the
    default priority the pick reduces to the legacy credit-keyed one.
    """
    if not pool:
        return None
    return min(pool, key=lambda r: (r.priority, r.credit,
                                    -r.arrival_time, -r.request_id))


class SchedulingPolicy(abc.ABC):
    """Picks the next batch, mode, and merged adapter."""

    name: str = "abstract"

    @abc.abstractmethod
    def schedule(
        self, candidates: Sequence[Request], ctx: SchedulingContext
    ) -> Optional[SchedulerDecision]:
        """Return the next decision, or ``None`` when nothing to run."""

    def refresh_credits(self, requests: Sequence[Request],
                        ctx: SchedulingContext) -> None:
        """Recompute ``request.credit`` as :meth:`schedule` would.

        Fast-path scheduling avoids touching every candidate's credit
        each step; callers that *read* credits (shed-victim selection)
        invoke this first so the values match what a full pass under
        ``ctx`` would have written.  Policies without credits no-op.
        """

    # -- struct-of-arrays fast paths (runtime/soa_core.py) -------------------
    #
    # ``view`` is a queue view over the SoA engine's request pool:
    #   view.n_live            -> live candidate count
    #   view.counts            -> int64[num_adapters] live count per adapter
    #   view.adapter_order     -> int64[num_adapters] lexicographic rank of
    #                             each adapter id (the _top_adapter tie-break)
    #   view.arrival           -> float64 pool array (index by pool idx)
    #   view.adapter_idx       -> int32 pool array of adapter indices
    #   view.credit            -> float64 pool array (shed-victim currency)
    #   view.live_prefix(k)    -> first k live pool indices, FCFS order
    #   view.match_after(a, limit, skip) -> first ``limit`` live indices of
    #                             adapter ``a`` after skipping ``skip`` live
    #   view.first_other(a)    -> first live index with adapter != a, or -1
    #
    # Each ``schedule_soa`` is the decision-identical twin of the object
    # path's fast pass: same branches, same float expressions, same
    # tie-breaks — property-tested in tests/runtime/test_soa_core.py.

    def schedule_soa(self, view, ctx: SoAScheduleContext):
        """Vectorized twin of :meth:`schedule` over an SoA queue view."""
        raise NotImplementedError(
            f"policy {self.name!r} has no SoA scheduling path"
        )

    def refresh_credits_soa(self, idx: np.ndarray, view,
                            ctx: SoAScheduleContext) -> None:
        """SoA twin of :meth:`refresh_credits` (writes ``view.credit``)."""

    @staticmethod
    def _top_adapter_soa(view) -> int:
        """Adapter index with the most live requests; ties break toward
        the lexicographically smallest adapter *id* — the same order
        :meth:`_top_adapter`'s ``min(counts, key=...)`` uses.

        One max over a composite key: ranks are distinct ints in
        ``[0, A)``, so ``counts * A - rank`` is maximal exactly at the
        highest count with the smallest rank, and the keys are unique
        (no reliance on argmax's first-hit tie rule).  Few-adapter pools
        take a plain int loop — three numpy dispatches cost more than
        scanning eight ints — with ``argmax`` kept for wide pools.
        """
        counts = view.counts
        n = counts.size
        if n > 64:
            return int(np.argmax(counts * n - view.adapter_order))
        cl = counts.tolist()
        ao = view.adapter_order_list
        best = 0
        bk = cl[0] * n - ao[0]
        for i in range(1, n):
            k = cl[i] * n - ao[i]
            if k > bk:
                bk = k
                best = i
        return best

    @staticmethod
    def _first_matching(candidates: Sequence[Request], adapter_id: str,
                        limit: int, start: int = 0) -> List[Request]:
        """First ``limit`` requests of one adapter, preserving order."""
        out: List[Request] = []
        if limit <= 0:
            return out
        for i in range(start, len(candidates)):
            r = candidates[i]
            if r.adapter_id == adapter_id:
                out.append(r)
                if len(out) == limit:
                    break
        return out

    @staticmethod
    def _fcfs(requests: Sequence[Request],
              presorted: bool = False) -> List[Request]:
        """FCFS order; ``presorted`` skips the sort for ordered inputs.

        Any order-preserving subset of an FCFS-ordered candidate list is
        itself FCFS-ordered, so call sites may pass
        ``ctx.candidates_fcfs`` for lists derived from ``candidates``
        by filtering.
        """
        if presorted:
            return list(requests)
        return sorted(requests, key=lambda r: (r.arrival_time, r.request_id))

    @staticmethod
    def _top_adapter(
        requests: Sequence[Request],
        counts: Optional[Dict[str, int]] = None,
    ) -> Optional[str]:
        if counts is None:
            if not requests:
                return None
            counts = Counter(r.adapter_id for r in requests)
        if not counts:
            return None
        # Deterministic tie-break by adapter id.
        return min(counts, key=lambda a: (-counts[a], a))


class VLoRAPolicy(SchedulingPolicy):
    """Algorithm 1: merged when possible, mixture then unmerged on starvation.

    Parameters
    ----------
    theta:
        Starvation tolerance in seconds of credit.
    """

    name = "V-LoRA"

    def __init__(self, theta: float = 0.5):
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        self.theta = theta

    def _credit(self, r, ctx):
        # Same float-addition order as the assignment loop below.
        return (
            r.waiting_time(ctx.now)
            + ctx.est_iteration_seconds
            + ctx.est_switch_seconds
        )

    def refresh_credits(self, requests, ctx):
        for r in requests:
            r.credit = self._credit(r, ctx)

    def _starve_prefix_len(self, candidates, ctx) -> int:
        """Length of the starving prefix of FCFS-ordered candidates.

        Credit is ``max(0, now - arrival) + const`` — monotone
        non-increasing along FCFS order (floating-point subtraction,
        max, and addition are all monotone) — so ``credit > theta``
        holds on exactly a prefix, found by bisection with the same
        per-request float expression the full pass evaluates.
        """
        lo, hi = 0, len(candidates)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._credit(candidates[mid], ctx) > self.theta:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def schedule(self, candidates, ctx):
        if not candidates:
            return None
        if ctx.candidates_fcfs and ctx.adapter_counts is not None:
            return self._schedule_fast(candidates, ctx)
        max_bs = ctx.max_batch_size
        for r in candidates:
            r.credit = (
                r.waiting_time(ctx.now)
                + ctx.est_iteration_seconds
                + ctx.est_switch_seconds
            )
        presorted = ctx.candidates_fcfs
        starve = self._fcfs(
            [r for r in candidates if r.credit > self.theta], presorted
        )
        top = self._top_adapter(candidates, ctx.adapter_counts)
        merge_reqs = self._fcfs(
            [r for r in candidates if r.adapter_id == top], presorted
        )
        slots_after_starve = max(0, max_bs - len(starve))

        # Principle (1), §4.4.3: merged whenever possible.  When every
        # live request wants the same adapter and nothing starves,
        # merged execution strictly dominates regardless of queue depth
        # (Algorithm 1's |R_merge|/MaxBS > 0.5 test is a hysteresis
        # guard for mixed traffic, not a reason to idle in unmerged
        # mode on single-tenant phases).
        if not starve and len(merge_reqs) == len(candidates):
            return SchedulerDecision(
                batch=merge_reqs[:max_bs],
                mode=InferenceMode.MERGED,
                merged_adapter=top,
            )

        # Principle (2) hysteresis: while the popular adapter is already
        # merged, leaving merged mode costs an un-merge; stay merged as
        # long as nothing starves, and rescue starving minorities via
        # mixture (whose switch from merged is free) before considering
        # unmerged mode.
        if (ctx.current_merged == top and merge_reqs
                and ctx.current_mode in (InferenceMode.MERGED,
                                         InferenceMode.MIXTURE)):
            if not starve:
                return SchedulerDecision(
                    batch=merge_reqs[:max_bs],
                    mode=InferenceMode.MERGED,
                    merged_adapter=top,
                )
            if len(starve) / max_bs <= 0.5:
                starve_ids = {r.request_id for r in starve}
                fill = [
                    r for r in merge_reqs if r.request_id not in starve_ids
                ][:slots_after_starve]
                return SchedulerDecision(
                    batch=(starve + fill)[:max_bs],
                    mode=InferenceMode.MIXTURE,
                    merged_adapter=top,
                )

        if (len(starve) / max_bs <= 0.5
                and len(merge_reqs) / max_bs > 0.5):
            if not starve:
                # Line 6-8: pure merged execution of the popular adapter.
                return SchedulerDecision(
                    batch=merge_reqs[:max_bs],
                    mode=InferenceMode.MERGED,
                    merged_adapter=top,
                )
            # Line 9-12: mixture — starving requests run via deLoRA
            # alongside the merged majority.
            starve_ids = {r.request_id for r in starve}
            fill = [
                r for r in merge_reqs if r.request_id not in starve_ids
            ][:slots_after_starve]
            return SchedulerDecision(
                batch=(starve + fill)[:max_bs],
                mode=InferenceMode.MIXTURE,
                merged_adapter=top,
            )
        # Line 13-15: unmerged — starving first, then FCFS fill.
        starve_ids = {r.request_id for r in starve}
        rest = self._fcfs(
            [r for r in candidates if r.request_id not in starve_ids],
            presorted,
        )
        batch = (starve + rest)[:max_bs]
        return SchedulerDecision(batch=batch, mode=InferenceMode.UNMERGED)

    def _schedule_fast(self, candidates, ctx):
        """O(log n + batch) twin of :meth:`schedule` for ordered input.

        Decision-identical to the full pass when ``candidates`` are
        FCFS-ordered and ``ctx.adapter_counts`` mirrors them: the starve
        set is the bisected prefix, ``merge_reqs`` tallies come from the
        counts, and every batch is assembled by early-exit scans instead
        of whole-queue list comprehensions.  Credits are not written
        here — :meth:`refresh_credits` recomputes them on demand.
        """
        max_bs = ctx.max_batch_size
        n = len(candidates)
        num_starve = self._starve_prefix_len(candidates, ctx)
        num_merge_total = 0
        top = self._top_adapter(candidates, ctx.adapter_counts)
        if top is not None:
            num_merge_total = ctx.adapter_counts.get(top, 0)

        if not num_starve and num_merge_total == n:
            # All candidates share one adapter and nothing starves.
            return SchedulerDecision(
                batch=list(candidates[:max_bs]),
                mode=InferenceMode.MERGED,
                merged_adapter=top,
            )

        def merged_decision():
            return SchedulerDecision(
                batch=self._first_matching(candidates, top, max_bs),
                mode=InferenceMode.MERGED,
                merged_adapter=top,
            )

        def mixture_decision():
            # Non-starving merge requests all live past the starve
            # prefix, so the fill scan starts there.
            starve = list(candidates[:num_starve])
            fill = self._first_matching(
                candidates, top, max(0, max_bs - num_starve),
                start=num_starve,
            )
            return SchedulerDecision(
                batch=(starve + fill)[:max_bs],
                mode=InferenceMode.MIXTURE,
                merged_adapter=top,
            )

        if (ctx.current_merged == top and num_merge_total
                and ctx.current_mode in (InferenceMode.MERGED,
                                         InferenceMode.MIXTURE)):
            if not num_starve:
                return merged_decision()
            if num_starve / max_bs <= 0.5:
                return mixture_decision()

        if (num_starve / max_bs <= 0.5
                and num_merge_total / max_bs > 0.5):
            if not num_starve:
                return merged_decision()
            return mixture_decision()
        # Unmerged: starving prefix first, then FCFS fill — which for
        # ordered candidates is simply the head of the queue.
        return SchedulerDecision(
            batch=list(candidates[:max_bs]),
            mode=InferenceMode.UNMERGED,
        )

    def refresh_credits_soa(self, idx, view, ctx):
        # Two separate scalar-broadcast adds: a broadcast add of a
        # python float to a float64 array is a per-element IEEE double
        # add, so this matches _credit's ((wait + it) + sw) rounding
        # exactly; pre-summing the constants would round differently.
        view.credit[idx] = (
            np.maximum(0.0, ctx.now - view.arrival[idx])
            + ctx.est_iteration_seconds
        ) + ctx.est_switch_seconds

    def schedule_soa(self, view, ctx):
        n = view.n_live
        if n == 0:
            return None
        max_bs = ctx.max_batch_size
        # One live-prefix fetch serves every branch: the probe is its
        # head (live_prefix(j) is a prefix of live_prefix(k) for j <=
        # k), the UNMERGED batch and the all-same MERGED batch are the
        # whole thing.
        cand = view.live_prefix(max_bs)
        # Credit is monotone non-increasing along FCFS order, so the
        # starving set is a prefix (same argument as
        # _starve_prefix_len).  Every branch that *uses* the exact count
        # requires num_starve <= max_bs // 2, so probing the first
        # max_bs // 2 + 1 live candidates suffices: if all of them
        # starve, the sentinel count max_bs // 2 + 1 fails both the
        # ``== 0`` and the ``2 * num_starve <= max_bs`` tests just like
        # any larger true count would.
        probe = cand[:max_bs // 2 + 1]
        # Arrival is non-decreasing along the probe and every op in the
        # credit formula is weakly monotone in IEEE arithmetic, so the
        # rounded credit is non-increasing and the starving-prefix
        # length bisects with the exact scalar predicate — O(log b)
        # float ops instead of five array passes.  Scalar python floats
        # are the same C doubles numpy uses, so each probe evaluates
        # the identical expression ``(max(0, now - arr) + it) + sw``.
        arrival = view.arrival
        now = ctx.now
        it_s = ctx.est_iteration_seconds
        sw_s = ctx.est_switch_seconds
        theta = self.theta
        lo, hi = 0, probe.size
        while lo < hi:
            mid = (lo + hi) // 2
            wait = now - float(arrival[probe[mid]])
            if wait < 0.0:
                wait = 0.0
            if ((wait + it_s) + sw_s) > theta:
                lo = mid + 1
            else:
                hi = mid
        num_starve = lo
        top = self._top_adapter_soa(view)
        num_merge_total = int(view.counts[top])

        if not num_starve and num_merge_total == n:
            # All candidates share one adapter and nothing starves.
            return SoADecision(
                batch=cand,
                mode=InferenceMode.MERGED,
                merged=top,
            )

        def merged_decision():
            return SoADecision(
                batch=view.match_after(top, max_bs, 0),
                mode=InferenceMode.MERGED,
                merged=top,
            )

        def mixture_decision():
            # Non-starving merge requests all live past the starve
            # prefix, so the fill scan starts there.  num_starve is
            # exact here (<= max_bs // 2 < probe length).
            fill = view.match_after(top, max_bs - num_starve, num_starve)
            return SoADecision(
                batch=np.concatenate((probe[:num_starve], fill)),
                mode=InferenceMode.MIXTURE,
                merged=top,
            )

        # ``num_starve / max_bs <= 0.5`` on the object path is exactly
        # ``2 * num_starve <= max_bs`` for these int magnitudes (the
        # division by a positive int is monotone and 0.5 is exact).
        if (ctx.current_merged == top and num_merge_total
                and ctx.current_mode in (InferenceMode.MERGED,
                                         InferenceMode.MIXTURE)):
            if not num_starve:
                return merged_decision()
            if 2 * num_starve <= max_bs:
                return mixture_decision()

        if 2 * num_starve <= max_bs and 2 * num_merge_total > max_bs:
            if not num_starve:
                return merged_decision()
            return mixture_decision()
        # Unmerged: starving prefix first, then FCFS fill — the head of
        # the queue.
        return SoADecision(
            batch=cand,
            mode=InferenceMode.UNMERGED,
        )


class UnmergedOnlyPolicy(SchedulingPolicy):
    """S-LoRA / Punica: FCFS continuous batching, unmerged always."""

    name = "unmerged-only"

    def schedule(self, candidates, ctx):
        if not candidates:
            return None
        if ctx.candidates_fcfs:
            batch = list(candidates[: ctx.max_batch_size])
        else:
            batch = self._fcfs(candidates)[: ctx.max_batch_size]
        return SchedulerDecision(batch=batch, mode=InferenceMode.UNMERGED)

    def schedule_soa(self, view, ctx):
        if view.n_live == 0:
            return None
        return SoADecision(
            batch=view.live_prefix(ctx.max_batch_size),
            mode=InferenceMode.UNMERGED,
        )


class MergedOnlyPolicy(SchedulingPolicy):
    """Merged-only ablation (Fig. 19): serve one adapter at a time.

    Sticks with the current merged adapter while it has work, then moves
    to the adapter with the oldest waiting request (avoids permanent
    starvation but pays small batches and frequent switches).
    """

    name = "merged-only"

    def schedule(self, candidates, ctx):
        if not candidates:
            return None
        by_adapter = {}
        for r in candidates:
            by_adapter.setdefault(r.adapter_id, []).append(r)
        if ctx.current_merged in by_adapter:
            target = ctx.current_merged
        else:
            # Adapter owning the oldest request goes next.
            target = min(
                by_adapter,
                key=lambda a: min(r.arrival_time for r in by_adapter[a]),
            )
        batch = self._fcfs(
            by_adapter[target], ctx.candidates_fcfs
        )[: ctx.max_batch_size]
        return SchedulerDecision(
            batch=batch, mode=InferenceMode.MERGED, merged_adapter=target
        )

    def schedule_soa(self, view, ctx):
        if view.n_live == 0:
            return None
        if ctx.current_merged >= 0 and view.counts[ctx.current_merged] > 0:
            target = ctx.current_merged
        else:
            # The object path's min-by-oldest-arrival (first-appearance
            # tie-break) always resolves to the adapter of the first
            # live candidate: FCFS order makes that candidate's arrival
            # the global minimum, and on arrival ties its adapter is the
            # first inserted into ``by_adapter``.
            target = int(view.adapter_idx[view.live_prefix(1)[0]])
        return SoADecision(
            batch=view.match_after(target, ctx.max_batch_size, 0),
            mode=InferenceMode.MERGED,
            merged=target,
        )


class DLoRAPolicy(SchedulingPolicy):
    """dLoRA-style dynamic merged/unmerged switching (no mixture mode).

    Merges the dominant adapter when its share of pending requests
    exceeds ``merge_share``; falls back to unmerged FCFS otherwise or
    when any request has waited past ``starvation_s``.
    """

    name = "dLoRA"

    def __init__(self, merge_share: float = 0.5, starvation_s: float = 1.0):
        if not 0.0 < merge_share < 1.0:
            raise ValueError(f"merge_share must be in (0,1), got {merge_share}")
        self.merge_share = merge_share
        self.starvation_s = starvation_s

    def schedule(self, candidates, ctx):
        if not candidates:
            return None
        if ctx.candidates_fcfs and ctx.adapter_counts is not None:
            return self._schedule_fast(candidates, ctx)
        top = self._top_adapter(candidates, ctx.adapter_counts)
        top_reqs = [r for r in candidates if r.adapter_id == top]
        share = len(top_reqs) / len(candidates)
        others_starving = any(
            r.adapter_id != top and r.waiting_time(ctx.now) > self.starvation_s
            for r in candidates
        )
        if share > self.merge_share and not others_starving:
            return SchedulerDecision(
                batch=self._fcfs(
                    top_reqs, ctx.candidates_fcfs
                )[: ctx.max_batch_size],
                mode=InferenceMode.MERGED,
                merged_adapter=top,
            )
        batch = self._fcfs(
            candidates, ctx.candidates_fcfs
        )[: ctx.max_batch_size]
        return SchedulerDecision(batch=batch, mode=InferenceMode.UNMERGED)

    def _schedule_fast(self, candidates, ctx):
        """Decision-identical fast pass over FCFS-ordered candidates.

        The dominant-adapter share comes from ``ctx.adapter_counts``;
        the starvation probe touches only the oldest foreign request —
        FCFS order makes its waiting time the maximum over all of them,
        so one comparison decides ``any(...)``.
        """
        counts = ctx.adapter_counts
        top = self._top_adapter(candidates, counts)
        num_top = counts.get(top, 0)
        n = len(candidates)
        share = num_top / n
        others_starving = False
        if num_top < n:
            oldest_other = next(
                r for r in candidates if r.adapter_id != top
            )
            others_starving = (
                oldest_other.waiting_time(ctx.now) > self.starvation_s
            )
        if share > self.merge_share and not others_starving:
            return SchedulerDecision(
                batch=self._first_matching(
                    candidates, top, ctx.max_batch_size
                ),
                mode=InferenceMode.MERGED,
                merged_adapter=top,
            )
        return SchedulerDecision(
            batch=list(candidates[: ctx.max_batch_size]),
            mode=InferenceMode.UNMERGED,
        )

    def schedule_soa(self, view, ctx):
        n = view.n_live
        if n == 0:
            return None
        top = self._top_adapter_soa(view)
        num_top = int(view.counts[top])
        # Exact float division, as on the object path — comparing
        # 2 * num_top > merge_share * ... would round differently for
        # arbitrary merge_share values.
        share = num_top / n
        others_starving = False
        if num_top < n:
            oldest_other = view.first_other(top)
            others_starving = (
                max(0.0, ctx.now - float(view.arrival[oldest_other]))
                > self.starvation_s
            )
        if share > self.merge_share and not others_starving:
            return SoADecision(
                batch=view.match_after(top, ctx.max_batch_size, 0),
                mode=InferenceMode.MERGED,
                merged=top,
            )
        return SoADecision(
            batch=view.live_prefix(ctx.max_batch_size),
            mode=InferenceMode.UNMERGED,
        )
