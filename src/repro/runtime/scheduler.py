"""Scheduling policies: Algorithm 1 and the baselines it is compared to.

The orchestrator's greedy heuristic (§4.4.3):

1. run **merged** whenever possible — fastest, zero extra cost;
2. when starvation appears, prefer **mixture** (no merged->unmerged
   switch cost, extra compute only for the minority), then **unmerged**.

Starvation is tracked by a per-request *credit*: waiting time plus the
estimated execution time in the current mode plus the mode-switch
latency; a request whose credit exceeds the tolerance θ is starving.
"""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.runtime.modes import InferenceMode
from repro.runtime.request import Request


@dataclass
class SchedulingContext:
    """What the engine tells the policy about the world."""

    now: float
    current_mode: InferenceMode
    current_merged: Optional[str]
    max_batch_size: int
    est_iteration_seconds: float
    est_switch_seconds: float


@dataclass
class SchedulerDecision:
    """What to run next."""

    batch: List[Request]
    mode: InferenceMode
    merged_adapter: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.batch:
            raise ValueError("a decision needs a non-empty batch")
        if self.mode in (InferenceMode.MERGED, InferenceMode.MIXTURE):
            if self.merged_adapter is None:
                raise ValueError(f"{self.mode} requires a merged adapter")
        if self.mode is InferenceMode.MERGED:
            foreign = {
                r.adapter_id for r in self.batch
            } - {self.merged_adapter}
            if foreign:
                raise ValueError(
                    f"merged batch contains foreign adapters {sorted(foreign)}"
                )


def pick_shed_victim(pool: Sequence[Request],
                     now: float) -> Optional[Request]:
    """The cheapest request to abort under overload: lowest credit.

    Credit is the anti-starvation currency (§4.4.3): a low credit means
    the request has waited least and loses least progress.  Policies
    that do not maintain credits leave it at 0, so ties break toward the
    youngest arrival (shed the newest work first, like S-LoRA's
    early-abort admission control).
    """
    if not pool:
        return None
    return min(pool, key=lambda r: (r.credit, -r.arrival_time, -r.request_id))


class SchedulingPolicy(abc.ABC):
    """Picks the next batch, mode, and merged adapter."""

    name: str = "abstract"

    @abc.abstractmethod
    def schedule(
        self, candidates: Sequence[Request], ctx: SchedulingContext
    ) -> Optional[SchedulerDecision]:
        """Return the next decision, or ``None`` when nothing to run."""

    @staticmethod
    def _fcfs(requests: Sequence[Request]) -> List[Request]:
        return sorted(requests, key=lambda r: (r.arrival_time, r.request_id))

    @staticmethod
    def _top_adapter(requests: Sequence[Request]) -> Optional[str]:
        if not requests:
            return None
        counts = Counter(r.adapter_id for r in requests)
        # Deterministic tie-break by adapter id.
        return min(counts, key=lambda a: (-counts[a], a))


class VLoRAPolicy(SchedulingPolicy):
    """Algorithm 1: merged when possible, mixture then unmerged on starvation.

    Parameters
    ----------
    theta:
        Starvation tolerance in seconds of credit.
    """

    name = "V-LoRA"

    def __init__(self, theta: float = 0.5):
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        self.theta = theta

    def schedule(self, candidates, ctx):
        if not candidates:
            return None
        max_bs = ctx.max_batch_size
        for r in candidates:
            r.credit = (
                r.waiting_time(ctx.now)
                + ctx.est_iteration_seconds
                + ctx.est_switch_seconds
            )
        starve = self._fcfs([r for r in candidates if r.credit > self.theta])
        top = self._top_adapter(candidates)
        merge_reqs = self._fcfs(
            [r for r in candidates if r.adapter_id == top]
        )
        slots_after_starve = max(0, max_bs - len(starve))

        # Principle (1), §4.4.3: merged whenever possible.  When every
        # live request wants the same adapter and nothing starves,
        # merged execution strictly dominates regardless of queue depth
        # (Algorithm 1's |R_merge|/MaxBS > 0.5 test is a hysteresis
        # guard for mixed traffic, not a reason to idle in unmerged
        # mode on single-tenant phases).
        if not starve and len(merge_reqs) == len(candidates):
            return SchedulerDecision(
                batch=merge_reqs[:max_bs],
                mode=InferenceMode.MERGED,
                merged_adapter=top,
            )

        # Principle (2) hysteresis: while the popular adapter is already
        # merged, leaving merged mode costs an un-merge; stay merged as
        # long as nothing starves, and rescue starving minorities via
        # mixture (whose switch from merged is free) before considering
        # unmerged mode.
        if (ctx.current_merged == top and merge_reqs
                and ctx.current_mode in (InferenceMode.MERGED,
                                         InferenceMode.MIXTURE)):
            if not starve:
                return SchedulerDecision(
                    batch=merge_reqs[:max_bs],
                    mode=InferenceMode.MERGED,
                    merged_adapter=top,
                )
            if len(starve) / max_bs <= 0.5:
                starve_ids = {r.request_id for r in starve}
                fill = [
                    r for r in merge_reqs if r.request_id not in starve_ids
                ][:slots_after_starve]
                return SchedulerDecision(
                    batch=(starve + fill)[:max_bs],
                    mode=InferenceMode.MIXTURE,
                    merged_adapter=top,
                )

        if (len(starve) / max_bs <= 0.5
                and len(merge_reqs) / max_bs > 0.5):
            if not starve:
                # Line 6-8: pure merged execution of the popular adapter.
                return SchedulerDecision(
                    batch=merge_reqs[:max_bs],
                    mode=InferenceMode.MERGED,
                    merged_adapter=top,
                )
            # Line 9-12: mixture — starving requests run via deLoRA
            # alongside the merged majority.
            starve_ids = {r.request_id for r in starve}
            fill = [
                r for r in merge_reqs if r.request_id not in starve_ids
            ][:slots_after_starve]
            return SchedulerDecision(
                batch=(starve + fill)[:max_bs],
                mode=InferenceMode.MIXTURE,
                merged_adapter=top,
            )
        # Line 13-15: unmerged — starving first, then FCFS fill.
        starve_ids = {r.request_id for r in starve}
        rest = self._fcfs(
            [r for r in candidates if r.request_id not in starve_ids]
        )
        batch = (starve + rest)[:max_bs]
        return SchedulerDecision(batch=batch, mode=InferenceMode.UNMERGED)


class UnmergedOnlyPolicy(SchedulingPolicy):
    """S-LoRA / Punica: FCFS continuous batching, unmerged always."""

    name = "unmerged-only"

    def schedule(self, candidates, ctx):
        if not candidates:
            return None
        batch = self._fcfs(candidates)[: ctx.max_batch_size]
        return SchedulerDecision(batch=batch, mode=InferenceMode.UNMERGED)


class MergedOnlyPolicy(SchedulingPolicy):
    """Merged-only ablation (Fig. 19): serve one adapter at a time.

    Sticks with the current merged adapter while it has work, then moves
    to the adapter with the oldest waiting request (avoids permanent
    starvation but pays small batches and frequent switches).
    """

    name = "merged-only"

    def schedule(self, candidates, ctx):
        if not candidates:
            return None
        by_adapter = {}
        for r in candidates:
            by_adapter.setdefault(r.adapter_id, []).append(r)
        if ctx.current_merged in by_adapter:
            target = ctx.current_merged
        else:
            # Adapter owning the oldest request goes next.
            target = min(
                by_adapter,
                key=lambda a: min(r.arrival_time for r in by_adapter[a]),
            )
        batch = self._fcfs(by_adapter[target])[: ctx.max_batch_size]
        return SchedulerDecision(
            batch=batch, mode=InferenceMode.MERGED, merged_adapter=target
        )


class DLoRAPolicy(SchedulingPolicy):
    """dLoRA-style dynamic merged/unmerged switching (no mixture mode).

    Merges the dominant adapter when its share of pending requests
    exceeds ``merge_share``; falls back to unmerged FCFS otherwise or
    when any request has waited past ``starvation_s``.
    """

    name = "dLoRA"

    def __init__(self, merge_share: float = 0.5, starvation_s: float = 1.0):
        if not 0.0 < merge_share < 1.0:
            raise ValueError(f"merge_share must be in (0,1), got {merge_share}")
        self.merge_share = merge_share
        self.starvation_s = starvation_s

    def schedule(self, candidates, ctx):
        if not candidates:
            return None
        top = self._top_adapter(candidates)
        top_reqs = [r for r in candidates if r.adapter_id == top]
        share = len(top_reqs) / len(candidates)
        others_starving = any(
            r.adapter_id != top and r.waiting_time(ctx.now) > self.starvation_s
            for r in candidates
        )
        if share > self.merge_share and not others_starving:
            return SchedulerDecision(
                batch=self._fcfs(top_reqs)[: ctx.max_batch_size],
                mode=InferenceMode.MERGED,
                merged_adapter=top,
            )
        batch = self._fcfs(candidates)[: ctx.max_batch_size]
        return SchedulerDecision(batch=batch, mode=InferenceMode.UNMERGED)
