"""Simulated clock.

All serving latencies in this reproduction are *simulated*: the engine
advances this clock by cost-model outputs, never by host wall time.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds; returns the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance by negative dt {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump forward to absolute time ``t`` (no-op if already past)."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f}s)"
