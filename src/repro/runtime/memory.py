"""Unified KV/adapter memory accounting (§5, after S-LoRA).

One HBM budget covers the base model weights, the resident LoRA
adapters, and the paged KV cache.  V-LoRA pre-allocates contiguous
adapter slots inside this pool (no tensor-reshape copies on un/merge —
the swift switcher's first design point, §4.4.1), and sizes the KV cache
with what remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.gpu import GPUSpec
from repro.models.config import ModelConfig
from repro.models.lora import LoRAAdapterSpec
from repro.runtime.kv_cache import PagedKVCache


@dataclass(frozen=True)
class MemoryPlan:
    """How one GPU's HBM is carved up."""

    total_bytes: int
    weights_bytes: int
    adapter_pool_bytes: int
    activation_reserve_bytes: int
    kv_bytes: int

    def __post_init__(self) -> None:
        spent = (
            self.weights_bytes + self.adapter_pool_bytes
            + self.activation_reserve_bytes + self.kv_bytes
        )
        if spent > self.total_bytes:
            raise ValueError(
                f"memory plan oversubscribed: {spent} > {self.total_bytes}"
            )


class UnifiedMemoryManager:
    """Plans and tracks the unified memory pool of one GPU."""

    #: Fraction of HBM reserved for activations / workspace.
    ACTIVATION_FRACTION = 0.08

    def __init__(
        self,
        model: ModelConfig,
        gpu: GPUSpec,
        adapter_slots: int = 8,
        adapter_spec: Optional[LoRAAdapterSpec] = None,
        block_size: int = 16,
        tp_degree: int = 1,
    ):
        if adapter_slots < 0:
            raise ValueError(f"adapter_slots must be >= 0, got {adapter_slots}")
        if tp_degree < 1:
            raise ValueError(f"tp_degree must be >= 1, got {tp_degree}")
        self.model = model
        self.gpu = gpu
        self.adapter_slots = adapter_slots
        self.tp_degree = tp_degree
        spec = adapter_spec or LoRAAdapterSpec("slot-proto", model)
        # Tensor parallelism shards adapters alongside the weights.
        self.slot_bytes = spec.ab_bytes // tp_degree

        total = gpu.hbm_capacity_bytes
        weights = model.weight_bytes // tp_degree
        if weights >= total:
            raise ValueError(
                f"{model.name} ({weights / 2**30:.1f} GB per GPU at "
                f"tp={tp_degree}) does not fit on "
                f"{gpu.name} ({gpu.hbm_capacity_gb} GB)"
            )
        reserve = int(total * self.ACTIVATION_FRACTION)
        pool = adapter_slots * self.slot_bytes
        kv = total - weights - reserve - pool
        if kv <= 0:
            raise ValueError(
                "no memory left for KV cache; reduce adapter_slots"
            )
        self.plan = MemoryPlan(
            total_bytes=total,
            weights_bytes=weights,
            adapter_pool_bytes=pool,
            activation_reserve_bytes=reserve,
            kv_bytes=kv,
        )
        self.block_size = block_size

    @property
    def kv_block_count(self) -> int:
        # KV shards across TP ranks along the head dimension.
        per_token = -(-self.model.kv_bytes_per_token // self.tp_degree)
        per_block = self.block_size * per_token
        return self.plan.kv_bytes // per_block

    @property
    def kv_token_capacity(self) -> int:
        return self.kv_block_count * self.block_size

    def build_kv_cache(self) -> PagedKVCache:
        """A paged KV cache sized to this plan."""
        return PagedKVCache(
            num_blocks=self.kv_block_count,
            block_size=self.block_size,
            kv_bytes_per_token=self.model.kv_bytes_per_token,
        )
