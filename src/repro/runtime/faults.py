"""Deterministic fault injection for the serving runtime.

Production LoRA-serving stacks hit failure modes that the happy-path
simulator never exercises: adapter swaps that fail or crawl (host-side
page faults, PCIe contention), transient KV-memory pressure (co-located
tenants, fragmentation), and straggling or outright dead GPUs.  This
module schedules such faults against the *simulated* clock so that the
engine's degradation behavior is reproducible and testable.

Design points:

* **Deterministic** — every fault window is materialized up front from a
  seeded RNG (:meth:`FaultInjector.random`); query methods are pure
  functions of ``(kind, target, now)``, so two runs with the same seed
  and workload see byte-identical fault timelines regardless of how
  often the engine polls.
* **Window-based** — a :class:`FaultSpec` is a ``[start, start+duration)``
  interval with a magnitude (slowdown factor, reserved-KV fraction) and
  an optional target (adapter id or engine id; ``None`` hits everyone).
* **Engine failures are permanent** — an ``ENGINE_FAIL`` spec marks its
  target dead from ``start`` onward; the cluster layer requeues the
  dead engine's in-flight requests onto survivors.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


class FaultKind(enum.Enum):
    """The failure modes the runtime knows how to inject."""

    ADAPTER_SWAP_FAIL = "adapter_swap_fail"   # swap-in attempt fails
    ADAPTER_SWAP_SLOW = "adapter_swap_slow"   # swap-in takes magnitude× longer
    KV_PRESSURE = "kv_pressure"               # magnitude fraction of blocks unusable
    ENGINE_FAIL = "engine_fail"               # engine dies at `start` (permanent)
    ENGINE_SLOW = "engine_slow"               # straggler: iterations magnitude× slower
    LOAD_BURST = "load_burst"                 # arrivals magnitude× denser (overload)
    SCALE_STALL = "scale_stall"               # replica warm-up magnitude× slower


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault window.

    ``magnitude`` means: slowdown factor for ``*_SLOW`` kinds (>= 1),
    fraction of KV blocks made unusable for ``KV_PRESSURE`` (in [0, 1)),
    and is ignored for ``ADAPTER_SWAP_FAIL`` / ``ENGINE_FAIL``.
    """

    kind: FaultKind
    start: float
    duration: float = math.inf
    magnitude: float = 1.0
    target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.kind is FaultKind.KV_PRESSURE and not 0.0 <= self.magnitude < 1.0:
            raise ValueError(
                f"KV_PRESSURE magnitude must be in [0, 1), got {self.magnitude}"
            )
        if (self.kind in (FaultKind.ADAPTER_SWAP_SLOW, FaultKind.ENGINE_SLOW,
                          FaultKind.LOAD_BURST, FaultKind.SCALE_STALL)
                and self.magnitude < 1.0):
            raise ValueError(
                f"{self.kind.value} magnitude must be >= 1, got {self.magnitude}"
            )

    def active_at(self, now: float) -> bool:
        if self.kind is FaultKind.ENGINE_FAIL:
            return now >= self.start  # permanent
        return self.start <= now < self.start + self.duration

    def matches(self, target: Optional[str]) -> bool:
        return self.target is None or self.target == target

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind.value,
            "start": self.start,
            "duration": self.duration,
            "magnitude": self.magnitude,
            "target": self.target,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultSpec":
        return cls(
            kind=FaultKind(payload["kind"]),
            start=float(payload["start"]),
            duration=float(payload.get("duration", math.inf)),
            magnitude=float(payload.get("magnitude", 1.0)),
            target=payload.get("target"),
        )


class FaultInjector:
    """Answers "is fault X active for target Y at sim-time T?".

    Hooked by :class:`~repro.runtime.engine.ServingEngine` (swap
    outcomes, KV pressure, straggler slowdown, engine death) and by
    :class:`~repro.runtime.cluster.MultiGPUServer` (failover).
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self.specs: List[FaultSpec] = sorted(
            specs, key=lambda s: (s.start, s.kind.value, s.target or "")
        )

    # -- queries (pure) ------------------------------------------------------

    def _active(self, kind: FaultKind, now: float,
                target: Optional[str]) -> List[FaultSpec]:
        return [
            s for s in self.specs
            if s.kind is kind and s.active_at(now) and s.matches(target)
        ]

    def swap_should_fail(self, adapter_id: str, now: float) -> bool:
        """True when a swap-in of ``adapter_id`` started now would fail."""
        return bool(self._active(FaultKind.ADAPTER_SWAP_FAIL, now, adapter_id))

    def swap_slowdown(self, adapter_id: str, now: float) -> float:
        """Multiplicative swap-time factor (>= 1) for ``adapter_id``."""
        factor = 1.0
        for s in self._active(FaultKind.ADAPTER_SWAP_SLOW, now, adapter_id):
            factor *= s.magnitude
        return factor

    def kv_reserved_fraction(self, now: float) -> float:
        """Fraction of KV blocks currently unusable (worst active window)."""
        windows = self._active(FaultKind.KV_PRESSURE, now, None)
        if not windows:
            return 0.0
        return min(max(s.magnitude for s in windows), 0.999)

    def engine_failed(self, engine_id: str, now: float) -> bool:
        return bool(self._active(FaultKind.ENGINE_FAIL, now, engine_id))

    def engine_slowdown(self, engine_id: str, now: float) -> float:
        factor = 1.0
        for s in self._active(FaultKind.ENGINE_SLOW, now, engine_id):
            factor *= s.magnitude
        return factor

    def scale_stall_factor(self, engine_id: str, now: float) -> float:
        """Warm-up slowdown (>= 1) for a replica spawned at ``now``.

        A ``SCALE_STALL`` window models slow replica provisioning (image
        pulls, weight loading contention): the cold-start cost of any
        replica whose spin-up *begins* inside the window is multiplied.
        ``target=None`` hits every replica; a targeted spec only stalls
        the named engine id.
        """
        factor = 1.0
        for s in self._active(FaultKind.SCALE_STALL, now, engine_id):
            factor *= s.magnitude
        return factor

    def load_burst_factor(self, now: float) -> float:
        """Arrival-density multiplier at ``now`` (worst active burst)."""
        windows = self._active(FaultKind.LOAD_BURST, now, None)
        if not windows:
            return 1.0
        return max(s.magnitude for s in windows)

    def load_burst_windows(self) -> List[FaultSpec]:
        """The scheduled ``LOAD_BURST`` windows (for workload shaping).

        Load bursts are a *workload* fault: the injector schedules the
        windows deterministically, and workload generators (see
        :func:`repro.workloads.burst.apply_load_bursts`) densify the
        arrival process inside them.
        """
        return [s for s in self.specs if s.kind is FaultKind.LOAD_BURST]

    # -- introspection -------------------------------------------------------

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.specs:
            out[s.kind.value] = out.get(s.kind.value, 0) + 1
        return out

    def to_dicts(self) -> List[Dict]:
        return [s.to_dict() for s in self.specs]

    @classmethod
    def from_dicts(cls, payloads: Iterable[Dict]) -> "FaultInjector":
        return cls(FaultSpec.from_dict(p) for p in payloads)

    def __repr__(self) -> str:
        return f"FaultInjector({self.counts_by_kind()})"

    # -- schedule generation -------------------------------------------------

    @classmethod
    def random(
        cls,
        horizon_s: float,
        seed: int = 0,
        adapter_ids: Sequence[str] = (),
        engine_ids: Sequence[str] = ("engine-0",),
        swap_fail_rate: float = 0.0,
        swap_slow_rate: float = 0.0,
        kv_pressure_rate: float = 0.0,
        engine_slow_rate: float = 0.0,
        engine_fail_rate: float = 0.0,
        load_burst_rate: float = 0.0,
        scale_stall_rate: float = 0.0,
        swap_window_s: float = 0.25,
        kv_window_s: float = 1.0,
        straggler_window_s: float = 2.0,
        burst_window_s: float = 2.0,
        stall_window_s: float = 3.0,
    ) -> "FaultInjector":
        """Poisson-schedule fault windows over ``[0, horizon_s)``.

        All ``*_rate`` parameters are events per simulated second.  At
        most one ``ENGINE_FAIL`` is drawn per engine (a GPU dies once);
        ``engine_fail_rate`` sets the per-engine probability via
        ``min(1, rate * horizon)``.
        """
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        rng = np.random.default_rng(seed)
        specs: List[FaultSpec] = []

        def windows(rate: float, mean_dur: float):
            count = rng.poisson(rate * horizon_s) if rate > 0 else 0
            for _ in range(count):
                start = float(rng.uniform(0.0, horizon_s))
                dur = float(max(rng.exponential(mean_dur), 1e-3))
                yield start, dur

        def pick(pool: Sequence[str]) -> Optional[str]:
            if not pool:
                return None
            return str(pool[int(rng.integers(len(pool)))])

        for start, dur in windows(swap_fail_rate, swap_window_s):
            specs.append(FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, start, dur,
                                   target=pick(adapter_ids)))
        for start, dur in windows(swap_slow_rate, swap_window_s):
            specs.append(FaultSpec(
                FaultKind.ADAPTER_SWAP_SLOW, start, dur,
                magnitude=float(rng.uniform(2.0, 8.0)),
                target=pick(adapter_ids),
            ))
        for start, dur in windows(kv_pressure_rate, kv_window_s):
            specs.append(FaultSpec(
                FaultKind.KV_PRESSURE, start, dur,
                magnitude=float(rng.uniform(0.3, 0.9)),
            ))
        for start, dur in windows(load_burst_rate, burst_window_s):
            specs.append(FaultSpec(
                FaultKind.LOAD_BURST, start, dur,
                magnitude=float(rng.uniform(3.0, 8.0)),
            ))
        for start, dur in windows(scale_stall_rate, stall_window_s):
            # Untargeted: replica ids spawned by an autoscaler do not
            # exist yet when the schedule is drawn.
            specs.append(FaultSpec(
                FaultKind.SCALE_STALL, start, dur,
                magnitude=float(rng.uniform(2.0, 6.0)),
            ))
        for engine_id in engine_ids:
            for start, dur in windows(engine_slow_rate, straggler_window_s):
                specs.append(FaultSpec(
                    FaultKind.ENGINE_SLOW, start, dur,
                    magnitude=float(rng.uniform(1.5, 4.0)),
                    target=engine_id,
                ))
            if engine_fail_rate > 0:
                p = min(engine_fail_rate * horizon_s, 1.0)
                if rng.uniform() < p:
                    specs.append(FaultSpec(
                        FaultKind.ENGINE_FAIL,
                        float(rng.uniform(0.0, horizon_s)),
                        target=engine_id,
                    ))
        return cls(specs)
