"""Deterministic fault injection for the serving runtime.

Production LoRA-serving stacks hit failure modes that the happy-path
simulator never exercises: adapter swaps that fail or crawl (host-side
page faults, PCIe contention), transient KV-memory pressure (co-located
tenants, fragmentation), and straggling or outright dead GPUs.  This
module schedules such faults against the *simulated* clock so that the
engine's degradation behavior is reproducible and testable.

Design points:

* **Deterministic** — every fault window is materialized up front from a
  seeded RNG (:meth:`FaultInjector.random`); query methods are pure
  functions of ``(kind, target, now)``, so two runs with the same seed
  and workload see byte-identical fault timelines regardless of how
  often the engine polls.
* **Window-based** — a :class:`FaultSpec` is a ``[start, start+duration)``
  interval with a magnitude (slowdown factor, reserved-KV fraction) and
  an optional target (adapter id or engine id; ``None`` hits everyone).
* **Engine failures are permanent** — an ``ENGINE_FAIL`` spec marks its
  target dead from ``start`` onward; the cluster layer requeues the
  dead engine's in-flight requests onto survivors.
* **Gray failures are windows, not deaths** — ``NETWORK_PARTITION``
  leaves the target alive and computing but withholds its heartbeats
  and completions until the window closes (delivered on heal);
  ``HEARTBEAT_LOSS`` silently drops heartbeats while work continues
  unaffected.  Both are only observable through the failure detector
  (:mod:`repro.runtime.failure_detection`), never through the legacy
  oracle.  ``HOST_FAIL`` is a correlated domain failure: it targets a
  *host* id and permanently kills every replica placed on that host.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


class FaultKind(enum.Enum):
    """The failure modes the runtime knows how to inject."""

    ADAPTER_SWAP_FAIL = "adapter_swap_fail"   # swap-in attempt fails
    ADAPTER_SWAP_SLOW = "adapter_swap_slow"   # swap-in takes magnitude× longer
    KV_PRESSURE = "kv_pressure"               # magnitude fraction of blocks unusable
    ENGINE_FAIL = "engine_fail"               # engine dies at `start` (permanent)
    ENGINE_SLOW = "engine_slow"               # straggler: iterations magnitude× slower
    LOAD_BURST = "load_burst"                 # arrivals magnitude× denser (overload)
    SCALE_STALL = "scale_stall"               # replica warm-up magnitude× slower
    NETWORK_PARTITION = "network_partition"   # alive, but heartbeats/results withheld
    HEARTBEAT_LOSS = "heartbeat_loss"         # heartbeats dropped, work unaffected
    HOST_FAIL = "host_fail"                   # whole host dies at `start` (permanent)


class FaultSpecError(ValueError):
    """A :class:`FaultSpec` was constructed with nonsense parameters.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    ``ValueError`` keep working; new code can catch the typed error.
    """


#: Kinds whose start marks a permanent death rather than a window.
_PERMANENT_KINDS = (FaultKind.ENGINE_FAIL, FaultKind.HOST_FAIL)

#: Kinds whose magnitude is a multiplicative slowdown (must be >= 1).
_FACTOR_KINDS = (FaultKind.ADAPTER_SWAP_SLOW, FaultKind.ENGINE_SLOW,
                 FaultKind.LOAD_BURST, FaultKind.SCALE_STALL)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault window.

    ``magnitude`` means: slowdown factor for ``*_SLOW`` kinds (>= 1),
    fraction of KV blocks made unusable for ``KV_PRESSURE`` (in [0, 1)),
    and is ignored for the on/off kinds (``ADAPTER_SWAP_FAIL``,
    ``ENGINE_FAIL``, ``HOST_FAIL``, ``NETWORK_PARTITION``,
    ``HEARTBEAT_LOSS``).  ``HOST_FAIL`` targets a *host* id; every
    other targeted kind names an adapter or engine id.
    """

    kind: FaultKind
    start: float
    duration: float = math.inf
    magnitude: float = 1.0
    target: Optional[str] = None

    def __post_init__(self) -> None:
        if math.isnan(self.start) or self.start < 0:
            raise FaultSpecError(f"start must be >= 0, got {self.start}")
        if math.isnan(self.duration) or self.duration <= 0:
            raise FaultSpecError(
                f"duration must be positive, got {self.duration}")
        if math.isnan(self.magnitude):
            raise FaultSpecError("magnitude must not be NaN")
        if self.kind is FaultKind.KV_PRESSURE and not 0.0 <= self.magnitude < 1.0:
            raise FaultSpecError(
                f"KV_PRESSURE magnitude must be in [0, 1), got {self.magnitude}"
            )
        if self.kind in _FACTOR_KINDS and self.magnitude < 1.0:
            raise FaultSpecError(
                f"{self.kind.value} magnitude must be >= 1, got {self.magnitude}"
            )

    def active_at(self, now: float) -> bool:
        if self.kind in _PERMANENT_KINDS:
            return now >= self.start  # permanent
        return self.start <= now < self.start + self.duration

    def matches(self, target: Optional[str]) -> bool:
        return self.target is None or self.target == target

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind.value,
            "start": self.start,
            "duration": self.duration,
            "magnitude": self.magnitude,
            "target": self.target,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultSpec":
        return cls(
            kind=FaultKind(payload["kind"]),
            start=float(payload["start"]),
            duration=float(payload.get("duration", math.inf)),
            magnitude=float(payload.get("magnitude", 1.0)),
            target=payload.get("target"),
        )


class FaultInjector:
    """Answers "is fault X active for target Y at sim-time T?".

    Hooked by :class:`~repro.runtime.engine.ServingEngine` (swap
    outcomes, KV pressure, straggler slowdown, engine death) and by
    :class:`~repro.runtime.cluster.MultiGPUServer` (failover).
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self.specs: List[FaultSpec] = sorted(
            specs, key=lambda s: (s.start, s.kind.value, s.target or "")
        )

    # -- queries (pure) ------------------------------------------------------

    def _active(self, kind: FaultKind, now: float,
                target: Optional[str]) -> List[FaultSpec]:
        return [
            s for s in self.specs
            if s.kind is kind and s.active_at(now) and s.matches(target)
        ]

    def swap_should_fail(self, adapter_id: str, now: float) -> bool:
        """True when a swap-in of ``adapter_id`` started now would fail."""
        return bool(self._active(FaultKind.ADAPTER_SWAP_FAIL, now, adapter_id))

    def swap_slowdown(self, adapter_id: str, now: float) -> float:
        """Multiplicative swap-time factor (>= 1) for ``adapter_id``."""
        factor = 1.0
        for s in self._active(FaultKind.ADAPTER_SWAP_SLOW, now, adapter_id):
            factor *= s.magnitude
        return factor

    def kv_reserved_fraction(self, now: float) -> float:
        """Fraction of KV blocks currently unusable (worst active window)."""
        windows = self._active(FaultKind.KV_PRESSURE, now, None)
        if not windows:
            return 0.0
        return min(max(s.magnitude for s in windows), 0.999)

    def engine_failed(self, engine_id: str, now: float,
                      host: Optional[str] = None) -> bool:
        """Dead at ``now`` — individually or via its host's ``HOST_FAIL``."""
        if self._active(FaultKind.ENGINE_FAIL, now, engine_id):
            return True
        return host is not None and bool(
            self._active(FaultKind.HOST_FAIL, now, host))

    def engine_failure_time(self, engine_id: str,
                            host: Optional[str] = None) -> Optional[float]:
        """Scheduled death time of ``engine_id`` (earliest), or None.

        The heartbeat model needs the *actual* instant a replica stops
        beating — which precedes detection by exactly the latency the
        detector is being measured on.
        """
        times = [
            s.start for s in self.specs
            if (s.kind is FaultKind.ENGINE_FAIL and s.matches(engine_id))
            or (host is not None and s.kind is FaultKind.HOST_FAIL
                and s.matches(host))
        ]
        return min(times) if times else None

    def partitioned(self, engine_id: str, now: float,
                    host: Optional[str] = None) -> bool:
        """Inside a ``NETWORK_PARTITION`` window at ``now``?

        A partitioned replica is alive and computing, but nothing it
        emits (heartbeats, completions) reaches the cluster until the
        window closes.  A spec may target the engine id, the host id
        (correlated partition of a whole host), or everyone (None).
        """
        if self._active(FaultKind.NETWORK_PARTITION, now, engine_id):
            return True
        return host is not None and any(
            s.target == host
            for s in self._active(FaultKind.NETWORK_PARTITION, now, host)
        )

    def heartbeat_dropped(self, engine_id: str, now: float,
                          host: Optional[str] = None) -> bool:
        """Inside a ``HEARTBEAT_LOSS`` window at ``now``?

        Unlike a partition, dropped heartbeats are gone forever (the
        loss is on the monitoring path only; work and completions flow
        normally) — the purest gray failure: the detector may suspect a
        perfectly healthy replica.
        """
        if self._active(FaultKind.HEARTBEAT_LOSS, now, engine_id):
            return True
        return host is not None and any(
            s.target == host
            for s in self._active(FaultKind.HEARTBEAT_LOSS, now, host)
        )

    def engine_slowdown(self, engine_id: str, now: float) -> float:
        factor = 1.0
        for s in self._active(FaultKind.ENGINE_SLOW, now, engine_id):
            factor *= s.magnitude
        return factor

    def scale_stall_factor(self, engine_id: str, now: float) -> float:
        """Warm-up slowdown (>= 1) for a replica spawned at ``now``.

        A ``SCALE_STALL`` window models slow replica provisioning (image
        pulls, weight loading contention): the cold-start cost of any
        replica whose spin-up *begins* inside the window is multiplied.
        ``target=None`` hits every replica; a targeted spec only stalls
        the named engine id.
        """
        factor = 1.0
        for s in self._active(FaultKind.SCALE_STALL, now, engine_id):
            factor *= s.magnitude
        return factor

    def load_burst_factor(self, now: float) -> float:
        """Arrival-density multiplier at ``now`` (worst active burst)."""
        windows = self._active(FaultKind.LOAD_BURST, now, None)
        if not windows:
            return 1.0
        return max(s.magnitude for s in windows)

    def load_burst_windows(self) -> List[FaultSpec]:
        """The scheduled ``LOAD_BURST`` windows (for workload shaping).

        Load bursts are a *workload* fault: the injector schedules the
        windows deterministically, and workload generators (see
        :func:`repro.workloads.burst.apply_load_bursts`) densify the
        arrival process inside them.
        """
        return [s for s in self.specs if s.kind is FaultKind.LOAD_BURST]

    # -- introspection -------------------------------------------------------

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.specs:
            out[s.kind.value] = out.get(s.kind.value, 0) + 1
        return out

    def to_dicts(self) -> List[Dict]:
        return [s.to_dict() for s in self.specs]

    @classmethod
    def from_dicts(cls, payloads: Iterable[Dict]) -> "FaultInjector":
        return cls(FaultSpec.from_dict(p) for p in payloads)

    def __repr__(self) -> str:
        return f"FaultInjector({self.counts_by_kind()})"

    # -- schedule generation -------------------------------------------------

    @classmethod
    def random(
        cls,
        horizon_s: float,
        seed: int = 0,
        adapter_ids: Sequence[str] = (),
        engine_ids: Sequence[str] = ("engine-0",),
        swap_fail_rate: float = 0.0,
        swap_slow_rate: float = 0.0,
        kv_pressure_rate: float = 0.0,
        engine_slow_rate: float = 0.0,
        engine_fail_rate: float = 0.0,
        load_burst_rate: float = 0.0,
        scale_stall_rate: float = 0.0,
        partition_rate: float = 0.0,
        heartbeat_loss_rate: float = 0.0,
        host_fail_rate: float = 0.0,
        host_ids: Sequence[str] = (),
        swap_window_s: float = 0.25,
        kv_window_s: float = 1.0,
        straggler_window_s: float = 2.0,
        burst_window_s: float = 2.0,
        stall_window_s: float = 3.0,
        partition_window_s: float = 2.0,
        hb_loss_window_s: float = 1.0,
    ) -> "FaultInjector":
        """Poisson-schedule fault windows over ``[0, horizon_s)``.

        All ``*_rate`` parameters are events per simulated second.  At
        most one ``ENGINE_FAIL`` is drawn per engine (a GPU dies once);
        ``engine_fail_rate`` sets the per-engine probability via
        ``min(1, rate * horizon)``.  ``HOST_FAIL`` works the same way
        per host id.  The gray-failure draws (partition, heartbeat
        loss, host fail) come *after* every legacy draw, so schedules
        generated with the new rates at 0 are byte-identical to what
        older code produced for the same seed.
        """
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        rng = np.random.default_rng(seed)
        specs: List[FaultSpec] = []

        def windows(rate: float, mean_dur: float):
            count = rng.poisson(rate * horizon_s) if rate > 0 else 0
            for _ in range(count):
                start = float(rng.uniform(0.0, horizon_s))
                dur = float(max(rng.exponential(mean_dur), 1e-3))
                yield start, dur

        def pick(pool: Sequence[str]) -> Optional[str]:
            if not pool:
                return None
            return str(pool[int(rng.integers(len(pool)))])

        for start, dur in windows(swap_fail_rate, swap_window_s):
            specs.append(FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, start, dur,
                                   target=pick(adapter_ids)))
        for start, dur in windows(swap_slow_rate, swap_window_s):
            specs.append(FaultSpec(
                FaultKind.ADAPTER_SWAP_SLOW, start, dur,
                magnitude=float(rng.uniform(2.0, 8.0)),
                target=pick(adapter_ids),
            ))
        for start, dur in windows(kv_pressure_rate, kv_window_s):
            specs.append(FaultSpec(
                FaultKind.KV_PRESSURE, start, dur,
                magnitude=float(rng.uniform(0.3, 0.9)),
            ))
        for start, dur in windows(load_burst_rate, burst_window_s):
            specs.append(FaultSpec(
                FaultKind.LOAD_BURST, start, dur,
                magnitude=float(rng.uniform(3.0, 8.0)),
            ))
        for start, dur in windows(scale_stall_rate, stall_window_s):
            # Untargeted: replica ids spawned by an autoscaler do not
            # exist yet when the schedule is drawn.
            specs.append(FaultSpec(
                FaultKind.SCALE_STALL, start, dur,
                magnitude=float(rng.uniform(2.0, 6.0)),
            ))
        for engine_id in engine_ids:
            for start, dur in windows(engine_slow_rate, straggler_window_s):
                specs.append(FaultSpec(
                    FaultKind.ENGINE_SLOW, start, dur,
                    magnitude=float(rng.uniform(1.5, 4.0)),
                    target=engine_id,
                ))
            if engine_fail_rate > 0:
                p = min(engine_fail_rate * horizon_s, 1.0)
                if rng.uniform() < p:
                    specs.append(FaultSpec(
                        FaultKind.ENGINE_FAIL,
                        float(rng.uniform(0.0, horizon_s)),
                        target=engine_id,
                    ))
        # Gray-failure draws: strictly after all legacy draws (see
        # docstring — keeps old seeds byte-identical at zero rates).
        for engine_id in engine_ids:
            for start, dur in windows(partition_rate, partition_window_s):
                specs.append(FaultSpec(FaultKind.NETWORK_PARTITION, start,
                                       dur, target=engine_id))
            for start, dur in windows(heartbeat_loss_rate, hb_loss_window_s):
                specs.append(FaultSpec(FaultKind.HEARTBEAT_LOSS, start, dur,
                                       target=engine_id))
        for host_id in host_ids:
            if host_fail_rate > 0:
                p = min(host_fail_rate * horizon_s, 1.0)
                if rng.uniform() < p:
                    specs.append(FaultSpec(
                        FaultKind.HOST_FAIL,
                        float(rng.uniform(0.0, horizon_s)),
                        target=host_id,
                    ))
        return cls(specs)
