"""Overload protection: admission control, brownout, circuit breakers.

PR 1 made the runtime survive injected faults *reactively* (stall, shed,
quarantine, failover).  This module protects the system *before* it is
in trouble, the way production multi-tenant LoRA stacks do (S-LoRA's
early-abort admission control, brownout tiers in overloaded web serving,
circuit breakers around flaky dependencies):

* :class:`AdmissionController` — token-bucket rate limiting plus
  queue-depth / KV-headroom watermarks and SLO-aware early rejection,
  applied the moment a request crosses into the engine's queue
  (``AbortReason.ADMISSION_REJECTED``).  Rejecting at the door is far
  cheaper than aborting after prefill: no KV was allocated, no batch
  slot wasted.
* :class:`BrownoutController` — degraded-service tiers under sustained
  pressure.  Level 1 sheds the lowest-priority waiting work, level 2
  additionally caps decode lengths, level 3 additionally forces merged
  execution of the hottest adapter (maximum throughput mode).  An EWMA
  pressure signal with enter/exit thresholds and a dwell time gives the
  controller hysteresis so it recovers cleanly instead of flapping.
* :class:`AdapterBreaker` — a closed → open → half-open circuit breaker
  per adapter, replacing the engine's permanent quarantine set.  An
  adapter whose swap-ins keep failing is opened (fail fast, abort its
  traffic), then re-probed after a cooldown; a successful probe closes
  the breaker and the adapter serves again.
* :class:`ReplicaHealth` — a per-replica health score (death, EWMA
  iteration slowdown, queue depth) the cluster dispatcher uses to route
  around stragglers and dead replicas.

Every controller is pure simulation state driven by the caller's clock:
deterministic, replayable, and off by default (``None`` config knobs in
:class:`~repro.runtime.engine.EngineConfig` keep the engine bit-identical
to the unprotected runtime).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.runtime.request import (
    PRIORITY_HIGH,
    PRIORITY_NORMAL,
    Request,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionVerdict",
    "BrownoutConfig",
    "BrownoutController",
    "BreakerConfig",
    "BreakerState",
    "AdapterBreaker",
    "EwmaSignal",
    "ReplicaHealth",
]


# ---------------------------------------------------------------------------
# Smoothed pressure signals
# ---------------------------------------------------------------------------

class EwmaSignal:
    """An exponentially-weighted moving average of a pressure signal.

    The shared smoothing primitive behind brownout pressure and the
    autoscaler's queue-depth / SLO-miss signals: one sample per
    controller step, ``value += alpha * (raw - value)``.  Deterministic
    and clock-free — the caller decides the sampling cadence.
    """

    def __init__(self, alpha: float, initial: float = 0.0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value = initial

    def observe(self, raw: float) -> float:
        """Fold one sample in; returns the smoothed value."""
        self.value += self.alpha * (raw - self.value)
        return self.value


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

class AdmissionVerdict(enum.Enum):
    """Why the admission controller turned a request away."""

    RATE_LIMITED = "rate_limited"          # token bucket empty
    QUEUE_FULL = "queue_full"              # queue-depth watermark hit
    KV_PRESSURE = "kv_pressure"            # KV headroom below watermark
    DEADLINE_UNMEETABLE = "deadline_unmeetable"  # SLO-aware early reject


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for :class:`AdmissionController` (all checks optional).

    ``rate_tokens_per_s`` meters admission in *tokens* (input + output),
    not requests, so one long generation costs as much as many short
    classifications.  ``burst_tokens`` is the bucket capacity (defaults
    to one second of refill).  ``max_queue_depth`` bounds the live
    request count; requests below ``PRIORITY_NORMAL`` are turned away at
    ``low_priority_factor`` of the watermark so paid traffic keeps its
    headroom.  ``min_kv_headroom`` rejects arrivals while the free-block
    fraction of the KV cache is below the floor.  ``slo_reject`` aborts
    a deadline-carrying request at admission when the deadline is
    already unmeetable at the current queue depth (a lower bound: every
    ``max_batch_size`` requests ahead of it cost at least one
    iteration).  Requests at or above ``exempt_priority`` bypass the
    bucket and queue watermarks (never the impossible-deadline check).
    """

    rate_tokens_per_s: Optional[float] = None
    burst_tokens: Optional[float] = None
    max_queue_depth: Optional[int] = None
    min_kv_headroom: Optional[float] = None
    slo_reject: bool = False
    low_priority_factor: float = 0.5
    exempt_priority: int = PRIORITY_HIGH

    def __post_init__(self) -> None:
        if self.rate_tokens_per_s is not None and self.rate_tokens_per_s <= 0:
            raise ValueError("rate_tokens_per_s must be positive")
        if self.burst_tokens is not None and self.burst_tokens <= 0:
            raise ValueError("burst_tokens must be positive")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if (self.min_kv_headroom is not None
                and not 0.0 <= self.min_kv_headroom < 1.0):
            raise ValueError("min_kv_headroom must be in [0, 1)")
        if not 0.0 < self.low_priority_factor <= 1.0:
            raise ValueError("low_priority_factor must be in (0, 1]")


class AdmissionController:
    """Stateful gatekeeper evaluated once per arriving request."""

    def __init__(self, config: AdmissionConfig):
        self.config = config
        cap = config.burst_tokens
        if cap is None and config.rate_tokens_per_s is not None:
            cap = config.rate_tokens_per_s
        self._bucket_capacity = cap
        self._tokens = cap if cap is not None else 0.0
        self._last_refill = 0.0

    # -- token bucket --------------------------------------------------------

    def _refill(self, now: float) -> None:
        rate = self.config.rate_tokens_per_s
        if rate is None:
            return
        if now > self._last_refill:
            self._tokens = min(
                self._bucket_capacity,
                self._tokens + (now - self._last_refill) * rate,
            )
        self._last_refill = max(self._last_refill, now)

    # -- the decision --------------------------------------------------------

    def evaluate(
        self,
        req: Request,
        now: float,
        *,
        queue_depth: int,
        kv_free_frac: float,
        est_iteration_s: float,
        max_batch_size: int,
        deadline_s: Optional[float] = None,
    ) -> Optional[AdmissionVerdict]:
        """``None`` to admit, or the verdict that rejected ``req``.

        An admitted request is charged against the token bucket; a
        rejected one is not (it consumed no capacity).
        """
        cfg = self.config
        self._refill(now)
        exempt = req.priority >= cfg.exempt_priority
        if not exempt:
            depth_limit = cfg.max_queue_depth
            if depth_limit is not None:
                if req.priority < PRIORITY_NORMAL:
                    depth_limit = max(
                        1, int(depth_limit * cfg.low_priority_factor)
                    )
                if queue_depth >= depth_limit:
                    return AdmissionVerdict.QUEUE_FULL
            if (cfg.min_kv_headroom is not None
                    and kv_free_frac < cfg.min_kv_headroom):
                return AdmissionVerdict.KV_PRESSURE
            if (cfg.rate_tokens_per_s is not None
                    and self._tokens < req.total_tokens):
                return AdmissionVerdict.RATE_LIMITED
        if cfg.slo_reject and deadline_s is not None:
            # Lower bound on queueing delay: the requests already in the
            # system fill batches of at most ``max_batch_size``, and each
            # batch costs at least one iteration before this arrival can
            # even start.
            rounds_ahead = queue_depth // max(1, max_batch_size)
            wait_floor = rounds_ahead * max(est_iteration_s, 0.0)
            if wait_floor > deadline_s:
                return AdmissionVerdict.DEADLINE_UNMEETABLE
        if cfg.rate_tokens_per_s is not None and not exempt:
            self._tokens -= req.total_tokens
        return None


# ---------------------------------------------------------------------------
# Brownout (degraded service tiers)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BrownoutConfig:
    """Knobs for :class:`BrownoutController`.

    The pressure signal is ``queue_depth / queue_high``, worsened when
    KV free space drops below ``kv_low``; it is EWMA-smoothed with
    ``ewma_alpha`` per engine step.  The controller escalates one level
    when smoothed pressure exceeds ``enter_pressure`` and de-escalates
    when it falls below ``exit_pressure``, with at least ``dwell_s``
    simulated seconds between transitions (hysteresis: the exit
    threshold sits well under the entry threshold so the system must
    genuinely drain before service is restored).

    Tiers (cumulative):

    1. shed waiting requests below ``shed_priority_floor``;
    2. cap decode lengths at ``decode_cap`` tokens;
    3. force merged execution of the hottest adapter.
    """

    queue_high: int = 64
    kv_low: float = 0.05
    enter_pressure: float = 1.0
    exit_pressure: float = 0.6
    ewma_alpha: float = 0.3
    dwell_s: float = 0.5
    max_level: int = 3
    decode_cap: int = 32
    shed_priority_floor: int = PRIORITY_NORMAL

    def __post_init__(self) -> None:
        if self.queue_high < 1:
            raise ValueError("queue_high must be >= 1")
        if not 0.0 <= self.kv_low < 1.0:
            raise ValueError("kv_low must be in [0, 1)")
        if self.exit_pressure >= self.enter_pressure:
            raise ValueError(
                "exit_pressure must be below enter_pressure (hysteresis)"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.dwell_s < 0:
            raise ValueError("dwell_s must be >= 0")
        if not 1 <= self.max_level <= 3:
            raise ValueError("max_level must be in [1, 3]")
        if self.decode_cap < 1:
            raise ValueError("decode_cap must be >= 1")


class BrownoutController:
    """Tracks pressure and the current degradation level."""

    def __init__(self, config: BrownoutConfig):
        self.config = config
        self.level = 0
        self._pressure = EwmaSignal(config.ewma_alpha)
        self._last_transition = float("-inf")
        self._last_observed: Optional[float] = None
        self.time_degraded = 0.0
        self.transitions = 0

    @property
    def pressure(self) -> float:
        return self._pressure.value

    def observe(self, now: float, queue_depth: int,
                kv_free_frac: float) -> int:
        """Fold one engine-step sample into the signal; returns level."""
        cfg = self.config
        raw = queue_depth / cfg.queue_high
        if kv_free_frac < cfg.kv_low and cfg.kv_low > 0:
            raw = max(raw, 1.0 + (cfg.kv_low - kv_free_frac) / cfg.kv_low)
        self._pressure.observe(raw)
        if self._last_observed is not None and self.level > 0:
            self.time_degraded += max(0.0, now - self._last_observed)
        self._last_observed = now
        if now - self._last_transition >= cfg.dwell_s:
            if self.pressure > cfg.enter_pressure and self.level < cfg.max_level:
                self.level += 1
                self._last_transition = now
                self.transitions += 1
            elif self.pressure < cfg.exit_pressure and self.level > 0:
                self.level -= 1
                self._last_transition = now
                self.transitions += 1
        return self.level

    def shed_victims(self, waiting: Sequence[Request],
                     excess: int) -> List[Request]:
        """Lowest-priority-first victims among waiting requests.

        Level 1 only sheds below ``shed_priority_floor``; deeper levels
        shed any waiting request, still lowest priority (then youngest)
        first so high-priority work survives longest.
        """
        if excess <= 0 or not waiting:
            return []
        pool = list(waiting)
        if self.level <= 1:
            pool = [
                r for r in pool
                if r.priority < self.config.shed_priority_floor
            ]
        pool.sort(key=lambda r: (r.priority, -r.arrival_time, -r.request_id))
        return pool[:excess]

    @property
    def decode_cap(self) -> Optional[int]:
        """Active decode-length cap, or ``None`` below level 2."""
        return self.config.decode_cap if self.level >= 2 else None

    @property
    def force_merged(self) -> bool:
        return self.level >= 3

    @property
    def hedging_allowed(self) -> bool:
        """Tail-tolerance gate: any brownout tier (L1+) disables hedged
        dispatch — a browned-out replica must shed load, not receive
        speculative duplicates of work that already exists elsewhere."""
        return self.level < 1


# ---------------------------------------------------------------------------
# Per-adapter circuit breakers
# ---------------------------------------------------------------------------

class BreakerState(enum.Enum):
    CLOSED = "closed"          # normal service
    OPEN = "open"              # failing fast; traffic aborted
    HALF_OPEN = "half_open"    # cooldown elapsed; probe traffic allowed


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs for :class:`AdapterBreaker`.

    ``failure_threshold`` consecutive swap failures open the breaker
    (matching the engine's legacy ``max_swap_retries`` quarantine
    count).  ``cooldown_s=None`` keeps an opened breaker open forever —
    exactly the old permanent quarantine.  With a cooldown, the breaker
    re-probes (half-open) after ``cooldown_s``, doubling by
    ``cooldown_multiplier`` on every re-open up to ``max_cooldown_s``;
    a single failed probe re-opens, a successful one closes.
    """

    failure_threshold: int = 5
    cooldown_s: Optional[float] = None
    cooldown_multiplier: float = 2.0
    max_cooldown_s: float = 60.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s is not None and self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        if self.cooldown_multiplier < 1.0:
            raise ValueError("cooldown_multiplier must be >= 1")
        if self.max_cooldown_s <= 0:
            raise ValueError("max_cooldown_s must be positive")


class AdapterBreaker:
    """Circuit breaker guarding one adapter's swap path."""

    def __init__(self, adapter_id: str, config: BreakerConfig):
        self.adapter_id = adapter_id
        self.config = config
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.open_count = 0

    def _cooldown(self) -> Optional[float]:
        base = self.config.cooldown_s
        if base is None:
            return None
        scaled = base * self.config.cooldown_multiplier ** max(
            0, self.open_count - 1
        )
        return min(scaled, self.config.max_cooldown_s)

    def _maybe_half_open(self, now: float) -> None:
        if self.state is not BreakerState.OPEN:
            return
        cooldown = self._cooldown()
        if cooldown is None or self.opened_at is None:
            return
        if now >= self.opened_at + cooldown:
            self.state = BreakerState.HALF_OPEN

    def admit_allowed(self, now: float) -> bool:
        """May a new request for this adapter enter the queue?"""
        self._maybe_half_open(now)
        return self.state is not BreakerState.OPEN

    def record_failure(self, now: float) -> bool:
        """Count one swap failure; True when this opened the breaker.

        A half-open probe trips straight back to open; a closed breaker
        opens after ``failure_threshold`` consecutive failures.
        """
        self._maybe_half_open(now)
        self.consecutive_failures += 1
        should_open = (
            self.state is BreakerState.HALF_OPEN
            or self.consecutive_failures > self.config.failure_threshold
        )
        if should_open and self.state is not BreakerState.OPEN:
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.open_count += 1
            return True
        return False

    def record_success(self, now: float) -> bool:
        """Count one swap success; True when this closed the breaker."""
        self._maybe_half_open(now)
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
            self.opened_at = None
            return True
        return False


# ---------------------------------------------------------------------------
# Replica health (cluster dispatch)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReplicaHealth:
    """One replica's health snapshot, scored in [0, 1].

    ``0.0`` means dead (never dispatch).  A live replica's score decays
    with its EWMA iteration slowdown relative to its peers and with its
    queue depth relative to ``queue_norm`` — both symptoms precede
    outright failure, which is the point of routing around them early.
    A ``suspected`` replica (failure detector past ``phi_suspect`` but
    not yet confirmed) keeps a nonzero score — it may well be alive —
    but is heavily discounted so dispatch prefers any unsuspected peer.
    """

    dead: bool
    queue_depth: int
    iter_ewma: Optional[float]
    suspected: bool = False

    def score(self, peer_iter_ewma: Optional[float],
              queue_norm: int = 64) -> float:
        if self.dead:
            return 0.0
        slowdown = 1.0
        if (self.iter_ewma is not None and peer_iter_ewma is not None
                and peer_iter_ewma > 0):
            slowdown = max(1.0, self.iter_ewma / peer_iter_ewma)
        queue_penalty = 1.0 + self.queue_depth / max(1, queue_norm)
        score = 1.0 / (slowdown * queue_penalty)
        if self.suspected:
            score *= 0.25
        return score
