"""Structure-of-arrays serving engine: the batch-advanced hot loop.

:class:`SoAServingEngine` is a drop-in twin of
:class:`~repro.runtime.engine.ServingEngine` for the workloads that
dominate large-scale experiments: a standalone engine (no fault
injection, no overload protection) driving one of the four stock
scheduling policies.  Instead of one Python object per request it keeps
the request pool as parallel numpy arrays — ids, adapter index, status,
arrival/deadline/first-token times, token counts, priority — and runs
each engine phase as a masked array pass:

* **arrival admission** is one ``searchsorted`` over the presorted
  arrival array per iteration (the object core pops a heap per request);
* **deadline expiry** is a watermark check against a presorted expiry
  array, escalating to a vectorized exact-predicate pass only when the
  watermark trips;
* **scheduling** goes through the policies' ``schedule_soa`` fast paths
  (vectorized credit computation and starvation-prefix selection over
  the pool — see :mod:`repro.runtime.scheduler`);
* **finalize** advances every batch member with masked writes (token
  append, block growth, first-token stamps) instead of per-object
  attribute churn;
* **KV-pressure shedding** picks its victim with one ``lexsort`` over
  the refreshed credit array.

Equivalence contract (property-tested in
``tests/runtime/test_soa_core.py``): for any supported configuration the
SoA core completes/aborts the same requests at the same simulated times
with the same metrics summary as the object core — bit-identical, not
approximately.  Every float expression on the hot path therefore
mirrors the object core's evaluation order exactly: broadcast adds of a
python float to a float64 array are per-element IEEE double adds, so
vectorizing preserves the scalar results as long as the association
order is kept.

KV accounting is entry-granular rather than block-granular: the SoA
core never needs block *identities*, only counts, so a sequence records
how many blocks it owns exclusively plus a reference to the prefix
entry it shares.  The refcount transitions are provably the same as the
paged allocator's per-block ones (a prefix entry's blocks free exactly
when the registry and every holding sequence have released it).

Unsupported features fail fast in the constructor: fault injection,
admission control, brownout, circuit breakers, custom policies without
an SoA path, and tracers.  Use the object core for those.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hardware.gpu import GPUSpec
from repro.kernels.base import LoRAOperator
from repro.models.config import ModelConfig
from repro.models.costs import IterationCostModel
from repro.runtime import request as request_mod
from repro.runtime.adapters import AdapterManager
from repro.runtime.clock import SimClock
from repro.runtime.costcache import IterationCostCache
from repro.runtime.engine import EngineConfig
from repro.runtime.kv_cache import BlockAllocationError
from repro.runtime.memory import UnifiedMemoryManager
from repro.runtime.metrics import AbortRecord, MetricsCollector, RequestRecord
from repro.runtime.modes import InferenceMode, ModeExecutor
from repro.runtime.request import (
    AbortReason,
    PRIORITY_NORMAL,
    Request,
    RequestStatus,
)
from repro.runtime.scheduler import (
    SchedulingPolicy,
    SoAScheduleContext,
)
from repro.runtime.switcher import ModeSwitcher

# Status codes (int8 pool column).
_WAITING = 0
_RUNNING = 1
_FINISHED = 2
_ABORTED = 3

_STATUS_ENUM = {
    _WAITING: RequestStatus.WAITING,
    _RUNNING: RequestStatus.RUNNING,
    _FINISHED: RequestStatus.FINISHED,
    _ABORTED: RequestStatus.ABORTED,
}

# Abort-reason codes (int8 pool column; only the reasons a standalone,
# fault-free engine can produce).
_NO_ABORT = -1
_ABORT_KV = 0
_ABORT_DEADLINE = 1

#: Overflow threshold for the component cost memos (matches
#: IterationCostCache.MAX_ENTRIES).
_MEMO_MAX = 65536

_ABORT_ENUM = {
    _ABORT_KV: AbortReason.KV_EXHAUSTED,
    _ABORT_DEADLINE: AbortReason.DEADLINE_EXCEEDED,
}


class _SoAQueueView:
    """The scheduler's window onto the live request pool (FCFS order).

    Backed directly by the engine's arrays — no copies.  ``live_prefix``
    and the matching scans exploit that dead entries in the admission
    order are bounded by ``_ndead`` (compaction keeps it small), so a
    slice of ``k + _ndead`` entries always contains the first ``k`` live
    ones.
    """

    __slots__ = ("_eng", "arrival", "adapter_idx", "credit",
                 "adapter_order", "adapter_order_list")

    def __init__(self, eng: "SoAServingEngine"):
        self._eng = eng
        self.arrival = eng._arrival
        self.adapter_idx = eng._adapter
        self.credit = eng._credit
        self.adapter_order = eng._adapter_rank
        self.adapter_order_list = eng._adapter_rank.tolist()

    @property
    def n_live(self) -> int:
        return self._eng._n_active

    @property
    def counts(self) -> np.ndarray:
        return self._eng._counts

    def live_prefix(self, k: int) -> np.ndarray:
        """First ``k`` live pool indices in FCFS (admission) order."""
        eng = self._eng
        head, n = eng._order_head, eng._order_n
        if not eng._ndead:
            return eng._order[head:min(head + k, n)]
        seg = eng._order[head:min(head + k + eng._ndead, n)]
        seg = seg[eng._active_f[seg]]
        return seg[:k]

    def match_after(self, adapter: int, limit: int,
                    skip: int) -> np.ndarray:
        """First ``limit`` live indices of ``adapter`` after skipping
        the first ``skip`` live entries (the object core's
        ``_first_matching(..., start=skip)``)."""
        if limit <= 0:
            return self._eng._order[:0]
        eng = self._eng
        if eng._counts[adapter] == eng._n_active:
            # Every live request wants this adapter: the match is just
            # the live prefix past the skip.
            return self.live_prefix(skip + limit)[skip:]
        order, active = eng._order, eng._active_f
        adapter_of = eng._adapter
        pos, n = eng._order_head, eng._order_n
        live_seen = 0
        got = 0
        chunk = max(2 * (skip + limit) + eng._ndead, 64)
        out: List[np.ndarray] = []
        while pos < n and got < limit:
            seg = order[pos:min(pos + chunk, n)]
            pos += seg.size
            if eng._ndead:
                seg = seg[active[seg]]
            if live_seen < skip:
                cut = min(skip - live_seen, seg.size)
                live_seen += seg.size
                seg = seg[cut:]
            else:
                live_seen += seg.size
            if seg.size:
                m = seg[adapter_of[seg] == adapter]
                if m.size:
                    m = m[:limit - got]
                    got += m.size
                    out.append(m)
            chunk *= 2
        if not out:
            return order[:0]
        return out[0] if len(out) == 1 else np.concatenate(out)

    def first_other(self, adapter: int) -> int:
        """First live pool index whose adapter differs; -1 if none."""
        eng = self._eng
        order, active = eng._order, eng._active_f
        adapter_of = eng._adapter
        pos, n = eng._order_head, eng._order_n
        chunk = 64 + eng._ndead
        while pos < n:
            seg = order[pos:min(pos + chunk, n)]
            pos += seg.size
            if eng._ndead:
                seg = seg[active[seg]]
            m = seg[adapter_of[seg] != adapter]
            if m.size:
                return int(m[0])
            chunk *= 2
        return -1


class SoAServingEngine:
    """One GPU's serving loop over parallel request arrays.

    Constructor-compatible with :class:`ServingEngine` so
    :class:`~repro.core.builder.SystemBuilder` can swap it in via
    ``engine_cls`` / ``core="soa"``.  All submissions must land before
    the first :meth:`step`/:meth:`run` — the pool is ingested once into
    fixed-size arrays (request streams are known up front in every
    simulator workload; the object core covers online use).
    """

    def __init__(
        self,
        model: ModelConfig,
        gpu: GPUSpec,
        operator: LoRAOperator,
        policy: SchedulingPolicy,
        switcher: ModeSwitcher,
        adapter_manager: AdapterManager,
        memory: Optional[UnifiedMemoryManager] = None,
        config: EngineConfig = EngineConfig(),
        fault_injector=None,
        engine_id: str = "engine-0",
        materialize_records: bool = True,
    ):
        if fault_injector is not None:
            raise ValueError(
                "the SoA core does not support fault injection; "
                "use the object core (--core object)"
            )
        if (config.admission is not None or config.brownout is not None
                or config.breaker is not None):
            raise ValueError(
                "the SoA core does not support overload protection "
                "(admission/brownout/breaker); use the object core"
            )
        if config.timeout_policy is not None:
            raise ValueError(
                "the SoA core does not support tail-tolerant dispatch "
                "(timeout_policy / hedging / retry budgets); use the "
                "object core"
            )
        if type(policy).schedule_soa is SchedulingPolicy.schedule_soa:
            raise ValueError(
                f"policy {policy.name!r} has no schedule_soa fast path; "
                f"use the object core"
            )
        self.model = model
        self.gpu = gpu
        self.operator = operator
        self.policy = policy
        self.switcher = switcher
        self.adapters = adapter_manager
        self.config = config
        self.engine_id = engine_id
        self.memory = memory or UnifiedMemoryManager(
            model, gpu, adapter_slots=adapter_manager.gpu_slots,
            tp_degree=config.tensor_parallel,
        )
        kv = self.memory.build_kv_cache()
        self._num_blocks = kv.num_blocks
        self._block_size = kv.block_size
        self._free_blocks = kv.num_blocks
        self.iter_costs = IterationCostModel(
            model, gpu, operator.cost_model,
            tp_degree=config.tensor_parallel,
        )
        self.mode_exec = ModeExecutor(
            model, operator, num_projections=config.num_projections
        )
        self.clock = SimClock()
        self.metrics = MetricsCollector()
        self._rng = (
            np.random.default_rng(config.jitter_seed)
            if config.jitter_seed is not None else None
        )
        self.cost_cache: Optional[IterationCostCache] = (
            IterationCostCache(self.iter_costs, self.mode_exec,
                               metrics=self.metrics)
            if config.enable_cost_cache else None
        )
        self.materialize_records = materialize_records

        # -- adapter interning ---------------------------------------------
        table = adapter_manager.adapter_ids
        self._adapter_table: List[str] = table
        self._adapter_index: Dict[str, int] = {
            a: i for i, a in enumerate(table)
        }
        # Lexicographic rank of each adapter id: the _top_adapter
        # tie-break key, precomputed once.
        self._adapter_rank = np.empty(len(table), dtype=np.int64)
        for rank, a in enumerate(sorted(table)):
            self._adapter_rank[self._adapter_index[a]] = rank
        self._spec_rank = np.array(
            [adapter_manager.spec(a).rank for a in table], dtype=np.int64
        )
        self._spec_classes = np.array(
            [adapter_manager.spec(a).task_head_classes or 101
             for a in table], dtype=np.int64
        )

        # -- mode / estimate state -----------------------------------------
        self.current_mode = InferenceMode.UNMERGED
        self._merged_idx = -1
        self._last_iteration_s = 0.03
        self._switch_estimate: Optional[float] = None
        self._last_ctx: Optional[SoAScheduleContext] = None
        self.iter_time_ewma: Optional[float] = None
        self._kv_stalls = 0
        self.quiesced = False
        self.failed = False

        # Component cost memos (see _execute): keyed on the same
        # sufficient statistics as IterationCostCache's component
        # tables, probed directly so no per-iteration BatchSignature is
        # built.  Cleared wholesale past _MEMO_MAX — memoization, not
        # state.
        self._prefill_cache: Dict[tuple, float] = {}
        self._decode_cache: Dict[tuple, float] = {}
        self._extra_cache: Dict[tuple, float] = {}

        # -- staging (pre-ingest submissions) ------------------------------
        self._staged: List[Dict[str, np.ndarray]] = []
        self._staged_n = 0
        self._ingested = False

        # -- prefix interning / entry-granular KV registry -----------------
        self._prefix_index: Dict[str, int] = {}
        self._task_table: List[str] = []
        self._task_index: Dict[str, int] = {}
        # entry id -> [blocks, num_tokens, last_used, refs]
        self._entries: Dict[int, list] = {}
        self._prefix_map: Dict[int, int] = {}  # prefix id -> entry id
        self._entry_ids = itertools.count()

    # -- submission ---------------------------------------------------------

    def submit(self, requests: Sequence[Request]) -> None:
        """Queue request objects (compatibility path).

        Converted into one staged array block; per-request fields that
        the object core mutates in place are *not* mirrored back — the
        SoA core's results live in its metrics and records.
        """
        if self._ingested:
            raise RuntimeError(
                "SoA engine pools are ingested at first step; submit "
                "all requests before run()"
            )
        if self.quiesced and requests:
            raise RuntimeError(
                f"engine {self.engine_id} is quiesced (draining); "
                f"dispatching new work to it is a cluster bug"
            )
        if not requests:
            return
        n = len(requests)
        block = self._empty_block(n)
        for j, r in enumerate(requests):
            self.adapters.spec(r.adapter_id)  # validate adapter exists
            if r.status is not RequestStatus.WAITING or r.generated:
                raise ValueError(
                    f"request {r.request_id} already has progress; the "
                    f"SoA core only serves fresh requests"
                )
            block["rid"][j] = r.request_id
            block["adapter"][j] = self._adapter_index[r.adapter_id]
            block["arrival"][j] = r.arrival_time
            block["inp"][j] = r.input_tokens
            block["out"][j] = r.output_tokens
            block["num_images"][j] = r.num_images
            block["use_task_head"][j] = r.use_task_head
            block["task"][j] = self._intern_task(r.task_name)
            block["prefix"][j] = (
                self._intern_prefix(r.prefix_key)
                if r.prefix_key is not None else -1
            )
            block["prefix_tokens"][j] = r.prefix_tokens
            block["slo"][j] = np.nan if r.slo_s is None else r.slo_s
            block["deadline"][j] = (
                np.nan if r.deadline_s is None else r.deadline_s
            )
            block["priority"][j] = r.priority
        self._staged.append(block)
        self._staged_n += n

    def submit_arrays(
        self,
        adapter_idx: np.ndarray,
        arrival: np.ndarray,
        input_tokens: np.ndarray,
        output_tokens: np.ndarray,
        *,
        use_task_head: bool = False,
        task_name: str = "",
        slo_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        priority: int = PRIORITY_NORMAL,
        num_images: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Bulk submission without materializing ``Request`` objects.

        ``adapter_idx`` indexes :attr:`AdapterManager.adapter_ids`.
        Request ids are drawn from the same global counter the object
        path uses (a contiguous block), so mixed-core runs never
        collide.  Returns the assigned id array.
        """
        if self._ingested:
            raise RuntimeError(
                "SoA engine pools are ingested at first step; submit "
                "all requests before run()"
            )
        n = len(arrival)
        adapter_idx = np.asarray(adapter_idx, dtype=np.int32)
        if adapter_idx.size and (
                adapter_idx.min() < 0
                or adapter_idx.max() >= len(self._adapter_table)):
            raise ValueError("adapter_idx out of range")
        inp = np.asarray(input_tokens, dtype=np.int32)
        out = np.asarray(output_tokens, dtype=np.int32)
        arr = np.asarray(arrival, dtype=np.float64)
        if inp.size and inp.min() <= 0:
            raise ValueError("input_tokens must be positive")
        if out.size and out.min() <= 0:
            raise ValueError("output_tokens must be positive")
        if arr.size and arr.min() < 0:
            raise ValueError("arrival_time must be >= 0")
        if use_task_head and out.size and (out != 1).any():
            raise ValueError("task-head requests decode in exactly 1 round")
        start = next(request_mod._id_counter)
        request_mod.reset_request_ids(start + n)
        block = self._empty_block(n)
        block["rid"][:] = np.arange(start, start + n, dtype=np.int64)
        block["adapter"][:] = adapter_idx
        block["arrival"][:] = arr
        block["inp"][:] = inp
        block["out"][:] = out
        if num_images is not None:
            block["num_images"][:] = np.asarray(num_images, dtype=np.int32)
        block["use_task_head"][:] = use_task_head
        block["task"][:] = self._intern_task(task_name)
        block["slo"][:] = np.nan if slo_s is None else slo_s
        block["deadline"][:] = np.nan if deadline_s is None else deadline_s
        block["priority"][:] = priority
        self._staged.append(block)
        self._staged_n += n
        return block["rid"]

    @staticmethod
    def _empty_block(n: int) -> Dict[str, np.ndarray]:
        return {
            "rid": np.empty(n, dtype=np.int64),
            "adapter": np.empty(n, dtype=np.int32),
            "arrival": np.empty(n, dtype=np.float64),
            "inp": np.empty(n, dtype=np.int32),
            "out": np.empty(n, dtype=np.int32),
            "num_images": np.zeros(n, dtype=np.int32),
            "use_task_head": np.zeros(n, dtype=bool),
            "task": np.zeros(n, dtype=np.int32),
            "prefix": np.full(n, -1, dtype=np.int32),
            "prefix_tokens": np.zeros(n, dtype=np.int32),
            "slo": np.full(n, np.nan),
            "deadline": np.full(n, np.nan),
            "priority": np.full(n, PRIORITY_NORMAL, dtype=np.int64),
        }

    def _intern_task(self, name: str) -> int:
        tid = self._task_index.get(name)
        if tid is None:
            tid = len(self._task_table)
            self._task_table.append(name)
            self._task_index[name] = tid
        return tid

    def _intern_prefix(self, key: str) -> int:
        pid = self._prefix_index.get(key)
        if pid is None:
            pid = len(self._prefix_index)
            self._prefix_index[key] = pid
        return pid

    # -- lifecycle -----------------------------------------------------------

    @property
    def num_live(self) -> int:
        if not self._ingested:
            return self._staged_n
        return (self._pend_n - self._pend_pos) + self._n_active

    def quiesce(self) -> None:
        self.quiesced = True

    @property
    def is_drained(self) -> bool:
        return self.quiesced and self.num_live == 0

    @property
    def current_merged(self) -> Optional[str]:
        """Merged adapter id (object-core-compatible view)."""
        if self._merged_idx < 0:
            return None
        return self._adapter_table[self._merged_idx]

    # -- ingest --------------------------------------------------------------

    def _ingest(self) -> None:
        if self._ingested:
            return
        self._ingested = True
        blocks = self._staged
        self._staged = []
        n = self._staged_n

        def cat(key):
            if not blocks:
                return self._empty_block(0)[key]
            if len(blocks) == 1:
                return blocks[0][key]
            return np.concatenate([b[key] for b in blocks])

        self._rid = cat("rid")
        self._adapter = cat("adapter")
        self._arrival = cat("arrival")
        self._inp = cat("inp")
        self._out = cat("out")
        self._num_images = cat("num_images")
        self._use_task_head = cat("use_task_head")
        self._task = cat("task")
        self._prefix = cat("prefix")
        self._prefix_tokens = cat("prefix_tokens")
        self._slo = cat("slo")
        self._deadline_s = cat("deadline")
        self._priority = cat("priority")

        self._gen = np.zeros(n, dtype=np.int32)
        self._status = np.zeros(n, dtype=np.int8)
        self._prefilled_f = np.zeros(n, dtype=bool)
        self._active_f = np.zeros(n, dtype=bool)
        self._has_kv = np.zeros(n, dtype=bool)
        self._first_token = np.full(n, np.nan)
        self._finish = np.full(n, np.nan)
        self._abort_t = np.full(n, np.nan)
        self._abort_reason = np.full(n, _NO_ABORT, dtype=np.int8)
        self._credit = np.zeros(n)
        self._reused = np.zeros(n, dtype=np.int32)
        self._own_excl = np.zeros(n, dtype=np.int32)
        self._cap_tok = np.zeros(n, dtype=np.int32)
        self._pentry = np.full(n, -1, dtype=np.int32)

        # Pending arrivals presorted by (arrival, rid) — heap pop order.
        pend = np.lexsort((self._rid, self._arrival))
        self._pend = pend.astype(np.int64)
        self._pend_arr = self._arrival[pend]
        self._pend_pos = 0
        self._pend_n = n

        # Effective deadlines (deadline_s, else factor * slo_s) and the
        # presorted expiry schedule.
        eff = self._deadline_s.copy()
        factor = self.config.deadline_slo_factor
        if factor is not None:
            use_slo = np.isnan(eff) & ~np.isnan(self._slo)
            eff[use_slo] = factor * self._slo[use_slo]
        self._eff_deadline = eff
        expiry = self._arrival + eff
        with_dl = np.flatnonzero(~np.isnan(expiry))
        dl_order = with_dl[np.lexsort(
            (self._rid[with_dl], expiry[with_dl])
        )]
        self._dl_order = dl_order.astype(np.int64)
        self._dl_expiry = expiry[dl_order]
        self._dl_ptr = 0

        # Admission order (FCFS) with lazy hole removal.
        self._order = np.empty(n, dtype=np.int64)
        self._order_head = 0
        self._order_n = 0
        self._ndead = 0
        self._n_active = 0
        self._counts = np.zeros(len(self._adapter_table), dtype=np.int64)
        self._prefilled_set: set = set()

        # Terminal-event buffers (materialized into records lazily).
        self._fin_buf = np.empty(n, dtype=np.int64)
        self._fin_n = 0
        self._abort_buf = np.empty(n, dtype=np.int64)
        self._abort_n = 0
        self._mat_fin = 0
        self._mat_abort = 0

        self._view = _SoAQueueView(self)

    # -- main loop -----------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_iterations: int = 2_000_000) -> MetricsCollector:
        """Run until all submitted work completes (or ``until``)."""
        self._ingest()
        for _ in range(max_iterations):
            if until is not None and self.clock.now >= until:
                break
            if self._pend_pos >= self._pend_n and not self._n_active:
                break
            self.step()
        else:
            raise RuntimeError(
                f"engine exceeded {max_iterations} iterations "
                f"(sim time {self.clock.now:.1f}s)"
            )
        self.sync_metrics()
        return self.metrics

    def step(self) -> None:
        """One engine iteration (or a jump to the next arrival)."""
        self._ingest()
        self._admit_arrivals()
        self._expire_deadlines()
        if not self._n_active:
            if self._pend_pos < self._pend_n:
                # float() keeps the clock a python float (np.float64
                # would be IEEE-identical but leak into repr/records).
                self.clock.advance_to(float(self._pend_arr[self._pend_pos]))
                self._admit_arrivals()
                self._expire_deadlines()
            else:
                return
        if not self._n_active:
            return

        ctx = SoAScheduleContext(
            now=self.clock.now,
            current_mode=self.current_mode,
            current_merged=self._merged_idx,
            max_batch_size=self.config.max_batch_size,
            est_iteration_seconds=self._last_iteration_s,
            est_switch_seconds=self._estimate_switch(),
        )
        self._last_ctx = ctx
        decision = self.policy.schedule_soa(self._view, ctx)
        if decision is None:
            return
        mode, merged = decision.mode, decision.merged
        self._apply_mode(mode, merged)
        batch = self._trim_to_adapter_slots(decision.batch, merged)
        # prefilled_b is the batch's prefilled mask, normalized to None
        # for the (dominant, decode-only) all-prefilled case so the
        # downstream passes skip their prefill branches without
        # re-deriving the mask.
        batch, prefilled_b = self._admit_to_kv(batch)
        if not batch.size:
            # KV exhausted: let running requests drain by retrying the
            # already-admitted subset next iteration after evicting
            # stale prefixes.
            self._evict_stale(self.clock.now - self.config.prefix_ttl_s)
            db = decision.batch
            batch = db[self._prefilled_f[db]]
            prefilled_b = None
            if not batch.size:
                self._handle_kv_starvation()
                return

        gen_b = self._gen[batch]
        ctx_b = self._inp[batch] + gen_b
        # Decode-capacity fast check (the estimate the object core uses:
        # a sequence at a block boundary may need one more block); the
        # preemption loop only runs when it trips.  nb also gates the
        # block-growth pass in _finalize: a sequence can only grow past
        # its capacity when it sits exactly on a block boundary.
        nb = int(np.count_nonzero(ctx_b % self._block_size == 0))
        if nb > self._free_blocks:
            batch = self._ensure_decode_capacity(batch)
            if not batch.size:
                self._handle_kv_starvation()
                return
            gen_b = self._gen[batch]
            ctx_b = self._inp[batch] + gen_b
            nb = int(np.count_nonzero(ctx_b % self._block_size == 0))
            pf = self._prefilled_f[batch]
            prefilled_b = None if pf.all() else pf
        self._kv_stalls = 0

        if mode is InferenceMode.MERGED:
            # A merged decision's batch is single-adapter by
            # construction (match_after / the all-same fast path).
            needed = [self._adapter_table[merged]]
        else:
            needed = self._batch_adapters(batch, merged)
        uniq = list(dict.fromkeys(needed))
        hits = sum(1 for a in uniq if self.adapters.is_resident(a))
        stall = self.adapters.ensure_resident(needed, self.clock.now)
        self.metrics.adapter_cache_hits += hits
        misses = len(uniq) - hits
        if misses:
            self.metrics.adapter_cache_misses += misses
            self.metrics.swap_ins += misses
            self.metrics.swap_in_seconds += stall
        if stall:
            self.clock.advance(stall)

        iteration_s = self._execute(batch, mode, merged, ctx_b, prefilled_b)
        self.clock.advance(iteration_s)
        self._last_iteration_s = iteration_s
        if self.iter_time_ewma is None:
            self.iter_time_ewma = iteration_s
        else:
            self.iter_time_ewma += 0.2 * (iteration_s - self.iter_time_ewma)
        self._finalize(batch, gen_b, ctx_b, prefilled_b, nb)
        self.metrics.iterations += 1
        self.metrics.count_mode(mode.value)
        # FCFS processing retires mostly from the queue front: advancing
        # the head eats those holes at O(1) amortized, and compaction
        # only fires for scattered holes (merged-mode runs finishing
        # mid-queue adapters).
        order, active = self._order, self._active_f
        head, n = self._order_head, self._order_n
        while head < n and not active[order[head]]:
            head += 1
            self._ndead -= 1
        self._order_head = head
        if self._ndead > 64 and self._ndead * 8 > (n - head):
            self._compact_order()

    # -- admission / expiry (masked passes) -----------------------------------

    def _admit_arrivals(self) -> None:
        pos = self._pend_pos
        if pos >= self._pend_n:
            return
        now = self.clock.now
        if self._pend_arr[pos] > now:
            return
        k = int(np.searchsorted(self._pend_arr, now, side="right"))
        idx = self._pend[pos:k]
        self._pend_pos = k
        m = idx.size
        end = self._order_n + m
        self._order[self._order_n:end] = idx
        self._order_n = end
        self._active_f[idx] = True
        self._n_active += m
        if m == 1:
            self._counts[self._adapter[idx[0]]] += 1
        else:
            np.add.at(self._counts, self._adapter[idx], 1)

    def _expire_deadlines(self) -> None:
        """Masked deadline pass: presorted expiries + a moving pointer.

        The sorted expiry array is the object core's heap flattened up
        front: the pointer check replaces the heap-top watermark, and
        one ``searchsorted`` bounds the candidates within margin.  Like
        the heap path, keys can round one ulp away from the exact
        ``now - arrival > deadline`` predicate, so candidates are
        re-checked exactly and non-expired ones stay at the pointer
        (the pushback).
        """
        ptr = self._dl_ptr
        dle = self._dl_expiry
        if ptr >= dle.size:
            return
        now = self.clock.now
        margin = 1e-9 * (1.0 + abs(now))
        cut = now + margin
        if dle[ptr] > cut:
            return
        k = int(np.searchsorted(dle, cut, side="right"))
        sl = self._dl_order[ptr:k]
        live = sl[self._active_f[sl]]
        if live.size:
            expired = live[
                (now - self._arrival[live]) > self._eff_deadline[live]
            ]
            if expired.size:
                self._abort_many(expired, _ABORT_DEADLINE)
        # Advance past departed entries; stop at the first entry that is
        # still live (pushback) or not yet admitted.
        status = self._status
        active = self._active_f
        dlo = self._dl_order
        while ptr < k:
            i = dlo[ptr]
            if active[i]:
                break
            if status[i] == _WAITING:
                break  # not admitted yet (sub-margin deadline)
            ptr += 1
        self._dl_ptr = ptr

    def _abort_many(self, idx: np.ndarray, reason: int) -> None:
        """Vectorized abort of ``idx`` (in order) at the current time."""
        now = self.clock.now
        with_kv = idx[self._has_kv[idx]]
        for i in with_kv.tolist():
            self._free_kv(i)
        self._status[idx] = _ABORTED
        self._abort_t[idx] = now
        self._abort_reason[idx] = reason
        self._active_f[idx] = False
        self._reused[idx] = 0
        if idx.size == 1:
            self._counts[self._adapter[idx[0]]] -= 1
        else:
            np.add.at(self._counts, self._adapter[idx], -1)
        self._n_active -= idx.size
        self._ndead += idx.size
        for i in idx[self._prefilled_f[idx]].tolist():
            self._prefilled_set.discard(i)
        end = self._abort_n + idx.size
        self._abort_buf[self._abort_n:end] = idx
        self._abort_n = end

    def _compact_order(self) -> None:
        seg = self._order[self._order_head:self._order_n]
        live = seg[self._active_f[seg]]
        self._order[:live.size] = live
        self._order_head = 0
        self._order_n = live.size
        self._ndead = 0

    # -- KV accounting (entry-granular) ---------------------------------------

    def _blocks_for(self, num_tokens: int) -> int:
        return -(-num_tokens // self._block_size)

    def _free_kv(self, i: int) -> None:
        self._free_blocks += int(self._own_excl[i])
        self._own_excl[i] = 0
        eid = int(self._pentry[i])
        if eid >= 0:
            e = self._entries[eid]
            e[3] -= 1
            if not e[3]:
                self._free_blocks += e[0]
                del self._entries[eid]
            self._pentry[i] = -1
        self._has_kv[i] = False
        self._cap_tok[i] = 0

    def _evict_stale(self, older_than: float) -> int:
        stale = [
            pk for pk, eid in self._prefix_map.items()
            if self._entries[eid][2] < older_than
        ]
        for pk in stale:
            eid = self._prefix_map.pop(pk)
            e = self._entries[eid]
            e[3] -= 1
            if not e[3]:
                self._free_blocks += e[0]
                del self._entries[eid]
        return len(stale)

    def _admit_to_kv(self, batch: np.ndarray):
        """Admit the batch's unprefilled members to the KV cache.

        Returns ``(batch, prefilled_mask)`` with members that did not
        fit dropped; the mask is ``None`` when every kept member is
        already prefilled (the dominant decode-only case).
        """
        pf = self._prefilled_f[batch]
        if pf.all():
            return batch, None
        now = self.clock.now
        bs = self._block_size
        keep = np.ones(batch.size, dtype=bool)
        dropped = False
        for j in np.flatnonzero(~pf).tolist():
            i = int(batch[j])
            ctx = int(self._inp[i]) + int(self._gen[i])
            need_full = self._blocks_for(ctx)
            if need_full > self._free_blocks:
                self._evict_stale(now - self.config.prefix_ttl_s)
            if need_full > self._free_blocks:
                keep[j] = False  # stays waiting; retried next iteration
                dropped = True
                continue
            pid = int(self._prefix[i]) if self.config.enable_prefix_reuse \
                else -1
            ptoks = int(self._prefix_tokens[i])
            reused = 0
            if pid >= 0 and ptoks >= bs:
                eid = self._prefix_map.get(pid)
                if eid is not None:
                    e = self._entries[eid]
                    reused = e[1]
                    e[2] = now
                    e[3] += 1
                    remaining = ctx - reused
                    own = self._blocks_for(remaining) if remaining > 0 else 0
                    self._free_blocks -= own
                    self._own_excl[i] = own
                    self._pentry[i] = eid
                    self._cap_tok[i] = (e[0] + own) * bs
                else:
                    own = need_full
                    self._free_blocks -= own
                    full = ptoks // bs
                    eid = next(self._entry_ids)
                    # [blocks, num_tokens, last_used, refs]; refs counts
                    # the registry plus this sequence.
                    self._entries[eid] = [full, full * bs, now, 2]
                    self._prefix_map[pid] = eid
                    self._own_excl[i] = own - full
                    self._pentry[i] = eid
                    self._cap_tok[i] = own * bs
            else:
                own = need_full
                self._free_blocks -= own
                self._own_excl[i] = own
                self._pentry[i] = -1
                self._cap_tok[i] = own * bs
            self._reused[i] = reused
            self._has_kv[i] = True
        if not dropped:
            return batch, pf
        pfk = pf[keep]
        return batch[keep], (None if pfk.all() else pfk)

    def _ensure_decode_capacity(self, batch: np.ndarray) -> np.ndarray:
        """Mirror of the object core's preemption loop (rarely taken)."""
        bs = self._block_size
        while True:
            ctx = self._inp[batch] + self._gen[batch]
            needed = int(np.count_nonzero(ctx % bs == 0))
            if needed <= self._free_blocks:
                return batch
            victim = self._pick_preemption_victim(batch)
            if victim is not None:
                self._preempt(victim)
                batch = batch[batch != victim]
                continue
            fresh = batch[~self._prefilled_f[batch]]
            if batch.size > 1 and fresh.size:
                bounced = int(fresh[-1])
                self._free_kv(bounced)
                self._reused[bounced] = 0
                batch = batch[batch != bounced]
                continue
            for i in fresh.tolist():
                if self._has_kv[i]:
                    self._free_kv(i)
                    self._reused[i] = 0
            return batch[:0]

    def _pick_preemption_victim(self, batch: np.ndarray) -> Optional[int]:
        prefilled_batch = batch[self._prefilled_f[batch]]
        batch_set = set(batch.tolist())
        outside = [i for i in self._prefilled_set if i not in batch_set]
        if not outside:
            if prefilled_batch.size <= 1:
                return None  # never preempt the last runnable request
            pool = prefilled_batch.tolist()
        else:
            pool = outside
        arrival, rid = self._arrival, self._rid
        return max(pool, key=lambda i: (arrival[i], rid[i]))

    def _preempt(self, i: int) -> None:
        self._free_kv(i)
        self._reused[i] = 0
        self._prefilled_f[i] = False
        self._status[i] = _WAITING
        self._prefilled_set.discard(i)
        self.metrics.num_preemptions += 1

    def _handle_kv_starvation(self) -> None:
        """Degrade gracefully when no batch fits in the KV cache."""
        self._evict_stale(float("inf"))
        self._kv_stalls += 1
        self.metrics.kv_stall_iters += 1
        if self._kv_stalls <= self.config.kv_stall_limit:
            self.clock.advance(max(self._last_iteration_s, 1e-3))
            return
        self._kv_stalls = 0
        live = self._view.live_prefix(self._n_active)
        waiting = live[~self._prefilled_f[live]]
        pool = waiting if waiting.size else live
        if self._last_ctx is not None:
            self.policy.refresh_credits_soa(pool, self._view, self._last_ctx)
        # min by (priority, credit, -arrival, -rid): lexsort keys are
        # listed minor-to-major.
        order = np.lexsort((
            -self._rid[pool], -self._arrival[pool],
            self._credit[pool], self._priority[pool],
        ))
        victim = pool[order[0]:order[0] + 1]
        self._abort_many(victim, _ABORT_KV)
        self.metrics.shed_events += 1

    # -- mode / adapters ------------------------------------------------------

    def _estimate_switch(self) -> float:
        if self._switch_estimate is None:
            any_spec = self.adapters.spec(self.adapters.resident_ids[0])
            self._switch_estimate = self.switcher.merge_seconds(any_spec)
        return self._switch_estimate

    def _apply_mode(self, mode: InferenceMode, merged: int) -> float:
        if mode == self.current_mode and merged == self._merged_idx:
            return 0.0
        table = self._adapter_table
        from_spec = (
            self.adapters.spec(table[self._merged_idx])
            if self._merged_idx >= 0 else None
        )
        to_spec = self.adapters.spec(table[merged]) if merged >= 0 else None
        cost = self.switcher.switch_seconds(
            self.current_mode, mode, from_spec, to_spec
        )
        if cost:
            self.clock.advance(cost)
            self.metrics.num_mode_switches += 1
            self.metrics.switch_time_total += cost
        self.current_mode = mode
        self._merged_idx = merged
        return cost

    def _trim_to_adapter_slots(self, batch: np.ndarray,
                               merged: int) -> np.ndarray:
        if len(self._adapter_table) <= self.adapters.gpu_slots:
            # Every adapter fits resident at once: the allowed set can
            # never exceed the slot budget, so nothing is ever trimmed.
            return batch
        allowed = {merged} if merged >= 0 else set()
        budget = self.adapters.gpu_slots
        keep = np.ones(batch.size, dtype=bool)
        for j, a in enumerate(self._adapter[batch].tolist()):
            if a not in allowed:
                if len(allowed) >= budget:
                    keep[j] = False
                    continue
                allowed.add(a)
        return batch if keep.all() else batch[keep]

    def _batch_adapters(self, batch: np.ndarray, merged: int) -> List[str]:
        table = self._adapter_table
        aa = self._adapter[batch]
        a0 = int(aa[0])
        if aa.size == 1 or bool((aa == a0).all()):
            if merged >= 0 and merged != a0:
                return [table[a0], table[merged]]
            return [table[a0]]
        ids = aa.tolist()
        if merged >= 0:
            ids.append(merged)
        return [table[a] for a in dict.fromkeys(ids)]

    # -- execution ------------------------------------------------------------

    def _execute(self, batch: np.ndarray, mode: InferenceMode,
                 merged: int, ctx_b: np.ndarray,
                 prefilled_b) -> float:
        """``prefilled_b`` is the batch's prefilled mask, or ``None``
        when every member is already prefilled (decode-only)."""
        # atok accumulates exact int token sums keyed by adapter
        # *index* (int hashing beats interned-string hashing on this
        # hot path); the string-keyed mapping the cost tower wants is
        # only built on an extra-memo miss, in the identical insertion
        # order (prefills first, then decodes — batch order).
        atok: Dict[int, int] = {}
        launches: tuple = ()
        effective: List[int] = []
        if prefilled_b is None:
            prefills = batch[:0]
            decodes = batch
            ctxd = ctx_b
        else:
            pre_mask = ~prefilled_b
            prefills = batch[pre_mask]
            decodes = batch[prefilled_b]
            ctxd = ctx_b[prefilled_b]
            effective = np.maximum(
                ctx_b[pre_mask] - self._reused[prefills], 1
            ).tolist()
            images = self._num_images[prefills]
            if self.config.batch_prefills:
                launches = ((tuple(effective), int(images.sum())),)
            else:
                launches = tuple(
                    ((tok,), int(im))
                    for tok, im in zip(effective, images.tolist())
                )
            ap = self._adapter[prefills]
            a0 = int(ap[0])
            if ap.size == 1 or bool((ap == a0).all()):
                atok[a0] = (
                    effective[0] if len(effective) == 1 else sum(effective)
                )
            else:
                for a, tok in zip(ap.tolist(), effective):
                    atok[a] = atok.get(a, 0) + tok

        num_decodes = decodes.size
        total_context = 0
        lm = False
        head_classes = 0
        if num_decodes:
            total_context = int(ctxd.sum())
            heads = self._use_task_head[decodes]
            nh = int(heads.sum())
            lm = nh < num_decodes
            ad = self._adapter[decodes]
            a0 = int(ad[0])
            same = num_decodes == 1 or bool((ad == a0).all())
            if nh:
                if same:
                    head_classes = int(self._spec_classes[a0])
                elif nh == num_decodes:
                    head_classes = int(self._spec_classes[ad].max())
                else:
                    head_classes = int(self._spec_classes[ad[heads]].max())
            if same:
                atok[a0] = atok.get(a0, 0) + num_decodes
            else:
                for a in ad.tolist():
                    atok[a] = atok.get(a, 0) + 1

        if self.cost_cache is not None:
            # The SoA path bypasses the BatchSignature table: at array-
            # pool scale full signatures almost never repeat (the decode
            # context total shifts every iteration; measured hit rate
            # 0.2%), so the signature build + hash is pure overhead.
            # The component memos below are keyed on the same sufficient
            # statistics :class:`IterationCostCache` uses and accumulate
            # in the same order (prefill launches, then decode, extra
            # last), so costs stay bit-identical.  Hit/miss counters
            # track the expensive component — the LoRA extra-mean tower.
            base = 0.0
            if launches:
                pf = self._prefill_cache
                for key in launches:
                    t = pf.get(key)
                    if t is None:
                        t = self.iter_costs.prefill_seconds(key[0], key[1])
                        if len(pf) >= _MEMO_MAX:
                            pf.clear()
                        pf[key] = t
                    base += t
            if num_decodes:
                dkey = (num_decodes, total_context, lm, head_classes)
                dc = self._decode_cache
                t = dc.get(dkey)
                if t is None:
                    t = self.iter_costs.decode_seconds_stats(
                        num_decodes, total_context, lm_head=lm,
                        task_head_classes=head_classes,
                    )
                    if len(dc) >= _MEMO_MAX:
                        dc.clear()
                    dc[dkey] = t
                base += t
            if not atok:
                return base
            ekey = (mode, merged, tuple(atok.items()))
            ec = self._extra_cache
            mean = ec.get(ekey)
            if mean is None:
                self.metrics.cost_cache_misses += 1
                table = self._adapter_table
                merged_id = table[merged] if merged >= 0 else None
                adapter_tokens = {table[a]: t for a, t in atok.items()}
                ranks = {
                    table[a]: int(self._spec_rank[a]) for a in atok
                }
                if merged_id is not None and merged not in atok:
                    ranks[merged_id] = int(self._spec_rank[merged])
                mean = self.mode_exec.mean_extra_seconds(
                    mode, adapter_tokens, ranks, merged_adapter=merged_id
                )
                if len(ec) >= _MEMO_MAX:
                    ec.clear()
                ec[ekey] = mean
            else:
                self.metrics.cost_cache_hits += 1
            extra = self.mode_exec.extra_seconds_from_mean(mean, self._rng)
            self.metrics.lora_extra_time_total += extra
            return base + extra
        table = self._adapter_table
        return self._execute_uncached(
            mode, table[merged] if merged >= 0 else None, prefills,
            effective, ctxd if num_decodes else None, lm, head_classes,
            {table[a]: t for a, t in atok.items()},
        )

    def _execute_uncached(self, mode, merged_id, prefills, effective,
                          ctxd, lm, head_classes,
                          adapter_tokens) -> float:
        """Reference path (cache off): same cost-model calls, same
        float-accumulation order as the object core's uncached twin."""
        t = 0.0
        if prefills.size:
            images = self._num_images[prefills]
            if self.config.batch_prefills:
                t += self.iter_costs.prefill_seconds(
                    effective, int(images.sum())
                )
            else:
                for tok, im in zip(effective, images.tolist()):
                    t += self.iter_costs.prefill_seconds([tok], im)
        if ctxd is not None:
            t += self.iter_costs.decode_seconds(
                ctxd.tolist(), lm_head=lm, task_head_classes=head_classes
            )
        if adapter_tokens:
            idx = self._adapter_index
            ranks = {
                a: int(self._spec_rank[idx[a]]) for a in adapter_tokens
            }
            if merged_id is not None:
                ranks.setdefault(merged_id, int(
                    self._spec_rank[idx[merged_id]]
                ))
            extra = self.mode_exec.extra_seconds(
                mode, adapter_tokens, ranks,
                merged_adapter=merged_id,
                rng=self._rng,
            )
            t += extra
            self.metrics.lora_extra_time_total += extra
        return t

    # -- finalize (masked pass) -----------------------------------------------

    def _finalize(self, batch: np.ndarray, gen_b: np.ndarray,
                  ctx_b: np.ndarray, prefilled_b, nb: int) -> None:
        """``prefilled_b`` follows the step convention (``None`` = all
        prefilled); ``nb`` is the batch's block-boundary count, gating
        the growth pass (growth needs ``ctx == cap`` and capacities are
        whole blocks, so ``nb == 0`` means nothing can grow)."""
        now = self.clock.now
        if prefilled_b is not None:
            newly = batch[~prefilled_b]
            self._prefilled_f[newly] = True
            self._status[newly] = _RUNNING
            self._prefilled_set.update(newly.tolist())
            # A request's first token lands in its prefill iteration, so
            # only newly-prefilled members can still lack one (a
            # preempted request re-prefills with its stamp intact).
            ft = newly[np.isnan(self._first_token[newly])]
            if ft.size:
                self._first_token[ft] = now
        # One decode token per batch member: a sequence sitting exactly
        # at its capacity grows by one block.
        grow = batch[ctx_b == self._cap_tok[batch]] if nb else batch[:0]
        if grow.size:
            if grow.size > self._free_blocks:
                raise BlockAllocationError(
                    f"need {grow.size} blocks, only "
                    f"{self._free_blocks} free"
                )
            self._cap_tok[grow] += self._block_size
            self._own_excl[grow] += 1
            self._free_blocks -= grow.size
        newgen = gen_b + 1
        self._gen[batch] = newgen
        finished = batch[newgen >= self._out[batch]]
        if not finished.size:
            return
        self._finish[finished] = now
        self._status[finished] = _FINISHED
        for i in finished.tolist():
            self._free_kv(i)
            self._prefilled_set.discard(i)
        self._reused[finished] = 0
        self._active_f[finished] = False
        if finished.size == 1:
            self._counts[self._adapter[finished[0]]] -= 1
        else:
            np.add.at(self._counts, self._adapter[finished], -1)
        self._n_active -= finished.size
        self._ndead += finished.size
        end = self._fin_n + finished.size
        self._fin_buf[self._fin_n:end] = finished
        self._fin_n = end

    # -- metrics materialization ----------------------------------------------

    def sync_metrics(self) -> MetricsCollector:
        """Materialize terminal-event buffers into metric records.

        Idempotent: each call appends only events recorded since the
        last one, preserving completion order (so the summary's float
        sums accumulate in the same order as the object core's).  With
        ``materialize_records=False`` records are skipped — use
        :meth:`array_summary` at that scale.
        """
        if not self._ingested or not self.materialize_records:
            return self.metrics
        table = self._adapter_table
        tasks = self._task_table
        for i in self._fin_buf[self._mat_fin:self._fin_n].tolist():
            slo = self._slo[i]
            self.metrics.records.append(RequestRecord(
                request_id=int(self._rid[i]),
                adapter_id=table[self._adapter[i]],
                task_name=tasks[self._task[i]],
                arrival_time=float(self._arrival[i]),
                first_token_time=float(self._first_token[i]),
                finish_time=float(self._finish[i]),
                input_tokens=int(self._inp[i]),
                output_tokens=int(self._out[i]),
                slo_s=None if np.isnan(slo) else float(slo),
            ))
        self._mat_fin = self._fin_n
        for i in self._abort_buf[self._mat_abort:self._abort_n].tolist():
            slo = self._slo[i]
            self.metrics.aborts.append(AbortRecord(
                request_id=int(self._rid[i]),
                adapter_id=table[self._adapter[i]],
                task_name=tasks[self._task[i]],
                arrival_time=float(self._arrival[i]),
                abort_time=float(self._abort_t[i]),
                reason=_ABORT_ENUM[int(self._abort_reason[i])].value,
                input_tokens=int(self._inp[i]),
                output_tokens=int(self._out[i]),
                generated=int(self._gen[i]),
                slo_s=None if np.isnan(slo) else float(slo),
            ))
        self._mat_abort = self._abort_n
        return self.metrics

    def array_summary(self) -> Dict[str, float]:
        """Pure-array headline numbers for runs too large to
        materialize per-request records (e.g. the 10M-request bench).

        Float sums here use numpy's pairwise accumulation, so values
        can differ from :meth:`MetricsCollector.summary` in the last
        ulps; counters are exact.
        """
        self._ingest()
        fin = self._fin_buf[:self._fin_n]
        ab = self._abort_buf[:self._abort_n]
        out: Dict[str, float] = {
            "completed": float(fin.size),
            "aborted": float(ab.size),
            "iterations": float(self.metrics.iterations),
            "mode_switches": float(self.metrics.num_mode_switches),
            "preemptions": float(self.metrics.num_preemptions),
            "switch_time_total_s": self.metrics.switch_time_total,
        }
        if fin.size:
            latency = self._finish[fin] - self._arrival[fin]
            tokens = (self._inp[fin] + self._out[fin]).astype(np.float64)
            out["avg_token_latency_ms"] = float(
                latency.sum() / tokens.sum()
            ) * 1e3
            events_start = float(min(
                self._arrival[fin].min(),
                self._arrival[ab].min() if ab.size else np.inf,
            ))
            events_end = float(max(
                self._finish[fin].max(),
                self._abort_t[ab].max() if ab.size else -np.inf,
            ))
            duration = max(events_end - events_start, 1e-9)
            out["goodput_rps"] = fin.size / duration
            start = float(self._arrival[fin].min())
            end = float(self._finish[fin].max())
            out["throughput_rps"] = fin.size / max(end - start, 1e-9)
            out["mean_latency_s"] = float(latency.mean())
            out["p50_latency_s"] = float(np.percentile(latency, 50))
            out["p99_latency_s"] = float(np.percentile(latency, 99))
            out["mean_ttft_s"] = float(
                (self._first_token[fin] - self._arrival[fin]).mean()
            )
        return out

    # -- introspection (tests) ------------------------------------------------

    @property
    def kv_free_blocks(self) -> int:
        return self._free_blocks

    @property
    def kv_num_blocks(self) -> int:
        return self._num_blocks

    def request_status(self, request_id: int) -> RequestStatus:
        """Status of one request by id (test helper; O(n) lookup)."""
        self._ingest()
        pos = np.flatnonzero(self._rid == request_id)
        if not pos.size:
            raise KeyError(f"unknown request {request_id}")
        return _STATUS_ENUM[int(self._status[pos[0]])]

    def check_kv_invariants(self) -> None:
        """Assert block-count conservation (property tests)."""
        if not self._ingested:
            return
        held = int(self._own_excl[self._has_kv].sum())
        held += sum(e[0] for e in self._entries.values())
        if held + self._free_blocks != self._num_blocks:
            raise AssertionError(
                f"block leak: {held} held + {self._free_blocks} free "
                f"!= {self._num_blocks}"
            )
