"""Iteration-level discrete-event serving engine.

One :class:`ServingEngine` models one GPU running one LMM with a set of
LoRA adapters.  Like vLLM/LightLLM (§5), scheduling is *iteration-level*:
every iteration the policy re-selects a batch from all live requests
(continuous batching), new requests prefill as they join, and each
running request decodes one token per iteration.

The engine advances a simulated clock by cost-model outputs:

* base-model prefill/decode time (:class:`IterationCostModel`);
* the LoRA operator's extra time for the chosen mode (:class:`ModeExecutor`);
* mode-switch costs (:class:`ModeSwitcher`);
* adapter swap-in stalls (:class:`AdapterManager`);
* KV allocation (with prefix reuse) gates admission.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.gpu import GPUSpec
from repro.kernels.base import LoRAOperator
from repro.models.config import ModelConfig
from repro.models.costs import IterationCostModel
from repro.runtime.adapters import AdapterManager
from repro.runtime.clock import SimClock
from repro.runtime.costcache import BatchSignature, IterationCostCache
from repro.runtime.failure_detection import Completion
from repro.runtime.faults import FaultInjector
from repro.runtime.hedging import (
    RetryBudget,
    TimeoutPolicy,
    capped_exponential_backoff,
)
from repro.runtime.kv_cache import PagedKVCache
from repro.runtime.memory import UnifiedMemoryManager
from repro.runtime.metrics import AbortRecord, MetricsCollector, RequestRecord
from repro.runtime.modes import InferenceMode, ModeExecutor
from repro.runtime.overload import (
    AdapterBreaker,
    AdmissionConfig,
    AdmissionController,
    BreakerConfig,
    BreakerState,
    BrownoutConfig,
    BrownoutController,
    ReplicaHealth,
)
from repro.runtime.request import AbortReason, Request, RequestStatus
from repro.runtime.scheduler import (
    SchedulerDecision,
    SchedulingContext,
    SchedulingPolicy,
    pick_shed_victim,
)
from repro.runtime.switcher import ModeSwitcher


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs."""

    max_batch_size: int = 32
    num_projections: int = 2
    enable_prefix_reuse: bool = True
    jitter_seed: Optional[int] = 0
    prefix_ttl_s: float = 30.0
    #: Batch prefills of co-arriving requests into one iteration (vLLM
    #: style).  Punica's decode-centric runtime prefills per request.
    batch_prefills: bool = True
    #: Megatron-style tensor parallelism across this many GPUs (the
    #: engine then models one TP *group*, not one GPU).
    tensor_parallel: int = 1
    #: Abort a request once it has been in the system longer than
    #: ``deadline_slo_factor * slo_s`` (requests without an SLO are only
    #: bounded by their own ``deadline_s``).  ``None`` disables.
    deadline_slo_factor: Optional[float] = None
    #: Consecutive KV-starved iterations tolerated before shedding the
    #: lowest-credit waiting request (graceful degradation instead of
    #: the former hard ``RuntimeError``).
    kv_stall_limit: int = 8
    #: Capped exponential backoff for failed adapter swap-ins.
    swap_retry_base_s: float = 0.02
    swap_retry_cap_s: float = 1.0
    #: Swap failures tolerated per adapter before it is quarantined and
    #: its requests aborted (``AbortReason.ADAPTER_UNAVAILABLE``).
    max_swap_retries: int = 5
    #: Memoize iteration costs per :class:`BatchSignature` (bit-identical
    #: results, large speedup).  ``False`` re-derives every iteration
    #: through the full cost-model tower (the reference path).
    enable_cost_cache: bool = True
    # -- overload protection (all default off; see runtime/overload.py) ----
    #: Admission control at the queue door: token-bucket rate limiting,
    #: queue-depth / KV-headroom watermarks, SLO-aware early rejection.
    #: ``None`` admits everything (legacy behavior).
    admission: Optional[AdmissionConfig] = None
    #: Brownout degraded-service tiers under sustained pressure.
    #: ``None`` never degrades (legacy behavior).
    brownout: Optional[BrownoutConfig] = None
    #: Circuit-breaker recovery for failing adapters.  ``None`` keeps
    #: the legacy permanent quarantine (a breaker that opens after
    #: ``max_swap_retries`` failures and never half-opens).
    breaker: Optional[BreakerConfig] = None
    #: Unified deadline/timeout policy (see :mod:`repro.runtime.hedging`).
    #: When set, its non-``None`` fields override the ad-hoc timing
    #: constants above (swap retry backoff; breaker cooldown when no
    #: explicit ``breaker`` config is given).  ``None`` keeps every
    #: legacy knob authoritative (bit-identical).
    timeout_policy: Optional[TimeoutPolicy] = None

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.tensor_parallel < 1:
            raise ValueError("tensor_parallel must be >= 1")
        if self.deadline_slo_factor is not None and self.deadline_slo_factor <= 0:
            raise ValueError("deadline_slo_factor must be positive")
        if self.kv_stall_limit < 1:
            raise ValueError("kv_stall_limit must be >= 1")
        if self.swap_retry_base_s <= 0 or self.swap_retry_cap_s <= 0:
            raise ValueError("swap retry backoff times must be positive")
        if self.max_swap_retries < 1:
            raise ValueError("max_swap_retries must be >= 1")


class PhaseExecutor:
    """One serving phase (prefill or decode) behind a shared protocol.

    The engine's iteration loop is composed from two of these: each
    phase carves its share out of the mixed continuous batch
    (:meth:`select`), contributes its part of the memoization
    :class:`BatchSignature` (:meth:`signature_fields`), prices itself
    through the analytical cost tower (:meth:`cost_seconds` — the
    uncached reference path), adds its per-adapter token contributions
    to the LoRA-operator cost input (:meth:`accumulate_tokens`), and
    applies its post-iteration request transition (:meth:`advance`).
    Disaggregated serving (:mod:`repro.runtime.disagg`) reuses the same
    executors, with a pool role restricting which phase an engine runs
    to completion.

    Bit-identity contract: the composed executors evaluate every float
    in the same order, and draw from the rng stream at the same points,
    as the pre-refactor monolithic loop — the golden determinism
    digests and the phase-executor equivalence property cover this.
    """

    phase = "?"

    def __init__(self, engine: "ServingEngine"):
        self.engine = engine

    def select(self, batch: Sequence[Request]) -> List[Request]:
        """This phase's share of a mixed continuous batch."""
        raise NotImplementedError

    def plan(self, requests: Sequence[Request]):
        """Phase-specific precomputation shared by the hooks below."""
        return None

    def signature_fields(self, requests: Sequence[Request], plan):
        """This phase's fields of the batch's :class:`BatchSignature`."""
        raise NotImplementedError

    def cost_seconds(self, requests: Sequence[Request], plan) -> float:
        """Base-model cost of this phase (uncached reference path)."""
        raise NotImplementedError

    def accumulate_tokens(self, requests: Sequence[Request], plan,
                          adapter_tokens: Dict[str, int]) -> None:
        """Add this phase's per-adapter token contributions in place."""
        raise NotImplementedError

    def advance(self, request: Request) -> None:
        """Post-iteration transition: every batch member appends one
        token (a prefill's first, a decode's next)."""
        engine = self.engine
        engine.kv.append_token(request.request_id)
        request.generated += 1
        if request.first_token_time is None:
            request.first_token_time = engine.clock.now


class PrefillExecutor(PhaseExecutor):
    """Prefill phase: not-yet-prefilled requests pay prompt compute."""

    phase = "prefill"

    def select(self, batch: Sequence[Request]) -> List[Request]:
        return [r for r in batch if not r.prefilled]

    def plan(self, requests: Sequence[Request]) -> List[int]:
        # Effective prompt tokens after prefix reuse (floor 1: a fully
        # reused prompt still pays one positional launch).
        reused = self.engine._reused_tokens
        return [
            max(r.context_len - reused.get(r.request_id, 0), 1)
            for r in requests
        ]

    def signature_fields(self, requests, plan):
        if not requests:
            return {"prefill_launches": ()}
        if self.engine.config.batch_prefills:
            num_images = sum(r.num_images for r in requests)
            return {"prefill_launches": ((tuple(plan), num_images),)}
        return {"prefill_launches": tuple(
            ((tok,), r.num_images) for r, tok in zip(requests, plan)
        )}

    def cost_seconds(self, requests, plan) -> float:
        if not requests:
            return 0.0
        engine = self.engine
        t = 0.0
        num_images = sum(r.num_images for r in requests)
        if engine.config.batch_prefills:
            t += engine.iter_costs.prefill_seconds(plan, num_images)
        else:
            # Per-request prefill: each pays its own iteration.
            for r, tok in zip(requests, plan):
                t += engine.iter_costs.prefill_seconds([tok], r.num_images)
        return t

    def accumulate_tokens(self, requests, plan, adapter_tokens) -> None:
        for r, tok in zip(requests, plan):
            adapter_tokens[r.adapter_id] = (
                adapter_tokens.get(r.adapter_id, 0) + tok
            )

    def advance(self, request: Request) -> None:
        request.prefilled = True
        request.status = RequestStatus.RUNNING
        super().advance(request)


class DecodeExecutor(PhaseExecutor):
    """Decode phase: prefilled requests each decode one token."""

    phase = "decode"

    def select(self, batch: Sequence[Request]) -> List[Request]:
        return [r for r in batch if r.prefilled]

    def signature_fields(self, requests, plan):
        num_decodes = 0
        total_context = 0
        lm = False
        head_classes = 0
        if requests:
            num_decodes = len(requests)
            for r in requests:
                total_context += r.context_len
                if r.use_task_head:
                    classes = self.engine._task_classes_of(r.adapter_id)
                    if classes > head_classes:
                        head_classes = classes
                else:
                    lm = True
        return {
            "num_decodes": num_decodes,
            "decode_context_total": total_context,
            "lm_head": lm,
            "task_head_classes": head_classes,
        }

    def cost_seconds(self, requests, plan) -> float:
        if not requests:
            return 0.0
        engine = self.engine
        contexts = [r.context_len for r in requests]
        lm = any(not r.use_task_head for r in requests)
        head_classes = max(
            (engine.adapters.spec(r.adapter_id).task_head_classes or 101
             for r in requests if r.use_task_head),
            default=0,
        )
        return engine.iter_costs.decode_seconds(
            contexts, lm_head=lm, task_head_classes=head_classes
        )

    def accumulate_tokens(self, requests, plan, adapter_tokens) -> None:
        for r in requests:
            adapter_tokens[r.adapter_id] = (
                adapter_tokens.get(r.adapter_id, 0) + 1
            )


class ServingEngine:
    """One GPU's serving loop over a simulated clock."""

    def __init__(
        self,
        model: ModelConfig,
        gpu: GPUSpec,
        operator: LoRAOperator,
        policy: SchedulingPolicy,
        switcher: ModeSwitcher,
        adapter_manager: AdapterManager,
        memory: Optional[UnifiedMemoryManager] = None,
        config: EngineConfig = EngineConfig(),
        fault_injector: Optional[FaultInjector] = None,
        engine_id: str = "engine-0",
    ):
        self.model = model
        self.gpu = gpu
        self.operator = operator
        self.policy = policy
        self.switcher = switcher
        self.adapters = adapter_manager
        self.config = config
        self.memory = memory or UnifiedMemoryManager(
            model, gpu, adapter_slots=adapter_manager.gpu_slots,
            tp_degree=config.tensor_parallel,
        )
        self.kv: PagedKVCache = self.memory.build_kv_cache()
        self.iter_costs = IterationCostModel(
            model, gpu, operator.cost_model,
            tp_degree=config.tensor_parallel,
        )
        self.mode_exec = ModeExecutor(
            model, operator, num_projections=config.num_projections
        )
        self.clock = SimClock()
        self.metrics = MetricsCollector()
        self._rng = (
            np.random.default_rng(config.jitter_seed)
            if config.jitter_seed is not None else None
        )
        #: Future arrivals as a min-heap of (arrival_time, request_id, req).
        self._pending: List[Tuple[float, int, Request]] = []
        #: Arrived, not finished; dict preserves admission order and
        #: makes membership updates O(1) (the seed's list paid an O(n)
        #: rebuild per abort/finish).
        self._active: Dict[int, Request] = {}
        self._reused_tokens: Dict[int, int] = {}
        # Incrementally maintained view of _active for the scheduler:
        # adapter -> live request count (zero-count keys are dropped so
        # the mapping always equals a fresh Counter over _active).
        self._adapter_counts: Dict[str, int] = {}
        # Admission-order tracking: while every admit key (arrival, id)
        # is non-decreasing, _active iteration order IS FCFS order and
        # policies can skip their sorts.  Cluster failover requeues can
        # break monotonicity (a requeued arrival is stamped by the dead
        # engine's clock), which flips this flag off for good.
        self._active_in_order = True
        self._last_admit_key: Tuple[float, int] = (float("-inf"), -1)
        # Earliest-deadline heap of (arrival + deadline, request_id);
        # entries for departed requests are dropped lazily on pop.
        self._deadline_heap: List[Tuple[float, int]] = []
        self.current_mode = InferenceMode.UNMERGED
        self.current_merged: Optional[str] = None
        self._last_iteration_s = 0.03
        self._switch_estimate: Optional[float] = None
        self._last_ctx: Optional[SchedulingContext] = None
        #: Optional per-iteration tracer (attach_tracer()).
        self.tracer = None
        # -- resilience state (fault injection / graceful degradation) -----
        self.faults = fault_injector
        self.engine_id = engine_id
        #: Failure-domain placement (``HOST_FAIL`` kills every engine on
        #: a host).  Assigned by the cluster; None = no correlated domain.
        self.host: Optional[str] = None
        self.failed = False
        self.failed_at: Optional[float] = None
        # -- lease fencing (runtime/failure_detection.py) ------------------
        #: Bumped by the cluster when it seizes this replica's lease
        #: (confirmed dead); completions stamped with an older epoch are
        #: fenced on delivery.
        self.lease_epoch = 0
        #: With fencing on, terminal metric recording is deferred: the
        #: engine appends a :class:`Completion` here and the cluster
        #: drains it at epoch boundaries (withheld while partitioned).
        self._fencing = False
        self.completion_outbox: List[Completion] = []
        #: Quiesced engines refuse new work (cluster drain; see
        #: :meth:`quiesce`) but keep running what they already hold.
        self.quiesced = False
        self._kv_stalls = 0
        self._swap_backoff_until: Dict[str, float] = {}
        # Latest backoff expiry ever armed: once the clock passes it,
        # _schedulable skips the per-request backoff filter entirely.
        self._backoff_horizon = float("-inf")
        # -- overload protection (runtime/overload.py) ---------------------
        # Per-adapter circuit breakers, created lazily on first swap
        # failure.  Without an explicit BreakerConfig an opened breaker
        # never half-opens: exactly the legacy permanent quarantine
        # after max_swap_retries consecutive failures — unless a
        # TimeoutPolicy consolidates a breaker cooldown in.
        policy_cooldown = (
            config.timeout_policy.breaker_cooldown_s
            if config.timeout_policy is not None else None
        )
        self._breaker_config = config.breaker or BreakerConfig(
            failure_threshold=config.max_swap_retries,
            cooldown_s=policy_cooldown,
        )
        #: Shared retry budget (attached by the cluster; None = ungated).
        #: Swap retries draw from the same bucket as hedges and failover
        #: requeues, so a fleet-wide swap outage cannot retry-storm.
        self.retry_budget: Optional[RetryBudget] = None
        self._breakers: Dict[str, AdapterBreaker] = {}
        self._admission = (
            AdmissionController(config.admission)
            if config.admission is not None else None
        )
        self._brownout = (
            BrownoutController(config.brownout)
            if config.brownout is not None else None
        )
        #: EWMA of iteration wall time — the cluster's straggler signal.
        self.iter_time_ewma: Optional[float] = None
        # -- memoized cost layer -------------------------------------------
        self.cost_cache: Optional[IterationCostCache] = (
            IterationCostCache(self.iter_costs, self.mode_exec,
                               metrics=self.metrics)
            if config.enable_cost_cache else None
        )
        self._rank_cache: Dict[str, int] = {}
        self._task_class_cache: Dict[str, int] = {}
        # -- composable phase executors ------------------------------------
        self.prefill_exec = PrefillExecutor(self)
        self.decode_exec = DecodeExecutor(self)
        self.phase_executors: Tuple[PhaseExecutor, ...] = (
            self.prefill_exec, self.decode_exec
        )
        # -- disaggregated serving hooks (runtime/disagg.py) ---------------
        #: Prefill-pool engines park finished prefills here instead of
        #: decoding them; the cluster's KV-transfer pass drains it,
        #: prices the move over the wire, and delivers the request to a
        #: decode replica.  Always empty in colocated serving.
        self.handoff_after_prefill = False
        self.handoff_outbox: List[Request] = []
        #: Decode-pool engines allocate local KV for transferred-in
        #: prefilled requests (their sequence lives on the prefill
        #: replica no more).  Off everywhere else so the colocated
        #: admission hot path is untouched.
        self.accepts_kv_transfers = False

    # -- submission ---------------------------------------------------------------

    def submit(self, requests: Sequence[Request],
               not_before: Optional[float] = None) -> None:
        """Queue requests for their arrival times (may be in the future).

        ``not_before`` floors the admission time without touching
        ``arrival_time`` (which anchors TTFT, latency, and deadline
        accounting): the disaggregated transfer pass delivers a
        handed-off request with ``not_before = now + wire_seconds`` so
        the KV move is charged on the wire while the request's
        end-to-end clock keeps running from its original arrival.
        """
        if self.quiesced and requests:
            raise RuntimeError(
                f"engine {self.engine_id} is quiesced (draining); "
                f"dispatching new work to it is a cluster bug"
            )
        for r in requests:
            self.adapters.spec(r.adapter_id)  # validate adapter exists
            if self._fencing:
                r.lease = (self.engine_id, self.lease_epoch)
            due = (r.arrival_time if not_before is None
                   else max(r.arrival_time, not_before))
            heapq.heappush(
                self._pending, (due, r.request_id, r)
            )

    def enable_fencing(self) -> None:
        """Switch terminal recording to the fenced completion outbox.

        The cluster enables this on every replica when a failure
        detector drives the run: dispatch stamps each request with this
        engine's ``(engine_id, lease_epoch)`` token, and terminal events
        go to :attr:`completion_outbox` instead of directly into
        :attr:`metrics` — the cluster accepts or fences them on
        delivery.  Never enabled for standalone engines (bit-identical
        legacy path).
        """
        self._fencing = True

    @property
    def num_live(self) -> int:
        # Finished prefills awaiting their KV transfer still belong to
        # this engine until the cluster's transfer pass collects them.
        return (len(self._pending) + len(self._active)
                + len(self.handoff_outbox))

    # -- drain lifecycle (cluster scale-down) --------------------------------------

    def quiesce(self) -> None:
        """Stop accepting new work; in-flight requests keep running.

        The cluster's scale-down path quiesces a replica before draining
        it: dispatch routes around it, :meth:`submit` rejects stragglers
        (catching dispatch bugs loudly), and once :attr:`is_drained` the
        replica can be retired without losing a request.
        """
        self.quiesced = True

    @property
    def is_drained(self) -> bool:
        """True once a quiesced engine holds no live work."""
        return self.quiesced and self.num_live == 0

    @property
    def pending_requests(self) -> List[Request]:
        """Queued (not yet arrived) requests, in no particular order."""
        return [entry[2] for entry in self._pending]

    def attach_tracer(self, tracer=None):
        """Attach (or create) an :class:`EngineTracer`; returns it."""
        from repro.runtime.tracing import EngineTracer

        self.tracer = tracer or EngineTracer()
        return self.tracer

    # -- main loop --------------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_iterations: int = 2_000_000) -> MetricsCollector:
        """Run until all submitted work completes (or ``until`` sim-seconds).

        A fault-injected engine failure stops the loop early; the
        cluster layer can then :meth:`drain_orphans` onto survivors.
        """
        for _ in range(max_iterations):
            if self.failed:
                break
            if until is not None and self.clock.now >= until:
                break
            if not self._pending and not self._active:
                break
            self.step()
        else:
            raise RuntimeError(
                f"engine exceeded {max_iterations} iterations "
                f"(sim time {self.clock.now:.1f}s)"
            )
        return self.metrics

    def step(self) -> None:
        """One engine iteration (or a jump to the next arrival)."""
        if self.failed:
            return
        if (self.faults is not None
                and self.faults.engine_failed(self.engine_id, self.clock.now,
                                              host=self.host)):
            self._fail()
            return
        self._admit_arrivals()
        self._expire_deadlines()
        self._apply_kv_pressure()
        if not self._active:
            if self._pending:
                self.clock.advance_to(self._pending[0][0])
                self._admit_arrivals()
                self._expire_deadlines()
            else:
                return
        if not self._active:
            return
        if self._brownout is not None:
            self._apply_brownout()
            if not self._active:
                return

        schedulable = self._schedulable()
        if not schedulable:
            self._advance_past_backoff()
            return
        ctx = SchedulingContext(
            now=self.clock.now,
            current_mode=self.current_mode,
            current_merged=self.current_merged,
            max_batch_size=self.config.max_batch_size,
            est_iteration_seconds=self._last_iteration_s,
            est_switch_seconds=self._estimate_switch(),
            candidates_fcfs=self._active_in_order,
            adapter_counts=(
                self._adapter_counts
                if len(schedulable) == len(self._active) else None
            ),
        )
        self._last_ctx = ctx
        decision = self.policy.schedule(schedulable, ctx)
        if decision is None:
            return
        if (self._brownout is not None and self._brownout.force_merged
                and decision.mode is not InferenceMode.MERGED):
            forced = self._force_merged_decision(schedulable)
            if forced is not None:
                decision = forced
                self.metrics.brownout_forced_merges += 1

        mode, merged = decision.mode, decision.merged_adapter
        switch_s = self._apply_mode(mode, merged)
        batch = self._trim_to_adapter_slots(decision.batch, merged)
        batch = self._admit_to_kv(batch)
        if not batch:
            # KV exhausted: let running requests drain by retrying the
            # already-admitted subset next iteration after evicting
            # stale prefixes.
            self.kv.evict_stale_prefixes(
                self.clock.now - self.config.prefix_ttl_s
            )
            batch = [r for r in decision.batch if r.prefilled]
            if not batch:
                # Nothing admitted and nothing running: degrade instead
                # of crashing — flush caches, stall briefly for transient
                # pressure, then shed the lowest-credit waiting request.
                self._handle_kv_starvation(decision.batch)
                return

        batch = self._ensure_decode_capacity(batch)
        if not batch:
            # Not even one decode step fits: same degradation path.
            self._handle_kv_starvation(decision.batch)
            return
        self._kv_stalls = 0

        needed = self._batch_adapters(batch, decision)
        uniq = list(dict.fromkeys(needed))
        hits = sum(1 for a in uniq if self.adapters.is_resident(a))
        stall, failed_swaps = self.adapters.try_ensure_resident(
            needed, self.clock.now, injector=self.faults
        )
        self.metrics.adapter_cache_hits += hits
        misses = len(uniq) - hits
        if misses:
            self.metrics.adapter_cache_misses += misses
            self.metrics.swap_ins += misses - len(failed_swaps)
            self.metrics.swap_in_seconds += stall
        if stall:
            self.clock.advance(stall)
        for adapter_id in needed:
            if adapter_id not in failed_swaps:
                self._swap_backoff_until.pop(adapter_id, None)
                if self._breakers:
                    self._record_swap_success(adapter_id)
        if failed_swaps:
            batch, mode, merged = self._handle_swap_failures(
                batch, failed_swaps, mode, merged
            )
            if not batch:
                return

        preempt_before = self.metrics.num_preemptions
        start = self.clock.now
        iteration_s = self._execute(batch, mode, merged)
        if self.faults is not None:
            iteration_s *= max(
                1.0, self.faults.engine_slowdown(self.engine_id, start)
            )
        self.clock.advance(iteration_s)
        self._last_iteration_s = iteration_s
        if self.iter_time_ewma is None:
            self.iter_time_ewma = iteration_s
        else:
            self.iter_time_ewma += 0.2 * (iteration_s - self.iter_time_ewma)
        self._finalize(batch)
        self.metrics.iterations += 1
        self.metrics.count_mode(mode.value)
        if self.tracer is not None:
            self._trace(mode, merged, batch, start, iteration_s, switch_s,
                        stall, preempt_before)

    # -- internals ----------------------------------------------------------------------

    def _admit_arrivals(self) -> None:
        now = self.clock.now
        while self._pending and self._pending[0][0] <= now:
            _, _, req = heapq.heappop(self._pending)
            if self._breakers and not self._breaker_admits(req.adapter_id, now):
                req.abort(now, AbortReason.ADAPTER_UNAVAILABLE)
                self._record_terminal_abort(req)
                continue
            if self._admission is not None and self._reject_at_door(req, now):
                continue
            key = (req.arrival_time, req.request_id)
            if key < self._last_admit_key:
                self._active_in_order = False
            else:
                self._last_admit_key = key
            self._active[req.request_id] = req
            self._adapter_counts[req.adapter_id] = (
                self._adapter_counts.get(req.adapter_id, 0) + 1
            )
            deadline = self._effective_deadline(req)
            if deadline is not None:
                heapq.heappush(
                    self._deadline_heap,
                    (req.arrival_time + deadline, req.request_id),
                )

    def _drop_active(self, req: Request) -> None:
        """O(1) removal from the active set and its adapter-count view."""
        if self._active.pop(req.request_id, None) is None:
            return
        count = self._adapter_counts.get(req.adapter_id, 0) - 1
        if count > 0:
            self._adapter_counts[req.adapter_id] = count
        else:
            self._adapter_counts.pop(req.adapter_id, None)

    # -- overload protection ------------------------------------------------------

    def _breaker_admits(self, adapter_id: str, now: float) -> bool:
        """Gate one arrival through the adapter's circuit breaker."""
        breaker = self._breakers.get(adapter_id)
        if breaker is None:
            return True
        was_open = breaker.state is BreakerState.OPEN
        allowed = breaker.admit_allowed(now)
        if was_open and breaker.state is BreakerState.HALF_OPEN:
            self.metrics.breaker_half_opens += 1
        return allowed

    def _record_swap_success(self, adapter_id: str) -> None:
        breaker = self._breakers.get(adapter_id)
        if breaker is not None and breaker.record_success(self.clock.now):
            self.metrics.breaker_closes += 1

    def _reject_at_door(self, req: Request, now: float) -> bool:
        """Apply admission control to one arrival; True when rejected.

        Rejection happens before the request ever enters the active set:
        no KV, no batch slot, no credit accrual — the cheapest possible
        way to lose a request that was going to miss anyway.
        """
        verdict = self._admission.evaluate(
            req, now,
            queue_depth=len(self._active),
            kv_free_frac=self.kv.free_blocks / self.kv.num_blocks,
            est_iteration_s=self._last_iteration_s,
            max_batch_size=self.config.max_batch_size,
            deadline_s=self._effective_deadline(req),
        )
        if verdict is None:
            return False
        req.abort(now, AbortReason.ADMISSION_REJECTED)
        self._record_terminal_abort(req)
        self.metrics.admission_rejections += 1
        return True

    def _apply_brownout(self) -> None:
        """Sample pressure, transition tiers, shed if in brownout."""
        ctl = self._brownout
        level = ctl.observe(
            self.clock.now,
            len(self._active),
            self.kv.free_blocks / self.kv.num_blocks,
        )
        self.metrics.brownout_transitions = ctl.transitions
        self.metrics.brownout_time_s = ctl.time_degraded
        if level < 1:
            return
        excess = len(self._active) - ctl.config.queue_high
        if excess <= 0:
            return
        waiting = [r for r in self._active.values() if not r.prefilled]
        for victim in ctl.shed_victims(waiting, excess):
            self._abort(victim, AbortReason.BROWNOUT_SHED)
            self.metrics.brownout_sheds += 1

    def _force_merged_decision(
            self, schedulable: Sequence[Request]
    ) -> Optional[SchedulerDecision]:
        """Brownout level 3: run the hottest adapter merged, max batch."""
        counts: Dict[str, int] = {}
        for r in schedulable:
            counts[r.adapter_id] = counts.get(r.adapter_id, 0) + 1
        if not counts:
            return None
        top = min(counts, key=lambda a: (-counts[a], a))
        batch = [r for r in schedulable if r.adapter_id == top]
        batch = batch[: self.config.max_batch_size]
        if not batch:
            return None
        return SchedulerDecision(
            batch=batch, mode=InferenceMode.MERGED, merged_adapter=top
        )

    # -- resilience -------------------------------------------------------------------

    def _abort(self, req: Request, reason: AbortReason) -> None:
        """Abort one active request, releasing any KV it holds."""
        if self.kv.has_sequence(req.request_id):
            self.kv.free(req.request_id)
        self._reused_tokens.pop(req.request_id, None)
        req.abort(self.clock.now, reason)
        self._drop_active(req)
        self._record_terminal_abort(req)

    def _record_terminal_abort(self, req: Request) -> None:
        """Record one abort — directly, or deferred through the outbox.

        All terminal recording funnels through here / :meth:`_finalize`
        so that lease fencing covers every way a request can end on
        this engine, not just the happy path.
        """
        if self._fencing:
            self.completion_outbox.append(Completion(
                request=req, token=req.lease, kind="abort",
                record=AbortRecord.from_request(req), time=self.clock.now,
            ))
        else:
            self.metrics.record_abort(req)

    def _effective_deadline(self, req: Request) -> Optional[float]:
        if req.deadline_s is not None:
            return req.deadline_s
        factor = self.config.deadline_slo_factor
        if factor is not None and req.slo_s is not None:
            return factor * req.slo_s
        return None

    def _expire_deadlines(self) -> None:
        """Abort requests past their deadline, without scanning _active.

        The earliest-deadline heap is a watermark: when its top is in the
        future, nothing can have expired and the whole check is O(1) —
        the seed scanned every active request every step.  Heap keys are
        ``arrival + deadline``, which can round one ulp away from the
        authoritative ``now - arrival > deadline`` predicate, so pops use
        a generous margin and re-check the exact predicate; non-expired
        near-boundary entries are pushed back.
        """
        heap = self._deadline_heap
        if not heap:
            return
        now = self.clock.now
        margin = 1e-9 * (1.0 + abs(now))
        if heap[0][0] > now + margin:
            return
        pushback: List[Tuple[float, int]] = []
        while heap and heap[0][0] <= now + margin:
            expiry, rid = heapq.heappop(heap)
            req = self._active.get(rid)
            if req is None:
                continue  # finished/aborted/drained; stale entry
            deadline = self._effective_deadline(req)
            if deadline is None:
                continue
            if now - req.arrival_time > deadline:
                self._abort(req, AbortReason.DEADLINE_EXCEEDED)
            else:
                pushback.append((expiry, rid))
        for item in pushback:
            heapq.heappush(heap, item)

    def _apply_kv_pressure(self) -> None:
        if self.faults is None:
            return
        frac = self.faults.kv_reserved_fraction(self.clock.now)
        self.kv.set_reserved(int(frac * self.kv.num_blocks))

    def _handle_kv_starvation(self, candidates: Sequence[Request]) -> None:
        """Degrade gracefully when no batch fits in the KV cache.

        First flush every cached prefix (emergency eviction), then stall
        up to ``kv_stall_limit`` iterations so transient pressure (fault
        windows, draining requests) can pass; only then shed the
        lowest-credit waiting request.  Each path either advances the
        clock or removes a request, so the engine always makes progress.
        """
        self.kv.evict_stale_prefixes(float("inf"))
        self._kv_stalls += 1
        self.metrics.kv_stall_iters += 1
        if self._kv_stalls <= self.config.kv_stall_limit:
            self.clock.advance(max(self._last_iteration_s, 1e-3))
            return
        self._kv_stalls = 0
        active = self._active.values()
        pool = [r for r in active if not r.prefilled] or list(active)
        # Fast-path scheduling skips the per-candidate credit writes, so
        # bring the pool's credits up to this step's scheduling context
        # before the credit-keyed victim pick.
        if self._last_ctx is not None:
            self.policy.refresh_credits(pool, self._last_ctx)
        victim = pick_shed_victim(pool, self.clock.now)
        if victim is not None:
            self._abort(victim, AbortReason.KV_EXHAUSTED)
            self.metrics.shed_events += 1

    def _handle_swap_failures(self, batch, failed, mode, merged):
        """Backoff/quarantine failed adapters; degrade the batch.

        Requests whose adapter failed to become resident leave the batch
        (their fresh KV allocations are rolled back) and retry after a
        capped exponential backoff; an adapter that keeps failing trips
        its circuit breaker (open: traffic aborted, then optionally
        half-open probes after a cooldown — see runtime/overload.py).
        When the *merged* target itself failed, the surviving batch
        falls back to UNMERGED mode.
        """
        now = self.clock.now
        for adapter_id in failed:
            breaker = self._breakers.get(adapter_id)
            if breaker is None:
                breaker = AdapterBreaker(adapter_id, self._breaker_config)
                self._breakers[adapter_id] = breaker
            self.metrics.swap_retries += 1
            if breaker.record_failure(now):
                self._open_breaker(adapter_id)
            else:
                backoff = self._swap_retry_backoff(
                    adapter_id, breaker.consecutive_failures, batch)
                self._swap_backoff_until[adapter_id] = now + backoff
                if now + backoff > self._backoff_horizon:
                    self._backoff_horizon = now + backoff
        failed_set = set(failed)
        kept = []
        for r in batch:
            if (r.adapter_id in failed_set
                    and not self.adapters.is_resident(r.adapter_id)):
                if not r.prefilled and self.kv.has_sequence(r.request_id):
                    self.kv.free(r.request_id)
                    self._reused_tokens.pop(r.request_id, None)
                continue
            kept.append(r)
        kept = [r for r in kept if not r.is_aborted]
        if merged in failed_set and not self.adapters.is_resident(merged):
            # The merge target never landed: run what remains unmerged.
            mode = InferenceMode.UNMERGED
            merged = None
            self.current_mode = InferenceMode.UNMERGED
            self.current_merged = None
            if kept:
                self.metrics.mode_fallbacks += 1
        return kept, mode, merged

    def _swap_retry_backoff(self, adapter_id: str, attempt: int,
                            batch: Sequence[Request]) -> float:
        """Backoff before swap retry ``attempt`` for one failed adapter.

        The shared capped-exponential curve (byte-identical to the
        legacy inline math at default config), with two optional layers
        on top: a :class:`TimeoutPolicy` overrides the base/cap
        constants, and a cluster-attached :class:`RetryBudget` gates the
        retry — when the budget is dry the retry is not forbidden (the
        adapter's requests would strand) but degrades to maximum
        spacing, the slowest the schedule allows.
        """
        policy = self.config.timeout_policy
        base = self.config.swap_retry_base_s
        cap = self.config.swap_retry_cap_s
        if policy is not None:
            backoff = policy.swap_backoff(attempt, base, cap)
            if policy.swap_retry_cap_s is not None:
                cap = policy.swap_retry_cap_s
        else:
            backoff = capped_exponential_backoff(base, attempt, cap)
        if self.retry_budget is not None:
            priority = max(
                (r.priority for r in batch if r.adapter_id == adapter_id),
                default=0,
            )
            if not self.retry_budget.try_spend(priority):
                self.metrics.retry_budget_exhausted += 1
                backoff = cap
        return backoff

    def _open_breaker(self, adapter_id: str) -> None:
        """The adapter's breaker just opened: fail its traffic fast.

        Equivalent to the legacy quarantine (``adapters_quarantined``
        keeps counting open events), except an open breaker can
        half-open after its cooldown and serve again.
        """
        self._swap_backoff_until.pop(adapter_id, None)
        self.metrics.adapters_quarantined += 1
        self.metrics.breaker_opens += 1
        victims = [
            r for r in self._active.values() if r.adapter_id == adapter_id
        ]
        for r in victims:
            self._abort(r, AbortReason.ADAPTER_UNAVAILABLE)
        if self._breaker_config.cooldown_s is not None:
            # The breaker can half-open later: future arrivals stay
            # queued and are gated per-arrival by _breaker_admits (the
            # first one after cooldown is the probe).
            return
        still_pending = []
        for entry in self._pending:
            r = entry[2]
            if r.adapter_id == adapter_id:
                r.abort(self.clock.now, AbortReason.ADAPTER_UNAVAILABLE)
                self._record_terminal_abort(r)
            else:
                still_pending.append(entry)
        heapq.heapify(still_pending)
        self._pending = still_pending

    def _schedulable(self) -> List[Request]:
        """Active requests whose adapter is usable right now.

        A request sits out while its adapter is in swap backoff *and*
        not resident (resident adapters never need the failing swap).
        """
        now = self.clock.now
        # The horizon check makes expired-but-unpruned backoff entries
        # free: once the clock passes the latest expiry ever armed the
        # filter below cannot drop anything.
        if not self._swap_backoff_until or self._backoff_horizon <= now:
            return list(self._active.values())
        out = []
        for r in self._active.values():
            until = self._swap_backoff_until.get(r.adapter_id, 0.0)
            if until > now and not self.adapters.is_resident(r.adapter_id):
                continue
            out.append(r)
        return out

    def _advance_past_backoff(self) -> None:
        """Nothing schedulable: jump to the next backoff expiry/arrival."""
        horizons = [
            t for t in self._swap_backoff_until.values()
            if t > self.clock.now
        ]
        if self._pending:
            horizons.append(self._pending[0][0])
        if horizons:
            self.clock.advance_to(min(horizons))
        else:
            self.clock.advance(max(self._last_iteration_s, 1e-3))

    def _fail(self) -> None:
        """The injected GPU failure: stop serving, keep state for drain."""
        self.failed = True
        self.failed_at = self.clock.now
        self.metrics.engine_failures += 1

    def drain_orphans(self, count_hop: bool = True) -> List[Request]:
        """Hand over this engine's in-flight requests for requeue.

        KV state died with the GPU, so every request rewinds to WAITING
        and will re-prefill on whichever engine adopts it.  Failover
        passes ``count_hop=True`` (the default): each orphan burns one
        unit of its ``max_requeues`` failover budget.  The cluster's
        voluntary drain-timeout path passes ``count_hop=False`` — the
        host did not fail, so re-homing charges ``drain_hops`` instead.
        """
        now = self.clock.now
        orphans: List[Request] = []
        for r in self._active.values():
            if self.kv.has_sequence(r.request_id):
                self.kv.free(r.request_id)
            self._reused_tokens.pop(r.request_id, None)
            r.reset_for_requeue(now, count_hop=count_hop)
            orphans.append(r)
        for entry in self._pending:
            r = entry[2]
            r.reset_for_requeue(now, count_hop=count_hop)
            orphans.append(r)
        for r in self.handoff_outbox:
            # A finished prefill the cluster never collected: its KV
            # died with this GPU, so it re-prefills wherever it lands.
            r.reset_for_requeue(now, count_hop=count_hop)
            orphans.append(r)
        self._active = {}
        self._pending = []
        self.handoff_outbox = []
        self._adapter_counts = {}
        self._deadline_heap = []
        self._active_in_order = True
        self._last_admit_key = (float("-inf"), -1)
        return orphans

    def health_snapshot(self):
        """This replica's :class:`~repro.runtime.overload.ReplicaHealth`.

        Death counts both an observed failure (``failed``) and a fault
        schedule that has already killed the engine at its current clock
        (a pre-start ``ENGINE_FAIL``): dispatching to either loses the
        request until failover requeues it.
        """
        dead = self.failed or (
            self.faults is not None
            and self.faults.engine_failed(self.engine_id, self.clock.now,
                                          host=self.host)
        )
        return ReplicaHealth(
            dead=dead,
            queue_depth=self.num_live,
            iter_ewma=self.iter_time_ewma,
        )

    def _estimate_switch(self) -> float:
        if self._switch_estimate is None:
            any_spec = self.adapters.spec(self.adapters.resident_ids[0])
            self._switch_estimate = self.switcher.merge_seconds(any_spec)
        return self._switch_estimate

    def _apply_mode(self, mode: InferenceMode,
                    merged: Optional[str]) -> float:
        """Transition engine state; returns the switch cost paid."""
        if mode == self.current_mode and merged == self.current_merged:
            return 0.0
        from_spec = (
            self.adapters.spec(self.current_merged)
            if self.current_merged else None
        )
        to_spec = self.adapters.spec(merged) if merged else None
        cost = self.switcher.switch_seconds(
            self.current_mode, mode, from_spec, to_spec
        )
        if cost:
            self.clock.advance(cost)
            self.metrics.num_mode_switches += 1
            self.metrics.switch_time_total += cost
        self.current_mode = mode
        self.current_merged = merged
        return cost

    def _trace(self, mode, merged, batch, start, iteration_s, switch_s,
               swap_stall, preempt_before) -> None:
        from repro.runtime.tracing import IterationEvent

        prefill_tokens = sum(
            max(r.context_len - self._reused_tokens.get(r.request_id, 0), 1)
            for r in batch if r.generated == 1 and r.prefilled
            and r.first_token_time == self.clock.now
        )
        # Requests past their first round contributed one decode token.
        decode_tokens = sum(1 for r in batch if r.generated > 1)
        self.tracer.record(IterationEvent(
            index=self.metrics.iterations - 1,
            start=start,
            duration=iteration_s,
            mode=mode.value,
            merged_adapter=merged,
            batch_size=len(batch),
            prefill_tokens=prefill_tokens,
            decode_tokens=decode_tokens,
            adapters=tuple(sorted({r.adapter_id for r in batch})),
            switch_seconds=switch_s,
            swap_stall_seconds=swap_stall,
            preemptions=self.metrics.num_preemptions - preempt_before,
        ))

    def _admit_to_kv(self, batch: Sequence[Request]) -> List[Request]:
        admitted: List[Request] = []
        for r in batch:
            if r.prefilled:
                if (self.accepts_kv_transfers
                        and not self.kv.has_sequence(r.request_id)):
                    # Transferred-in hand-off: the sequence's KV stayed
                    # behind on the prefill replica; seed a local copy
                    # at its full context (the bytes just crossed the
                    # wire — the cluster already charged the move).
                    if not self.kv.can_allocate(r.context_len):
                        self.kv.evict_stale_prefixes(
                            self.clock.now - self.config.prefix_ttl_s
                        )
                    if not self.kv.can_allocate(r.context_len):
                        continue  # stays waiting; retried next iteration
                    self.kv.allocate(
                        r.request_id, r.context_len, now=self.clock.now,
                    )
                    self._reused_tokens[r.request_id] = 0
                admitted.append(r)
                continue
            prefix_key = (
                r.prefix_key if self.config.enable_prefix_reuse else None
            )
            if not self.kv.can_allocate(r.context_len):
                self.kv.evict_stale_prefixes(
                    self.clock.now - self.config.prefix_ttl_s
                )
            if not self.kv.can_allocate(r.context_len):
                continue  # stays waiting; retried next iteration
            # A preempted request re-prefills its prompt plus everything
            # it had already generated (recompute-style restart).
            reused = self.kv.allocate(
                r.request_id, r.context_len,
                prefix_key=prefix_key,
                prefix_tokens=r.prefix_tokens,
                now=self.clock.now,
            )
            self._reused_tokens[r.request_id] = reused
            admitted.append(r)
        return admitted

    def _ensure_decode_capacity(self, batch: Sequence[Request]) -> List[Request]:
        """Guarantee the decode appends of this iteration can allocate.

        When the cache cannot grow every decoding sequence by one token,
        the engine preempts the youngest running requests
        (recompute-style, like vLLM): their blocks are freed and they
        re-prefill later.  Preempted requests stay active and waiting.
        """
        batch = list(batch)
        block = self.kv.block_size
        while True:
            # Every batch member (prefill or decode) appends one token at
            # the end of the iteration; a sequence sitting exactly on a
            # block boundary needs one fresh block for it.  A batch
            # member's KV sequence always holds exactly ``context_len``
            # tokens (allocate() seeds it there, append_token() tracks
            # ``generated``), so no per-request cache lookups are needed.
            needed = sum(1 for r in batch if r.context_len % block == 0)
            if needed <= self.kv.free_blocks:
                return batch
            victim = self._pick_preemption_victim(batch)
            if victim is not None:
                self._preempt(victim)
                batch = [r for r in batch if r.request_id != victim.request_id]
                continue
            # Last resort: bounce a not-yet-prefilled admission back to
            # the waiting set.
            fresh = [r for r in batch if not r.prefilled]
            if len(batch) > 1 and fresh:
                bounced = fresh[-1]
                self.kv.free(bounced.request_id)
                self._reused_tokens.pop(bounced.request_id, None)
                batch = [r for r in batch if r.request_id != bounced.request_id]
                continue
            # Give up: roll back any fresh prefill allocations so the
            # requests can be re-admitted (or shed) cleanly later.
            for r in fresh:
                if self.kv.has_sequence(r.request_id):
                    self.kv.free(r.request_id)
                    self._reused_tokens.pop(r.request_id, None)
            return batch[:0]

    def _pick_preemption_victim(self, batch: Sequence[Request]):
        """Youngest prefilled request (in-batch last, else any active)."""
        prefilled_batch = [r for r in batch if r.prefilled]
        batch_ids = {r.request_id for r in batch}
        outside = [
            r for r in self._active.values()
            if r.prefilled and r.request_id not in batch_ids
        ]
        pool = outside or prefilled_batch
        if len(pool) <= 1 and pool == prefilled_batch:
            return None  # never preempt the last runnable request
        return max(pool, key=lambda r: (r.arrival_time, r.request_id))

    def _preempt(self, req: Request) -> None:
        self.kv.free(req.request_id)
        self._reused_tokens.pop(req.request_id, None)
        req.prefilled = False
        req.status = RequestStatus.WAITING
        self.metrics.num_preemptions += 1

    def _trim_to_adapter_slots(self, batch: Sequence[Request],
                               merged: Optional[str]) -> List[Request]:
        """Keep at most ``gpu_slots`` distinct adapters in one batch.

        A batch can only execute against GPU-resident adapters; requests
        whose adapter would exceed the slot count stay waiting (their
        turn comes once earlier adapters drain).
        """
        allowed = set([merged] if merged else [])
        budget = self.adapters.gpu_slots
        kept: List[Request] = []
        for r in batch:
            if r.adapter_id not in allowed:
                if len(allowed) >= budget:
                    continue
                allowed.add(r.adapter_id)
            kept.append(r)
        return kept

    def _batch_adapters(self, batch: Sequence[Request],
                        decision) -> List[str]:
        ids = [r.adapter_id for r in batch]
        if decision.merged_adapter:
            ids.append(decision.merged_adapter)
        return list(dict.fromkeys(ids))

    def _rank_of(self, adapter_id: str) -> int:
        rank = self._rank_cache.get(adapter_id)
        if rank is None:
            rank = self.adapters.spec(adapter_id).rank
            self._rank_cache[adapter_id] = rank
        return rank

    def _task_classes_of(self, adapter_id: str) -> int:
        classes = self._task_class_cache.get(adapter_id)
        if classes is None:
            classes = self.adapters.spec(adapter_id).task_head_classes or 101
            self._task_class_cache[adapter_id] = classes
        return classes

    def _execute(self, batch: Sequence[Request], mode: InferenceMode,
                 merged: Optional[str]) -> float:
        """Cost one iteration over ``batch`` and return its latency."""
        if self.cost_cache is not None:
            return self._execute_cached(batch, mode, merged)
        return self._execute_uncached(batch, mode, merged)

    def _execute_cached(self, batch: Sequence[Request],
                        mode: InferenceMode,
                        merged: Optional[str]) -> float:
        """Memoized twin of :meth:`_execute_uncached`.

        Builds the :class:`BatchSignature` of this batch and looks up
        ``(base cost, extra-cost mean)``; only the jitter sample on the
        extra cost runs per iteration, drawn from the same rng stream at
        the same points as the uncached path, so runs are bit-identical
        either way.  Each phase executor contributes its slice of the
        signature and its adapter-token share, in prefill-then-decode
        order (the dict insertion order the signature keys on).
        """
        adapter_tokens: Dict[str, int] = {}
        fields: Dict[str, object] = {}
        for executor in self.phase_executors:
            requests = executor.select(batch)
            plan = executor.plan(requests)
            fields.update(executor.signature_fields(requests, plan))
            executor.accumulate_tokens(requests, plan, adapter_tokens)

        groups = tuple(adapter_tokens.items())
        ranks = tuple(
            (a, self._rank_of(a)) for a in adapter_tokens
        )
        if merged is not None and merged not in adapter_tokens:
            ranks += ((merged, self._rank_of(merged)),)

        sig = BatchSignature(
            mode=mode,
            merged_adapter=merged,
            adapter_groups=groups,
            adapter_ranks=ranks,
            **fields,
        )
        base, extra_mean = self.cost_cache.lookup(sig)
        if not adapter_tokens:
            return base
        extra = self.mode_exec.extra_seconds_from_mean(extra_mean, self._rng)
        self.metrics.lora_extra_time_total += extra
        return base + extra

    def _execute_uncached(self, batch: Sequence[Request],
                          mode: InferenceMode,
                          merged: Optional[str]) -> float:
        """Reference path: re-derive every cost through the model tower.

        Phase costs add in prefill-then-decode order — the same float
        evaluation order as the pre-refactor monolithic loop.
        """
        t = 0.0
        adapter_tokens: Dict[str, int] = {}
        for executor in self.phase_executors:
            requests = executor.select(batch)
            plan = executor.plan(requests)
            t += executor.cost_seconds(requests, plan)
            executor.accumulate_tokens(requests, plan, adapter_tokens)

        if adapter_tokens:
            ranks = {
                a: self.adapters.spec(a).rank for a in adapter_tokens
            }
            if merged is not None:
                ranks.setdefault(merged, self.adapters.spec(merged).rank)
            extra = self.mode_exec.extra_seconds(
                mode, adapter_tokens, ranks,
                merged_adapter=merged,
                rng=self._rng,
            )
            t += extra
            self.metrics.lora_extra_time_total += extra
        return t

    def _finalize(self, batch: Sequence[Request]) -> None:
        now = self.clock.now
        # Brownout level >= 2 caps decode lengths: a capped request
        # completes early with a truncated answer (degraded service)
        # instead of holding its batch slot and KV for the full decode.
        cap = self._brownout.decode_cap if self._brownout is not None else None
        finished: List[Request] = []
        handoffs: List[Request] = []
        for r in batch:
            executor = self.decode_exec if r.prefilled else self.prefill_exec
            executor.advance(r)
            if r.is_finished or (cap is not None and r.generated >= cap):
                if not r.is_finished:
                    self.metrics.brownout_truncations += 1
                r.finish_time = now
                r.status = RequestStatus.FINISHED
                finished.append(r)
            elif (self.handoff_after_prefill
                    and executor is self.prefill_exec):
                handoffs.append(r)
        for r in finished:
            self.kv.free(r.request_id)
            self._reused_tokens.pop(r.request_id, None)
            self._drop_active(r)
            if self._fencing:
                self.completion_outbox.append(Completion(
                    request=r, token=r.lease, kind="finish",
                    record=RequestRecord.from_request(r), time=now,
                ))
            else:
                self.metrics.complete(r)
        for r in handoffs:
            # Disaggregated prefill pool: the request's KV leaves with
            # it over the wire.  The local copy is released here; the
            # cluster's transfer pass prices the move and re-homes the
            # request on a decode replica.
            self.kv.free(r.request_id)
            self._reused_tokens.pop(r.request_id, None)
            self._drop_active(r)
            self.handoff_outbox.append(r)
