"""Iteration-level discrete-event serving engine.

One :class:`ServingEngine` models one GPU running one LMM with a set of
LoRA adapters.  Like vLLM/LightLLM (§5), scheduling is *iteration-level*:
every iteration the policy re-selects a batch from all live requests
(continuous batching), new requests prefill as they join, and each
running request decodes one token per iteration.

The engine advances a simulated clock by cost-model outputs:

* base-model prefill/decode time (:class:`IterationCostModel`);
* the LoRA operator's extra time for the chosen mode (:class:`ModeExecutor`);
* mode-switch costs (:class:`ModeSwitcher`);
* adapter swap-in stalls (:class:`AdapterManager`);
* KV allocation (with prefix reuse) gates admission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hardware.gpu import GPUSpec
from repro.kernels.base import LoRAOperator
from repro.models.config import ModelConfig
from repro.models.costs import IterationCostModel
from repro.runtime.adapters import AdapterManager
from repro.runtime.clock import SimClock
from repro.runtime.faults import FaultInjector
from repro.runtime.kv_cache import PagedKVCache
from repro.runtime.memory import UnifiedMemoryManager
from repro.runtime.metrics import MetricsCollector
from repro.runtime.modes import InferenceMode, ModeExecutor
from repro.runtime.request import AbortReason, Request, RequestStatus
from repro.runtime.scheduler import (
    SchedulingContext,
    SchedulingPolicy,
    pick_shed_victim,
)
from repro.runtime.switcher import ModeSwitcher


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs."""

    max_batch_size: int = 32
    num_projections: int = 2
    enable_prefix_reuse: bool = True
    jitter_seed: Optional[int] = 0
    prefix_ttl_s: float = 30.0
    #: Batch prefills of co-arriving requests into one iteration (vLLM
    #: style).  Punica's decode-centric runtime prefills per request.
    batch_prefills: bool = True
    #: Megatron-style tensor parallelism across this many GPUs (the
    #: engine then models one TP *group*, not one GPU).
    tensor_parallel: int = 1
    #: Abort a request once it has been in the system longer than
    #: ``deadline_slo_factor * slo_s`` (requests without an SLO are only
    #: bounded by their own ``deadline_s``).  ``None`` disables.
    deadline_slo_factor: Optional[float] = None
    #: Consecutive KV-starved iterations tolerated before shedding the
    #: lowest-credit waiting request (graceful degradation instead of
    #: the former hard ``RuntimeError``).
    kv_stall_limit: int = 8
    #: Capped exponential backoff for failed adapter swap-ins.
    swap_retry_base_s: float = 0.02
    swap_retry_cap_s: float = 1.0
    #: Swap failures tolerated per adapter before it is quarantined and
    #: its requests aborted (``AbortReason.ADAPTER_UNAVAILABLE``).
    max_swap_retries: int = 5

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.tensor_parallel < 1:
            raise ValueError("tensor_parallel must be >= 1")
        if self.deadline_slo_factor is not None and self.deadline_slo_factor <= 0:
            raise ValueError("deadline_slo_factor must be positive")
        if self.kv_stall_limit < 1:
            raise ValueError("kv_stall_limit must be >= 1")
        if self.swap_retry_base_s <= 0 or self.swap_retry_cap_s <= 0:
            raise ValueError("swap retry backoff times must be positive")
        if self.max_swap_retries < 1:
            raise ValueError("max_swap_retries must be >= 1")


class ServingEngine:
    """One GPU's serving loop over a simulated clock."""

    def __init__(
        self,
        model: ModelConfig,
        gpu: GPUSpec,
        operator: LoRAOperator,
        policy: SchedulingPolicy,
        switcher: ModeSwitcher,
        adapter_manager: AdapterManager,
        memory: Optional[UnifiedMemoryManager] = None,
        config: EngineConfig = EngineConfig(),
        fault_injector: Optional[FaultInjector] = None,
        engine_id: str = "engine-0",
    ):
        self.model = model
        self.gpu = gpu
        self.operator = operator
        self.policy = policy
        self.switcher = switcher
        self.adapters = adapter_manager
        self.config = config
        self.memory = memory or UnifiedMemoryManager(
            model, gpu, adapter_slots=adapter_manager.gpu_slots,
            tp_degree=config.tensor_parallel,
        )
        self.kv: PagedKVCache = self.memory.build_kv_cache()
        self.iter_costs = IterationCostModel(
            model, gpu, operator.cost_model,
            tp_degree=config.tensor_parallel,
        )
        self.mode_exec = ModeExecutor(
            model, operator, num_projections=config.num_projections
        )
        self.clock = SimClock()
        self.metrics = MetricsCollector()
        self._rng = (
            np.random.default_rng(config.jitter_seed)
            if config.jitter_seed is not None else None
        )
        self._pending: List[Request] = []     # future arrivals, sorted
        self._active: List[Request] = []      # arrived, not finished
        self._reused_tokens: Dict[int, int] = {}
        self.current_mode = InferenceMode.UNMERGED
        self.current_merged: Optional[str] = None
        self._last_iteration_s = 0.03
        self._switch_estimate: Optional[float] = None
        #: Optional per-iteration tracer (attach_tracer()).
        self.tracer = None
        # -- resilience state (fault injection / graceful degradation) -----
        self.faults = fault_injector
        self.engine_id = engine_id
        self.failed = False
        self.failed_at: Optional[float] = None
        self._kv_stalls = 0
        self._swap_failures: Dict[str, int] = {}
        self._swap_backoff_until: Dict[str, float] = {}
        self._quarantined: set = set()

    # -- submission ---------------------------------------------------------------

    def submit(self, requests: Sequence[Request]) -> None:
        """Queue requests for their arrival times (may be in the future)."""
        for r in requests:
            self.adapters.spec(r.adapter_id)  # validate adapter exists
            self._pending.append(r)
        self._pending.sort(key=lambda r: (r.arrival_time, r.request_id))

    @property
    def num_live(self) -> int:
        return len(self._pending) + len(self._active)

    def attach_tracer(self, tracer=None):
        """Attach (or create) an :class:`EngineTracer`; returns it."""
        from repro.runtime.tracing import EngineTracer

        self.tracer = tracer or EngineTracer()
        return self.tracer

    # -- main loop --------------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_iterations: int = 2_000_000) -> MetricsCollector:
        """Run until all submitted work completes (or ``until`` sim-seconds).

        A fault-injected engine failure stops the loop early; the
        cluster layer can then :meth:`drain_orphans` onto survivors.
        """
        for _ in range(max_iterations):
            if self.failed:
                break
            if until is not None and self.clock.now >= until:
                break
            if not self._pending and not self._active:
                break
            self.step()
        else:
            raise RuntimeError(
                f"engine exceeded {max_iterations} iterations "
                f"(sim time {self.clock.now:.1f}s)"
            )
        return self.metrics

    def step(self) -> None:
        """One engine iteration (or a jump to the next arrival)."""
        if self.failed:
            return
        if (self.faults is not None
                and self.faults.engine_failed(self.engine_id, self.clock.now)):
            self._fail()
            return
        self._admit_arrivals()
        self._expire_deadlines()
        self._apply_kv_pressure()
        if not self._active:
            if self._pending:
                self.clock.advance_to(self._pending[0].arrival_time)
                self._admit_arrivals()
                self._expire_deadlines()
            else:
                return
        if not self._active:
            return

        schedulable = self._schedulable()
        if not schedulable:
            self._advance_past_backoff()
            return
        ctx = SchedulingContext(
            now=self.clock.now,
            current_mode=self.current_mode,
            current_merged=self.current_merged,
            max_batch_size=self.config.max_batch_size,
            est_iteration_seconds=self._last_iteration_s,
            est_switch_seconds=self._estimate_switch(),
        )
        decision = self.policy.schedule(schedulable, ctx)
        if decision is None:
            return

        mode, merged = decision.mode, decision.merged_adapter
        switch_s = self._apply_mode(mode, merged)
        batch = self._trim_to_adapter_slots(decision.batch, merged)
        batch = self._admit_to_kv(batch)
        if not batch:
            # KV exhausted: let running requests drain by retrying the
            # already-admitted subset next iteration after evicting
            # stale prefixes.
            self.kv.evict_stale_prefixes(
                self.clock.now - self.config.prefix_ttl_s
            )
            batch = [r for r in decision.batch if r.prefilled]
            if not batch:
                # Nothing admitted and nothing running: degrade instead
                # of crashing — flush caches, stall briefly for transient
                # pressure, then shed the lowest-credit waiting request.
                self._handle_kv_starvation(decision.batch)
                return

        batch = self._ensure_decode_capacity(batch)
        if not batch:
            # Not even one decode step fits: same degradation path.
            self._handle_kv_starvation(decision.batch)
            return
        self._kv_stalls = 0

        needed = self._batch_adapters(batch, decision)
        stall, failed_swaps = self.adapters.try_ensure_resident(
            needed, self.clock.now, injector=self.faults
        )
        if stall:
            self.clock.advance(stall)
        for adapter_id in needed:
            if adapter_id not in failed_swaps:
                self._swap_failures.pop(adapter_id, None)
                self._swap_backoff_until.pop(adapter_id, None)
        if failed_swaps:
            batch, mode, merged = self._handle_swap_failures(
                batch, failed_swaps, mode, merged
            )
            if not batch:
                return

        preempt_before = self.metrics.num_preemptions
        start = self.clock.now
        iteration_s = self._execute(batch, mode, merged)
        if self.faults is not None:
            iteration_s *= max(
                1.0, self.faults.engine_slowdown(self.engine_id, start)
            )
        self.clock.advance(iteration_s)
        self._last_iteration_s = iteration_s
        self._finalize(batch)
        self.metrics.iterations += 1
        self.metrics.count_mode(mode.value)
        if self.tracer is not None:
            self._trace(mode, merged, batch, start, iteration_s, switch_s,
                        stall, preempt_before)

    # -- internals ----------------------------------------------------------------------

    def _admit_arrivals(self) -> None:
        now = self.clock.now
        while self._pending and self._pending[0].arrival_time <= now:
            req = self._pending.pop(0)
            if req.adapter_id in self._quarantined:
                req.abort(now, AbortReason.ADAPTER_UNAVAILABLE)
                self.metrics.record_abort(req)
                continue
            self._active.append(req)

    # -- resilience -------------------------------------------------------------------

    def _abort(self, req: Request, reason: AbortReason) -> None:
        """Abort one active request, releasing any KV it holds."""
        if self.kv.has_sequence(req.request_id):
            self.kv.free(req.request_id)
        self._reused_tokens.pop(req.request_id, None)
        req.abort(self.clock.now, reason)
        self._active = [
            r for r in self._active if r.request_id != req.request_id
        ]
        self.metrics.record_abort(req)

    def _effective_deadline(self, req: Request) -> Optional[float]:
        if req.deadline_s is not None:
            return req.deadline_s
        factor = self.config.deadline_slo_factor
        if factor is not None and req.slo_s is not None:
            return factor * req.slo_s
        return None

    def _expire_deadlines(self) -> None:
        now = self.clock.now
        for req in list(self._active):
            deadline = self._effective_deadline(req)
            if deadline is not None and now - req.arrival_time > deadline:
                self._abort(req, AbortReason.DEADLINE_EXCEEDED)

    def _apply_kv_pressure(self) -> None:
        if self.faults is None:
            return
        frac = self.faults.kv_reserved_fraction(self.clock.now)
        self.kv.set_reserved(int(frac * self.kv.num_blocks))

    def _handle_kv_starvation(self, candidates: Sequence[Request]) -> None:
        """Degrade gracefully when no batch fits in the KV cache.

        First flush every cached prefix (emergency eviction), then stall
        up to ``kv_stall_limit`` iterations so transient pressure (fault
        windows, draining requests) can pass; only then shed the
        lowest-credit waiting request.  Each path either advances the
        clock or removes a request, so the engine always makes progress.
        """
        self.kv.evict_stale_prefixes(float("inf"))
        self._kv_stalls += 1
        self.metrics.kv_stall_iters += 1
        if self._kv_stalls <= self.config.kv_stall_limit:
            self.clock.advance(max(self._last_iteration_s, 1e-3))
            return
        self._kv_stalls = 0
        pool = [r for r in self._active if not r.prefilled] or list(self._active)
        victim = pick_shed_victim(pool, self.clock.now)
        if victim is not None:
            self._abort(victim, AbortReason.KV_EXHAUSTED)
            self.metrics.shed_events += 1

    def _handle_swap_failures(self, batch, failed, mode, merged):
        """Backoff/quarantine failed adapters; degrade the batch.

        Requests whose adapter failed to become resident leave the batch
        (their fresh KV allocations are rolled back) and retry after a
        capped exponential backoff; an adapter that keeps failing is
        quarantined and its requests aborted.  When the *merged* target
        itself failed, the surviving batch falls back to UNMERGED mode.
        """
        now = self.clock.now
        for adapter_id in failed:
            count = self._swap_failures.get(adapter_id, 0) + 1
            self._swap_failures[adapter_id] = count
            self.metrics.swap_retries += 1
            if count > self.config.max_swap_retries:
                self._quarantine(adapter_id)
            else:
                backoff = min(
                    self.config.swap_retry_base_s * 2 ** (count - 1),
                    self.config.swap_retry_cap_s,
                )
                self._swap_backoff_until[adapter_id] = now + backoff
        failed_set = set(failed)
        kept = []
        for r in batch:
            if (r.adapter_id in failed_set
                    and not self.adapters.is_resident(r.adapter_id)):
                if not r.prefilled and self.kv.has_sequence(r.request_id):
                    self.kv.free(r.request_id)
                    self._reused_tokens.pop(r.request_id, None)
                continue
            kept.append(r)
        kept = [r for r in kept if not r.is_aborted]
        if merged in failed_set and not self.adapters.is_resident(merged):
            # The merge target never landed: run what remains unmerged.
            mode = InferenceMode.UNMERGED
            merged = None
            self.current_mode = InferenceMode.UNMERGED
            self.current_merged = None
            if kept:
                self.metrics.mode_fallbacks += 1
        return kept, mode, merged

    def _quarantine(self, adapter_id: str) -> None:
        if adapter_id in self._quarantined:
            return
        self._quarantined.add(adapter_id)
        self._swap_backoff_until.pop(adapter_id, None)
        self.metrics.adapters_quarantined += 1
        for r in [r for r in self._active if r.adapter_id == adapter_id]:
            self._abort(r, AbortReason.ADAPTER_UNAVAILABLE)
        still_pending = []
        for r in self._pending:
            if r.adapter_id == adapter_id:
                r.abort(self.clock.now, AbortReason.ADAPTER_UNAVAILABLE)
                self.metrics.record_abort(r)
            else:
                still_pending.append(r)
        self._pending = still_pending

    def _schedulable(self) -> List[Request]:
        """Active requests whose adapter is usable right now.

        A request sits out while its adapter is in swap backoff *and*
        not resident (resident adapters never need the failing swap).
        """
        now = self.clock.now
        if not self._swap_backoff_until:
            return self._active
        out = []
        for r in self._active:
            until = self._swap_backoff_until.get(r.adapter_id, 0.0)
            if until > now and not self.adapters.is_resident(r.adapter_id):
                continue
            out.append(r)
        return out

    def _advance_past_backoff(self) -> None:
        """Nothing schedulable: jump to the next backoff expiry/arrival."""
        horizons = [
            t for t in self._swap_backoff_until.values()
            if t > self.clock.now
        ]
        if self._pending:
            horizons.append(self._pending[0].arrival_time)
        if horizons:
            self.clock.advance_to(min(horizons))
        else:
            self.clock.advance(max(self._last_iteration_s, 1e-3))

    def _fail(self) -> None:
        """The injected GPU failure: stop serving, keep state for drain."""
        self.failed = True
        self.failed_at = self.clock.now
        self.metrics.engine_failures += 1

    def drain_orphans(self) -> List[Request]:
        """Hand over a failed engine's in-flight requests for requeue.

        KV state died with the GPU, so every request rewinds to WAITING
        and will re-prefill on whichever engine adopts it.
        """
        now = self.clock.now
        orphans: List[Request] = []
        for r in self._active:
            if self.kv.has_sequence(r.request_id):
                self.kv.free(r.request_id)
            self._reused_tokens.pop(r.request_id, None)
            r.reset_for_requeue(now)
            orphans.append(r)
        for r in self._pending:
            r.reset_for_requeue(now)
            orphans.append(r)
        self._active = []
        self._pending = []
        return orphans

    def _estimate_switch(self) -> float:
        if self._switch_estimate is None:
            any_spec = self.adapters.spec(self.adapters.resident_ids[0])
            self._switch_estimate = self.switcher.merge_seconds(any_spec)
        return self._switch_estimate

    def _apply_mode(self, mode: InferenceMode,
                    merged: Optional[str]) -> float:
        """Transition engine state; returns the switch cost paid."""
        if mode == self.current_mode and merged == self.current_merged:
            return 0.0
        from_spec = (
            self.adapters.spec(self.current_merged)
            if self.current_merged else None
        )
        to_spec = self.adapters.spec(merged) if merged else None
        cost = self.switcher.switch_seconds(
            self.current_mode, mode, from_spec, to_spec
        )
        if cost:
            self.clock.advance(cost)
            self.metrics.num_mode_switches += 1
            self.metrics.switch_time_total += cost
        self.current_mode = mode
        self.current_merged = merged
        return cost

    def _trace(self, mode, merged, batch, start, iteration_s, switch_s,
               swap_stall, preempt_before) -> None:
        from repro.runtime.tracing import IterationEvent

        prefill_tokens = sum(
            max(r.context_len - self._reused_tokens.get(r.request_id, 0), 1)
            for r in batch if r.generated == 1 and r.prefilled
            and r.first_token_time == self.clock.now
        )
        # Requests past their first round contributed one decode token.
        decode_tokens = sum(1 for r in batch if r.generated > 1)
        self.tracer.record(IterationEvent(
            index=self.metrics.iterations - 1,
            start=start,
            duration=iteration_s,
            mode=mode.value,
            merged_adapter=merged,
            batch_size=len(batch),
            prefill_tokens=prefill_tokens,
            decode_tokens=decode_tokens,
            adapters=tuple(sorted({r.adapter_id for r in batch})),
            switch_seconds=switch_s,
            swap_stall_seconds=swap_stall,
            preemptions=self.metrics.num_preemptions - preempt_before,
        ))

    def _admit_to_kv(self, batch: Sequence[Request]) -> List[Request]:
        admitted: List[Request] = []
        for r in batch:
            if r.prefilled:
                admitted.append(r)
                continue
            prefix_key = (
                r.prefix_key if self.config.enable_prefix_reuse else None
            )
            if not self.kv.can_allocate(r.context_len):
                self.kv.evict_stale_prefixes(
                    self.clock.now - self.config.prefix_ttl_s
                )
            if not self.kv.can_allocate(r.context_len):
                continue  # stays waiting; retried next iteration
            # A preempted request re-prefills its prompt plus everything
            # it had already generated (recompute-style restart).
            reused = self.kv.allocate(
                r.request_id, r.context_len,
                prefix_key=prefix_key,
                prefix_tokens=r.prefix_tokens,
                now=self.clock.now,
            )
            self._reused_tokens[r.request_id] = reused
            admitted.append(r)
        return admitted

    def _ensure_decode_capacity(self, batch: Sequence[Request]) -> List[Request]:
        """Guarantee the decode appends of this iteration can allocate.

        When the cache cannot grow every decoding sequence by one token,
        the engine preempts the youngest running requests
        (recompute-style, like vLLM): their blocks are freed and they
        re-prefill later.  Preempted requests stay active and waiting.
        """
        batch = list(batch)
        while True:
            # Every batch member (prefill or decode) appends one token at
            # the end of the iteration; a sequence sitting exactly on a
            # block boundary needs one fresh block for it.
            needed = sum(
                1 for r in batch
                if self.kv.sequence_tokens(r.request_id)
                % self.kv.block_size == 0
            )
            if needed <= self.kv.free_blocks:
                return batch
            victim = self._pick_preemption_victim(batch)
            if victim is not None:
                self._preempt(victim)
                batch = [r for r in batch if r.request_id != victim.request_id]
                continue
            # Last resort: bounce a not-yet-prefilled admission back to
            # the waiting set.
            fresh = [r for r in batch if not r.prefilled]
            if len(batch) > 1 and fresh:
                bounced = fresh[-1]
                self.kv.free(bounced.request_id)
                self._reused_tokens.pop(bounced.request_id, None)
                batch = [r for r in batch if r.request_id != bounced.request_id]
                continue
            # Give up: roll back any fresh prefill allocations so the
            # requests can be re-admitted (or shed) cleanly later.
            for r in fresh:
                if self.kv.has_sequence(r.request_id):
                    self.kv.free(r.request_id)
                    self._reused_tokens.pop(r.request_id, None)
            return batch[:0]

    def _pick_preemption_victim(self, batch: Sequence[Request]):
        """Youngest prefilled request (in-batch last, else any active)."""
        prefilled_batch = [r for r in batch if r.prefilled]
        batch_ids = {r.request_id for r in batch}
        outside = [
            r for r in self._active
            if r.prefilled and r.request_id not in batch_ids
        ]
        pool = outside or prefilled_batch
        if len(pool) <= 1 and pool == prefilled_batch:
            return None  # never preempt the last runnable request
        return max(pool, key=lambda r: (r.arrival_time, r.request_id))

    def _preempt(self, req: Request) -> None:
        self.kv.free(req.request_id)
        self._reused_tokens.pop(req.request_id, None)
        req.prefilled = False
        req.status = RequestStatus.WAITING
        self.metrics.num_preemptions += 1

    def _trim_to_adapter_slots(self, batch: Sequence[Request],
                               merged: Optional[str]) -> List[Request]:
        """Keep at most ``gpu_slots`` distinct adapters in one batch.

        A batch can only execute against GPU-resident adapters; requests
        whose adapter would exceed the slot count stay waiting (their
        turn comes once earlier adapters drain).
        """
        allowed = set([merged] if merged else [])
        budget = self.adapters.gpu_slots
        kept: List[Request] = []
        for r in batch:
            if r.adapter_id not in allowed:
                if len(allowed) >= budget:
                    continue
                allowed.add(r.adapter_id)
            kept.append(r)
        return kept

    def _batch_adapters(self, batch: Sequence[Request],
                        decision) -> List[str]:
        ids = [r.adapter_id for r in batch]
        if decision.merged_adapter:
            ids.append(decision.merged_adapter)
        return list(dict.fromkeys(ids))

    def _execute(self, batch: Sequence[Request], mode: InferenceMode,
                 merged: Optional[str]) -> float:
        """Cost one iteration over ``batch`` and return its latency."""
        prefills = [r for r in batch if not r.prefilled]
        decodes = [r for r in batch if r.prefilled]
        t = 0.0
        adapter_tokens: Dict[str, int] = {}

        if prefills:
            effective = [
                max(r.context_len - self._reused_tokens.get(r.request_id, 0), 1)
                for r in prefills
            ]
            num_images = sum(r.num_images for r in prefills)
            if self.config.batch_prefills:
                t += self.iter_costs.prefill_seconds(effective, num_images)
            else:
                # Per-request prefill: each pays its own iteration.
                for r, tok in zip(prefills, effective):
                    t += self.iter_costs.prefill_seconds([tok], r.num_images)
            for r, tok in zip(prefills, effective):
                adapter_tokens[r.adapter_id] = (
                    adapter_tokens.get(r.adapter_id, 0) + tok
                )

        if decodes:
            contexts = [r.context_len for r in decodes]
            lm = any(not r.use_task_head for r in decodes)
            head_classes = max(
                (self.adapters.spec(r.adapter_id).task_head_classes or 101
                 for r in decodes if r.use_task_head),
                default=0,
            )
            t += self.iter_costs.decode_seconds(
                contexts, lm_head=lm, task_head_classes=head_classes
            )
            for r in decodes:
                adapter_tokens[r.adapter_id] = (
                    adapter_tokens.get(r.adapter_id, 0) + 1
                )

        if adapter_tokens:
            ranks = {
                a: self.adapters.spec(a).rank for a in adapter_tokens
            }
            if merged is not None:
                ranks.setdefault(merged, self.adapters.spec(merged).rank)
            extra = self.mode_exec.extra_seconds(
                mode, adapter_tokens, ranks,
                merged_adapter=merged,
                rng=self._rng,
            )
            t += extra
            self.metrics.lora_extra_time_total += extra
        return t

    def _finalize(self, batch: Sequence[Request]) -> None:
        now = self.clock.now
        finished: List[Request] = []
        for r in batch:
            if not r.prefilled:
                r.prefilled = True
                r.status = RequestStatus.RUNNING
            self.kv.append_token(r.request_id)
            r.generated += 1
            if r.first_token_time is None:
                r.first_token_time = now
            if r.is_finished:
                r.finish_time = now
                r.status = RequestStatus.FINISHED
                finished.append(r)
        for r in finished:
            self.kv.free(r.request_id)
            self._reused_tokens.pop(r.request_id, None)
            self._active.remove(r)
            self.metrics.complete(r)
