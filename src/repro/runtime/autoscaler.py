"""Elastic replica autoscaling for the multi-GPU cluster.

V-LoRA's multi-GPU experiments (§6.4) assume a fixed replica set; the
production target — diurnal traffic from millions of users — does not.
This module adds the missing control plane: replicas move through an
explicit lifecycle

    WARMING -> ACTIVE -> DRAINING -> DEAD

and an :class:`Autoscaler` policy decides, once per control interval,
whether the cluster should grow or shrink:

* **Scale up** when the EWMA queue depth per provisioned replica climbs
  above ``target_queue_per_replica``, or when recent SLO attainment
  drops under ``slo_floor``.  A new replica is *not* instantly useful:
  it pays a modeled cold start (engine spin-up plus synchronous adapter
  prefetch over the swap path, plus one warm merge of the resident
  adapter — see :func:`estimate_cold_start_s`) before it turns ACTIVE,
  and a ``FaultKind.SCALE_STALL`` window can stretch that warm-up.
* **Scale down** when the smoothed queue depth falls below
  ``down_fraction`` of the target.  The victim replica is quiesced
  (:meth:`~repro.runtime.engine.ServingEngine.quiesce`): dispatch routes
  around it, its in-flight requests finish, and only then is it retired.
  A drain that outlives ``drain_timeout_s`` re-homes the remainder
  through the cluster's requeue machinery — *without* charging the
  requests' failover budget (their host never failed).

Both signals reuse the overload layer's smoothing primitive
(:class:`~repro.runtime.overload.EwmaSignal`) and respect per-direction
cooldowns so the cluster does not flap.  Everything is pure simulation
state driven by the cluster's control clock: deterministic, replayable,
and entirely absent (bit-identical metrics) when no autoscaler is
attached.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.runtime.overload import EwmaSignal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import ServingEngine

__all__ = [
    "AutoscaleConfig",
    "Autoscaler",
    "Replica",
    "ReplicaState",
    "estimate_cold_start_s",
]


class ReplicaState(enum.Enum):
    """Where a replica is in its lifecycle."""

    WARMING = "warming"     # spawned; paying cold start, no dispatch yet
    ACTIVE = "active"       # serving traffic
    DRAINING = "draining"   # no new dispatch; in-flight work finishing
    DEAD = "dead"           # failed or retired; engine kept for metrics


@dataclass
class Replica:
    """One engine plus its lifecycle bookkeeping.

    Transitions are methods so illegal moves fail loudly instead of
    silently corrupting the cluster's accounting.
    """

    engine: "ServingEngine"
    state: ReplicaState
    spawned_at: float
    warm_until: float = 0.0
    activated_at: Optional[float] = None
    drain_started_at: Optional[float] = None
    dead_at: Optional[float] = None

    @property
    def replica_id(self) -> str:
        return self.engine.engine_id

    def activate(self, now: float) -> None:
        if self.state is not ReplicaState.WARMING:
            raise RuntimeError(
                f"replica {self.replica_id} cannot activate from {self.state}"
            )
        self.state = ReplicaState.ACTIVE
        self.activated_at = now

    def start_drain(self, now: float) -> None:
        if self.state is not ReplicaState.ACTIVE:
            raise RuntimeError(
                f"replica {self.replica_id} cannot drain from {self.state}"
            )
        self.state = ReplicaState.DRAINING
        self.drain_started_at = now
        self.engine.quiesce()

    def die(self, now: float) -> None:
        if self.state is ReplicaState.DEAD:
            raise RuntimeError(f"replica {self.replica_id} is already dead")
        self.state = ReplicaState.DEAD
        self.dead_at = now


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs for :class:`Autoscaler`.

    ``target_queue_per_replica`` is the operating point: the EWMA of
    live requests per provisioned (ACTIVE + WARMING) replica the policy
    tries to hold.  Crossing it scales up; falling under
    ``down_fraction`` of it scales down.  ``slo_floor`` additionally
    scales up whenever smoothed SLO attainment over recently finished
    requests drops below the floor (``None`` disables the SLO signal).
    ``spinup_s`` is the engine-provisioning part of the cold start; the
    adapter-prefetch part is derived from the replica's own swap path
    (:func:`estimate_cold_start_s`).  ``spawn_budget`` bounds the total
    number of replicas ever spawned in one run — the self-healing loop's
    backstop against a fault schedule that kills every newcomer.
    """

    min_replicas: int = 1
    max_replicas: int = 4
    interval_s: float = 0.5
    target_queue_per_replica: float = 8.0
    #: When set, scale on a caller-supplied utilization fraction (e.g.
    #: the decode pool's fleet KV residency in disaggregated serving)
    #: instead of queue depth: up above the target, down below
    #: ``down_fraction`` of it.  ``None`` keeps the queue-depth signal.
    target_utilization: Optional[float] = None
    down_fraction: float = 0.25
    slo_floor: Optional[float] = None
    ewma_alpha: float = 0.4
    up_cooldown_s: float = 1.0
    down_cooldown_s: float = 5.0
    spinup_s: float = 0.5
    drain_timeout_s: float = 30.0
    spawn_budget: int = 64

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.target_queue_per_replica <= 0:
            raise ValueError("target_queue_per_replica must be positive")
        if (self.target_utilization is not None
                and not 0.0 < self.target_utilization <= 1.0):
            raise ValueError("target_utilization must be in (0, 1]")
        if not 0.0 < self.down_fraction < 1.0:
            raise ValueError("down_fraction must be in (0, 1)")
        if self.slo_floor is not None and not 0.0 < self.slo_floor <= 1.0:
            raise ValueError("slo_floor must be in (0, 1]")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.up_cooldown_s < 0 or self.down_cooldown_s < 0:
            raise ValueError("cooldowns must be >= 0")
        if self.spinup_s < 0:
            raise ValueError("spinup_s must be >= 0")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")
        if self.spawn_budget < 1:
            raise ValueError("spawn_budget must be >= 1")


class Autoscaler:
    """Decides, once per control interval, how the replica set changes.

    The policy is deliberately simple and fully deterministic: two EWMA
    signals (queue depth per provisioned replica; SLO attainment of
    recently finished requests), threshold crossings with per-direction
    cooldowns, and a min-replica floor that doubles as self-healing —
    a cluster whose replicas all died immediately re-provisions back to
    ``min_replicas``.
    """

    def __init__(self, config: AutoscaleConfig = AutoscaleConfig()):
        self.config = config
        self.queue_signal = EwmaSignal(config.ewma_alpha)
        self.util_signal = EwmaSignal(config.ewma_alpha)
        self.slo_signal = EwmaSignal(config.ewma_alpha, initial=1.0)
        self._last_up = float("-inf")
        self._last_down = float("-inf")
        self.decisions = 0

    def observe(
        self,
        now: float,
        *,
        queue_depth: int,
        num_active: int,
        num_warming: int,
        num_draining: int = 0,
        num_suspected: int = 0,
        slo_sample: Optional[float] = None,
        utilization: Optional[float] = None,
    ) -> int:
        """Fold one control-interval sample in; returns the replica delta.

        Positive: spawn that many replicas.  Negative: drain one.
        ``queue_depth`` should count every live request the cluster
        knows about (queued on engines plus overdue undispatched);
        ``slo_sample`` is the attainment fraction among requests that
        reached a terminal state since the last call (``None`` when none
        did — the smoothed value simply carries over).
        ``num_suspected`` counts ACTIVE replicas the failure detector
        currently suspects: they still hold membership (no drain/spawn
        flap while the detector decides) but their capacity is treated
        as unavailable, so a suspected-heavy cluster scales up instead
        of queueing behind maybe-dead replicas.

        With :attr:`AutoscaleConfig.target_utilization` set *and* a
        ``utilization`` sample supplied, the up/down pressure is judged
        on the smoothed utilization fraction instead of queue depth —
        the decode pool of a disaggregated cluster scales on its fleet
        KV residency this way.  The min-replica self-healing floor and
        the SLO signal are unchanged either way.
        """
        cfg = self.config
        self.decisions += 1
        provisioned = num_active - num_suspected + num_warming
        per_replica = queue_depth / max(1, provisioned)
        smoothed_q = self.queue_signal.observe(per_replica)
        if utilization is not None and cfg.target_utilization is not None:
            smoothed_u = self.util_signal.observe(utilization)
            up_pressure = smoothed_u > cfg.target_utilization
            down_room = smoothed_u < (cfg.target_utilization
                                      * cfg.down_fraction)
        else:
            up_pressure = smoothed_q > cfg.target_queue_per_replica
            down_room = smoothed_q < (cfg.target_queue_per_replica
                                      * cfg.down_fraction)
        if slo_sample is not None:
            self.slo_signal.observe(slo_sample)
        smoothed_slo = self.slo_signal.value

        # Self-healing floor: dominates cooldowns and thresholds.
        if provisioned < cfg.min_replicas:
            self._last_up = now
            return cfg.min_replicas - provisioned

        # Membership (the max_replicas bound) counts suspected replicas:
        # they still occupy GPUs even though their capacity is excluded
        # from the queue-pressure arithmetic above.
        members = num_active + num_warming + num_draining
        slo_pressure = (cfg.slo_floor is not None
                        and smoothed_slo < cfg.slo_floor)
        if (members < cfg.max_replicas
                and now - self._last_up >= cfg.up_cooldown_s
                and (up_pressure or slo_pressure)):
            self._last_up = now
            # Scaling up also re-arms the down cooldown so the policy
            # cannot immediately retire the replica it just paid to warm.
            self._last_down = now
            return 1

        if (num_active - num_suspected > cfg.min_replicas
                and num_warming == 0
                and now - self._last_down >= cfg.down_cooldown_s
                and down_room
                and not slo_pressure):
            self._last_down = now
            return -1
        return 0


def estimate_cold_start_s(engine: "ServingEngine",
                          config: AutoscaleConfig,
                          prefetch_ids: Optional[Sequence[str]] = None,
                          ) -> float:
    """Model a fresh replica's cold start from its own parts.

    Three components, all derived from state the engine already carries:

    * ``config.spinup_s`` — provisioning + weight loading (flat);
    * adapter prefetch — the warm-start adapters
      (:attr:`~repro.runtime.adapters.AdapterManager.resident_ids`) must
      actually be copied to the GPU before serving; unlike steady-state
      swaps nothing overlaps (there is no compute to hide behind), so
      each pays the full synchronous swap over the transfer model;
    * one warm merge — V-LoRA replicas come online with the first
      resident adapter's ΔW folded in (the switcher's merge cost), so
      the first merged-mode batch does not eat the switch.

    ``prefetch_ids`` extends the prefetch bill with extra adapters the
    fleet placement layer wants resident before serving (the registry's
    current hot set, see
    :meth:`~repro.runtime.placement.AdapterPlacement.prefetch_plan`);
    ids already in the warm-start set are not double-charged.
    """
    adapters = engine.adapters
    to_load = list(adapters.resident_ids)
    if prefetch_ids:
        seen = set(to_load)
        to_load += [a for a in prefetch_ids if a not in seen]
    prefetch = 0.0
    for adapter_id in to_load:
        prefetch += adapters.transfer.swap_seconds(
            adapters.spec(adapter_id).ab_bytes,
            async_overlap=0.0,
            software_overhead_s=adapters.swap_software_overhead_s,
        )
    warm_merge = 0.0
    if adapters.resident_ids:
        warm_merge = engine.switcher.merge_seconds(
            adapters.spec(adapters.resident_ids[0])
        )
    return config.spinup_s + prefetch + warm_merge
