"""Memoized per-iteration cost layer (:class:`IterationCostCache`).

The engine's hot loop used to re-derive every iteration's latency through
``modes.py`` -> ``atmm.py`` -> ``cost_model.py`` -> ``models/costs.py``
even though the result is a pure function of a small amount of batch
shape information.  This module names that information — the
:class:`BatchSignature` — and caches the derived costs per distinct
signature, so steady-state serving (where the same batch shapes recur
thousands of times) pays one dict lookup instead of the full cost-model
tower.

Losslessness
------------
The cache must never change simulated results, only wall-clock time.
Two properties make that hold bit-for-bit:

* **Decode costs reduce to sufficient statistics.**  Per-request decode
  cost is affine in the context length (attention FLOPs and KV traffic
  are both linear in it) and every intermediate value is an exact
  integer-valued float far below ``2**53``, so ``(batch size, total
  context)`` reproduces :meth:`IterationCostModel.decode_seconds`
  exactly (see :meth:`IterationCostModel.decode_seconds_stats`).
  Prefill launches are keyed on their exact token tuple in batch order,
  which trivially preserves float summation order.

* **Jitter stays outside the cache.**  The LoRA operator's extra time is
  ``sample(mean, rng)``; only the deterministic mean is memoized
  (:meth:`ModeExecutor.mean_extra_seconds`) and the rng draw happens per
  iteration in the engine, consuming the jitter stream exactly as the
  uncached path does (zero means never sample in either path).

Hit/miss counts are written straight into the engine's
:class:`MetricsCollector` (``cost_cache_hits`` / ``cost_cache_misses``)
so cache effectiveness shows up in every summary and bench dump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.models.costs import IterationCostModel
from repro.runtime.metrics import MetricsCollector
from repro.runtime.modes import InferenceMode, ModeExecutor


@dataclass(frozen=True)
class BatchSignature:
    """Everything the cost model can see of one iteration's batch.

    Two iterations with equal signatures have bit-identical base cost
    and extra-cost mean; the only per-iteration residual is the jitter
    sample, which stays outside the cache.
    """

    mode: InferenceMode
    merged_adapter: Optional[str]
    #: One entry per prefill kernel launch: the exact per-request token
    #: counts in batch order plus the images entering with that launch.
    #: Batched-prefill engines emit one launch; per-request prefill
    #: (Punica style) emits one launch per request.
    prefill_launches: Tuple[Tuple[Tuple[int, ...], int], ...]
    #: Decode side collapses to sufficient statistics (see module doc).
    num_decodes: int
    decode_context_total: int
    lm_head: bool
    task_head_classes: int
    #: Adapter token groups in engine insertion order (prefills then
    #: decodes) — order matters because the ATMM config selection keys
    #: on the first group's rank.
    adapter_groups: Tuple[Tuple[str, int], ...]
    adapter_ranks: Tuple[Tuple[str, int], ...]


class IterationCostCache:
    """Signature -> ``(base_seconds, extra_mean_seconds)`` memo table.

    A top-level table keyed on the full :class:`BatchSignature` makes the
    steady-state hit a single dict probe; misses fall back to component
    tables (prefill launch, decode stats, mode-extra mean) that share
    work across signatures differing only in one component.  Tables are
    cleared wholesale when they exceed ``max_entries`` — memoization is
    an optimization, not state, so dropping it is always safe.
    """

    MAX_ENTRIES = 65536

    def __init__(
        self,
        iter_costs: IterationCostModel,
        mode_exec: ModeExecutor,
        metrics: Optional[MetricsCollector] = None,
        max_entries: int = MAX_ENTRIES,
    ):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.iter_costs = iter_costs
        self.mode_exec = mode_exec
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.max_entries = max_entries
        self._table: Dict[BatchSignature, Tuple[float, float]] = {}
        self._prefill: Dict[Tuple[Tuple[int, ...], int], float] = {}
        self._decode: Dict[Tuple[int, int, bool, int], float] = {}
        self._extra: Dict[tuple, float] = {}

    def lookup(self, sig: BatchSignature) -> Tuple[float, float]:
        """Return ``(base_seconds, extra_mean_seconds)`` for a signature."""
        cached = self._table.get(sig)
        if cached is not None:
            self.metrics.cost_cache_hits += 1
            return cached
        self.metrics.cost_cache_misses += 1
        # Accumulate in the exact order the uncached engine adds costs
        # (each prefill launch, then the decode step) so float addition
        # order — and therefore rounding — is unchanged.
        base = 0.0
        for tokens, images in sig.prefill_launches:
            base += self._prefill_seconds(tokens, images)
        if sig.num_decodes:
            base += self._decode_seconds(sig)
        extra_mean = self._extra_mean(sig) if sig.adapter_groups else 0.0
        if len(self._table) >= self.max_entries:
            self._table.clear()
        self._table[sig] = (base, extra_mean)
        return base, extra_mean

    # -- component tables ---------------------------------------------------------

    def _prefill_seconds(self, tokens: Tuple[int, ...], images: int) -> float:
        key = (tokens, images)
        t = self._prefill.get(key)
        if t is None:
            t = self.iter_costs.prefill_seconds(tokens, images)
            if len(self._prefill) >= self.max_entries:
                self._prefill.clear()
            self._prefill[key] = t
        return t

    def _decode_seconds(self, sig: BatchSignature) -> float:
        key = (sig.num_decodes, sig.decode_context_total,
               sig.lm_head, sig.task_head_classes)
        t = self._decode.get(key)
        if t is None:
            t = self.iter_costs.decode_seconds_stats(
                sig.num_decodes, sig.decode_context_total,
                lm_head=sig.lm_head,
                task_head_classes=sig.task_head_classes,
            )
            if len(self._decode) >= self.max_entries:
                self._decode.clear()
            self._decode[key] = t
        return t

    def _extra_mean(self, sig: BatchSignature) -> float:
        key = (sig.mode, sig.merged_adapter,
               sig.adapter_groups, sig.adapter_ranks)
        t = self._extra.get(key)
        if t is None:
            t = self.mode_exec.mean_extra_seconds(
                sig.mode,
                dict(sig.adapter_groups),
                dict(sig.adapter_ranks),
                merged_adapter=sig.merged_adapter,
            )
            if len(self._extra) >= self.max_entries:
                self._extra.clear()
            self._extra[key] = t
        return t

    # -- introspection ------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.metrics.cost_cache_hits

    @property
    def misses(self) -> int:
        return self.metrics.cost_cache_misses

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TransferCostCache:
    """Memoized KV-transfer pricing for disaggregated hand-offs.

    The cluster's transfer pass prices every prefill→decode hand-off as
    a synchronous move of ``context_len * kv_bytes_per_token`` bytes
    over the replica's :class:`~repro.hardware.memory.TransferModel`
    (the same model that prices adapter swap-ins).  Transfer sizes
    repeat heavily — context lengths cluster around the workload's
    prompt/output distribution — so the wire time is memoized per byte
    count.  Replicas are identical molds of one engine factory, so a
    single table serves the whole fleet; the overlap/overhead knobs are
    fixed at construction (they come from the immutable
    :class:`~repro.runtime.disagg.DisaggConfig`).
    """

    def __init__(self, async_overlap: float = 0.0,
                 software_overhead_s: Optional[float] = None,
                 max_entries: int = 65536):
        self.async_overlap = async_overlap
        self.software_overhead_s = software_overhead_s
        self.max_entries = max_entries
        self._memo: Dict[int, float] = {}
        self.hits = 0
        self.misses = 0

    def seconds(self, transfer, nbytes: int) -> float:
        """Wire seconds for one ``nbytes`` KV move over ``transfer``."""
        t = self._memo.get(nbytes)
        if t is None:
            self.misses += 1
            t = transfer.swap_seconds(
                nbytes,
                async_overlap=self.async_overlap,
                software_overhead_s=self.software_overhead_s,
            )
            if len(self._memo) >= self.max_entries:
                self._memo.clear()
            self._memo[nbytes] = t
        else:
            self.hits += 1
        return t
