"""Multi-GPU serving (Table 3) with pluggable inter-GPU dispatch.

V-LoRA scales across GPUs by replicating the engine (base model +
adapter pool) per device; §6.4's Table 3 measures the simple
data-parallel deployment.  Inter-GPU scheduling (dLoRA-style) is the
paper's future work — three dispatch policies are provided here:

* ``least-loaded`` — send each request to the replica with the fewest
  queued decode rounds (Table 3's configuration);
* ``round-robin`` — cycle replicas;
* ``adapter-affinity`` — pin each adapter's requests to a home replica
  (hashed), making every replica's workload maximally merge-friendly for
  Algorithm 1 at the cost of load imbalance under skew.
"""

from __future__ import annotations

import zlib
from typing import Callable, List, Optional, Sequence

from repro.runtime.engine import ServingEngine
from repro.runtime.metrics import MetricsCollector
from repro.runtime.request import AbortReason, Request

DISPATCH_POLICIES = ("least-loaded", "round-robin", "adapter-affinity")


class MultiGPUServer:
    """Dispatches requests over independent per-GPU engines.

    When a :class:`~repro.runtime.faults.FaultInjector` kills an engine
    mid-run, :meth:`run` requeues its in-flight requests onto surviving
    engines (failover); with no survivors the orphans are aborted with
    ``AbortReason.ENGINE_FAILED``.
    """

    def __init__(self, engines: Sequence[ServingEngine],
                 dispatch: str = "least-loaded"):
        if not engines:
            raise ValueError("need at least one engine")
        if dispatch not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch {dispatch!r}; expected one of "
                f"{DISPATCH_POLICIES}"
            )
        self.engines = list(engines)
        self.dispatch = dispatch
        self._rr_next = 0
        #: Cluster-level events (failover, no-survivor aborts) that do
        #: not belong to any single replica's collector.
        self.cluster_metrics = MetricsCollector()
        # Give replicas distinct identities so engine-targeted fault
        # specs (ENGINE_FAIL / ENGINE_SLOW) can name them, unless the
        # caller already assigned ids.
        if len({e.engine_id for e in self.engines}) != len(self.engines):
            for i, engine in enumerate(self.engines):
                engine.engine_id = f"gpu-{i}"

    @property
    def num_gpus(self) -> int:
        return len(self.engines)

    # -- dispatch ----------------------------------------------------------------

    def submit(self, requests: Sequence[Request]) -> None:
        """Dispatch each request to a replica per the configured policy."""
        ordered = sorted(requests, key=lambda q: (q.arrival_time,
                                                  q.request_id))
        if self.dispatch == "least-loaded":
            self._submit_least_loaded(ordered)
        elif self.dispatch == "round-robin":
            self._submit_round_robin(ordered)
        else:
            self._submit_affinity(ordered)

    def _submit_least_loaded(self, requests: Sequence[Request]) -> None:
        # Load measured in queued decode rounds (a better proxy than
        # request count when tasks differ in output length).
        loads = [
            sum(req.remaining for req in e.pending_requests)
            for e in self.engines
        ]
        for r in requests:
            i = loads.index(min(loads))
            self.engines[i].submit([r])
            loads[i] += r.remaining

    def _submit_round_robin(self, requests: Sequence[Request]) -> None:
        for r in requests:
            self.engines[self._rr_next % self.num_gpus].submit([r])
            self._rr_next += 1

    def _submit_affinity(self, requests: Sequence[Request]) -> None:
        for r in requests:
            home = zlib.crc32(r.adapter_id.encode("utf-8")) % self.num_gpus
            self.engines[home].submit([r])

    # -- execution ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> MetricsCollector:
        """Run every engine to completion, failing over dead engines.

        Engines run sequentially on independent sim clocks.  After each
        pass, requests stranded on failed engines are requeued onto
        survivors (which then resume); the loop is bounded because each
        engine can fail at most once.
        """
        for e in self.engines:
            e.run(until=until)
        for _ in range(len(self.engines)):
            stranded = [e for e in self.engines if e.failed and e.num_live]
            if not stranded:
                break
            survivors = [e for e in self.engines if not e.failed]
            orphans: List[Request] = []
            for e in stranded:
                orphans.extend(e.drain_orphans())
            if not survivors:
                for r in orphans:
                    r.abort(r.arrival_time, AbortReason.ENGINE_FAILED)
                    self.cluster_metrics.record_abort(r)
                break
            self.cluster_metrics.failover_events += len(orphans)
            self._failover_dispatch(orphans, survivors)
            for e in survivors:
                e.run(until=until)
        merged = MetricsCollector()
        merged.merge_from(self.cluster_metrics)
        for e in self.engines:
            merged.merge_from(e.metrics)
        return merged

    def _failover_dispatch(self, orphans: Sequence[Request],
                           survivors: Sequence[ServingEngine]) -> None:
        """Least-loaded requeue of orphans onto surviving engines."""
        loads = [
            sum(req.remaining for req in e.pending_requests)
            + len(e._active)
            for e in survivors
        ]
        for r in sorted(orphans, key=lambda q: (q.arrival_time,
                                                q.request_id)):
            i = loads.index(min(loads))
            survivors[i].submit([r])
            loads[i] += r.remaining

    def per_engine_completed(self) -> List[int]:
        """Completed request count per replica (load-balance visibility)."""
        return [e.metrics.num_completed for e in self.engines]

    @classmethod
    def replicate(cls, factory: Callable[[], ServingEngine],
                  num_gpus: int, dispatch: str = "least-loaded",
                  ) -> "MultiGPUServer":
        """Build ``num_gpus`` identical engines from a factory."""
        if num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {num_gpus}")
        return cls([factory() for _ in range(num_gpus)], dispatch=dispatch)
