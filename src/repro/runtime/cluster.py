"""Multi-GPU serving (Table 3) with pluggable inter-GPU dispatch.

V-LoRA scales across GPUs by replicating the engine (base model +
adapter pool) per device; §6.4's Table 3 measures the simple
data-parallel deployment.  Inter-GPU scheduling (dLoRA-style) is the
paper's future work — four dispatch policies are provided here:

* ``least-loaded`` — send each request to the replica with the fewest
  queued decode rounds (Table 3's configuration);
* ``round-robin`` — cycle replicas;
* ``adapter-affinity`` — pin each adapter's requests to a home replica
  (hashed), making every replica's workload maximally merge-friendly for
  Algorithm 1 at the cost of load imbalance under skew;
* ``locality`` — cache-state-aware placement through the fleet adapter
  registry (:class:`~repro.runtime.placement.AdapterPlacement`):
  consistent-hash homes, load-aware spill to adapter-resident replicas,
  hot-adapter replication and cold demotion.  Requires the epoched loop
  (attaching a placement registry enables it, like hedging does).

All three policies route around *dead* replicas (an engine whose fault
schedule has already killed it receives no fresh traffic — it would all
come straight back as failover orphans), and, with ``health_aware=True``,
also around *unhealthy* ones: each replica carries a health score
(:meth:`~repro.runtime.engine.ServingEngine.health_snapshot` — death,
EWMA iteration slowdown vs the median peer, queue depth) and dispatch
avoids replicas scoring below ``health_floor``.

The replica set itself can be **elastic**: attach an
:class:`~repro.runtime.autoscaler.Autoscaler` (plus an
``engine_factory``) and :meth:`run` switches from the static
run-to-completion loop to an epoched control loop in which replicas
move through the WARMING → ACTIVE → DRAINING → DEAD lifecycle, new
replicas pay a modeled cold start before serving, scale-downs drain
gracefully through the requeue machinery, and a failed replica's
orphans re-enter the shared dispatch queue.  Without an autoscaler the
static code path is untouched — metrics are bit-identical to the
pre-lifecycle cluster.

Attach a :class:`~repro.runtime.failure_detection.FailureDetector` and
the omniscient failure oracle is replaced by *observed* health: the
cluster only learns a replica died through missed heartbeats (φ-accrual
suspicion), SUSPECTED replicas are drained-not-killed and heal back on
resumed heartbeats, CONFIRMED_DEAD replicas have their lease seized and
their work re-dispatched, and every terminal completion is fenced by a
``(replica id, lease epoch)`` token so a zombie replica's late results
are counted and discarded instead of double-terminating requests.
Without a detector, none of this machinery runs (bit-identical).
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.autoscaler import (
    Autoscaler,
    Replica,
    ReplicaState,
    estimate_cold_start_s,
)
from repro.runtime.costcache import TransferCostCache
from repro.runtime.disagg import (
    DECODE_POOL,
    PREFILL_POOL,
    DisaggConfig,
    apply_pool_role,
    kv_transfer_bytes,
    pool_of_index,
)
from repro.runtime.engine import ServingEngine
from repro.runtime.failure_detection import (
    Completion,
    FailureDetector,
    SuspicionState,
)
from repro.runtime.hedging import (
    HedgeConfig,
    HedgeTracker,
    RetryBudget,
    TimeoutPolicy,
    capped_exponential_backoff,
)
from repro.runtime.metrics import MetricsCollector, ScaleEvent
from repro.runtime.overload import ReplicaHealth
from repro.runtime.placement import AdapterPlacement
from repro.runtime.request import AbortReason, Request, RequestStatus

DISPATCH_POLICIES = ("least-loaded", "round-robin", "adapter-affinity",
                     "locality")


class MultiGPUServer:
    """Dispatches requests over independent per-GPU engines.

    When a :class:`~repro.runtime.faults.FaultInjector` kills an engine
    mid-run, :meth:`run` requeues its in-flight requests onto surviving
    engines (failover); with no survivors the orphans are aborted with
    ``AbortReason.ENGINE_FAILED``.

    Failover requeue is *bounded*: ``max_requeues`` caps how many hosts
    one request may lose before the cluster gives up on it
    (``None`` = only bounded by the engine count, the legacy behavior),
    and ``requeue_backoff_s`` spaces repeated requeues of the same
    request out with capped exponential backoff so a cascading failure
    does not instantly pile every orphan onto the next victim.  Only
    *failover* hops burn that budget — voluntary drain re-homing during
    scale-down charges the request's ``drain_hops`` instead.

    With ``autoscaler`` set (requires ``engine_factory``), the replica
    set is elastic: :meth:`submit` parks requests in a cluster-level
    queue and :meth:`run` dispatches them epoch by epoch to whatever
    replicas are ACTIVE at that moment.
    """

    #: Epoch-count backstop for the autoscaled control loop.
    _MAX_EPOCHS = 1_000_000

    def __init__(self, engines: Sequence[ServingEngine],
                 dispatch: str = "least-loaded", *,
                 health_aware: bool = False,
                 health_floor: float = 0.25,
                 max_requeues: Optional[int] = None,
                 requeue_backoff_s: float = 0.0,
                 requeue_backoff_cap_s: float = 5.0,
                 autoscaler: Optional[Autoscaler] = None,
                 engine_factory: Optional[
                     Callable[[], ServingEngine]] = None,
                 detector: Optional[FailureDetector] = None,
                 num_hosts: int = 0,
                 hedge: Optional[HedgeConfig] = None,
                 retry_budget: Optional[RetryBudget] = None,
                 timeout_policy: Optional[TimeoutPolicy] = None,
                 placement: Optional[AdapterPlacement] = None,
                 disagg: Optional[DisaggConfig] = None):
        engines = list(engines)
        if not engines:
            raise ValueError("need at least one engine")
        if disagg is not None:
            expected = disagg.prefill_replicas + disagg.decode_replicas
            if len(engines) != expected:
                raise ValueError(
                    f"disaggregation wants {disagg.prefill_replicas} prefill "
                    f"+ {disagg.decode_replicas} decode replicas = "
                    f"{expected} engines, got {len(engines)}"
                )
            if autoscaler is not None:
                raise ValueError(
                    "a disaggregated cluster scales its pools "
                    "independently; use DisaggConfig.prefill_autoscale / "
                    "decode_autoscale instead of a cluster-wide autoscaler"
                )
            if ((disagg.prefill_autoscale is not None
                 or disagg.decode_autoscale is not None)
                    and engine_factory is None):
                raise ValueError(
                    "pool autoscaling needs an engine_factory to spawn "
                    "replicas"
                )
        if num_hosts < 0:
            raise ValueError(f"num_hosts must be >= 0, got {num_hosts}")
        if dispatch not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch {dispatch!r}; expected one of "
                f"{DISPATCH_POLICIES}"
            )
        if not 0.0 <= health_floor < 1.0:
            raise ValueError(f"health_floor must be in [0, 1), got {health_floor}")
        if max_requeues is not None and max_requeues < 1:
            raise ValueError(f"max_requeues must be >= 1, got {max_requeues}")
        if requeue_backoff_s < 0 or requeue_backoff_cap_s <= 0:
            raise ValueError("requeue backoff times must be >= 0 / positive")
        if autoscaler is not None and engine_factory is None:
            raise ValueError(
                "autoscaling needs an engine_factory to spawn replicas"
            )
        self.dispatch = dispatch
        self.health_aware = health_aware
        self.health_floor = health_floor
        self.max_requeues = max_requeues
        self.requeue_backoff_s = requeue_backoff_s
        self.requeue_backoff_cap_s = requeue_backoff_cap_s
        self.autoscaler = autoscaler
        self.engine_factory = engine_factory
        self.detector = detector
        self.hedge = hedge
        self.retry_budget = retry_budget
        self.timeout_policy = timeout_policy
        #: Fleet-level adapter registry (runtime/placement.py).  The
        #: ``locality`` policy requires it (a default registry is built
        #: when none is passed); any other policy may still attach one
        #: for observability, drain bias, and warm-up prefetch.
        if dispatch == "locality" and placement is None:
            placement = AdapterPlacement()
        self.placement = placement
        #: Disaggregated prefill/decode serving (runtime/disagg.py).
        #: ``None`` keeps every replica colocated (bit-identical legacy
        #: behavior); set, it splits the fleet into pools, routes fresh
        #: dispatch to the prefill pool only, and runs the per-epoch
        #: KV-transfer pass.
        self.disagg = disagg
        #: replica_id -> pool role ("prefill"/"decode"); empty when
        #: colocated, so every ``.get(...) != DECODE_POOL`` check is a
        #: no-op filter.
        self._pool_of: Dict[str, str] = {}
        self._transfer_costs = (
            TransferCostCache(
                async_overlap=disagg.transfer_overlap,
                software_overhead_s=disagg.transfer_overhead_s,
            ) if disagg is not None else None
        )
        #: (pool, scaler) pairs driving scale/drain passes.  A legacy
        #: cluster-wide autoscaler is the single ``(None, scaler)``
        #: entry; a disaggregated cluster carries one entry per pool
        #: that opted into autoscaling.
        self._scalers: List[Tuple[Optional[str], Autoscaler]] = []
        if autoscaler is not None:
            self._scalers.append((None, autoscaler))
        if disagg is not None:
            if disagg.prefill_autoscale is not None:
                self._scalers.append(
                    (PREFILL_POOL, Autoscaler(disagg.prefill_autoscale)))
            if disagg.decode_autoscale is not None:
                self._scalers.append(
                    (DECODE_POOL, Autoscaler(disagg.decode_autoscale)))
        #: Lease fencing is on whenever terminals must be deduplicated:
        #: with a detector (zombie replays) or with hedging (two live
        #: copies racing to the same terminal).
        self._fenced = detector is not None or hedge is not None
        self._hedge_tracker = (
            HedgeTracker(hedge, timeout_policy)
            if hedge is not None else None
        )
        #: Request ids that have had their one hedge fired.
        self._hedged_rids: set = set()
        self._num_hosts = num_hosts
        self._host_seq = 0
        self._rr_next = 0
        #: Cluster-level events (failover, no-survivor aborts, scale
        #: events) that do not belong to any single replica's collector.
        self.cluster_metrics = MetricsCollector()
        # Give replicas distinct identities so engine-targeted fault
        # specs (ENGINE_FAIL / ENGINE_SLOW) can name them, unless the
        # caller already assigned ids.
        if len({e.engine_id for e in engines}) != len(engines):
            for i, engine in enumerate(engines):
                engine.engine_id = f"gpu-{i}"
        #: Every replica ever part of the cluster, append-only; the
        #: initial set starts ACTIVE at t=0 (no cold start — they are
        #: the provisioned baseline).
        self.replicas: List[Replica] = [
            Replica(engine=e, state=ReplicaState.ACTIVE,
                    spawned_at=0.0, activated_at=0.0)
            for e in engines
        ]
        self._replica_of = {rep.replica_id: rep for rep in self.replicas}
        self._next_replica_idx = len(self.replicas)
        #: Spawns consumed per pool (``None`` = the cluster-wide pool),
        #: each bounded by its own scaler's ``spawn_budget``.
        self._spawns_used: Dict[Optional[str], int] = {}
        if disagg is not None:
            for i, rep in enumerate(self.replicas):
                pool = pool_of_index(i, disagg)
                self._pool_of[rep.replica_id] = pool
                apply_pool_role(rep.engine, pool, disagg)
        #: Requests accepted but not yet placed on a replica
        #: (epoched mode only), ordered by (arrival, id).  The sequence
        #: counter breaks (arrival, id) ties: a hedge twin shares its
        #: primary's id, and both can be requeued at the same instant.
        self._undispatched: List[Tuple[float, int, int, Request]] = []
        self._undispatched_seq = itertools.count()
        # Per-collector (records, aborts) read cursors for incremental
        # SLO-attainment sampling between scale decisions.
        self._slo_cursor = {}
        # -- failure-detection state (all unused when detector is None) ----
        #: Next scheduled heartbeat emission per registered replica.
        self._hb_next: Dict[str, float] = {}
        #: Heartbeats emitted while partitioned, delivered on heal.
        self._withheld_hb: Dict[str, List[float]] = {}
        #: Replicas observed partitioned last epoch (heal accounting).
        self._was_partitioned: Dict[str, bool] = {}
        #: Undelivered completions seized from confirmed-dead replicas;
        #: delivered (and fenced) if/when the zombie becomes reachable.
        self._zombie_mail: Dict[str, List[Completion]] = {}
        #: Accepted terminal per request id (the winning completion);
        #: presence of the id is the fence, the completion itself lets a
        #: hedge loser's request object mirror the winning outcome.
        self._accepted: Dict[int, Completion] = {}
        if self._num_hosts:
            for engine in [rep.engine for rep in self.replicas]:
                engine.host = f"host-{self._host_seq % self._num_hosts}"
                self._host_seq += 1
        if self._fenced:
            for rep in self.replicas:
                rep.engine.enable_fencing()
        if self.retry_budget is not None:
            for rep in self.replicas:
                rep.engine.retry_budget = self.retry_budget
        if self.detector is not None:
            for rep in self.replicas:
                self.detector.register(rep.replica_id, 0.0)
                self._hb_next[rep.replica_id] = 0.0
        if self.placement is not None:
            for rep in self.replicas:
                self.placement.register_replica(rep.engine)

    @property
    def engines(self) -> List[ServingEngine]:
        """Engines of every non-DEAD replica (static mode: all of them)."""
        return [rep.engine for rep in self.replicas
                if rep.state is not ReplicaState.DEAD]

    @property
    def num_gpus(self) -> int:
        return len(self.engines)

    def _members(self, *states: ReplicaState) -> List[Replica]:
        return [rep for rep in self.replicas if rep.state in states]

    def _pool_members(self, pool: Optional[str],
                      *states: ReplicaState) -> List[Replica]:
        """Members of one pool (``None`` = every replica, legacy)."""
        members = self._members(*states)
        if pool is None:
            return members
        return [rep for rep in members
                if self._pool_of.get(rep.replica_id) == pool]

    def _takes_fresh_dispatch(self, engine: ServingEngine) -> bool:
        """Decode-pool replicas never take fresh (unprefilled) traffic —
        requests reach them only through the KV-transfer pass."""
        return (self.disagg is None
                or self._pool_of.get(engine.engine_id) != DECODE_POOL)

    # -- health ------------------------------------------------------------------

    def _snapshots(self, engines: Sequence[ServingEngine]
                   ) -> List[ReplicaHealth]:
        """Health snapshots — oracle-based, or detector-based.

        Without a detector this is the legacy omniscient view
        (:meth:`~repro.runtime.engine.ServingEngine.health_snapshot`:
        the fault schedule is consulted directly).  With one, the
        cluster only knows what heartbeats told it: ``dead`` means
        CONFIRMED_DEAD, and a SUSPECTED replica is flagged so scoring
        discounts it and routing avoids it.
        """
        if self.detector is None:
            return [e.health_snapshot() for e in engines]
        out = []
        for e in engines:
            state = self.detector.state_of(e.engine_id)
            out.append(ReplicaHealth(
                dead=state is SuspicionState.CONFIRMED_DEAD,
                queue_depth=e.num_live,
                iter_ewma=e.iter_time_ewma,
                suspected=state is SuspicionState.SUSPECTED,
            ))
        return out

    @staticmethod
    def _scores(snaps: Sequence[ReplicaHealth],
                engines: Sequence[ServingEngine]) -> List[float]:
        ewmas = sorted(
            s.iter_ewma for s in snaps if s.iter_ewma is not None
        )
        peer = None
        if ewmas:
            mid = len(ewmas) // 2
            peer = (ewmas[mid] if len(ewmas) % 2
                    else (ewmas[mid - 1] + ewmas[mid]) / 2.0)
        queue_norm = max(4 * e.config.max_batch_size for e in engines)
        return [s.score(peer, queue_norm=queue_norm) for s in snaps]

    def health_scores(self,
                      engines: Optional[Sequence[ServingEngine]] = None,
                      ) -> List[float]:
        """Health score per replica in [0, 1] (0 = dead).

        Slowdown is judged against the median peer EWMA so one straggler
        cannot drag the whole cluster's reference point down with it.
        """
        engines = self.engines if engines is None else list(engines)
        if not engines:
            return []
        return self._scores(self._snapshots(engines), engines)

    # -- dispatch ----------------------------------------------------------------

    def _accepts_dispatch(self, engine: ServingEngine) -> bool:
        """Lifecycle gate: only ACTIVE replicas take fresh traffic."""
        rep = self._replica_of.get(engine.engine_id)
        return rep is None or rep.state is ReplicaState.ACTIVE

    def _routable(self, engines: Sequence[ServingEngine]):
        """(allowed indices, scores) for dispatch over ``engines``.

        Dead replicas are always excluded (their fault schedule already
        killed them), as are replicas outside the ACTIVE lifecycle state
        (WARMING replicas are not ready; DRAINING ones refuse new work);
        ``health_aware`` additionally drops replicas below
        ``health_floor``.  With a failure detector, SUSPECTED replicas
        are excluded the same way dead ones are (drained, not killed:
        their in-flight work keeps running, but no fresh traffic lands
        on a replica that may be gone).  If exclusion would leave
        nothing routable the widest lifecycle-eligible set is
        returned — dispatch must place every request somewhere, and
        failover / no-survivor abort handles the rest.
        """
        snaps = self._snapshots(engines)
        scores = self._scores(snaps, engines) if engines else []
        allowed = [i for i in range(len(engines))
                   if not snaps[i].dead and not snaps[i].suspected
                   and self._accepts_dispatch(engines[i])]
        if self.health_aware:
            healthy = [i for i in allowed if scores[i] >= self.health_floor]
            if healthy:
                allowed = healthy
        if not allowed:
            eligible = [i for i in range(len(engines))
                        if self._accepts_dispatch(engines[i])]
            allowed = eligible or list(range(len(engines)))
        return allowed, scores

    def submit(self, requests: Sequence[Request]) -> None:
        """Accept requests: dispatch now (static) or queue (epoched).

        A static cluster places every request on a replica immediately,
        per the configured policy.  An autoscaled cluster cannot — the
        replica a request should land on may not exist yet — a
        detector-driven cluster must not (the replica it would pick may
        already be silently dead), and a hedging cluster needs the
        epoched loop's per-epoch view of time in flight; all three queue
        requests cluster-side until their arrival epoch.
        """
        policy = self.timeout_policy
        if policy is not None and policy.give_up_after_s is not None:
            # Thread the unified give-up deadline through the engine's
            # existing deadline machinery: requests with no deadline of
            # their own inherit the policy's hard bound.
            for r in requests:
                if r.deadline_s is None:
                    r.deadline_s = policy.give_up_after_s
        if self.retry_budget is not None:
            # First-time dispatches fund the budget that hedges, swap
            # retries, and failover requeues later spend.
            for r in requests:
                self.retry_budget.deposit(r.priority)
        if (self.autoscaler is not None or self.detector is not None
                or self.hedge is not None or self.placement is not None
                or self.disagg is not None):
            self._requeue(requests)
            return
        self._dispatch(requests, self.engines)

    def _dispatch(self, requests: Sequence[Request],
                  engines: Sequence[ServingEngine]) -> None:
        """Place ``requests`` across ``engines`` per the policy."""
        ordered = sorted(requests, key=lambda q: (q.arrival_time,
                                                  q.request_id))
        allowed, scores = self._routable(engines)
        if self.dispatch == "least-loaded":
            self._submit_least_loaded(ordered, engines, allowed, scores)
        elif self.dispatch == "round-robin":
            self._submit_round_robin(ordered, engines, allowed)
        elif self.dispatch == "locality":
            self._submit_locality(ordered, engines, allowed, scores)
        else:
            self._submit_affinity(ordered, engines, allowed)

    def _submit_least_loaded(self, requests: Sequence[Request],
                             engines: Sequence[ServingEngine],
                             allowed: List[int],
                             scores: List[float]) -> None:
        # Load measured in queued decode rounds (a better proxy than
        # request count when tasks differ in output length); with
        # health_aware, load is inflated by 1/score so a straggling
        # replica must be *much* emptier before it wins a request.
        loads = {
            i: sum(req.remaining for req in engines[i].pending_requests)
            for i in allowed
        }
        for r in requests:
            if self.health_aware:
                i = min(allowed,
                        key=lambda j: (loads[j] / max(scores[j], 1e-6), j))
            else:
                i = min(allowed, key=lambda j: (loads[j], j))
            engines[i].submit([r])
            loads[i] += r.remaining

    def _submit_round_robin(self, requests: Sequence[Request],
                            engines: Sequence[ServingEngine],
                            allowed: List[int]) -> None:
        n = len(engines)
        allowed_set = set(allowed)
        for r in requests:
            # Advance the cursor past excluded replicas; bounded by one
            # full cycle since ``allowed`` is never empty.
            for _ in range(n):
                if self._rr_next % n in allowed_set:
                    break
                self._rr_next += 1
            engines[self._rr_next % n].submit([r])
            self._rr_next += 1

    def _submit_affinity(self, requests: Sequence[Request],
                         engines: Sequence[ServingEngine],
                         allowed: List[int]) -> None:
        n = len(engines)
        allowed_set = set(allowed)
        for r in requests:
            key = r.adapter_id.encode("utf-8")
            home = zlib.crc32(key) % n
            if home not in allowed_set:
                # Probe with a per-adapter stride (double hashing), not
                # linearly: a linear probe funnels every adapter homed
                # on a contiguous run of excluded replicas onto the one
                # replica at the run's end, so a single down replica's
                # traffic all lands on its right-hand neighbor.  The
                # stride spreads re-homed adapters across survivors
                # while still keeping each adapter's own re-homed
                # traffic together on one fallback replica.
                stride = 1
                if n > 1:
                    stride = 1 + zlib.crc32(b"stride:" + key) % (n - 1)
                for i in range(1, n):
                    cand = (home + i * stride) % n
                    if cand in allowed_set:
                        home = cand
                        break
                else:
                    # A non-coprime stride can cycle without covering
                    # every slot; fall back to the ring-order scan.
                    h = home
                    home = min(allowed_set,
                               key=lambda j: ((j - h) % n, j))
            engines[home].submit([r])

    def _submit_locality(self, requests: Sequence[Request],
                         engines: Sequence[ServingEngine],
                         allowed: List[int],
                         scores: List[float]) -> None:
        """Cache-state-aware placement via the fleet adapter registry.

        Each request asks :meth:`AdapterPlacement.decide` for a replica:
        consistent-hash home when it holds the adapter and is not
        overloaded, else the least-loaded replica *already holding* the
        adapter (spill — a queue hop is cheaper than a cold swap), else
        the home (paying the swap where future requests will find it),
        else least-loaded.  Load is queued decode rounds, inflated by
        1/score when ``health_aware`` so stragglers repel traffic the
        same way they do under ``least-loaded``.
        """
        placement = self.placement
        by_id = {engines[i].engine_id: i for i in allowed}
        loads = {}
        for i in allowed:
            load = sum(req.remaining
                       for req in engines[i].pending_requests)
            if self.health_aware:
                load /= max(scores[i], 1e-6)
            loads[engines[i].engine_id] = load
        for r in requests:
            rid, why = placement.decide(r.adapter_id, loads)
            i = by_id[rid]
            engines[i].submit([r])
            inc = r.remaining
            if self.health_aware:
                inc /= max(scores[i], 1e-6)
            loads[rid] += inc
            if why == "spill-hit":
                self.cluster_metrics.placement_spills += 1

    # -- execution ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> MetricsCollector:
        """Run the cluster to completion; returns the merged metrics.

        Static clusters run every engine to completion with failover
        (:meth:`_run_static`); autoscaled and/or detector-driven
        clusters run the epoched control loop (:meth:`_run_epoched`).
        Either way the returned collector folds cluster-level events
        (failover requeues, requeue-limit and no-survivor aborts, scale
        events, fenced completions) in with every replica's metrics, so
        ``summary()`` accounts for every submitted request.
        """
        if (self.autoscaler is not None or self.detector is not None
                or self.hedge is not None or self.placement is not None
                or self.disagg is not None):
            return self._run_epoched(until)
        return self._run_static(until)

    def _run_static(self, until: Optional[float]) -> MetricsCollector:
        """Run every engine to completion, failing over dead engines.

        Engines run sequentially on independent sim clocks.  After each
        pass, requests stranded on failed engines are requeued onto
        survivors (which then resume); the loop is bounded because each
        engine can fail at most once.
        """
        for e in self.engines:
            e.run(until=until)
        for _ in range(len(self.engines)):
            stranded = [e for e in self.engines if e.failed and e.num_live]
            if not stranded:
                break
            survivors = [e for e in self.engines if not e.failed]
            orphans: List[Request] = []
            for e in stranded:
                orphans.extend(e.drain_orphans())
            orphans = self._vet_orphans(orphans)
            if not survivors:
                for r in orphans:
                    self._cluster_abort(r, r.arrival_time)
                break
            if orphans:
                self._apply_requeue_backoff(orphans)
                self.cluster_metrics.failover_events += len(orphans)
                self._failover_dispatch(orphans, survivors)
            for e in survivors:
                e.run(until=until)
        return self._merged_metrics()

    def _merged_metrics(self) -> MetricsCollector:
        merged = MetricsCollector()
        merged.merge_from(self.cluster_metrics)
        for rep in self.replicas:
            merged.merge_from(rep.engine.metrics)
        return merged

    # -- epoched control loop (autoscaled and/or detector-driven) ------------------

    def _run_epoched(self, until: Optional[float]) -> MetricsCollector:
        """Epoched lifecycle loop: warm, dispatch, run, detect/fail
        over, drain, scale.

        Control time advances in ``interval_s`` steps.  Each epoch:
        replicas whose warm-up finished turn ACTIVE; due requests are
        dispatched to ACTIVE replicas; ACTIVE and DRAINING engines run
        to the epoch boundary on their own sim clocks.  Then, without a
        detector, the legacy failure oracle retires failed replicas and
        requeues their orphans.  With one, the cluster instead processes
        what it *observed*: reachable replicas deliver their completion
        outboxes (fenced), heartbeats are emitted/dropped/withheld per
        the fault schedule, and the φ detector's transitions drive
        suspicion, healing, and confirmed-death seizure.  Empty (or
        timed-out) DRAINING replicas retire; finally the autoscaler —
        when present — observes queue depth and SLO attainment and may
        spawn or drain a replica.  The loop ends when no undispatched,
        in-flight, or undelivered work remains (or at ``until``).
        """
        if self._scalers:
            interval = min(s.config.interval_s for _, s in self._scalers)
        elif self.detector is not None:
            interval = self.detector.config.interval_s
        elif self.hedge is not None:
            interval = self.hedge.interval_s
        elif self.placement is not None:
            interval = self.placement.config.interval_s
        else:
            interval = self.disagg.interval_s
        now = 0.0
        for _ in range(self._MAX_EPOCHS):
            t_next = now + interval
            if until is not None:
                t_next = min(t_next, until)
            self._activate_warm(now)
            self._dispatch_due(t_next)
            for rep in self._members(ReplicaState.ACTIVE,
                                     ReplicaState.DRAINING):
                rep.engine.run(until=t_next)
            if self.disagg is not None:
                self._transfer_pass(t_next)
            if self.detector is not None:
                self._deliver_pass(t_next)
                self._heartbeat_pass(t_next)
                self._detector_pass(t_next)
            else:
                if self._fenced:
                    self._outbox_pass()
                self._failover_pass(t_next)
            if self.hedge is not None:
                self._hedge_pass(t_next)
            if self.placement is not None:
                self._placement_pass()
            if self._scalers:
                self._drain_pass(t_next)
            now = t_next
            if until is not None and now >= until:
                break
            if self._quiescent():
                break
            if self._scalers:
                self._scale_pass(now)
            self._abort_unplaceable(now)
        else:
            raise RuntimeError(
                f"epoched cluster did not converge within "
                f"{self._MAX_EPOCHS} control epochs (t={now:.1f}s)"
            )
        self._finalize_lifetimes(now)
        if self._fenced:
            self._flush_zombie_mail()
        return self._merged_metrics()

    def _record_event(self, now: float, action: str, rep: Replica,
                      reason: str) -> None:
        self.cluster_metrics.record_scale_event(ScaleEvent(
            time=now, action=action, replica_id=rep.replica_id,
            reason=reason,
            num_members=len(self._members(ReplicaState.WARMING,
                                          ReplicaState.ACTIVE,
                                          ReplicaState.DRAINING)),
        ))

    def _activate_warm(self, now: float) -> None:
        for rep in self._members(ReplicaState.WARMING):
            if rep.warm_until <= now:
                rep.activate(rep.warm_until)
                # Align the fresh engine's sim clock with the moment it
                # came online so its iteration timeline starts here.
                rep.engine.clock.advance_to(rep.warm_until)
                self.cluster_metrics.warming_time_s += (
                    rep.warm_until - rep.spawned_at
                )
                if (self.detector is not None
                        and rep.replica_id not in self._hb_next):
                    # Watch from activation, not spawn — a warming
                    # replica beats no heartbeats and must not be
                    # suspected for it.
                    self.detector.register(rep.replica_id, rep.warm_until)
                    self._hb_next[rep.replica_id] = rep.warm_until
                self._record_event(rep.warm_until, "activate", rep,
                                   "warm-up complete")

    def _dispatch_due(self, t_next: float) -> None:
        if not self._undispatched:
            return
        if self.detector is not None:
            # No oracle: route by *believed* health.  A silently-dead
            # replica still ALIVE in the detector receives traffic —
            # realistically stranding it until confirmation seizes it.
            active = [
                rep.engine for rep in self._members(ReplicaState.ACTIVE)
                if self.detector.state_of(rep.replica_id)
                is SuspicionState.ALIVE
            ]
        else:
            active = [rep.engine
                      for rep in self._members(ReplicaState.ACTIVE)
                      if not rep.engine.failed]
        # Disaggregated: fresh requests always need a prefill first, so
        # only the prefill pool receives dispatch.
        active = [e for e in active if self._takes_fresh_dispatch(e)]
        if not active:
            return  # hold the queue; warming/healing will provide capacity
        due: List[Request] = []
        while self._undispatched and self._undispatched[0][0] <= t_next:
            r = heapq.heappop(self._undispatched)[-1]
            if r.request_id in self._accepted:
                # A requeued copy of a hedged pair whose other copy
                # already won: dropping it here saves a full re-run.
                self.cluster_metrics.hedge_losses += 1
                self._mirror_outcome(r)
                continue
            due.append(r)
        if due:
            self._dispatch(due, active)

    def _requeue(self, orphans: Sequence[Request]) -> None:
        for r in orphans:
            heapq.heappush(
                self._undispatched,
                (r.arrival_time, r.request_id,
                 next(self._undispatched_seq), r),
            )

    def _failover_pass(self, t_next: float) -> None:
        """Retire failed replicas; their orphans rejoin the queue.

        Unlike the static path, orphans do not go straight to a
        survivor: they re-enter the shared undispatched queue and the
        next epoch's dispatch places them with the normal policy —
        which also means a replica spawned *because of* the failure can
        pick them up once warm.
        """
        for rep in self._members(ReplicaState.WARMING, ReplicaState.ACTIVE,
                                 ReplicaState.DRAINING):
            e = rep.engine
            if not e.failed:
                continue
            if self._fenced and e.completion_outbox:
                # Terminals the engine recorded before dying were real
                # results; deliver them through the fence (mirrors the
                # unfenced path, where they were already in metrics).
                outbox, e.completion_outbox = e.completion_outbox, []
                for comp in outbox:
                    self._accept(comp)
            orphans = self._vet_orphans(e.drain_orphans())
            if orphans:
                self._apply_requeue_backoff(orphans)
                self.cluster_metrics.failover_events += len(orphans)
                self._requeue(orphans)
            self._retire(rep, max(t_next, e.clock.now), "fail",
                         "engine failed")

    # -- tail-tolerant dispatch (runtime/hedging.py) -------------------------------

    def _outbox_pass(self) -> None:
        """Deliver live replicas' completion outboxes through the fence.

        The hedging-without-detector loop: fencing is on (two copies of
        a hedged request race to a terminal) but there is no partition/
        heartbeat machinery — every live replica's outbox is reachable
        at the epoch boundary, exactly like the unfenced oracle path
        where terminals landed in metrics immediately.
        """
        for rep in self._members(ReplicaState.WARMING, ReplicaState.ACTIVE,
                                 ReplicaState.DRAINING):
            e = rep.engine
            if e.completion_outbox:
                outbox, e.completion_outbox = e.completion_outbox, []
                for comp in outbox:
                    self._accept(comp)

    def _hedge_eligible_engines(self) -> List[ServingEngine]:
        """ACTIVE replicas a hedge may be placed on (or fired from)."""
        out = []
        for rep in self._members(ReplicaState.ACTIVE):
            e = rep.engine
            if e.failed:
                continue
            if (self.detector is not None
                    and self.detector.state_of(e.engine_id)
                    is not SuspicionState.ALIVE):
                continue
            out.append(e)
        return out

    def _hedge_pass(self, t_next: float) -> None:
        """Fire speculative duplicates for requests stuck past the
        hedge threshold (percentile-tracked per priority class).

        First completion wins through the lease fence; the loser's
        terminal is counted as a ``hedge_loss``.  One hedge per request,
        budget-gated, and disabled entirely while any replica is in a
        brownout tier (L1+) — a degraded fleet sheds load, it does not
        double it.
        """
        engines = self._hedge_eligible_engines()
        if len(engines) < 2:
            return
        for e in engines:
            if e._brownout is not None and not e._brownout.hedging_allowed:
                return
        allowed, scores = self._routable(engines)
        if len(allowed) < 2:
            return
        loads = {i: engines[i].num_live for i in allowed}
        allowed_set = set(allowed)
        # Most-stuck first: when the retry budget cannot cover every
        # candidate, the tokens go to the requests deepest past the
        # threshold — the ones actually shaping p99 — not to whichever
        # replica happens to be scanned first.
        candidates: List[Tuple[int, float, int, int, Request]] = []
        for i, e in enumerate(engines):
            for r in list(e._active.values()) + e.pending_requests:
                rid = r.request_id
                if (r.is_hedge or rid in self._hedged_rids
                        or rid in self._accepted or r.is_terminal):
                    continue
                threshold = self._hedge_tracker.threshold(r.priority)
                if threshold is None:
                    continue
                # Requests still waiting for a first token hedge at the
                # threshold and win the budget race: those are the ones
                # a hedge can rescue from the TTFT tail.  A request
                # already streaming tokens just past the threshold is
                # usually about to finish — racing a fresh twin against
                # it loses and burns budget — so started requests only
                # qualify once they are twice the threshold deep (a
                # genuinely stuck decode, e.g. a slow replica).
                started = 0 if r.first_token_time is None else 1
                if t_next - r.arrival_time <= threshold * (1 + started):
                    continue
                candidates.append((started, r.arrival_time, rid, i, r))
        candidates.sort(key=lambda c: c[:3])
        for _, _, rid, i, r in candidates:
            # A hedge twin starts unprefilled, so in a disaggregated
            # cluster it must race in through the prefill pool — even
            # when its stuck primary sits on a decode replica.
            targets = [j for j in allowed_set if j != i
                       and self._takes_fresh_dispatch(engines[j])]
            if not targets:
                continue
            if (self.retry_budget is not None
                    and not self.retry_budget.try_spend(r.priority)):
                self.cluster_metrics.retry_budget_exhausted += 1
                continue
            pool = targets
            if self.placement is not None:
                # A hedge races the stuck primary; landing the twin on
                # a replica that must first cold-swap the adapter gives
                # the race away.  Prefer adapter-resident targets.
                resident = [
                    k for k in targets
                    if engines[k].adapters.is_resident(r.adapter_id)
                ]
                pool = resident or targets
            j = min(pool, key=lambda k: (loads[k], k))
            twin = r.clone_for_hedge()
            engines[j].submit([twin])
            loads[j] += 1
            self._hedged_rids.add(rid)
            self.cluster_metrics.hedges_fired += 1

    # -- adapter placement (runtime/placement.py) ----------------------------------

    def _placement_pass(self) -> None:
        """Re-sync the fleet adapter registry and rebalance hot/cold.

        Runs once per control epoch: the registry's residency model is
        refreshed from each live engine's ground truth (engines evict on
        their own during the epoch), then hot adapters above the
        watermark get replicated (soft-pinned on ``hot_copies`` ring
        homes) and cold ones demoted off non-home replicas.  Counter
        deltas land in cluster metrics.
        """
        self.placement.refresh_from_engines()
        stats = self.placement.rebalance()
        self.cluster_metrics.placement_replications += stats["replications"]
        self.cluster_metrics.placement_demotions += stats["demotions"]

    # -- disaggregated KV transfer (runtime/disagg.py) -----------------------------

    def _transfer_targets(self) -> List[ServingEngine]:
        """Decode replicas a hand-off may be delivered to right now."""
        out = []
        for rep in self._members(ReplicaState.ACTIVE):
            if self._pool_of.get(rep.replica_id) != DECODE_POOL:
                continue
            e = rep.engine
            if self.detector is not None:
                # Route by *believed* health, exactly like dispatch: a
                # silently-dead decode replica still receives transfers
                # (realistically stranding them until confirmation
                # seizes and rewinds them).
                if (self.detector.state_of(rep.replica_id)
                        is not SuspicionState.ALIVE):
                    continue
            elif e.failed:
                continue
            out.append(e)
        return out

    @staticmethod
    def _transfer_target_key(engine: ServingEngine):
        """Most free KV first; ties break to the emptiest, then id."""
        kv = engine.kv
        used = (kv.num_blocks - kv.free_blocks) / max(1, kv.num_blocks)
        return (used, engine.num_live, engine.engine_id)

    def _transfer_pass(self, t_next: float) -> None:
        """Hand finished prefills across the pool boundary.

        Every reachable prefill replica's ``handoff_outbox`` drains to
        the decode replica with the most free KV; each move is charged
        a size-proportional wire cost (the same transfer model that
        prices adapter swap-ins) by flooring the request's admission at
        ``t_next + wire_seconds`` — its arrival time (TTFT, deadline)
        is untouched, and :meth:`ServingEngine.submit` re-stamps its
        lease so fencing keeps working across the boundary.

        Unreachable sources keep their outboxes: a dead prefill
        replica's hand-offs rewind through the failover machinery
        (``drain_orphans`` covers the outbox — exactly-once), and a
        partitioned one simply waits for heal or confirmation.  With no
        live decode target, hand-offs wait while the decode pool warms
        or can still spawn; once it is permanently gone they abort —
        there is nowhere left to decode.
        """
        sources = [
            rep for rep in self._members(ReplicaState.ACTIVE,
                                         ReplicaState.DRAINING)
            if self._pool_of.get(rep.replica_id) == PREFILL_POOL
            and rep.engine.handoff_outbox
        ]
        if not sources:
            return
        targets = self._transfer_targets()
        decode_alive = bool(self._pool_members(
            DECODE_POOL, ReplicaState.WARMING, ReplicaState.ACTIVE,
            ReplicaState.DRAINING))
        for rep in sources:
            e = rep.engine
            if e.failed:
                # Failed for real (scheduled deaths materialize lazily,
                # when the engine runs past them — same convention as
                # dispatch): failover/confirmation rewinds the outbox.
                continue
            if (self.detector is not None and e.faults is not None
                    and e.faults.partitioned(e.engine_id, t_next,
                                             host=e.host)):
                continue  # partition during hand-off: wait for heal
            if not targets:
                if decode_alive or self._can_spawn(DECODE_POOL):
                    continue  # decode capacity is (or may be) coming
                outbox, e.handoff_outbox = e.handoff_outbox, []
                for r in outbox:
                    if r.request_id in self._accepted:
                        self.cluster_metrics.hedge_losses += 1
                        if not r.is_hedge:
                            self._mirror_outcome(r)
                        continue
                    if r.is_hedge:
                        self._hedged_rids.discard(r.request_id)
                        self.cluster_metrics.hedge_losses += 1
                        continue
                    self.cluster_metrics.kv_transfer_aborts += 1
                    self._cluster_abort(r, max(r.arrival_time, t_next))
                continue
            outbox, e.handoff_outbox = e.handoff_outbox, []
            for r in sorted(outbox, key=lambda q: (q.arrival_time,
                                                   q.request_id)):
                if r.request_id in self._accepted:
                    # The other copy of a hedged pair already won.
                    self.cluster_metrics.hedge_losses += 1
                    if not r.is_hedge:
                        self._mirror_outcome(r)
                    continue
                dst = min(targets, key=self._transfer_target_key)
                nbytes = kv_transfer_bytes(r, dst.model)
                wire_s = self._transfer_costs.seconds(
                    dst.adapters.transfer, nbytes)
                self.cluster_metrics.kv_transfers += 1
                self.cluster_metrics.kv_transfer_seconds += wire_s
                self.cluster_metrics.kv_transfer_bytes += nbytes
                dst.submit([r], not_before=t_next + wire_s)

    # -- failure-detection passes (detector mode only) -----------------------------

    def _death_time(self, engine: ServingEngine) -> Optional[float]:
        """When the engine actually stopped (observed or scheduled).

        The fault schedule's death time precedes the engine's own
        ``failed_at`` whenever the engine was idle at death (it only
        notices on its next step) — heartbeats must stop at the real
        instant, and detection latency is measured from it.
        """
        times = []
        if engine.failed_at is not None:
            times.append(engine.failed_at)
        if engine.faults is not None:
            scheduled = engine.faults.engine_failure_time(
                engine.engine_id, host=engine.host)
            if scheduled is not None:
                times.append(scheduled)
        return min(times) if times else None

    def _accept(self, comp: Completion) -> None:
        """Deliver one completion through the lease fence.

        Accepted only when the token it was stamped with still equals
        the request's current lease *and* no terminal was accepted for
        the request before — otherwise it is a stale zombie replay,
        counted and discarded.  ``token is None`` (never leased) cannot
        happen for engine-terminal requests but is fenced defensively.
        """
        req = comp.request
        rid = req.request_id
        if (comp.token is None or comp.token != req.lease
                or rid in self._accepted):
            if rid in self._hedged_rids:
                # The other copy of a hedged pair already won: duplicate
                # *work*, never a duplicate terminal.  If the loser is
                # the original request object, mirror the winning
                # outcome onto it so its status agrees with the records.
                self.cluster_metrics.hedge_losses += 1
                if not req.is_hedge:
                    self._mirror_outcome(req)
            else:
                self.cluster_metrics.fenced_completions += 1
            return
        self._accepted[rid] = comp
        if rid in self._hedged_rids and req.is_hedge:
            self.cluster_metrics.hedge_wins += 1
        if self._hedge_tracker is not None and comp.kind == "finish":
            self._hedge_tracker.observe(req.priority, comp.record.latency)
        if comp.kind == "finish":
            self.cluster_metrics.records.append(comp.record)
        else:
            self.cluster_metrics.aborts.append(comp.record)

    def _mirror_outcome(self, req: Request) -> None:
        """Copy the accepted terminal outcome onto a hedge loser.

        Called only once the loser has left its engine (its own terminal
        was fenced, or it was dropped from the queue/orphans), so the
        mutation cannot race the engine's lifecycle checks.  Keeps the
        request *object* consistent with the metrics: exactly one
        terminal, the winner's.
        """
        comp = self._accepted.get(req.request_id)
        if comp is None or comp.request is req:
            return
        rec = comp.record
        if comp.kind == "finish":
            req.status = RequestStatus.FINISHED
            req.first_token_time = rec.first_token_time
            req.finish_time = rec.finish_time
            req.abort_time = None
            req.abort_reason = None
        else:
            req.status = RequestStatus.ABORTED
            req.finish_time = None
            req.abort_time = rec.abort_time
            req.abort_reason = AbortReason(rec.reason)

    def _deliver_pass(self, t_next: float) -> None:
        """Drain reachable replicas' outboxes; deliver healed zombies'.

        A partitioned replica's outbox simply stays put (nothing it
        emits reaches the cluster); when the partition heals, the
        backlog — completions and withheld heartbeats alike — arrives
        at the next epoch boundary.
        """
        for rep in self._members(ReplicaState.WARMING, ReplicaState.ACTIVE,
                                 ReplicaState.DRAINING):
            e = rep.engine
            rid = e.engine_id
            if (e.faults is not None
                    and e.faults.partitioned(rid, t_next, host=e.host)):
                self._was_partitioned[rid] = True
                continue
            if self._was_partitioned.pop(rid, False):
                self.cluster_metrics.partition_heals += 1
                self._record_event(t_next, "partition_heal", rep,
                                   "backlog delivered")
            for t in self._withheld_hb.pop(rid, []):
                self.detector.heartbeat(rid, t)
            if e.completion_outbox:
                outbox, e.completion_outbox = e.completion_outbox, []
                for comp in outbox:
                    self._accept(comp)
        # Confirmed-dead replicas whose partition healed deliver their
        # seized mail late; every entry carries a pre-seizure token, so
        # all of it fences.
        for rid in sorted(self._zombie_mail):
            rep = self._replica_of.get(rid)
            e = rep.engine
            if (e.faults is not None
                    and e.faults.partitioned(rid, t_next, host=e.host)):
                continue
            for comp in self._zombie_mail.pop(rid):
                self._accept(comp)

    def _heartbeat_pass(self, t_next: float) -> None:
        """Emit scheduled heartbeats up to the epoch boundary.

        Per emission instant: a dead engine beats no more; a
        ``HEARTBEAT_LOSS`` window drops the beat forever; a
        ``NETWORK_PARTITION`` window withholds it for delivery on heal;
        otherwise it reaches the detector immediately.
        """
        interval = self.detector.config.heartbeat_interval_s
        for rep in self._members(ReplicaState.ACTIVE,
                                 ReplicaState.DRAINING):
            e = rep.engine
            rid = e.engine_id
            if rid not in self._hb_next:
                continue
            death = self._death_time(e)
            t = self._hb_next[rid]
            while t <= t_next:
                if death is not None and t >= death:
                    break
                if e.faults is None:
                    self.detector.heartbeat(rid, t)
                elif e.faults.heartbeat_dropped(rid, t, host=e.host):
                    pass
                elif e.faults.partitioned(rid, t, host=e.host):
                    self._withheld_hb.setdefault(rid, []).append(t)
                else:
                    self.detector.heartbeat(rid, t)
                t += interval
            self._hb_next[rid] = t

    def _detector_pass(self, t_next: float) -> None:
        """Apply the detector's state transitions at the epoch boundary.

        SUSPECTED drains-without-killing (dispatch routes around, work
        keeps running); SUSPECTED → ALIVE is a false suspicion healed
        (the replica is re-admitted to dispatch automatically — routing
        reads detector state live); CONFIRMED_DEAD seizes the lease.
        """
        cfg = self.detector.config
        for rid, old, new in self.detector.evaluate(t_next):
            rep = self._replica_of.get(rid)
            if rep is None or rep.state is ReplicaState.DEAD:
                continue
            if new is SuspicionState.SUSPECTED:
                self.cluster_metrics.suspicions += 1
                self._record_event(
                    t_next, "suspect", rep,
                    f"phi >= {cfg.phi_suspect:g}")
            elif new is SuspicionState.ALIVE:
                self.cluster_metrics.false_suspicions += 1
                self._record_event(t_next, "unsuspect", rep,
                                   "heartbeats resumed")
            else:
                self._confirm_dead(rep, t_next)

    def _confirm_dead(self, rep: Replica, t_next: float) -> None:
        """Seize a confirmed-dead replica's lease and re-home its work.

        Bumping ``lease_epoch`` first makes every result the replica
        produced (or will yet produce, if it is a live zombie) stale by
        construction.  Undelivered outbox entries become zombie mail —
        their requests rewind and rejoin the queue; in-flight and
        pending work drains as ordinary failover orphans.  Duplicate
        *work* is the accepted cost; duplicate *terminals* are fenced.
        """
        e = rep.engine
        rid = e.engine_id
        e.lease_epoch += 1
        self._withheld_hb.pop(rid, None)
        self._was_partitioned.pop(rid, None)
        death = self._death_time(e)
        if death is not None and death <= t_next:
            self.cluster_metrics.detection_latencies.append(t_next - death)
        rewound: List[Request] = []
        if e.completion_outbox:
            outbox, e.completion_outbox = e.completion_outbox, []
            for comp in outbox:
                comp.request.reset_for_requeue(t_next)
                rewound.append(comp.request)
            self._zombie_mail.setdefault(rid, []).extend(outbox)
        orphans = e.drain_orphans() + rewound
        orphans = self._vet_orphans(orphans)
        if orphans:
            self._apply_requeue_backoff(orphans)
            self.cluster_metrics.failover_events += len(orphans)
            self._requeue(orphans)
        self._retire(rep, max(t_next, e.clock.now), "fail",
                     "confirmed dead")

    def _flush_zombie_mail(self) -> None:
        """End of run: fence whatever never became deliverable.

        Zombie mail still undelivered (the partition never healed) and
        outboxes stranded on live-but-unreachable replicas go through
        the fence so ``fenced_completions`` accounts for every deferred
        terminal — nothing is silently dropped.
        """
        for rid in sorted(self._zombie_mail):
            for comp in self._zombie_mail[rid]:
                self._accept(comp)
        self._zombie_mail.clear()
        for rep in self.replicas:
            e = rep.engine
            if e.completion_outbox:
                outbox, e.completion_outbox = e.completion_outbox, []
                for comp in outbox:
                    self._accept(comp)

    def _drain_pass(self, t_next: float) -> None:
        """Retire empty DRAINING replicas; time out stuck drains.

        A drain that outlives ``drain_timeout_s`` re-homes its
        remaining work through the queue *without* charging the
        requests' failover budget or backoff (their host never failed —
        the cluster chose to retire it), so scale-down churn can never
        abort a healthy request via ``max_requeues``.
        """
        for rep in self._members(ReplicaState.DRAINING):
            scaler = self._scaler_of(rep)
            if scaler is None:
                continue  # only scalers start drains, so this is dead code
            drain_timeout = scaler.config.drain_timeout_s
            if (self.timeout_policy is not None
                    and self.timeout_policy.drain_timeout_s is not None):
                drain_timeout = self.timeout_policy.drain_timeout_s
            e = rep.engine
            if e.num_live == 0:
                self._retire(rep, max(t_next, e.clock.now), "retire",
                             "drained empty")
            elif t_next - rep.drain_started_at >= drain_timeout:
                orphans = e.drain_orphans(count_hop=False)
                self.cluster_metrics.drain_requeues += len(orphans)
                self._requeue(orphans)
                self._record_event(
                    t_next, "drain_timeout", rep,
                    f"re-homed {len(orphans)} in-flight requests"
                )
                self._retire(rep, max(t_next, e.clock.now), "retire",
                             "drain timed out")

    def _retire(self, rep: Replica, now: float, action: str,
                reason: str) -> None:
        """DEAD transition plus lifetime accounting, any prior state."""
        if (rep.state is ReplicaState.DRAINING
                and rep.drain_started_at is not None):
            self.cluster_metrics.draining_time_s += (
                now - rep.drain_started_at
            )
        rep.die(now)
        if self.placement is not None:
            self.placement.deregister_replica(rep.replica_id)
        self.cluster_metrics.gpu_seconds_total += max(
            0.0, now - rep.spawned_at
        )
        self._record_event(now, action, rep, reason)

    def _scaler_of(self, rep: Replica) -> Optional[Autoscaler]:
        """The scaler owning one replica's pool (None = unscaled pool)."""
        pool = self._pool_of.get(rep.replica_id)
        for p, scaler in self._scalers:
            if p == pool:
                return scaler
        return None

    def _scale_pass(self, now: float) -> None:
        slo_sample = self._slo_sample()
        for pool, scaler in self._scalers:
            active = self._pool_members(pool, ReplicaState.ACTIVE)
            warming = self._pool_members(pool, ReplicaState.WARMING)
            draining = self._pool_members(pool, ReplicaState.DRAINING)
            queue_depth = sum(rep.engine.num_live
                              for rep in active + warming + draining)
            if pool != DECODE_POOL:
                # Overdue undispatched requests are prefill-pool
                # pressure: fresh traffic only ever dispatches there.
                queue_depth += sum(
                    1 for arrival, _, _, _ in self._undispatched
                    if arrival <= now
                )
            utilization = None
            if scaler.config.target_utilization is not None:
                blocks = used = 0
                for rep in active:
                    kv = rep.engine.kv
                    blocks += kv.num_blocks
                    used += kv.num_blocks - kv.free_blocks
                utilization = used / blocks if blocks else 1.0
            num_suspected = 0
            if self.detector is not None:
                num_suspected = sum(
                    1 for rep in active
                    if self.detector.state_of(rep.replica_id)
                    is SuspicionState.SUSPECTED
                )
            delta = scaler.observe(
                now,
                queue_depth=queue_depth,
                num_active=len(active),
                num_warming=len(warming),
                num_draining=len(draining),
                num_suspected=num_suspected,
                slo_sample=slo_sample,
                utilization=utilization,
            )
            if delta > 0:
                for _ in range(delta):
                    if not self._spawn_replica(now, pool=pool,
                                               scaler=scaler):
                        break
            elif delta < 0:
                self._drain_one(now, pool=pool, scaler=scaler)

    def _slo_sample(self) -> Optional[float]:
        """SLO attainment among requests turned terminal since last call.

        Incremental (per-collector cursors into the append-only records
        and aborts lists), so the control loop stays linear in the trace
        size.  ``None`` when no SLO-carrying request finished or aborted
        this epoch.
        """
        met = 0
        total = 0
        collectors = [self.cluster_metrics] + [
            rep.engine.metrics for rep in self.replicas
        ]
        for m in collectors:
            rec_i, ab_i = self._slo_cursor.get(id(m), (0, 0))
            for rec in m.records[rec_i:]:
                if rec.slo_s is not None:
                    total += 1
                    if rec.latency <= rec.slo_s:
                        met += 1
            for ab in m.aborts[ab_i:]:
                if ab.slo_s is not None:
                    total += 1
            self._slo_cursor[id(m)] = (len(m.records), len(m.aborts))
        if total == 0:
            return None
        return met / total

    def _can_spawn(self, pool: Optional[str] = None,
                   scaler: Optional[Autoscaler] = None) -> bool:
        """Whether ``pool`` (or, with no arguments, *any* pool) can grow.

        Detector-only clusters have a fixed replica set (no scalers),
        matching the legacy behavior.
        """
        if scaler is None:
            if pool is None and len(self._scalers) != 1:
                return any(self._can_spawn(p, s) for p, s in self._scalers)
            for p, s in self._scalers:
                if p == pool or pool is None:
                    return self._can_spawn(p, s)
            return False
        cfg = scaler.config
        members = self._pool_members(pool, ReplicaState.WARMING,
                                     ReplicaState.ACTIVE,
                                     ReplicaState.DRAINING)
        return (self.engine_factory is not None
                and self._spawns_used.get(pool, 0) < cfg.spawn_budget
                and len(members) < cfg.max_replicas)

    def _fresh_replica_id(self) -> str:
        while True:
            rid = f"gpu-{self._next_replica_idx}"
            self._next_replica_idx += 1
            if rid not in self._replica_of:
                return rid

    def _spawn_replica(self, now: float, pool: Optional[str] = None,
                       scaler: Optional[Autoscaler] = None) -> bool:
        """Provision one WARMING replica; False when spawning is capped."""
        if scaler is None:
            scaler = self.autoscaler
        if not self._can_spawn(pool, scaler):
            return False
        cfg = scaler.config
        engine = self.engine_factory()
        engine.engine_id = self._fresh_replica_id()
        if pool is not None:
            self._pool_of[engine.engine_id] = pool
            apply_pool_role(engine, pool, self.disagg)
        if self._num_hosts:
            engine.host = f"host-{self._host_seq % self._num_hosts}"
            self._host_seq += 1
        if self._fenced:
            engine.enable_fencing()
        if self.retry_budget is not None:
            engine.retry_budget = self.retry_budget
        self._spawns_used[pool] = self._spawns_used.get(pool, 0) + 1
        prefetch_ids: List[str] = []
        if self.placement is not None:
            # Warm up with the fleet's current hot set: the cold start
            # grows (each prefetched adapter pays a synchronous swap)
            # but the replica comes online useful instead of cold.
            prefetch_ids = self.placement.prefetch_plan(engine)
        cold = estimate_cold_start_s(engine, cfg,
                                     prefetch_ids=prefetch_ids or None)
        stall = 1.0
        if engine.faults is not None:
            stall = engine.faults.scale_stall_factor(engine.engine_id, now)
        if stall > 1.0:
            self.cluster_metrics.scale_stalls += 1
        rep = Replica(engine=engine, state=ReplicaState.WARMING,
                      spawned_at=now, warm_until=now + cold * stall)
        self.replicas.append(rep)
        self._replica_of[rep.replica_id] = rep
        if self.placement is not None:
            self.placement.apply_prefetch(engine, prefetch_ids, now)
            self.placement.register_replica(engine)
            self.cluster_metrics.adapters_prefetched += len(prefetch_ids)
        pool_tag = f" [{pool}]" if pool is not None else ""
        self._record_event(now, "spawn", rep,
                           f"cold start {cold * stall:.3f}s{pool_tag}")
        return True

    def _drain_one(self, now: float, pool: Optional[str] = None,
                   scaler: Optional[Autoscaler] = None) -> None:
        """Quiesce the scale-down victim: worst health, then emptiest."""
        if scaler is None:
            scaler = self.autoscaler
        cfg = scaler.config
        candidates = [rep for rep in self._pool_members(
                          pool, ReplicaState.ACTIVE)
                      if not rep.engine.failed]
        if len(candidates) <= cfg.min_replicas:
            return
        scores = self.health_scores([rep.engine for rep in candidates])
        if self.placement is not None:
            # Among equal-health candidates, retire the cache-coldest
            # replica: the one whose resident adapters would cost the
            # least swap traffic to rebuild on the survivors.
            def _key(cs):
                return (cs[1],
                        self.placement.replica_cache_value(
                            cs[0].replica_id),
                        cs[0].engine.num_live, cs[0].replica_id)
        else:
            def _key(cs):
                return (cs[1], cs[0].engine.num_live, cs[0].replica_id)
        rep, score = min(zip(candidates, scores), key=_key)
        rep.start_drain(now)
        self._record_event(now, "drain", rep,
                           f"scale down (health {score:.3f})")

    def _abort_unplaceable(self, now: float) -> None:
        """No live replicas and no way to spawn any: fail the queue.

        The autoscaled analogue of the static path's no-survivor abort;
        only reachable once the spawn budget is exhausted or the
        factory is gone, since min-replica healing otherwise
        re-provisions.
        """
        if not self._undispatched:
            return
        # Disaggregated: the queue can only ever drain through the
        # prefill pool, so decode-only survivors do not count.
        pool = PREFILL_POOL if self.disagg is not None else None
        if self._pool_members(pool, ReplicaState.WARMING,
                              ReplicaState.ACTIVE, ReplicaState.DRAINING):
            return
        if self._can_spawn(pool):
            return
        while self._undispatched:
            r = heapq.heappop(self._undispatched)[-1]
            if r.request_id in self._accepted:
                self.cluster_metrics.hedge_losses += 1
                if not r.is_hedge:
                    self._mirror_outcome(r)
                continue
            if r.is_hedge:
                self._hedged_rids.discard(r.request_id)
                self.cluster_metrics.hedge_losses += 1
                continue
            self._cluster_abort(r, max(r.arrival_time, now))

    def _quiescent(self) -> bool:
        if self._undispatched:
            return False
        # Undelivered completions on a live (possibly partitioned)
        # replica block quiescence: the loop keeps epoching until the
        # partition heals and delivers, or confirmation seizes them.
        # Zombie mail never blocks — it only ever fences.
        return all(
            rep.engine.num_live == 0 and not rep.engine.completion_outbox
            for rep in self._members(ReplicaState.WARMING,
                                     ReplicaState.ACTIVE,
                                     ReplicaState.DRAINING)
        )

    def _finalize_lifetimes(self, end: float) -> None:
        """Charge still-live replicas' GPU seconds up to the run's end."""
        for rep in self._members(ReplicaState.WARMING, ReplicaState.ACTIVE,
                                 ReplicaState.DRAINING):
            t = max(end, rep.engine.clock.now)
            if (rep.state is ReplicaState.DRAINING
                    and rep.drain_started_at is not None):
                self.cluster_metrics.draining_time_s += (
                    t - rep.drain_started_at
                )
            self.cluster_metrics.gpu_seconds_total += max(
                0.0, t - rep.spawned_at
            )

    # -- failover helpers ------------------------------------------------------------

    def _cluster_abort(self, r: Request, now: float,
                       reason: AbortReason = AbortReason.ENGINE_FAILED
                       ) -> None:
        """Terminalize a request the cluster itself gave up on."""
        r.abort(now, reason)
        self.cluster_metrics.record_abort(r)

    def _vet_orphans(self, orphans: List[Request]) -> List[Request]:
        """Filter failover orphans before they rejoin the queue.

        Hedge housekeeping first: a twin orphaned off a dead host is
        simply a lost race (its primary still carries the request), and
        an original whose id already has an accepted terminal — the twin
        won while the primary's host was failing — mirrors the winner's
        outcome instead of re-homing.  Of the real survivors, those past
        the failover budget abort (``requeue_limit_aborts``); when a
        retry budget is attached, each remaining requeue must also buy a
        token, so correlated failures degrade into aborts instead of an
        unbounded retry storm.
        """
        kept: List[Request] = []
        for r in orphans:
            rid = r.request_id
            if rid in self._accepted:
                self.cluster_metrics.hedge_losses += 1
                if not r.is_hedge:
                    self._mirror_outcome(r)
                continue
            if r.is_hedge:
                self._hedged_rids.discard(rid)
                self.cluster_metrics.hedge_losses += 1
                continue
            if (self.max_requeues is not None
                    and r.requeues > self.max_requeues):
                self._cluster_abort(r, r.arrival_time)
                self.cluster_metrics.requeue_limit_aborts += 1
                continue
            if (self.retry_budget is not None
                    and not self.retry_budget.try_spend(r.priority)):
                self.cluster_metrics.retry_budget_exhausted += 1
                self._cluster_abort(r, r.arrival_time)
                continue
            kept.append(r)
        return kept

    def _apply_requeue_backoff(self, orphans: Sequence[Request]) -> None:
        """Space repeated requeues out with capped exponential backoff.

        With a :class:`TimeoutPolicy` attached, the policy's base/cap
        override the legacy knobs and the cap is additionally clamped
        to the request's remaining deadline — backing off past a
        deadline only converts a retry into a guaranteed deadline
        abort.
        """
        policy = self.timeout_policy
        if policy is None and self.requeue_backoff_s <= 0:
            return
        for r in orphans:
            if policy is not None:
                delay = policy.requeue_backoff(
                    r.requeues, self.requeue_backoff_s,
                    self.requeue_backoff_cap_s, deadline_s=r.deadline_s,
                )
            else:
                delay = capped_exponential_backoff(
                    self.requeue_backoff_s, r.requeues,
                    self.requeue_backoff_cap_s,
                )
            r.arrival_time += delay

    def _failover_dispatch(self, orphans: Sequence[Request],
                           survivors: Sequence[ServingEngine]) -> None:
        """Least-loaded requeue of orphans onto surviving engines.

        With ``health_aware`` the same 1/score load inflation used at
        submit time applies, steering orphans away from stragglers —
        the replicas most likely to fail next.
        """
        allowed, scores = self._routable(survivors)
        loads = {
            i: sum(req.remaining for req in survivors[i].pending_requests)
            + len(survivors[i]._active)
            for i in allowed
        }
        for r in sorted(orphans, key=lambda q: (q.arrival_time,
                                                q.request_id)):
            if self.health_aware:
                i = min(allowed,
                        key=lambda j: (loads[j] / max(scores[j], 1e-6), j))
            else:
                i = min(allowed, key=lambda j: (loads[j], j))
            survivors[i].submit([r])
            loads[i] += r.remaining

    def per_engine_completed(self) -> List[int]:
        """Completed request count per replica (load-balance visibility)."""
        return [e.metrics.num_completed for e in self.engines]

    @classmethod
    def replicate(cls, factory: Callable[[], ServingEngine],
                  num_gpus: int, dispatch: str = "least-loaded",
                  **kwargs) -> "MultiGPUServer":
        """Build ``num_gpus`` identical engines from a factory.

        The factory is kept as the cluster's ``engine_factory`` so an
        attached autoscaler can spawn more replicas from the same mold.
        """
        if num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {num_gpus}")
        kwargs.setdefault("engine_factory", factory)
        return cls([factory() for _ in range(num_gpus)], dispatch=dispatch,
                   **kwargs)
