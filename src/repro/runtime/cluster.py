"""Multi-GPU serving (Table 3) with pluggable inter-GPU dispatch.

V-LoRA scales across GPUs by replicating the engine (base model +
adapter pool) per device; §6.4's Table 3 measures the simple
data-parallel deployment.  Inter-GPU scheduling (dLoRA-style) is the
paper's future work — three dispatch policies are provided here:

* ``least-loaded`` — send each request to the replica with the fewest
  queued decode rounds (Table 3's configuration);
* ``round-robin`` — cycle replicas;
* ``adapter-affinity`` — pin each adapter's requests to a home replica
  (hashed), making every replica's workload maximally merge-friendly for
  Algorithm 1 at the cost of load imbalance under skew.

All three policies route around *dead* replicas (an engine whose fault
schedule has already killed it receives no fresh traffic — it would all
come straight back as failover orphans), and, with ``health_aware=True``,
also around *unhealthy* ones: each replica carries a health score
(:meth:`~repro.runtime.engine.ServingEngine.health_snapshot` — death,
EWMA iteration slowdown vs the median peer, queue depth) and dispatch
avoids replicas scoring below ``health_floor``.
"""

from __future__ import annotations

import zlib
from typing import Callable, List, Optional, Sequence

from repro.runtime.engine import ServingEngine
from repro.runtime.metrics import MetricsCollector
from repro.runtime.request import AbortReason, Request

DISPATCH_POLICIES = ("least-loaded", "round-robin", "adapter-affinity")


class MultiGPUServer:
    """Dispatches requests over independent per-GPU engines.

    When a :class:`~repro.runtime.faults.FaultInjector` kills an engine
    mid-run, :meth:`run` requeues its in-flight requests onto surviving
    engines (failover); with no survivors the orphans are aborted with
    ``AbortReason.ENGINE_FAILED``.

    Failover requeue is *bounded*: ``max_requeues`` caps how many hosts
    one request may lose before the cluster gives up on it
    (``None`` = only bounded by the engine count, the legacy behavior),
    and ``requeue_backoff_s`` spaces repeated requeues of the same
    request out with capped exponential backoff so a cascading failure
    does not instantly pile every orphan onto the next victim.
    """

    def __init__(self, engines: Sequence[ServingEngine],
                 dispatch: str = "least-loaded", *,
                 health_aware: bool = False,
                 health_floor: float = 0.25,
                 max_requeues: Optional[int] = None,
                 requeue_backoff_s: float = 0.0,
                 requeue_backoff_cap_s: float = 5.0):
        if not engines:
            raise ValueError("need at least one engine")
        if dispatch not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch {dispatch!r}; expected one of "
                f"{DISPATCH_POLICIES}"
            )
        if not 0.0 <= health_floor < 1.0:
            raise ValueError(f"health_floor must be in [0, 1), got {health_floor}")
        if max_requeues is not None and max_requeues < 1:
            raise ValueError(f"max_requeues must be >= 1, got {max_requeues}")
        if requeue_backoff_s < 0 or requeue_backoff_cap_s <= 0:
            raise ValueError("requeue backoff times must be >= 0 / positive")
        self.engines = list(engines)
        self.dispatch = dispatch
        self.health_aware = health_aware
        self.health_floor = health_floor
        self.max_requeues = max_requeues
        self.requeue_backoff_s = requeue_backoff_s
        self.requeue_backoff_cap_s = requeue_backoff_cap_s
        self._rr_next = 0
        #: Cluster-level events (failover, no-survivor aborts) that do
        #: not belong to any single replica's collector.
        self.cluster_metrics = MetricsCollector()
        # Give replicas distinct identities so engine-targeted fault
        # specs (ENGINE_FAIL / ENGINE_SLOW) can name them, unless the
        # caller already assigned ids.
        if len({e.engine_id for e in self.engines}) != len(self.engines):
            for i, engine in enumerate(self.engines):
                engine.engine_id = f"gpu-{i}"

    @property
    def num_gpus(self) -> int:
        return len(self.engines)

    # -- health ------------------------------------------------------------------

    def health_scores(self,
                      engines: Optional[Sequence[ServingEngine]] = None,
                      ) -> List[float]:
        """Health score per replica in [0, 1] (0 = dead).

        Slowdown is judged against the median peer EWMA so one straggler
        cannot drag the whole cluster's reference point down with it.
        """
        engines = self.engines if engines is None else list(engines)
        snaps = [e.health_snapshot() for e in engines]
        ewmas = sorted(
            s.iter_ewma for s in snaps if s.iter_ewma is not None
        )
        peer = None
        if ewmas:
            mid = len(ewmas) // 2
            peer = (ewmas[mid] if len(ewmas) % 2
                    else (ewmas[mid - 1] + ewmas[mid]) / 2.0)
        queue_norm = max(4 * e.config.max_batch_size for e in engines)
        return [s.score(peer, queue_norm=queue_norm) for s in snaps]

    # -- dispatch ----------------------------------------------------------------

    def _routable(self, engines: Sequence[ServingEngine]):
        """(allowed indices, scores) for dispatch over ``engines``.

        Dead replicas are always excluded (their fault schedule already
        killed them); ``health_aware`` additionally drops replicas below
        ``health_floor``.  If exclusion would leave nothing routable the
        full set is returned — dispatch must place every request
        somewhere, and failover / no-survivor abort handles the rest.
        """
        scores = self.health_scores(engines)
        dead = [e.health_snapshot().dead for e in engines]
        allowed = [i for i in range(len(engines)) if not dead[i]]
        if self.health_aware:
            healthy = [i for i in allowed if scores[i] >= self.health_floor]
            if healthy:
                allowed = healthy
        if not allowed:
            allowed = list(range(len(engines)))
        return allowed, scores

    def submit(self, requests: Sequence[Request]) -> None:
        """Dispatch each request to a replica per the configured policy."""
        ordered = sorted(requests, key=lambda q: (q.arrival_time,
                                                  q.request_id))
        allowed, scores = self._routable(self.engines)
        if self.dispatch == "least-loaded":
            self._submit_least_loaded(ordered, allowed, scores)
        elif self.dispatch == "round-robin":
            self._submit_round_robin(ordered, allowed)
        else:
            self._submit_affinity(ordered, allowed)

    def _submit_least_loaded(self, requests: Sequence[Request],
                             allowed: List[int],
                             scores: List[float]) -> None:
        # Load measured in queued decode rounds (a better proxy than
        # request count when tasks differ in output length); with
        # health_aware, load is inflated by 1/score so a straggling
        # replica must be *much* emptier before it wins a request.
        loads = {
            i: sum(req.remaining for req in self.engines[i].pending_requests)
            for i in allowed
        }
        for r in requests:
            if self.health_aware:
                i = min(allowed,
                        key=lambda j: (loads[j] / max(scores[j], 1e-6), j))
            else:
                i = min(allowed, key=lambda j: (loads[j], j))
            self.engines[i].submit([r])
            loads[i] += r.remaining

    def _submit_round_robin(self, requests: Sequence[Request],
                            allowed: List[int]) -> None:
        allowed_set = set(allowed)
        for r in requests:
            # Advance the cursor past excluded replicas; bounded by one
            # full cycle since ``allowed`` is never empty.
            for _ in range(self.num_gpus):
                if self._rr_next % self.num_gpus in allowed_set:
                    break
                self._rr_next += 1
            self.engines[self._rr_next % self.num_gpus].submit([r])
            self._rr_next += 1

    def _submit_affinity(self, requests: Sequence[Request],
                         allowed: List[int]) -> None:
        allowed_set = set(allowed)
        for r in requests:
            home = zlib.crc32(r.adapter_id.encode("utf-8")) % self.num_gpus
            # Linear probe from the hashed home keeps each adapter's
            # re-homed traffic together on the same fallback replica.
            for _ in range(self.num_gpus):
                if home in allowed_set:
                    break
                home = (home + 1) % self.num_gpus
            self.engines[home].submit([r])

    # -- execution ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> MetricsCollector:
        """Run every engine to completion, failing over dead engines.

        Engines run sequentially on independent sim clocks.  After each
        pass, requests stranded on failed engines are requeued onto
        survivors (which then resume); the loop is bounded because each
        engine can fail at most once.  The returned collector folds the
        cluster-level events (failover requeues, requeue-limit and
        no-survivor aborts) in with every replica's metrics, so
        ``summary()`` accounts for every submitted request.
        """
        for e in self.engines:
            e.run(until=until)
        for _ in range(len(self.engines)):
            stranded = [e for e in self.engines if e.failed and e.num_live]
            if not stranded:
                break
            survivors = [e for e in self.engines if not e.failed]
            orphans: List[Request] = []
            for e in stranded:
                orphans.extend(e.drain_orphans())
            orphans = self._cap_requeues(orphans)
            if not survivors:
                for r in orphans:
                    r.abort(r.arrival_time, AbortReason.ENGINE_FAILED)
                    self.cluster_metrics.record_abort(r)
                break
            if orphans:
                self._apply_requeue_backoff(orphans)
                self.cluster_metrics.failover_events += len(orphans)
                self._failover_dispatch(orphans, survivors)
            for e in survivors:
                e.run(until=until)
        merged = MetricsCollector()
        merged.merge_from(self.cluster_metrics)
        for e in self.engines:
            merged.merge_from(e.metrics)
        return merged

    def _cap_requeues(self, orphans: List[Request]) -> List[Request]:
        """Abort orphans that already burned their requeue budget."""
        if self.max_requeues is None:
            return orphans
        kept: List[Request] = []
        for r in orphans:
            if r.requeues > self.max_requeues:
                r.abort(r.arrival_time, AbortReason.ENGINE_FAILED)
                self.cluster_metrics.record_abort(r)
                self.cluster_metrics.requeue_limit_aborts += 1
            else:
                kept.append(r)
        return kept

    def _apply_requeue_backoff(self, orphans: Sequence[Request]) -> None:
        """Space repeated requeues out with capped exponential backoff."""
        if self.requeue_backoff_s <= 0:
            return
        for r in orphans:
            delay = min(
                self.requeue_backoff_s * 2 ** max(0, r.requeues - 1),
                self.requeue_backoff_cap_s,
            )
            r.arrival_time += delay

    def _failover_dispatch(self, orphans: Sequence[Request],
                           survivors: Sequence[ServingEngine]) -> None:
        """Least-loaded requeue of orphans onto surviving engines.

        With ``health_aware`` the same 1/score load inflation used at
        submit time applies, steering orphans away from stragglers —
        the replicas most likely to fail next.
        """
        allowed, scores = self._routable(survivors)
        loads = {
            i: sum(req.remaining for req in survivors[i].pending_requests)
            + len(survivors[i]._active)
            for i in allowed
        }
        for r in sorted(orphans, key=lambda q: (q.arrival_time,
                                                q.request_id)):
            if self.health_aware:
                i = min(allowed,
                        key=lambda j: (loads[j] / max(scores[j], 1e-6), j))
            else:
                i = min(allowed, key=lambda j: (loads[j], j))
            survivors[i].submit([r])
            loads[i] += r.remaining

    def per_engine_completed(self) -> List[int]:
        """Completed request count per replica (load-balance visibility)."""
        return [e.metrics.num_completed for e in self.engines]

    @classmethod
    def replicate(cls, factory: Callable[[], ServingEngine],
                  num_gpus: int, dispatch: str = "least-loaded",
                  **kwargs) -> "MultiGPUServer":
        """Build ``num_gpus`` identical engines from a factory."""
        if num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {num_gpus}")
        return cls([factory() for _ in range(num_gpus)], dispatch=dispatch,
                   **kwargs)
