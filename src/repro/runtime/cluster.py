"""Multi-GPU serving (Table 3) with pluggable inter-GPU dispatch.

V-LoRA scales across GPUs by replicating the engine (base model +
adapter pool) per device; §6.4's Table 3 measures the simple
data-parallel deployment.  Inter-GPU scheduling (dLoRA-style) is the
paper's future work — three dispatch policies are provided here:

* ``least-loaded`` — send each request to the replica with the fewest
  queued decode rounds (Table 3's configuration);
* ``round-robin`` — cycle replicas;
* ``adapter-affinity`` — pin each adapter's requests to a home replica
  (hashed), making every replica's workload maximally merge-friendly for
  Algorithm 1 at the cost of load imbalance under skew.
"""

from __future__ import annotations

import zlib
from typing import Callable, List, Optional, Sequence

from repro.runtime.engine import ServingEngine
from repro.runtime.metrics import MetricsCollector
from repro.runtime.request import Request

DISPATCH_POLICIES = ("least-loaded", "round-robin", "adapter-affinity")


class MultiGPUServer:
    """Dispatches requests over independent per-GPU engines."""

    def __init__(self, engines: Sequence[ServingEngine],
                 dispatch: str = "least-loaded"):
        if not engines:
            raise ValueError("need at least one engine")
        if dispatch not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch {dispatch!r}; expected one of "
                f"{DISPATCH_POLICIES}"
            )
        self.engines = list(engines)
        self.dispatch = dispatch
        self._rr_next = 0

    @property
    def num_gpus(self) -> int:
        return len(self.engines)

    # -- dispatch ----------------------------------------------------------------

    def submit(self, requests: Sequence[Request]) -> None:
        """Dispatch each request to a replica per the configured policy."""
        ordered = sorted(requests, key=lambda q: (q.arrival_time,
                                                  q.request_id))
        if self.dispatch == "least-loaded":
            self._submit_least_loaded(ordered)
        elif self.dispatch == "round-robin":
            self._submit_round_robin(ordered)
        else:
            self._submit_affinity(ordered)

    def _submit_least_loaded(self, requests: Sequence[Request]) -> None:
        # Load measured in queued decode rounds (a better proxy than
        # request count when tasks differ in output length).
        loads = [
            sum(req.remaining for req in e._pending) for e in self.engines
        ]
        for r in requests:
            i = loads.index(min(loads))
            self.engines[i].submit([r])
            loads[i] += r.remaining

    def _submit_round_robin(self, requests: Sequence[Request]) -> None:
        for r in requests:
            self.engines[self._rr_next % self.num_gpus].submit([r])
            self._rr_next += 1

    def _submit_affinity(self, requests: Sequence[Request]) -> None:
        for r in requests:
            home = zlib.crc32(r.adapter_id.encode("utf-8")) % self.num_gpus
            self.engines[home].submit([r])

    # -- execution ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> MetricsCollector:
        """Run every engine to completion and merge their metrics."""
        merged = MetricsCollector()
        for e in self.engines:
            m = e.run(until=until)
            merged.records.extend(m.records)
            for mode, count in m.mode_iterations.items():
                merged.mode_iterations[mode] = (
                    merged.mode_iterations.get(mode, 0) + count
                )
            merged.num_mode_switches += m.num_mode_switches
            merged.num_preemptions += m.num_preemptions
            merged.switch_time_total += m.switch_time_total
            merged.lora_extra_time_total += m.lora_extra_time_total
            merged.iterations += m.iterations
        return merged

    def per_engine_completed(self) -> List[int]:
        """Completed request count per replica (load-balance visibility)."""
        return [e.metrics.num_completed for e in self.engines]

    @classmethod
    def replicate(cls, factory: Callable[[], ServingEngine],
                  num_gpus: int, dispatch: str = "least-loaded",
                  ) -> "MultiGPUServer":
        """Build ``num_gpus`` identical engines from a factory."""
        if num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {num_gpus}")
        return cls([factory() for _ in range(num_gpus)], dispatch=dispatch)
