"""Multi-GPU serving (Table 3) with pluggable inter-GPU dispatch.

V-LoRA scales across GPUs by replicating the engine (base model +
adapter pool) per device; §6.4's Table 3 measures the simple
data-parallel deployment.  Inter-GPU scheduling (dLoRA-style) is the
paper's future work — three dispatch policies are provided here:

* ``least-loaded`` — send each request to the replica with the fewest
  queued decode rounds (Table 3's configuration);
* ``round-robin`` — cycle replicas;
* ``adapter-affinity`` — pin each adapter's requests to a home replica
  (hashed), making every replica's workload maximally merge-friendly for
  Algorithm 1 at the cost of load imbalance under skew.

All three policies route around *dead* replicas (an engine whose fault
schedule has already killed it receives no fresh traffic — it would all
come straight back as failover orphans), and, with ``health_aware=True``,
also around *unhealthy* ones: each replica carries a health score
(:meth:`~repro.runtime.engine.ServingEngine.health_snapshot` — death,
EWMA iteration slowdown vs the median peer, queue depth) and dispatch
avoids replicas scoring below ``health_floor``.

The replica set itself can be **elastic**: attach an
:class:`~repro.runtime.autoscaler.Autoscaler` (plus an
``engine_factory``) and :meth:`run` switches from the static
run-to-completion loop to an epoched control loop in which replicas
move through the WARMING → ACTIVE → DRAINING → DEAD lifecycle, new
replicas pay a modeled cold start before serving, scale-downs drain
gracefully through the requeue machinery, and a failed replica's
orphans re-enter the shared dispatch queue.  Without an autoscaler the
static code path is untouched — metrics are bit-identical to the
pre-lifecycle cluster.
"""

from __future__ import annotations

import heapq
import zlib
from typing import Callable, List, Optional, Sequence, Tuple

from repro.runtime.autoscaler import (
    Autoscaler,
    Replica,
    ReplicaState,
    estimate_cold_start_s,
)
from repro.runtime.engine import ServingEngine
from repro.runtime.metrics import MetricsCollector, ScaleEvent
from repro.runtime.request import AbortReason, Request

DISPATCH_POLICIES = ("least-loaded", "round-robin", "adapter-affinity")


class MultiGPUServer:
    """Dispatches requests over independent per-GPU engines.

    When a :class:`~repro.runtime.faults.FaultInjector` kills an engine
    mid-run, :meth:`run` requeues its in-flight requests onto surviving
    engines (failover); with no survivors the orphans are aborted with
    ``AbortReason.ENGINE_FAILED``.

    Failover requeue is *bounded*: ``max_requeues`` caps how many hosts
    one request may lose before the cluster gives up on it
    (``None`` = only bounded by the engine count, the legacy behavior),
    and ``requeue_backoff_s`` spaces repeated requeues of the same
    request out with capped exponential backoff so a cascading failure
    does not instantly pile every orphan onto the next victim.  Only
    *failover* hops burn that budget — voluntary drain re-homing during
    scale-down charges the request's ``drain_hops`` instead.

    With ``autoscaler`` set (requires ``engine_factory``), the replica
    set is elastic: :meth:`submit` parks requests in a cluster-level
    queue and :meth:`run` dispatches them epoch by epoch to whatever
    replicas are ACTIVE at that moment.
    """

    #: Epoch-count backstop for the autoscaled control loop.
    _MAX_EPOCHS = 1_000_000

    def __init__(self, engines: Sequence[ServingEngine],
                 dispatch: str = "least-loaded", *,
                 health_aware: bool = False,
                 health_floor: float = 0.25,
                 max_requeues: Optional[int] = None,
                 requeue_backoff_s: float = 0.0,
                 requeue_backoff_cap_s: float = 5.0,
                 autoscaler: Optional[Autoscaler] = None,
                 engine_factory: Optional[
                     Callable[[], ServingEngine]] = None):
        engines = list(engines)
        if not engines:
            raise ValueError("need at least one engine")
        if dispatch not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch {dispatch!r}; expected one of "
                f"{DISPATCH_POLICIES}"
            )
        if not 0.0 <= health_floor < 1.0:
            raise ValueError(f"health_floor must be in [0, 1), got {health_floor}")
        if max_requeues is not None and max_requeues < 1:
            raise ValueError(f"max_requeues must be >= 1, got {max_requeues}")
        if requeue_backoff_s < 0 or requeue_backoff_cap_s <= 0:
            raise ValueError("requeue backoff times must be >= 0 / positive")
        if autoscaler is not None and engine_factory is None:
            raise ValueError(
                "autoscaling needs an engine_factory to spawn replicas"
            )
        self.dispatch = dispatch
        self.health_aware = health_aware
        self.health_floor = health_floor
        self.max_requeues = max_requeues
        self.requeue_backoff_s = requeue_backoff_s
        self.requeue_backoff_cap_s = requeue_backoff_cap_s
        self.autoscaler = autoscaler
        self.engine_factory = engine_factory
        self._rr_next = 0
        #: Cluster-level events (failover, no-survivor aborts, scale
        #: events) that do not belong to any single replica's collector.
        self.cluster_metrics = MetricsCollector()
        # Give replicas distinct identities so engine-targeted fault
        # specs (ENGINE_FAIL / ENGINE_SLOW) can name them, unless the
        # caller already assigned ids.
        if len({e.engine_id for e in engines}) != len(engines):
            for i, engine in enumerate(engines):
                engine.engine_id = f"gpu-{i}"
        #: Every replica ever part of the cluster, append-only; the
        #: initial set starts ACTIVE at t=0 (no cold start — they are
        #: the provisioned baseline).
        self.replicas: List[Replica] = [
            Replica(engine=e, state=ReplicaState.ACTIVE,
                    spawned_at=0.0, activated_at=0.0)
            for e in engines
        ]
        self._replica_of = {rep.replica_id: rep for rep in self.replicas}
        self._next_replica_idx = len(self.replicas)
        self._spawns_used = 0
        #: Requests accepted but not yet placed on a replica
        #: (autoscaled mode only), ordered by (arrival, id).
        self._undispatched: List[Tuple[float, int, Request]] = []
        # Per-collector (records, aborts) read cursors for incremental
        # SLO-attainment sampling between scale decisions.
        self._slo_cursor = {}

    @property
    def engines(self) -> List[ServingEngine]:
        """Engines of every non-DEAD replica (static mode: all of them)."""
        return [rep.engine for rep in self.replicas
                if rep.state is not ReplicaState.DEAD]

    @property
    def num_gpus(self) -> int:
        return len(self.engines)

    def _members(self, *states: ReplicaState) -> List[Replica]:
        return [rep for rep in self.replicas if rep.state in states]

    # -- health ------------------------------------------------------------------

    def health_scores(self,
                      engines: Optional[Sequence[ServingEngine]] = None,
                      ) -> List[float]:
        """Health score per replica in [0, 1] (0 = dead).

        Slowdown is judged against the median peer EWMA so one straggler
        cannot drag the whole cluster's reference point down with it.
        """
        engines = self.engines if engines is None else list(engines)
        if not engines:
            return []
        snaps = [e.health_snapshot() for e in engines]
        ewmas = sorted(
            s.iter_ewma for s in snaps if s.iter_ewma is not None
        )
        peer = None
        if ewmas:
            mid = len(ewmas) // 2
            peer = (ewmas[mid] if len(ewmas) % 2
                    else (ewmas[mid - 1] + ewmas[mid]) / 2.0)
        queue_norm = max(4 * e.config.max_batch_size for e in engines)
        return [s.score(peer, queue_norm=queue_norm) for s in snaps]

    # -- dispatch ----------------------------------------------------------------

    def _accepts_dispatch(self, engine: ServingEngine) -> bool:
        """Lifecycle gate: only ACTIVE replicas take fresh traffic."""
        rep = self._replica_of.get(engine.engine_id)
        return rep is None or rep.state is ReplicaState.ACTIVE

    def _routable(self, engines: Sequence[ServingEngine]):
        """(allowed indices, scores) for dispatch over ``engines``.

        Dead replicas are always excluded (their fault schedule already
        killed them), as are replicas outside the ACTIVE lifecycle state
        (WARMING replicas are not ready; DRAINING ones refuse new work);
        ``health_aware`` additionally drops replicas below
        ``health_floor``.  If exclusion would leave nothing routable the
        widest lifecycle-eligible set is returned — dispatch must place
        every request somewhere, and failover / no-survivor abort
        handles the rest.
        """
        scores = self.health_scores(engines)
        dead = [e.health_snapshot().dead for e in engines]
        allowed = [i for i in range(len(engines))
                   if not dead[i] and self._accepts_dispatch(engines[i])]
        if self.health_aware:
            healthy = [i for i in allowed if scores[i] >= self.health_floor]
            if healthy:
                allowed = healthy
        if not allowed:
            eligible = [i for i in range(len(engines))
                        if self._accepts_dispatch(engines[i])]
            allowed = eligible or list(range(len(engines)))
        return allowed, scores

    def submit(self, requests: Sequence[Request]) -> None:
        """Accept requests: dispatch now (static) or queue (autoscaled).

        A static cluster places every request on a replica immediately,
        per the configured policy.  An autoscaled cluster cannot — the
        replica a request should land on may not exist yet — so requests
        wait in a cluster-level queue until their arrival epoch.
        """
        if self.autoscaler is not None:
            for r in requests:
                heapq.heappush(
                    self._undispatched, (r.arrival_time, r.request_id, r)
                )
            return
        self._dispatch(requests, self.engines)

    def _dispatch(self, requests: Sequence[Request],
                  engines: Sequence[ServingEngine]) -> None:
        """Place ``requests`` across ``engines`` per the policy."""
        ordered = sorted(requests, key=lambda q: (q.arrival_time,
                                                  q.request_id))
        allowed, scores = self._routable(engines)
        if self.dispatch == "least-loaded":
            self._submit_least_loaded(ordered, engines, allowed, scores)
        elif self.dispatch == "round-robin":
            self._submit_round_robin(ordered, engines, allowed)
        else:
            self._submit_affinity(ordered, engines, allowed)

    def _submit_least_loaded(self, requests: Sequence[Request],
                             engines: Sequence[ServingEngine],
                             allowed: List[int],
                             scores: List[float]) -> None:
        # Load measured in queued decode rounds (a better proxy than
        # request count when tasks differ in output length); with
        # health_aware, load is inflated by 1/score so a straggling
        # replica must be *much* emptier before it wins a request.
        loads = {
            i: sum(req.remaining for req in engines[i].pending_requests)
            for i in allowed
        }
        for r in requests:
            if self.health_aware:
                i = min(allowed,
                        key=lambda j: (loads[j] / max(scores[j], 1e-6), j))
            else:
                i = min(allowed, key=lambda j: (loads[j], j))
            engines[i].submit([r])
            loads[i] += r.remaining

    def _submit_round_robin(self, requests: Sequence[Request],
                            engines: Sequence[ServingEngine],
                            allowed: List[int]) -> None:
        n = len(engines)
        allowed_set = set(allowed)
        for r in requests:
            # Advance the cursor past excluded replicas; bounded by one
            # full cycle since ``allowed`` is never empty.
            for _ in range(n):
                if self._rr_next % n in allowed_set:
                    break
                self._rr_next += 1
            engines[self._rr_next % n].submit([r])
            self._rr_next += 1

    def _submit_affinity(self, requests: Sequence[Request],
                         engines: Sequence[ServingEngine],
                         allowed: List[int]) -> None:
        n = len(engines)
        allowed_set = set(allowed)
        for r in requests:
            home = zlib.crc32(r.adapter_id.encode("utf-8")) % n
            # Linear probe from the hashed home keeps each adapter's
            # re-homed traffic together on the same fallback replica.
            for _ in range(n):
                if home in allowed_set:
                    break
                home = (home + 1) % n
            engines[home].submit([r])

    # -- execution ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> MetricsCollector:
        """Run the cluster to completion; returns the merged metrics.

        Static clusters run every engine to completion with failover
        (:meth:`_run_static`); autoscaled clusters run the epoched
        lifecycle control loop (:meth:`_run_autoscaled`).  Either way
        the returned collector folds cluster-level events (failover
        requeues, requeue-limit and no-survivor aborts, scale events)
        in with every replica's metrics, so ``summary()`` accounts for
        every submitted request.
        """
        if self.autoscaler is not None:
            return self._run_autoscaled(until)
        return self._run_static(until)

    def _run_static(self, until: Optional[float]) -> MetricsCollector:
        """Run every engine to completion, failing over dead engines.

        Engines run sequentially on independent sim clocks.  After each
        pass, requests stranded on failed engines are requeued onto
        survivors (which then resume); the loop is bounded because each
        engine can fail at most once.
        """
        for e in self.engines:
            e.run(until=until)
        for _ in range(len(self.engines)):
            stranded = [e for e in self.engines if e.failed and e.num_live]
            if not stranded:
                break
            survivors = [e for e in self.engines if not e.failed]
            orphans: List[Request] = []
            for e in stranded:
                orphans.extend(e.drain_orphans())
            orphans = self._cap_requeues(orphans)
            if not survivors:
                for r in orphans:
                    r.abort(r.arrival_time, AbortReason.ENGINE_FAILED)
                    self.cluster_metrics.record_abort(r)
                break
            if orphans:
                self._apply_requeue_backoff(orphans)
                self.cluster_metrics.failover_events += len(orphans)
                self._failover_dispatch(orphans, survivors)
            for e in survivors:
                e.run(until=until)
        return self._merged_metrics()

    def _merged_metrics(self) -> MetricsCollector:
        merged = MetricsCollector()
        merged.merge_from(self.cluster_metrics)
        for rep in self.replicas:
            merged.merge_from(rep.engine.metrics)
        return merged

    # -- autoscaled control loop ---------------------------------------------------

    def _run_autoscaled(self, until: Optional[float]) -> MetricsCollector:
        """Epoched lifecycle loop: warm, dispatch, run, fail over, drain,
        scale.

        Control time advances in ``interval_s`` steps.  Each epoch:
        replicas whose warm-up finished turn ACTIVE; due requests are
        dispatched to ACTIVE replicas; ACTIVE and DRAINING engines run
        to the epoch boundary on their own sim clocks; failed replicas
        hand their orphans back to the queue and die; empty (or
        timed-out) DRAINING replicas retire; finally the autoscaler
        observes queue depth and SLO attainment and may spawn or drain
        a replica.  The loop ends when no undispatched or in-flight
        work remains (or at ``until``).
        """
        assert self.autoscaler is not None
        cfg = self.autoscaler.config
        now = 0.0
        for _ in range(self._MAX_EPOCHS):
            t_next = now + cfg.interval_s
            if until is not None:
                t_next = min(t_next, until)
            self._activate_warm(now)
            self._dispatch_due(t_next)
            for rep in self._members(ReplicaState.ACTIVE,
                                     ReplicaState.DRAINING):
                rep.engine.run(until=t_next)
            self._failover_pass(t_next)
            self._drain_pass(t_next)
            now = t_next
            if until is not None and now >= until:
                break
            if self._quiescent():
                break
            self._scale_pass(now)
            self._abort_unplaceable(now)
        else:
            raise RuntimeError(
                f"autoscaled cluster did not converge within "
                f"{self._MAX_EPOCHS} control epochs (t={now:.1f}s)"
            )
        self._finalize_lifetimes(now)
        return self._merged_metrics()

    def _record_event(self, now: float, action: str, rep: Replica,
                      reason: str) -> None:
        self.cluster_metrics.record_scale_event(ScaleEvent(
            time=now, action=action, replica_id=rep.replica_id,
            reason=reason,
            num_members=len(self._members(ReplicaState.WARMING,
                                          ReplicaState.ACTIVE,
                                          ReplicaState.DRAINING)),
        ))

    def _activate_warm(self, now: float) -> None:
        for rep in self._members(ReplicaState.WARMING):
            if rep.warm_until <= now:
                rep.activate(rep.warm_until)
                # Align the fresh engine's sim clock with the moment it
                # came online so its iteration timeline starts here.
                rep.engine.clock.advance_to(rep.warm_until)
                self.cluster_metrics.warming_time_s += (
                    rep.warm_until - rep.spawned_at
                )
                self._record_event(rep.warm_until, "activate", rep,
                                   "warm-up complete")

    def _dispatch_due(self, t_next: float) -> None:
        if not self._undispatched:
            return
        active = [rep.engine for rep in self._members(ReplicaState.ACTIVE)
                  if not rep.engine.failed]
        if not active:
            return  # hold the queue; warming/healing will provide capacity
        due: List[Request] = []
        while self._undispatched and self._undispatched[0][0] <= t_next:
            due.append(heapq.heappop(self._undispatched)[2])
        if due:
            self._dispatch(due, active)

    def _requeue(self, orphans: Sequence[Request]) -> None:
        for r in orphans:
            heapq.heappush(
                self._undispatched, (r.arrival_time, r.request_id, r)
            )

    def _failover_pass(self, t_next: float) -> None:
        """Retire failed replicas; their orphans rejoin the queue.

        Unlike the static path, orphans do not go straight to a
        survivor: they re-enter the shared undispatched queue and the
        next epoch's dispatch places them with the normal policy —
        which also means a replica spawned *because of* the failure can
        pick them up once warm.
        """
        for rep in self._members(ReplicaState.WARMING, ReplicaState.ACTIVE,
                                 ReplicaState.DRAINING):
            e = rep.engine
            if not e.failed:
                continue
            orphans = e.drain_orphans()
            orphans = self._cap_requeues(orphans)
            if orphans:
                self._apply_requeue_backoff(orphans)
                self.cluster_metrics.failover_events += len(orphans)
                self._requeue(orphans)
            self._retire(rep, max(t_next, e.clock.now), "fail",
                         "engine failed")

    def _drain_pass(self, t_next: float) -> None:
        """Retire empty DRAINING replicas; time out stuck drains.

        A drain that outlives ``drain_timeout_s`` re-homes its
        remaining work through the queue *without* charging the
        requests' failover budget or backoff (their host never failed —
        the cluster chose to retire it), so scale-down churn can never
        abort a healthy request via ``max_requeues``.
        """
        cfg = self.autoscaler.config
        for rep in self._members(ReplicaState.DRAINING):
            e = rep.engine
            if e.num_live == 0:
                self._retire(rep, max(t_next, e.clock.now), "retire",
                             "drained empty")
            elif t_next - rep.drain_started_at >= cfg.drain_timeout_s:
                orphans = e.drain_orphans(count_hop=False)
                self.cluster_metrics.drain_requeues += len(orphans)
                self._requeue(orphans)
                self._record_event(
                    t_next, "drain_timeout", rep,
                    f"re-homed {len(orphans)} in-flight requests"
                )
                self._retire(rep, max(t_next, e.clock.now), "retire",
                             "drain timed out")

    def _retire(self, rep: Replica, now: float, action: str,
                reason: str) -> None:
        """DEAD transition plus lifetime accounting, any prior state."""
        if (rep.state is ReplicaState.DRAINING
                and rep.drain_started_at is not None):
            self.cluster_metrics.draining_time_s += (
                now - rep.drain_started_at
            )
        rep.die(now)
        self.cluster_metrics.gpu_seconds_total += max(
            0.0, now - rep.spawned_at
        )
        self._record_event(now, action, rep, reason)

    def _scale_pass(self, now: float) -> None:
        active = self._members(ReplicaState.ACTIVE)
        warming = self._members(ReplicaState.WARMING)
        draining = self._members(ReplicaState.DRAINING)
        queue_depth = sum(rep.engine.num_live
                          for rep in active + warming + draining)
        queue_depth += sum(
            1 for arrival, _, _ in self._undispatched if arrival <= now
        )
        delta = self.autoscaler.observe(
            now,
            queue_depth=queue_depth,
            num_active=len(active),
            num_warming=len(warming),
            num_draining=len(draining),
            slo_sample=self._slo_sample(),
        )
        if delta > 0:
            for _ in range(delta):
                if not self._spawn_replica(now):
                    break
        elif delta < 0:
            self._drain_one(now)

    def _slo_sample(self) -> Optional[float]:
        """SLO attainment among requests turned terminal since last call.

        Incremental (per-collector cursors into the append-only records
        and aborts lists), so the control loop stays linear in the trace
        size.  ``None`` when no SLO-carrying request finished or aborted
        this epoch.
        """
        met = 0
        total = 0
        collectors = [self.cluster_metrics] + [
            rep.engine.metrics for rep in self.replicas
        ]
        for m in collectors:
            rec_i, ab_i = self._slo_cursor.get(id(m), (0, 0))
            for rec in m.records[rec_i:]:
                if rec.slo_s is not None:
                    total += 1
                    if rec.latency <= rec.slo_s:
                        met += 1
            for ab in m.aborts[ab_i:]:
                if ab.slo_s is not None:
                    total += 1
            self._slo_cursor[id(m)] = (len(m.records), len(m.aborts))
        if total == 0:
            return None
        return met / total

    def _can_spawn(self) -> bool:
        cfg = self.autoscaler.config
        members = self._members(ReplicaState.WARMING, ReplicaState.ACTIVE,
                                ReplicaState.DRAINING)
        return (self.engine_factory is not None
                and self._spawns_used < cfg.spawn_budget
                and len(members) < cfg.max_replicas)

    def _fresh_replica_id(self) -> str:
        while True:
            rid = f"gpu-{self._next_replica_idx}"
            self._next_replica_idx += 1
            if rid not in self._replica_of:
                return rid

    def _spawn_replica(self, now: float) -> bool:
        """Provision one WARMING replica; False when spawning is capped."""
        if not self._can_spawn():
            return False
        cfg = self.autoscaler.config
        engine = self.engine_factory()
        engine.engine_id = self._fresh_replica_id()
        self._spawns_used += 1
        cold = estimate_cold_start_s(engine, cfg)
        stall = 1.0
        if engine.faults is not None:
            stall = engine.faults.scale_stall_factor(engine.engine_id, now)
        if stall > 1.0:
            self.cluster_metrics.scale_stalls += 1
        rep = Replica(engine=engine, state=ReplicaState.WARMING,
                      spawned_at=now, warm_until=now + cold * stall)
        self.replicas.append(rep)
        self._replica_of[rep.replica_id] = rep
        self._record_event(now, "spawn", rep,
                           f"cold start {cold * stall:.3f}s")
        return True

    def _drain_one(self, now: float) -> None:
        """Quiesce the scale-down victim: worst health, then emptiest."""
        cfg = self.autoscaler.config
        candidates = [rep for rep in self._members(ReplicaState.ACTIVE)
                      if not rep.engine.failed]
        if len(candidates) <= cfg.min_replicas:
            return
        scores = self.health_scores([rep.engine for rep in candidates])
        rep, score = min(
            zip(candidates, scores),
            key=lambda cs: (cs[1], cs[0].engine.num_live, cs[0].replica_id),
        )
        rep.start_drain(now)
        self._record_event(now, "drain", rep,
                           f"scale down (health {score:.3f})")

    def _abort_unplaceable(self, now: float) -> None:
        """No live replicas and no way to spawn any: fail the queue.

        The autoscaled analogue of the static path's no-survivor abort;
        only reachable once the spawn budget is exhausted or the
        factory is gone, since min-replica healing otherwise
        re-provisions.
        """
        if not self._undispatched:
            return
        if self._members(ReplicaState.WARMING, ReplicaState.ACTIVE,
                         ReplicaState.DRAINING):
            return
        if self._can_spawn():
            return
        while self._undispatched:
            _, _, r = heapq.heappop(self._undispatched)
            r.abort(max(r.arrival_time, now), AbortReason.ENGINE_FAILED)
            self.cluster_metrics.record_abort(r)

    def _quiescent(self) -> bool:
        if self._undispatched:
            return False
        return all(
            rep.engine.num_live == 0
            for rep in self._members(ReplicaState.WARMING,
                                     ReplicaState.ACTIVE,
                                     ReplicaState.DRAINING)
        )

    def _finalize_lifetimes(self, end: float) -> None:
        """Charge still-live replicas' GPU seconds up to the run's end."""
        for rep in self._members(ReplicaState.WARMING, ReplicaState.ACTIVE,
                                 ReplicaState.DRAINING):
            t = max(end, rep.engine.clock.now)
            if (rep.state is ReplicaState.DRAINING
                    and rep.drain_started_at is not None):
                self.cluster_metrics.draining_time_s += (
                    t - rep.drain_started_at
                )
            self.cluster_metrics.gpu_seconds_total += max(
                0.0, t - rep.spawned_at
            )

    # -- failover helpers ------------------------------------------------------------

    def _cap_requeues(self, orphans: List[Request]) -> List[Request]:
        """Abort orphans that already burned their requeue budget."""
        if self.max_requeues is None:
            return orphans
        kept: List[Request] = []
        for r in orphans:
            if r.requeues > self.max_requeues:
                r.abort(r.arrival_time, AbortReason.ENGINE_FAILED)
                self.cluster_metrics.record_abort(r)
                self.cluster_metrics.requeue_limit_aborts += 1
            else:
                kept.append(r)
        return kept

    def _apply_requeue_backoff(self, orphans: Sequence[Request]) -> None:
        """Space repeated requeues out with capped exponential backoff."""
        if self.requeue_backoff_s <= 0:
            return
        for r in orphans:
            delay = min(
                self.requeue_backoff_s * 2 ** max(0, r.requeues - 1),
                self.requeue_backoff_cap_s,
            )
            r.arrival_time += delay

    def _failover_dispatch(self, orphans: Sequence[Request],
                           survivors: Sequence[ServingEngine]) -> None:
        """Least-loaded requeue of orphans onto surviving engines.

        With ``health_aware`` the same 1/score load inflation used at
        submit time applies, steering orphans away from stragglers —
        the replicas most likely to fail next.
        """
        allowed, scores = self._routable(survivors)
        loads = {
            i: sum(req.remaining for req in survivors[i].pending_requests)
            + len(survivors[i]._active)
            for i in allowed
        }
        for r in sorted(orphans, key=lambda q: (q.arrival_time,
                                                q.request_id)):
            if self.health_aware:
                i = min(allowed,
                        key=lambda j: (loads[j] / max(scores[j], 1e-6), j))
            else:
                i = min(allowed, key=lambda j: (loads[j], j))
            survivors[i].submit([r])
            loads[i] += r.remaining

    def per_engine_completed(self) -> List[int]:
        """Completed request count per replica (load-balance visibility)."""
        return [e.metrics.num_completed for e in self.engines]

    @classmethod
    def replicate(cls, factory: Callable[[], ServingEngine],
                  num_gpus: int, dispatch: str = "least-loaded",
                  **kwargs) -> "MultiGPUServer":
        """Build ``num_gpus`` identical engines from a factory.

        The factory is kept as the cluster's ``engine_factory`` so an
        attached autoscaler can spawn more replicas from the same mold.
        """
        if num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {num_gpus}")
        kwargs.setdefault("engine_factory", factory)
        return cls([factory() for _ in range(num_gpus)], dispatch=dispatch,
                   **kwargs)
