"""Serving metrics: average token latency, throughput, tail percentiles.

Metric definitions follow §6.1:

* **average token latency** — the sum of each request's end-to-end
  latency divided by the total number of tokens (input + output);
* **throughput** — completed requests per second of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.runtime.request import Request


@dataclass(frozen=True)
class RequestRecord:
    """Immutable completion record for one request."""

    request_id: int
    adapter_id: str
    task_name: str
    arrival_time: float
    first_token_time: float
    finish_time: float
    input_tokens: int
    output_tokens: int
    slo_s: Optional[float] = None

    @property
    def latency(self) -> float:
        return self.finish_time - self.arrival_time

    @property
    def ttft(self) -> float:
        """Time to first token."""
        return self.first_token_time - self.arrival_time

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    @classmethod
    def from_request(cls, req: Request) -> "RequestRecord":
        if req.finish_time is None or req.first_token_time is None:
            raise ValueError(f"request {req.request_id} not finished")
        return cls(
            request_id=req.request_id,
            adapter_id=req.adapter_id,
            task_name=req.task_name,
            arrival_time=req.arrival_time,
            first_token_time=req.first_token_time,
            finish_time=req.finish_time,
            input_tokens=req.input_tokens,
            output_tokens=req.output_tokens,
            slo_s=req.slo_s,
        )


@dataclass
class MetricsCollector:
    """Accumulates completion records and derives §6.1's metrics."""

    records: List[RequestRecord] = field(default_factory=list)
    mode_iterations: Dict[str, int] = field(default_factory=dict)
    num_mode_switches: int = 0
    num_preemptions: int = 0
    switch_time_total: float = 0.0
    lora_extra_time_total: float = 0.0
    iterations: int = 0

    def complete(self, req: Request) -> None:
        self.records.append(RequestRecord.from_request(req))

    def count_mode(self, mode_name: str) -> None:
        self.mode_iterations[mode_name] = (
            self.mode_iterations.get(mode_name, 0) + 1
        )

    # -- headline metrics -----------------------------------------------------

    @property
    def num_completed(self) -> int:
        return len(self.records)

    def avg_token_latency(self) -> float:
        """Sum of request latencies over total tokens (seconds/token)."""
        if not self.records:
            raise ValueError("no completed requests")
        total_latency = sum(r.latency for r in self.records)
        total_tokens = sum(r.total_tokens for r in self.records)
        return total_latency / total_tokens

    def throughput_rps(self, duration: Optional[float] = None) -> float:
        """Completed requests per second over ``duration`` (defaults to
        the span from first arrival to last completion)."""
        if not self.records:
            raise ValueError("no completed requests")
        if duration is None:
            start = min(r.arrival_time for r in self.records)
            end = max(r.finish_time for r in self.records)
            duration = max(end - start, 1e-9)
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        return len(self.records) / duration

    def mean_latency(self) -> float:
        if not self.records:
            raise ValueError("no completed requests")
        return float(np.mean([r.latency for r in self.records]))

    def latency_percentile(self, q: float) -> float:
        """Latency percentile, ``q`` in [0, 100]."""
        if not self.records:
            raise ValueError("no completed requests")
        return float(np.percentile([r.latency for r in self.records], q))

    def mean_ttft(self) -> float:
        if not self.records:
            raise ValueError("no completed requests")
        return float(np.mean([r.ttft for r in self.records]))

    def slo_attainment(self) -> Optional[float]:
        """Fraction of SLO-carrying requests that met their SLO.

        ``None`` when no completed request carried an SLO.
        """
        with_slo = [r for r in self.records if r.slo_s is not None]
        if not with_slo:
            return None
        met = sum(1 for r in with_slo if r.latency <= r.slo_s)
        return met / len(with_slo)

    # -- breakdowns ----------------------------------------------------------------

    def by_task(self) -> Dict[str, List[RequestRecord]]:
        out: Dict[str, List[RequestRecord]] = {}
        for r in self.records:
            out.setdefault(r.task_name, []).append(r)
        return out

    def by_adapter(self) -> Dict[str, List[RequestRecord]]:
        out: Dict[str, List[RequestRecord]] = {}
        for r in self.records:
            out.setdefault(r.adapter_id, []).append(r)
        return out

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline numbers (for bench JSON dumps)."""
        return {
            "completed": float(self.num_completed),
            "avg_token_latency_ms": self.avg_token_latency() * 1e3,
            "throughput_rps": self.throughput_rps(),
            "mean_latency_s": self.mean_latency(),
            "p50_latency_s": self.latency_percentile(50),
            "p90_latency_s": self.latency_percentile(90),
            "p99_latency_s": self.latency_percentile(99),
            "mean_ttft_s": self.mean_ttft(),
            "mode_switches": float(self.num_mode_switches),
            "preemptions": float(self.num_preemptions),
            "switch_time_total_s": self.switch_time_total,
            "iterations": float(self.iterations),
            **(
                {"slo_attainment": self.slo_attainment()}
                if self.slo_attainment() is not None else {}
            ),
        }
