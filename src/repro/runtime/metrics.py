"""Serving metrics: average token latency, throughput, tail percentiles.

Metric definitions follow §6.1:

* **average token latency** — the sum of each request's end-to-end
  latency divided by the total number of tokens (input + output);
* **throughput** — completed requests per second of simulated time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.runtime.request import Request


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (``q`` in [0, 100]).

    The one percentile implementation shared by latency summaries,
    detection-latency reporting, and hedge-threshold tracking (linear
    interpolation, numpy semantics).  Raises on an empty sequence —
    callers decide what "no data" means.
    """
    if len(values) == 0:
        raise ValueError("no values to take a percentile of")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(values, q))


class StreamingQuantile:
    """Sliding-window quantile estimate over a stream of observations.

    Keeps the most recent ``window`` samples (deque, O(1) per
    observation) and answers :meth:`quantile` exactly over that window —
    deterministic and replayable, unlike sketch-based estimators.  Used
    for the hedge-threshold tracker, where "recent completions" is
    precisely the right population: old latencies from before a
    straggler appeared (or healed) age out of the window on their own.
    """

    def __init__(self, window: int = 256):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._buf: Deque[float] = deque(maxlen=window)

    def __len__(self) -> int:
        return len(self._buf)

    def observe(self, value: float) -> None:
        self._buf.append(value)

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile of the window; None when empty."""
        if not self._buf:
            return None
        return percentile(list(self._buf), q)


@dataclass(frozen=True, slots=True)
class AbortRecord:
    """Immutable record of one aborted request (graceful degradation)."""

    request_id: int
    adapter_id: str
    task_name: str
    arrival_time: float
    abort_time: float
    reason: str
    input_tokens: int
    output_tokens: int
    generated: int
    slo_s: Optional[float] = None

    @classmethod
    def from_request(cls, req: Request) -> "AbortRecord":
        if req.abort_time is None or req.abort_reason is None:
            raise ValueError(f"request {req.request_id} not aborted")
        return cls(
            request_id=req.request_id,
            adapter_id=req.adapter_id,
            task_name=req.task_name,
            arrival_time=req.arrival_time,
            abort_time=req.abort_time,
            reason=req.abort_reason.value,
            input_tokens=req.input_tokens,
            output_tokens=req.output_tokens,
            generated=req.generated,
            slo_s=req.slo_s,
        )


@dataclass(frozen=True, slots=True)
class ScaleEvent:
    """One replica-lifecycle transition in an autoscaled cluster.

    ``action`` is one of ``spawn`` (WARMING replica created),
    ``activate`` (warm-up finished, serving), ``drain`` (scale-down
    chosen, no new dispatch), ``retire`` (drained empty, released),
    ``drain_timeout`` (drain deadline hit, remainder re-homed) or
    ``fail`` (the replica's engine died).  ``num_members`` counts the
    cluster's live replicas (any non-DEAD state) *after* the event.
    """

    time: float
    action: str
    replica_id: str
    reason: str
    num_members: int

    def to_dict(self) -> Dict:
        return {
            "time": self.time,
            "action": self.action,
            "replica_id": self.replica_id,
            "reason": self.reason,
            "num_members": self.num_members,
        }


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """Immutable completion record for one request."""

    request_id: int
    adapter_id: str
    task_name: str
    arrival_time: float
    first_token_time: float
    finish_time: float
    input_tokens: int
    output_tokens: int
    slo_s: Optional[float] = None

    @property
    def latency(self) -> float:
        return self.finish_time - self.arrival_time

    @property
    def ttft(self) -> float:
        """Time to first token."""
        return self.first_token_time - self.arrival_time

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    @classmethod
    def from_request(cls, req: Request) -> "RequestRecord":
        if req.finish_time is None or req.first_token_time is None:
            raise ValueError(f"request {req.request_id} not finished")
        return cls(
            request_id=req.request_id,
            adapter_id=req.adapter_id,
            task_name=req.task_name,
            arrival_time=req.arrival_time,
            first_token_time=req.first_token_time,
            finish_time=req.finish_time,
            input_tokens=req.input_tokens,
            output_tokens=req.output_tokens,
            slo_s=req.slo_s,
        )


@dataclass
class MetricsCollector:
    """Accumulates completion records and derives §6.1's metrics."""

    records: List[RequestRecord] = field(default_factory=list)
    mode_iterations: Dict[str, int] = field(default_factory=dict)
    num_mode_switches: int = 0
    num_preemptions: int = 0
    switch_time_total: float = 0.0
    lora_extra_time_total: float = 0.0
    iterations: int = 0
    # -- resilience accounting (fault injection / graceful degradation) ----
    aborts: List[AbortRecord] = field(default_factory=list)
    # -- swap-traffic observability (adapter cache behavior) ---------------
    #: Adapter swap-ins actually performed (cache misses that landed).
    swap_ins: int = 0
    #: Engine stall seconds paid on the swap path (incl. failed attempts).
    swap_in_seconds: float = 0.0
    #: Batch-adapter residency checks that found the adapter on GPU.
    adapter_cache_hits: int = 0
    #: ... and that did not (each miss pays a swap or a swap failure).
    adapter_cache_misses: int = 0
    swap_retries: int = 0
    adapters_quarantined: int = 0
    mode_fallbacks: int = 0
    shed_events: int = 0
    kv_stall_iters: int = 0
    failover_events: int = 0
    engine_failures: int = 0
    # -- overload protection (admission / brownout / breakers) -------------
    admission_rejections: int = 0
    brownout_sheds: int = 0
    brownout_truncations: int = 0
    brownout_forced_merges: int = 0
    brownout_transitions: int = 0
    brownout_time_s: float = 0.0
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    requeue_limit_aborts: int = 0
    # -- cost-cache accounting (memoized iteration-cost layer) -------------
    cost_cache_hits: int = 0
    cost_cache_misses: int = 0
    # -- replica lifecycle (autoscaled clusters; all zero when static) -----
    scale_events: List[ScaleEvent] = field(default_factory=list)
    scale_up_events: int = 0
    scale_down_events: int = 0
    replicas_spawned: int = 0
    replicas_retired: int = 0
    scale_stalls: int = 0
    drain_timeouts: int = 0
    drain_requeues: int = 0
    warming_time_s: float = 0.0
    draining_time_s: float = 0.0
    #: Replica-seconds paid (spawn to death), the bench's cost metric.
    gpu_seconds_total: float = 0.0
    # -- gray-failure detection (runtime/failure_detection.py) -------------
    #: ALIVE → SUSPECTED transitions (replica drained, not killed).
    suspicions: int = 0
    #: SUSPECTED → ALIVE healings (the silence was a gray failure).
    false_suspicions: int = 0
    #: Stale completions discarded by lease fencing (zombie replays).
    fenced_completions: int = 0
    #: NETWORK_PARTITION windows that closed with the replica still live.
    partition_heals: int = 0
    #: Per confirmed-dead replica: seconds from actual death to the
    #: detector's CONFIRMED_DEAD verdict (false confirmations excluded —
    #: a partitioned-but-alive replica has no death to measure from).
    detection_latencies: List[float] = field(default_factory=list)
    # -- tail-tolerant dispatch (runtime/hedging.py) -----------------------
    #: Speculative duplicate dispatches fired past the hedge threshold.
    hedges_fired: int = 0
    #: Hedged requests whose *speculative copy* finished first.
    hedge_wins: int = 0
    #: Late terminals of hedged requests fenced after the winner landed
    #: (duplicate work, never a duplicate terminal).
    hedge_losses: int = 0
    #: Retries/hedges denied because the retry budget ran dry.
    retry_budget_exhausted: int = 0
    # -- adapter-locality placement (runtime/placement.py) -----------------
    #: Requests routed off their overloaded home onto a replica already
    #: holding the adapter (locality kept, load respected).
    placement_spills: int = 0
    #: Hot adapters promoted to k-replica service (watermark crossings).
    placement_replications: int = 0
    #: Cold adapters demoted out of GPU slots fleet-wide.
    placement_demotions: int = 0
    #: Hot adapters prefetched onto freshly spawned replicas at warm-up.
    adapters_prefetched: int = 0
    # -- disaggregated prefill/decode serving (runtime/disagg.py) ----------
    #: Finished prefills handed off to a decode-pool replica.
    kv_transfers: int = 0
    #: Total modeled wire time of those KV moves (charged like swap-ins).
    kv_transfer_seconds: float = 0.0
    #: Total KV bytes moved across the pool boundary.
    kv_transfer_bytes: int = 0
    #: Hand-offs abandoned because the decode pool was permanently gone
    #: (the requests abort — there is nowhere left to decode).
    kv_transfer_aborts: int = 0

    def complete(self, req: Request) -> None:
        self.records.append(RequestRecord.from_request(req))

    def record_abort(self, req: Request) -> None:
        self.aborts.append(AbortRecord.from_request(req))

    def record_scale_event(self, event: ScaleEvent) -> None:
        self.scale_events.append(event)
        if event.action == "spawn":
            self.scale_up_events += 1
            self.replicas_spawned += 1
        elif event.action == "drain":
            self.scale_down_events += 1
        elif event.action == "retire":
            self.replicas_retired += 1
        elif event.action == "drain_timeout":
            self.drain_timeouts += 1

    def count_mode(self, mode_name: str) -> None:
        self.mode_iterations[mode_name] = (
            self.mode_iterations.get(mode_name, 0) + 1
        )

    # -- headline metrics -----------------------------------------------------

    @property
    def num_completed(self) -> int:
        return len(self.records)

    @property
    def num_aborted(self) -> int:
        return len(self.aborts)

    def abort_counts(self) -> Dict[str, int]:
        """Abort counts keyed by :class:`AbortReason` value."""
        out: Dict[str, int] = {}
        for a in self.aborts:
            out[a.reason] = out.get(a.reason, 0) + 1
        return out

    def goodput_rps(self, duration: Optional[float] = None) -> float:
        """Completed requests per second, charging aborted requests.

        Unlike :meth:`throughput_rps` the window spans every arrival
        (including aborted ones) to the last terminal event, so shedding
        load does not inflate the number.  0.0 when nothing completed.
        """
        if not self.records:
            return 0.0
        if duration is None:
            events = self.records + self.aborts
            start = min(r.arrival_time for r in events)
            end = max(
                [r.finish_time for r in self.records]
                + [a.abort_time for a in self.aborts]
            )
            duration = max(end - start, 1e-9)
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        return len(self.records) / duration

    def avg_token_latency(self) -> float:
        """Sum of request latencies over total tokens (seconds/token)."""
        if not self.records:
            raise ValueError("no completed requests")
        total_latency = sum(r.latency for r in self.records)
        total_tokens = sum(r.total_tokens for r in self.records)
        return total_latency / total_tokens

    def throughput_rps(self, duration: Optional[float] = None) -> float:
        """Completed requests per second over ``duration`` (defaults to
        the span from first arrival to last completion)."""
        if not self.records:
            raise ValueError("no completed requests")
        if duration is None:
            start = min(r.arrival_time for r in self.records)
            end = max(r.finish_time for r in self.records)
            duration = max(end - start, 1e-9)
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        return len(self.records) / duration

    def mean_latency(self) -> float:
        if not self.records:
            raise ValueError("no completed requests")
        return float(np.mean([r.latency for r in self.records]))

    def latency_percentile(self, q: float) -> float:
        """Latency percentile, ``q`` in [0, 100]."""
        if not self.records:
            raise ValueError("no completed requests")
        return percentile([r.latency for r in self.records], q)

    def ttft_percentile(self, q: float) -> float:
        """Time-to-first-token percentile, ``q`` in [0, 100]."""
        if not self.records:
            raise ValueError("no completed requests")
        return percentile([r.ttft for r in self.records], q)

    def mean_ttft(self) -> float:
        if not self.records:
            raise ValueError("no completed requests")
        return float(np.mean([r.ttft for r in self.records]))

    def slo_attainment(self) -> Optional[float]:
        """Fraction of SLO-carrying requests that met their SLO.

        Aborted SLO-carrying requests count as misses (they never
        produced an answer).  ``None`` when no terminal request carried
        an SLO.
        """
        with_slo = [r for r in self.records if r.slo_s is not None]
        aborted_slo = sum(1 for a in self.aborts if a.slo_s is not None)
        total = len(with_slo) + aborted_slo
        if not total:
            return None
        met = sum(1 for r in with_slo if r.latency <= r.slo_s)
        return met / total

    # -- breakdowns ----------------------------------------------------------------

    def by_task(self) -> Dict[str, List[RequestRecord]]:
        out: Dict[str, List[RequestRecord]] = {}
        for r in self.records:
            out.setdefault(r.task_name, []).append(r)
        return out

    def by_adapter(self) -> Dict[str, List[RequestRecord]]:
        out: Dict[str, List[RequestRecord]] = {}
        for r in self.records:
            out.setdefault(r.adapter_id, []).append(r)
        return out

    def merge_from(self, other: "MetricsCollector") -> None:
        """Fold another collector (e.g. one replica's) into this one."""
        self.records.extend(other.records)
        self.aborts.extend(other.aborts)
        for mode, count in other.mode_iterations.items():
            self.mode_iterations[mode] = (
                self.mode_iterations.get(mode, 0) + count
            )
        self.num_mode_switches += other.num_mode_switches
        self.num_preemptions += other.num_preemptions
        self.switch_time_total += other.switch_time_total
        self.lora_extra_time_total += other.lora_extra_time_total
        self.iterations += other.iterations
        self.swap_ins += other.swap_ins
        self.swap_in_seconds += other.swap_in_seconds
        self.adapter_cache_hits += other.adapter_cache_hits
        self.adapter_cache_misses += other.adapter_cache_misses
        self.swap_retries += other.swap_retries
        self.adapters_quarantined += other.adapters_quarantined
        self.mode_fallbacks += other.mode_fallbacks
        self.shed_events += other.shed_events
        self.kv_stall_iters += other.kv_stall_iters
        self.failover_events += other.failover_events
        self.engine_failures += other.engine_failures
        self.admission_rejections += other.admission_rejections
        self.brownout_sheds += other.brownout_sheds
        self.brownout_truncations += other.brownout_truncations
        self.brownout_forced_merges += other.brownout_forced_merges
        self.brownout_transitions += other.brownout_transitions
        self.brownout_time_s += other.brownout_time_s
        self.breaker_opens += other.breaker_opens
        self.breaker_half_opens += other.breaker_half_opens
        self.breaker_closes += other.breaker_closes
        self.requeue_limit_aborts += other.requeue_limit_aborts
        self.cost_cache_hits += other.cost_cache_hits
        self.cost_cache_misses += other.cost_cache_misses
        self.scale_events.extend(other.scale_events)
        self.scale_up_events += other.scale_up_events
        self.scale_down_events += other.scale_down_events
        self.replicas_spawned += other.replicas_spawned
        self.replicas_retired += other.replicas_retired
        self.scale_stalls += other.scale_stalls
        self.drain_timeouts += other.drain_timeouts
        self.drain_requeues += other.drain_requeues
        self.warming_time_s += other.warming_time_s
        self.draining_time_s += other.draining_time_s
        self.gpu_seconds_total += other.gpu_seconds_total
        self.suspicions += other.suspicions
        self.false_suspicions += other.false_suspicions
        self.fenced_completions += other.fenced_completions
        self.partition_heals += other.partition_heals
        self.detection_latencies.extend(other.detection_latencies)
        self.hedges_fired += other.hedges_fired
        self.hedge_wins += other.hedge_wins
        self.hedge_losses += other.hedge_losses
        self.retry_budget_exhausted += other.retry_budget_exhausted
        self.placement_spills += other.placement_spills
        self.placement_replications += other.placement_replications
        self.placement_demotions += other.placement_demotions
        self.adapters_prefetched += other.adapters_prefetched
        self.kv_transfers += other.kv_transfers
        self.kv_transfer_seconds += other.kv_transfer_seconds
        self.kv_transfer_bytes += other.kv_transfer_bytes
        self.kv_transfer_aborts += other.kv_transfer_aborts

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline numbers (for bench JSON dumps).

        Latency keys appear only when at least one request completed
        (an all-aborted run still summarizes without raising).
        """
        out: Dict[str, float] = {
            "completed": float(self.num_completed),
            "aborted": float(self.num_aborted),
            "goodput_rps": self.goodput_rps(),
            "mode_switches": float(self.num_mode_switches),
            "preemptions": float(self.num_preemptions),
            "switch_time_total_s": self.switch_time_total,
            "iterations": float(self.iterations),
        }
        if self.records:
            out.update({
                "avg_token_latency_ms": self.avg_token_latency() * 1e3,
                "throughput_rps": self.throughput_rps(),
                "mean_latency_s": self.mean_latency(),
                "p50_latency_s": self.latency_percentile(50),
                "p90_latency_s": self.latency_percentile(90),
                "p99_latency_s": self.latency_percentile(99),
                "mean_ttft_s": self.mean_ttft(),
            })
        for reason, count in sorted(self.abort_counts().items()):
            out[f"aborted_{reason}"] = float(count)
        for key in ("swap_retries", "adapters_quarantined", "mode_fallbacks",
                    "shed_events", "kv_stall_iters", "failover_events",
                    "engine_failures", "admission_rejections",
                    "brownout_sheds", "brownout_truncations",
                    "brownout_forced_merges", "brownout_transitions",
                    "brownout_time_s", "breaker_opens", "breaker_half_opens",
                    "breaker_closes", "requeue_limit_aborts",
                    "cost_cache_hits", "cost_cache_misses",
                    "scale_up_events", "scale_down_events",
                    "replicas_spawned", "replicas_retired", "scale_stalls",
                    "drain_timeouts", "drain_requeues", "warming_time_s",
                    "draining_time_s", "gpu_seconds_total",
                    "suspicions", "false_suspicions", "fenced_completions",
                    "partition_heals", "hedges_fired", "hedge_wins",
                    "hedge_losses", "retry_budget_exhausted",
                    "placement_spills", "placement_replications",
                    "placement_demotions", "adapters_prefetched",
                    "kv_transfers", "kv_transfer_seconds",
                    "kv_transfer_bytes", "kv_transfer_aborts"):
            value = getattr(self, key)
            if value:
                out[key] = float(value)
        # Swap-traffic keys appear only once a swap (or failed swap) was
        # actually paid: an all-resident run — the common small-registry
        # case — keeps its summary unchanged.
        if self.swap_ins or self.adapter_cache_misses:
            out["swap_ins"] = float(self.swap_ins)
            out["swap_in_seconds"] = self.swap_in_seconds
            lookups = self.adapter_cache_hits + self.adapter_cache_misses
            out["adapter_cache_hit_ratio"] = (
                self.adapter_cache_hits / lookups if lookups else 1.0
            )
        if self.detection_latencies:
            out["detection_latency_p50_s"] = percentile(
                self.detection_latencies, 50)
            out["detection_latency_p99_s"] = percentile(
                self.detection_latencies, 99)
        if self.slo_attainment() is not None:
            out["slo_attainment"] = self.slo_attainment()
        return out
