"""Fleet-level adapter placement: cache-state-aware routing at scale.

At S-LoRA scale (thousands of registered adapters, a handful of GPU
slots per replica) the dominant dispatch cost is no longer queue depth —
it is the adapter swap a cache-miss dispatch forces (§5 "LoRA adapter
swap").  The cluster's legacy policies are blind to residency:
``least-loaded`` sprays every adapter across every replica (each
replica's working set becomes the whole registry), and
``adapter-affinity`` hashes blindly without asking *which adapters are
actually resident where*.

:class:`AdapterPlacement` is the missing fleet-level registry.  It
tracks, per replica, a model of the GPU-resident adapter set (seeded
from each engine's :class:`~repro.runtime.adapters.AdapterManager` and
refreshed from ground truth every control epoch), a per-adapter
popularity EWMA, and the per-adapter swap cost, and exposes one
placement decision to cluster dispatch:

* **consistent-hash home** — every adapter has a stable home replica on
  a virtual-node hash ring, so each replica's steady-state working set
  is ``~registry/replicas`` instead of the whole registry, and replica
  churn (autoscaling) only re-homes the ring arcs adjacent to the
  change;
* **load-aware spill** — when the home is overloaded, spill to the
  least-loaded replica *already holding the adapter* before paying a
  cold swap anywhere;
* **hot-adapter replication** — adapters whose popularity EWMA crosses
  ``hot_watermark`` are served from ``hot_copies`` ring homes (and
  soft-pinned in those replicas' GPU slots), trading slots for
  load-spread on the head of the Zipf curve;
* **cold-adapter demotion** — adapters whose popularity decays below
  ``cold_watermark`` are demoted out of GPU slots on every replica but
  their primary home, freeing slots for the adapters that earn them.

The registry also informs the rest of the control plane: hedged twins
prefer a replica with the adapter resident, the autoscaler's scale-down
victim choice prefers the cache-coldest replica, and a newly spawned
replica prefetches the registry's current top-k hot set during warm-up
(extending :func:`~repro.runtime.autoscaler.estimate_cold_start_s`).

Everything here is deterministic (crc32 hashing, sorted iteration) and
default-off: a cluster with no placement attached behaves bit-identically
to the pre-placement code.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["PlacementConfig", "AdapterPlacement"]


@dataclass(frozen=True)
class PlacementConfig:
    """Knobs for :class:`AdapterPlacement`.

    ``ewma_alpha`` is the per-observation decay of the popularity
    estimate (each dispatched request is one observation; the estimate
    is the adapter's share of recent traffic, summing to ~1 across
    adapters once warm).  ``hot_watermark`` / ``hot_copies`` control
    replication: an adapter whose share crosses the watermark is served
    from that many ring homes.  ``cold_watermark`` controls demotion:
    a resident adapter whose share decays below it is demoted from GPU
    slots everywhere but its primary home (0.0 disables demotion).
    ``spill_load_factor`` and ``spill_slack_rounds`` define "overloaded"
    for the spill decision: the home spills when its queued decode
    rounds exceed ``factor * fleet_min + slack``.  Slack is measured in
    decode rounds — the same unit dispatch uses for load — so the
    defaults correspond to one-or-two typical in-flight requests, not
    to one-or-two rounds.  ``miss_load_factor``
    and ``miss_slack_rounds`` define the (deliberately looser) bar for
    the *miss* path: a cache-miss request keeps routing to its hash
    home — building locality — until the home exceeds this bar, at
    which point balance wins and the miss goes to the fleet's
    least-loaded replica instead.  ``prefetch_top_k``
    bounds the hot set a newly spawned replica prefetches during
    warm-up.  ``interval_s`` is the control-epoch length when placement
    alone drives the epoched loop.  ``max_pins_fraction`` caps how much
    of a replica's slot budget replication may soft-pin.
    """

    ewma_alpha: float = 0.02
    hot_watermark: float = 0.03
    hot_copies: int = 2
    cold_watermark: float = 0.0
    spill_load_factor: float = 1.1
    spill_slack_rounds: float = 96.0
    miss_load_factor: float = 1.5
    miss_slack_rounds: float = 448.0
    prefetch_top_k: int = 8
    interval_s: float = 0.5
    max_pins_fraction: float = 0.5
    vnodes: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 < self.hot_watermark <= 1.0:
            raise ValueError("hot_watermark must be in (0, 1]")
        if self.hot_copies < 1:
            raise ValueError("hot_copies must be >= 1")
        if self.cold_watermark < 0.0:
            raise ValueError("cold_watermark must be >= 0")
        if self.cold_watermark >= self.hot_watermark:
            if self.cold_watermark != 0.0:
                raise ValueError(
                    "cold_watermark must be 0 (off) or < hot_watermark"
                )
        if self.spill_load_factor < 1.0:
            raise ValueError("spill_load_factor must be >= 1")
        if self.spill_slack_rounds < 0.0:
            raise ValueError("spill_slack_rounds must be >= 0")
        if self.miss_load_factor < 1.0:
            raise ValueError("miss_load_factor must be >= 1")
        if self.miss_slack_rounds < 0.0:
            raise ValueError("miss_slack_rounds must be >= 0")
        if self.prefetch_top_k < 0:
            raise ValueError("prefetch_top_k must be >= 0")
        if self.interval_s <= 0.0:
            raise ValueError("interval_s must be positive")
        if not 0.0 < self.max_pins_fraction <= 1.0:
            raise ValueError("max_pins_fraction must be in (0, 1]")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")


def _hash32(key: str) -> int:
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


class AdapterPlacement:
    """The fleet-level adapter registry and placement decision.

    The registry keeps a *model* of each replica's resident set: updated
    optimistically when dispatch assigns an adapter somewhere (an LRU of
    ``gpu_slots`` entries, mirroring the engine-side eviction policy)
    and re-synchronized from each engine's ground-truth
    :attr:`~repro.runtime.adapters.AdapterManager.resident_ids` at every
    control epoch (:meth:`refresh_from_engines`).  Between refreshes the
    model can be slightly stale — exactly like a production placement
    service whose view lags the data plane — and every decision made on
    a stale entry degrades to one extra swap, never to an error.
    """

    def __init__(self, config: Optional[PlacementConfig] = None):
        self.config = config or PlacementConfig()
        #: replica_id -> engine (insertion-ordered; the live fleet).
        self._engines: Dict[str, object] = {}
        #: replica_id -> LRU model of GPU-resident adapters
        #: (adapter_id -> monotone use sequence).
        self._resident: Dict[str, Dict[str, int]] = {}
        #: Raw (scaled) popularity weights; true share is raw * _scale.
        self._pop_raw: Dict[str, float] = {}
        self._pop_scale: float = 1.0
        self._observations: int = 0
        self._use_seq: int = 0
        #: Adapters currently replicated (popularity above watermark).
        self._replicated: set = set()
        #: replica_id -> adapter ids this registry soft-pinned there.
        self._pins: Dict[str, set] = {}
        # Hash-ring cache, rebuilt on membership change.
        self._ring: Optional[List[Tuple[int, str]]] = None
        # -- lifetime stats (mirrored into cluster metrics by the caller) --
        self.spills = 0
        self.replications = 0
        self.demotions = 0
        self.prefetches = 0

    # -- membership ---------------------------------------------------------

    @property
    def replica_ids(self) -> List[str]:
        return list(self._engines)

    def register_replica(self, engine) -> None:
        """Track ``engine``; seed its resident-set model from truth."""
        rid = engine.engine_id
        self._engines[rid] = engine
        self._pins.setdefault(rid, set())
        self._resident[rid] = {}
        for adapter_id in engine.adapters.resident_ids:
            self._use_seq += 1
            self._resident[rid][adapter_id] = self._use_seq
        self._ring = None

    def deregister_replica(self, replica_id: str) -> None:
        """Forget a retired/dead replica; its ring arcs re-home."""
        self._engines.pop(replica_id, None)
        self._resident.pop(replica_id, None)
        self._pins.pop(replica_id, None)
        self._ring = None

    # -- popularity ---------------------------------------------------------

    def observe(self, adapter_id: str) -> None:
        """Fold one dispatched request into the popularity EWMA.

        Implemented with a lazy global scale so one observation is O(1)
        over thousands of adapters: every existing weight decays by
        ``(1 - alpha)`` implicitly (the scale shrinks) and the observed
        adapter gains ``alpha`` of the new total.
        """
        alpha = self.config.ewma_alpha
        self._pop_scale *= (1.0 - alpha)
        self._observations += 1
        self._pop_raw[adapter_id] = (
            self._pop_raw.get(adapter_id, 0.0) + alpha / self._pop_scale
        )
        if self._pop_scale < 1e-12:
            # Renormalize before the raw weights overflow.
            for a in self._pop_raw:
                self._pop_raw[a] *= self._pop_scale
            self._pop_scale = 1.0

    def popularity(self, adapter_id: str) -> float:
        """The adapter's EWMA share of recent traffic (0 when unseen)."""
        return self._pop_raw.get(adapter_id, 0.0) * self._pop_scale

    def top_hot(self, k: int) -> List[str]:
        """The ``k`` most popular adapters (share desc, id asc)."""
        if k <= 0 or not self._pop_raw:
            return []
        ranked = sorted(self._pop_raw.items(),
                        key=lambda it: (-it[1], it[0]))
        return [a for a, _ in ranked[:k]]

    def hot_set(self) -> List[str]:
        """Adapters above the replication watermark (share desc)."""
        wm = self.config.hot_watermark
        hot = [(self.popularity(a), a) for a in self._pop_raw
               if self.popularity(a) >= wm]
        hot.sort(key=lambda it: (-it[0], it[1]))
        return [a for _, a in hot]

    # -- swap costs ---------------------------------------------------------

    def swap_cost_s(self, adapter_id: str) -> float:
        """Modeled cold-swap stall for this adapter (0 when unknown)."""
        for engine in self._engines.values():
            adapters = engine.adapters
            try:
                spec = adapters.spec(adapter_id)
            except KeyError:
                return 0.0
            return adapters.transfer.swap_seconds(
                spec.ab_bytes,
                async_overlap=adapters.async_overlap,
                software_overhead_s=adapters.swap_software_overhead_s,
            )
        return 0.0

    # -- consistent-hash ring -----------------------------------------------

    def _ring_points(self) -> List[Tuple[int, str]]:
        if self._ring is None:
            points = []
            for rid in self._engines:
                for v in range(self.config.vnodes):
                    points.append((_hash32(f"{rid}#{v}"), rid))
            points.sort()
            self._ring = points
        return self._ring

    def homes(self, adapter_id: str, k: int = 1) -> List[str]:
        """The adapter's first ``k`` distinct ring homes, in ring order.

        Stable under membership change: removing a replica only re-homes
        the arcs it owned; every other adapter keeps its home (the
        property the crc32-mod-n policy lacks).
        """
        ring = self._ring_points()
        if not ring:
            return []
        out: List[str] = []
        start = bisect_right(ring, (_hash32(adapter_id), "￿"))
        for step in range(len(ring)):
            rid = ring[(start + step) % len(ring)][1]
            if rid not in out:
                out.append(rid)
                if len(out) >= k:
                    break
        return out

    # -- resident-set model ---------------------------------------------------

    def holders(self, adapter_id: str) -> List[str]:
        """Replicas modeled as holding the adapter GPU-resident."""
        return [rid for rid, res in self._resident.items()
                if adapter_id in res]

    def note_assignment(self, adapter_id: str, replica_id: str) -> None:
        """Update the resident model for a dispatch onto ``replica_id``.

        Mirrors the engine-side LRU: inserting into a full model evicts
        the least-recently-assigned *unpinned* adapter.
        """
        res = self._resident.get(replica_id)
        engine = self._engines.get(replica_id)
        if res is None or engine is None:
            return
        self._use_seq += 1
        if adapter_id in res:
            res[adapter_id] = self._use_seq
            return
        slots = engine.adapters.gpu_slots
        if len(res) >= slots:
            pinned = self._pins.get(replica_id, set())
            victims = [(seq, a) for a, seq in res.items() if a not in pinned]
            if not victims:
                victims = [(seq, a) for a, seq in res.items()]
            victims.sort()
            del res[victims[0][1]]
        res[adapter_id] = self._use_seq

    def refresh_from_engines(self) -> None:
        """Re-sync the resident model from every engine's ground truth.

        Keeps the optimistic model honest once per control epoch; the
        LRU sequence of surviving entries is preserved so recency
        ordering does not reset on refresh.
        """
        for rid, engine in self._engines.items():
            truth = set(engine.adapters.resident_ids)
            model = self._resident.get(rid, {})
            fresh: Dict[str, int] = {}
            for adapter_id in engine.adapters.resident_ids:
                if adapter_id in model:
                    fresh[adapter_id] = model[adapter_id]
                else:
                    self._use_seq += 1
                    fresh[adapter_id] = self._use_seq
            # Drop model entries the engine has since evicted.
            self._resident[rid] = {
                a: seq for a, seq in fresh.items() if a in truth
            }

    def replica_cache_value(self, replica_id: str) -> float:
        """Σ popularity of the replica's modeled resident set.

        The autoscaler's scale-down pass uses this to prefer retiring
        the cache-coldest replica: the one whose resident set would cost
        the least swap traffic to rebuild elsewhere.
        """
        res = self._resident.get(replica_id)
        if not res:
            return 0.0
        return sum(self.popularity(a) for a in res)

    # -- the placement decision -----------------------------------------------

    def decide(self, adapter_id: str,
               loads: Dict[str, float]) -> Tuple[str, str]:
        """Choose a replica for one request; returns ``(replica_id, why)``.

        ``loads`` maps each *routable* replica to its current load
        (queued decode rounds, health-inflated by the caller when
        health-aware).  Decision ladder:

        1. the consistent-hash home (first routable of ``hot_copies``
           homes for replicated adapters) when it already holds the
           adapter and is not overloaded — ``home-hit``;
        2. else the least-loaded routable replica already holding the
           adapter, if one exists under the spill bar — ``spill-hit``
           (a *spill*: locality kept, load respected);
        3. else the least-loaded routable home, if it is under the
           (looser) miss bar — ``home-miss`` (pay the cold swap where
           future requests will hash);
        4. else the least-loaded routable replica — ``fallback-miss``.
           A miss costs the same swap wherever it lands, so once every
           home is severely overloaded, balance wins over locality:
           piling misses onto a hot home is how affinity routing melts
           its tail.  The new residency is recorded at the fallback
           replica, so repeat requests still find it via spill-hit.

        Every path records the intended residency so back-to-back
        requests for one adapter see the first decision's effect.
        """
        if not loads:
            raise ValueError("no routable replicas to decide over")
        self.observe(adapter_id)
        k = (self.config.hot_copies
             if adapter_id in self._replicated else 1)
        homes = [rid for rid in self.homes(adapter_id, k) if rid in loads]
        fleet_min = min(loads.values())
        bar = (self.config.spill_load_factor * fleet_min
               + self.config.spill_slack_rounds)
        holders = sorted(
            (rid for rid in self.holders(adapter_id) if rid in loads),
            key=lambda rid: (loads[rid], rid),
        )
        chosen: Optional[str] = None
        why = "fallback-miss"
        home_hits = [rid for rid in homes
                     if adapter_id in self._resident.get(rid, {})
                     and loads[rid] <= bar]
        if home_hits:
            # Replicated adapters spread by load across their k homes.
            chosen = min(home_hits, key=lambda rid: (loads[rid], rid))
            why = "home-hit"
        if chosen is None and holders and loads[holders[0]] <= bar:
            chosen = holders[0]
            why = "home-hit" if chosen in homes else "spill-hit"
            if why == "spill-hit":
                self.spills += 1
        if chosen is None and homes:
            miss_bar = (self.config.miss_load_factor * fleet_min
                        + self.config.miss_slack_rounds)
            best_home = min(homes, key=lambda rid: (loads[rid], rid))
            if loads[best_home] <= miss_bar:
                chosen = best_home
                why = "home-miss"
        if chosen is None:
            chosen = min(loads, key=lambda rid: (loads[rid], rid))
            why = "fallback-miss"
        self.note_assignment(adapter_id, chosen)
        return chosen, why

    # -- replication / demotion (the epoched rebalance pass) -------------------

    def rebalance(self) -> Dict[str, int]:
        """One control-epoch pass: promote hot adapters, demote cold.

        Promotion adds an adapter to the replicated set (dispatch then
        spreads it over ``hot_copies`` ring homes) and soft-pins it in
        those homes' GPU slots; decay below the watermark reverses both.
        Demotion evicts cold adapters from GPU slots on every replica
        except their primary home — correctness is unaffected (a demoted
        adapter swaps back in on next use); only the slot pressure
        moves.  Returns ``{"replications": n, "demotions": m}`` for this
        pass.
        """
        cfg = self.config
        stats = {"replications": 0, "demotions": 0}
        hot = set(self.hot_set())
        for adapter_id in sorted(hot - self._replicated):
            self._replicated.add(adapter_id)
            self.replications += 1
            stats["replications"] += 1
        for adapter_id in sorted(self._replicated - hot):
            self._replicated.discard(adapter_id)
        self._apply_pins()
        if cfg.cold_watermark > 0.0:
            stats["demotions"] = self._demote_cold()
        return stats

    def _apply_pins(self) -> None:
        """Soft-pin replicated adapters in their ring homes' slots."""
        cfg = self.config
        want: Dict[str, set] = {rid: set() for rid in self._engines}
        for adapter_id in sorted(self._replicated):
            for rid in self.homes(adapter_id, cfg.hot_copies):
                engine = self._engines.get(rid)
                if engine is None:
                    continue
                cap = max(1, int(engine.adapters.gpu_slots
                                 * cfg.max_pins_fraction))
                if len(want[rid]) < cap:
                    want[rid].add(adapter_id)
        for rid, engine in self._engines.items():
            have = self._pins.setdefault(rid, set())
            for adapter_id in sorted(have - want[rid]):
                engine.adapters.unpin(adapter_id)
                have.discard(adapter_id)
            for adapter_id in sorted(want[rid] - have):
                if engine.adapters.pin(adapter_id):
                    have.add(adapter_id)

    def _demote_cold(self) -> int:
        """Demote cold adapters from GPU slots off their primary home."""
        wm = self.config.cold_watermark
        demoted = 0
        for rid in sorted(self._engines):
            engine = self._engines[rid]
            res = self._resident.get(rid, {})
            for adapter_id in sorted(res):
                if self.popularity(adapter_id) >= wm:
                    continue
                home = self.homes(adapter_id, 1)
                if home and home[0] == rid:
                    continue  # keep one copy at the primary home
                if engine.adapters.demote(adapter_id):
                    del res[adapter_id]
                    demoted += 1
                    self.demotions += 1
        return demoted

    # -- autoscaler warm-up ------------------------------------------------------

    def prefetch_plan(self, engine) -> List[str]:
        """Hot adapters a fresh replica should prefetch during warm-up.

        The registry's current top-k hot set, minus whatever the
        engine's warm start already made resident, capped to the
        engine's slot budget.
        """
        k = self.config.prefetch_top_k
        if k <= 0:
            return []
        resident = set(engine.adapters.resident_ids)
        plan = [a for a in self.top_hot(k) if a not in resident]
        # Cap to the slot budget, not the *free* slots: a warm-started
        # engine boots with its slots full of the registry's first
        # adapters, and prefetch exists precisely to replace those with
        # the fleet's actual hot set (make_resident evicts LRU).
        return plan[:engine.adapters.gpu_slots]

    def apply_prefetch(self, engine, adapter_ids: Sequence[str],
                       now: float) -> None:
        """Make the warm-up plan actually resident on the new engine."""
        for adapter_id in adapter_ids:
            if engine.adapters.make_resident(adapter_id, now):
                self.prefetches += 1

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """A flat snapshot for bench dumps and debugging."""
        return {
            "replicas": float(len(self._engines)),
            "tracked_adapters": float(len(self._pop_raw)),
            "observations": float(self._observations),
            "replicated_adapters": float(len(self._replicated)),
            "spills": float(self.spills),
            "replications": float(self.replications),
            "demotions": float(self.demotions),
            "prefetches": float(self.prefetches),
        }
