"""Request lifecycle for the serving engine."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple


class RequestStatus(enum.Enum):
    """Where a request is in its life."""

    WAITING = "waiting"       # arrived, not yet admitted to a batch
    RUNNING = "running"       # prefilled (or prefilling) and decoding
    FINISHED = "finished"
    ABORTED = "aborted"


class AbortReason(enum.Enum):
    """Why the runtime gave up on a request (graceful degradation)."""

    KV_EXHAUSTED = "kv_exhausted"             # shed under memory pressure
    DEADLINE_EXCEEDED = "deadline_exceeded"   # missed its latency deadline
    ADAPTER_UNAVAILABLE = "adapter_unavailable"  # swap retries exhausted
    ENGINE_FAILED = "engine_failed"           # GPU died, no survivor took it
    ADMISSION_REJECTED = "admission_rejected"  # turned away at the door
    BROWNOUT_SHED = "brownout_shed"           # dropped by degraded-service tier


#: Request priority classes (admission and brownout shed lowest first).
PRIORITY_LOW = 0
PRIORITY_NORMAL = 1
PRIORITY_HIGH = 2


_id_counter = itertools.count()


def reset_request_ids(start: int = 0) -> None:
    """Reset the global request-id counter (test isolation).

    Request ids otherwise depend on how many requests earlier tests or
    runs created in the same process; tests reset via an autouse
    fixture so ids are reproducible per test.
    """
    global _id_counter
    _id_counter = itertools.count(start)


@dataclass(slots=True)
class Request:
    """One inference request.

    Attributes
    ----------
    adapter_id:
        The LoRA adapter this request invokes (V-LoRA identifies it from
        the query / application registration, §5).
    arrival_time:
        Simulated arrival timestamp in seconds.
    input_tokens:
        Prompt + visual tokens (prefill length).
    output_tokens:
        Decode rounds required.  A task answered through a vision task
        head needs exactly 1 (§4.2.2).
    num_images:
        Images the vision encoder must process at prefill.
    use_task_head:
        Whether the answer comes from the adapter's task head.
    prefix_key / prefix_tokens:
        Optional shared-prefix identity for KV reuse (e.g. an image seen
        before in multi-round VQA, §5 "KV cache reuse").
    """

    adapter_id: str
    arrival_time: float
    input_tokens: int
    output_tokens: int
    task_name: str = ""
    num_images: int = 0
    use_task_head: bool = False
    prefix_key: Optional[str] = None
    prefix_tokens: int = 0
    #: Optional per-request latency SLO in seconds (§4.4: V-LoRA aims to
    #: minimize average latency while meeting each application's
    #: constraint); accounted by the metrics layer.
    slo_s: Optional[float] = None
    #: Optional hard deadline in seconds from arrival: the engine aborts
    #: the request (``AbortReason.DEADLINE_EXCEEDED``) once exceeded.
    deadline_s: Optional[float] = None
    #: Priority class (``PRIORITY_LOW`` / ``PRIORITY_NORMAL`` /
    #: ``PRIORITY_HIGH``): overload protection sheds and rejects lowest
    #: priority first; values outside the named classes are allowed and
    #: ordered numerically.
    priority: int = PRIORITY_NORMAL
    request_id: int = field(default_factory=lambda: next(_id_counter))

    # -- progress (mutated by the engine) -----------------------------------
    status: RequestStatus = RequestStatus.WAITING
    prefilled: bool = False
    generated: int = 0
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    abort_time: Optional[float] = None
    abort_reason: Optional[AbortReason] = None
    credit: float = 0.0
    #: How many times cluster failover has requeued this request.
    requeues: int = 0
    #: How many times a *voluntary* scale-down drain re-homed this
    #: request.  Tracked separately from ``requeues`` so that replica
    #: churn never burns the failover budget (``max_requeues``) of a
    #: request whose hosts never actually failed.
    drain_hops: int = 0
    #: Fencing token ``(replica_id, lease_epoch)`` stamped at dispatch
    #: when lease fencing is on.  A completion is only accepted while
    #: the delivering engine's token still equals this lease; seizure
    #: (confirmed death → re-dispatch) clears it, so a zombie replica's
    #: late result can never double-terminate the request.
    lease: Optional[Tuple[str, int]] = None
    #: True on the speculative twin created by hedged dispatch
    #: (:meth:`clone_for_hedge`).  A hedge twin shares its primary's
    #: ``request_id`` — the cluster's accepted-id fence is what makes
    #: first-completion-wins safe — but carries its own progress state
    #: and lease, and never burns the primary's failover budget.
    is_hedge: bool = False

    def __post_init__(self) -> None:
        if self.input_tokens <= 0:
            raise ValueError(f"input_tokens must be positive, got {self.input_tokens}")
        if self.output_tokens <= 0:
            raise ValueError(f"output_tokens must be positive, got {self.output_tokens}")
        if self.arrival_time < 0:
            raise ValueError(f"arrival_time must be >= 0, got {self.arrival_time}")
        if not 0 <= self.prefix_tokens <= self.input_tokens:
            raise ValueError(
                f"prefix_tokens {self.prefix_tokens} outside "
                f"[0, {self.input_tokens}]"
            )
        if self.use_task_head and self.output_tokens != 1:
            raise ValueError("task-head requests decode in exactly 1 round")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError(f"slo_s must be positive, got {self.slo_s}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    # -- derived -------------------------------------------------------------

    @property
    def total_tokens(self) -> int:
        """Input + output tokens (the denominator of avg token latency)."""
        return self.input_tokens + self.output_tokens

    @property
    def context_len(self) -> int:
        """Current context length (prefill + generated so far)."""
        return self.input_tokens + self.generated

    @property
    def remaining(self) -> int:
        return self.output_tokens - self.generated

    @property
    def is_finished(self) -> bool:
        return self.generated >= self.output_tokens

    @property
    def is_aborted(self) -> bool:
        return self.status is RequestStatus.ABORTED

    @property
    def is_terminal(self) -> bool:
        """Finished or aborted — no further engine work will happen."""
        return self.status in (RequestStatus.FINISHED, RequestStatus.ABORTED)

    def latency(self) -> float:
        """End-to-end latency once terminal (finish or abort time)."""
        end = self.finish_time if self.finish_time is not None else self.abort_time
        if end is None:
            raise RuntimeError(
                f"request {self.request_id} still in flight (no latency yet)"
            )
        return end - self.arrival_time

    def waiting_time(self, now: float) -> float:
        return max(0.0, now - self.arrival_time)

    def met_slo(self) -> Optional[bool]:
        """Whether the request met its SLO.

        ``None`` when no SLO is attached or the request is still in
        flight; aborted requests count as SLO misses (``False``) rather
        than crashing the metrics pass.
        """
        if self.slo_s is None:
            return None
        if self.is_aborted:
            return False
        if self.finish_time is None:
            return None
        return self.latency() <= self.slo_s

    # -- hedged dispatch -----------------------------------------------------

    def clone_for_hedge(self) -> "Request":
        """A fresh twin for speculative re-dispatch (hedging).

        The twin shares the primary's identity (``request_id``, arrival
        time, workload shape — so latency and records are measured from
        the *original* arrival) but starts from a clean WAITING state
        with no lease: the engine it lands on stamps its own fencing
        token at submit.  Deliberately does **not** draw a fresh id from
        the global counter, so hedging never perturbs the ids of later
        requests (determinism at defaults).
        """
        twin = Request(
            adapter_id=self.adapter_id,
            arrival_time=self.arrival_time,
            input_tokens=self.input_tokens,
            output_tokens=self.output_tokens,
            task_name=self.task_name,
            num_images=self.num_images,
            use_task_head=self.use_task_head,
            prefix_key=self.prefix_key,
            prefix_tokens=self.prefix_tokens,
            slo_s=self.slo_s,
            deadline_s=self.deadline_s,
            priority=self.priority,
            request_id=self.request_id,
            is_hedge=True,
        )
        return twin

    # -- fault handling ------------------------------------------------------

    def abort(self, now: float, reason: AbortReason) -> None:
        """Mark the request aborted at sim-time ``now``."""
        if self.status is RequestStatus.FINISHED:
            raise RuntimeError(
                f"cannot abort finished request {self.request_id}"
            )
        self.status = RequestStatus.ABORTED
        self.abort_time = now
        self.abort_reason = reason

    def reset_for_requeue(self, now: float, backoff_s: float = 0.0,
                          count_hop: bool = True) -> None:
        """Rewind progress so a surviving engine can restart the request.

        Used by cluster failover: the dead engine's KV state is gone, so
        the request re-prefills from scratch.  Arrival is bumped to the
        failure time (latency for failed-over requests is measured from
        requeue), plus ``backoff_s`` when the cluster spaces repeated
        requeues out.  Each call counts one failover hop in
        ``requeues`` — unless ``count_hop=False``, the scale-down drain
        path, which charges ``drain_hops`` instead so voluntary replica
        retirement cannot exhaust a request's failover budget.  Every
        other field resets idempotently, so a request whose new host
        also dies can be drained again safely.
        """
        self.status = RequestStatus.WAITING
        self.prefilled = False
        self.generated = 0
        self.first_token_time = None
        self.finish_time = None
        self.abort_time = None
        self.abort_reason = None
        self.credit = 0.0
        self.lease = None
        if count_hop:
            self.requeues += 1
        else:
            self.drain_hops += 1
        self.arrival_time = max(self.arrival_time, now) + backoff_s
