"""Request lifecycle for the serving engine."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional


class RequestStatus(enum.Enum):
    """Where a request is in its life."""

    WAITING = "waiting"       # arrived, not yet admitted to a batch
    RUNNING = "running"       # prefilled (or prefilling) and decoding
    FINISHED = "finished"
    ABORTED = "aborted"


_id_counter = itertools.count()


@dataclass
class Request:
    """One inference request.

    Attributes
    ----------
    adapter_id:
        The LoRA adapter this request invokes (V-LoRA identifies it from
        the query / application registration, §5).
    arrival_time:
        Simulated arrival timestamp in seconds.
    input_tokens:
        Prompt + visual tokens (prefill length).
    output_tokens:
        Decode rounds required.  A task answered through a vision task
        head needs exactly 1 (§4.2.2).
    num_images:
        Images the vision encoder must process at prefill.
    use_task_head:
        Whether the answer comes from the adapter's task head.
    prefix_key / prefix_tokens:
        Optional shared-prefix identity for KV reuse (e.g. an image seen
        before in multi-round VQA, §5 "KV cache reuse").
    """

    adapter_id: str
    arrival_time: float
    input_tokens: int
    output_tokens: int
    task_name: str = ""
    num_images: int = 0
    use_task_head: bool = False
    prefix_key: Optional[str] = None
    prefix_tokens: int = 0
    #: Optional per-request latency SLO in seconds (§4.4: V-LoRA aims to
    #: minimize average latency while meeting each application's
    #: constraint); accounted by the metrics layer.
    slo_s: Optional[float] = None
    request_id: int = field(default_factory=lambda: next(_id_counter))

    # -- progress (mutated by the engine) -----------------------------------
    status: RequestStatus = RequestStatus.WAITING
    prefilled: bool = False
    generated: int = 0
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    credit: float = 0.0

    def __post_init__(self) -> None:
        if self.input_tokens <= 0:
            raise ValueError(f"input_tokens must be positive, got {self.input_tokens}")
        if self.output_tokens <= 0:
            raise ValueError(f"output_tokens must be positive, got {self.output_tokens}")
        if self.arrival_time < 0:
            raise ValueError(f"arrival_time must be >= 0, got {self.arrival_time}")
        if not 0 <= self.prefix_tokens <= self.input_tokens:
            raise ValueError(
                f"prefix_tokens {self.prefix_tokens} outside "
                f"[0, {self.input_tokens}]"
            )
        if self.use_task_head and self.output_tokens != 1:
            raise ValueError("task-head requests decode in exactly 1 round")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError(f"slo_s must be positive, got {self.slo_s}")

    # -- derived -------------------------------------------------------------

    @property
    def total_tokens(self) -> int:
        """Input + output tokens (the denominator of avg token latency)."""
        return self.input_tokens + self.output_tokens

    @property
    def context_len(self) -> int:
        """Current context length (prefill + generated so far)."""
        return self.input_tokens + self.generated

    @property
    def remaining(self) -> int:
        return self.output_tokens - self.generated

    @property
    def is_finished(self) -> bool:
        return self.generated >= self.output_tokens

    def latency(self) -> float:
        """End-to-end latency; only valid once finished."""
        if self.finish_time is None:
            raise RuntimeError(f"request {self.request_id} not finished")
        return self.finish_time - self.arrival_time

    def waiting_time(self, now: float) -> float:
        return max(0.0, now - self.arrival_time)

    def met_slo(self) -> Optional[bool]:
        """Whether the finished request met its SLO (None if no SLO)."""
        if self.slo_s is None:
            return None
        return self.latency() <= self.slo_s
