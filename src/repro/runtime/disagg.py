"""Disaggregated prefill/decode serving: pool split and hand-off.

V-LoRA colocates prefill and decode on every replica; InfiniLoRA-style
disaggregation (PAPERS.md) splits the fleet instead: a **prefill pool**
absorbs the compute bursts (and runs merged for raw prefill
throughput), a **decode pool** holds the long-lived KV residency (and
multiplexes adapters unmerged / via deLoRA).  The two bottlenecks stop
contending: a prefill burst no longer stretches every in-flight
decode's inter-token latency, and decode KV pressure no longer starves
prefill admission.

The pieces, all opt-in through :class:`DisaggConfig` on
:class:`~repro.runtime.cluster.MultiGPUServer`:

* **Pool roles** — the first ``prefill_replicas`` replicas form the
  prefill pool, the rest the decode pool.  :func:`apply_pool_role`
  flips the engine-side switches: prefill engines park finished
  prefills in their ``handoff_outbox`` instead of decoding them;
  decode engines accept transferred-in requests (allocating local KV
  for the sequence that just crossed the wire).
* **KV transfer** — once per control epoch the cluster drains every
  reachable prefill replica's hand-off outbox and delivers each
  request to the decode replica with the most free KV, charging a
  size-proportional wire cost (``context_len * kv_bytes_per_token``
  through the same :class:`~repro.hardware.memory.TransferModel` that
  prices adapter swap-ins, memoized by
  :class:`~repro.runtime.costcache.TransferCostCache`).  The request's
  arrival time — and therefore its TTFT and end-to-end deadline — is
  untouched; only its admission on the decode replica waits out the
  wire time.
* **Per-pool mode choice** — :class:`PhasePinnedPolicy` wraps each
  engine's scheduling policy: the prefill pool coerces single-adapter
  batches to MERGED (base-model-speed prefill), the decode pool
  rewrites MERGED to UNMERGED so one adapter can never monopolize the
  multiplexed decode batch.  MIXTURE (deLoRA) passes through — it *is*
  the multiplexing mode.  Mode transitions still pay the existing
  switcher's costs.
* **Per-pool autoscaling** — the prefill pool scales on queue depth,
  the decode pool on fleet KV residency
  (:attr:`~repro.runtime.autoscaler.AutoscaleConfig.target_utilization`).

Fault tolerance composes with the existing machinery: a prefill
replica dying with un-collected hand-offs rewinds them through
``drain_orphans`` (they re-prefill elsewhere, exactly once); a decode
replica dying mid-transfer rewinds the delivered-but-unfinished
request the same way; lease fencing re-stamps the request's lease at
decode submit so the hand-off can never double-terminate; and hedged
twins of a transferred request re-enter through the prefill pool and
race through the fence like any other hedge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.runtime.autoscaler import AutoscaleConfig
from repro.runtime.modes import POOL_MODE_PREFERENCE, InferenceMode
from repro.runtime.scheduler import SchedulerDecision, SchedulingPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import ServingEngine

__all__ = [
    "DECODE_POOL",
    "DisaggConfig",
    "PREFILL_POOL",
    "PhasePinnedPolicy",
    "apply_pool_role",
]

#: Pool role names (also the keys of
#: :data:`~repro.runtime.modes.POOL_MODE_PREFERENCE`).
PREFILL_POOL = "prefill"
DECODE_POOL = "decode"


@dataclass(frozen=True)
class DisaggConfig:
    """Knobs for disaggregated prefill/decode serving.

    ``prefill_replicas`` + ``decode_replicas`` must equal the cluster's
    initial engine count; the first ``prefill_replicas`` engines form
    the prefill pool.  ``interval_s`` drives the epoched control loop
    when nothing else (autoscaler / detector / hedge / placement)
    already does.  ``transfer_overhead_s`` is the flat per-hand-off
    software cost (launch + transport setup) and ``transfer_overlap``
    the fraction of wire time hidden behind the receiving replica's
    compute — both feed the same
    :meth:`~repro.hardware.memory.TransferModel.swap_seconds` model
    adapter swap-ins use.  ``pin_prefill_merged`` /
    ``forbid_decode_merged`` control the per-pool mode pinning
    (:class:`PhasePinnedPolicy`).  The per-pool autoscale configs are
    optional — ``None`` leaves that pool at its provisioned size; the
    decode config usually sets
    :attr:`~repro.runtime.autoscaler.AutoscaleConfig.target_utilization`
    so the pool scales on KV residency rather than queue depth.
    """

    prefill_replicas: int = 1
    decode_replicas: int = 1
    interval_s: float = 0.5
    transfer_overhead_s: float = 0.5e-3
    transfer_overlap: float = 0.0
    pin_prefill_merged: bool = True
    forbid_decode_merged: bool = True
    prefill_autoscale: Optional[AutoscaleConfig] = None
    decode_autoscale: Optional[AutoscaleConfig] = None

    def __post_init__(self) -> None:
        if self.prefill_replicas < 1:
            raise ValueError("prefill_replicas must be >= 1")
        if self.decode_replicas < 1:
            raise ValueError("decode_replicas must be >= 1")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.transfer_overhead_s < 0:
            raise ValueError("transfer_overhead_s must be >= 0")
        if not 0.0 <= self.transfer_overlap < 1.0:
            raise ValueError("transfer_overlap must be in [0, 1)")


class PhasePinnedPolicy(SchedulingPolicy):
    """Wrap a scheduling policy with a pool's mode preference.

    The base policy still picks the batch (and pays for its choices
    through the existing switcher); the wrapper only post-processes the
    *mode*:

    * ``prefill`` pool: a single-adapter batch is coerced to MERGED —
      prefill is one big GEMM burst and the merged path runs it at
      base-model cost.  Multi-adapter batches keep the base decision
      (MERGED cannot serve them).
    * ``decode`` pool: MERGED is rewritten to UNMERGED — pinning one
      adapter's ΔW into the base weights would starve every other
      adapter multiplexed on the pool.  MIXTURE passes through: deLoRA
      is exactly the multiplexing mode the pool exists for.
    """

    def __init__(self, base: SchedulingPolicy, role: str):
        if role not in (PREFILL_POOL, DECODE_POOL):
            raise ValueError(f"unknown pool role {role!r}")
        self.base = base
        self.role = role
        self.name = f"{base.name}+{role}-pinned"

    def schedule(self, candidates, ctx):
        decision = self.base.schedule(candidates, ctx)
        if decision is None:
            return None
        preferred = POOL_MODE_PREFERENCE[self.role]
        if self.role == PREFILL_POOL:
            if decision.mode is not InferenceMode.MERGED:
                adapters = {r.adapter_id for r in decision.batch}
                if len(adapters) == 1:
                    return SchedulerDecision(
                        batch=decision.batch,
                        mode=preferred,
                        merged_adapter=next(iter(adapters)),
                    )
        elif decision.mode is InferenceMode.MERGED:
            return SchedulerDecision(batch=decision.batch, mode=preferred)
        return decision

    def refresh_credits(self, requests, ctx) -> None:
        self.base.refresh_credits(requests, ctx)


def apply_pool_role(engine: "ServingEngine", role: str,
                    config: DisaggConfig) -> None:
    """Flip one engine's switches for its pool role.

    Idempotent per engine (the cluster applies it once, at registration
    or spawn).  Prefill engines hand finished prefills to the cluster's
    transfer pass instead of decoding them; decode engines allocate
    local KV for transferred-in sequences.
    """
    if role == PREFILL_POOL:
        engine.handoff_after_prefill = True
        if config.pin_prefill_merged:
            engine.policy = PhasePinnedPolicy(engine.policy, PREFILL_POOL)
    elif role == DECODE_POOL:
        engine.accepts_kv_transfers = True
        if config.forbid_decode_merged:
            engine.policy = PhasePinnedPolicy(engine.policy, DECODE_POOL)
    else:
        raise ValueError(f"unknown pool role {role!r}")


def kv_transfer_bytes(request, model) -> int:
    """Wire size of one hand-off: the full KV sequence at its context.

    The prefill replica holds ``context_len`` tokens of KV for the
    request (prompt plus the first generated token); all of it must
    reach the decode replica before decoding can continue.
    """
    return request.context_len * model.kv_bytes_per_token


def pool_of_index(index: int, config: DisaggConfig) -> str:
    """Initial pool assignment: first ``prefill_replicas`` are prefill."""
    return (PREFILL_POOL if index < config.prefill_replicas
            else DECODE_POOL)
