"""Adapter registry and GPU residency with asynchronous swap.

V-LoRA keeps the A/B matrices (tens of MB) resident in pre-allocated GPU
slots and swaps cold adapters to host memory asynchronously (§5 "LoRA
adapter swap"): the wire time largely overlaps with ongoing compute, so
a swap-in stalls the pipeline only for the un-overlapped remainder.
Baselines swap synchronously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.hardware.memory import TransferModel
from repro.models.lora import LoRAAdapterSpec


@dataclass(slots=True)
class _Residency:
    spec: LoRAAdapterSpec
    on_gpu: bool = False
    last_used: float = 0.0
    swap_ins: int = 0


class AdapterManager:
    """Tracks which adapters are GPU-resident and costs swap-ins."""

    #: Per-swap software cost with pre-allocated contiguous slots: the
    #: swap is a plain async memcpy plus a pointer update (§4.4.1).
    PREALLOCATED_SLOT_OVERHEAD_S = 1.5e-3

    def __init__(
        self,
        specs: Sequence[LoRAAdapterSpec],
        gpu_slots: int,
        transfer_model: TransferModel,
        async_swap: bool = True,
        async_overlap: float = 0.85,
        preallocated_slots: bool = None,
    ):
        if gpu_slots <= 0:
            raise ValueError(f"gpu_slots must be positive, got {gpu_slots}")
        if not specs:
            raise ValueError("need at least one adapter spec")
        ids = [s.adapter_id for s in specs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate adapter ids in {ids}")
        self.gpu_slots = gpu_slots
        self.transfer = transfer_model
        self.async_swap = async_swap
        self.async_overlap = async_overlap if async_swap else 0.0
        # Pre-allocated slots go together with the async design by
        # default: both are parts of V-LoRA's adapter memory management.
        if preallocated_slots is None:
            preallocated_slots = async_swap
        self.swap_software_overhead_s = (
            self.PREALLOCATED_SLOT_OVERHEAD_S if preallocated_slots
            else None
        )
        self._adapters: Dict[str, _Residency] = {
            s.adapter_id: _Residency(s) for s in specs
        }
        #: Soft-pinned adapter ids (fleet placement's hot replicas):
        #: eviction prefers unpinned victims but may still evict a pin
        #: under slot pressure — pins bias, they never deadlock.
        self.pinned: set = set()
        #: Injected swap-in failures observed (fault injection).
        self.swap_failures = 0
        # Warm start: the first adapters are resident (offline phase loads
        # them before serving begins).
        for res in list(self._adapters.values())[:gpu_slots]:
            res.on_gpu = True

    # -- queries -------------------------------------------------------------

    def spec(self, adapter_id: str) -> LoRAAdapterSpec:
        return self._entry(adapter_id).spec

    def is_resident(self, adapter_id: str) -> bool:
        return self._entry(adapter_id).on_gpu

    @property
    def resident_ids(self) -> List[str]:
        return [a for a, r in self._adapters.items() if r.on_gpu]

    @property
    def adapter_ids(self) -> List[str]:
        """All registered adapter ids, in registration order."""
        return list(self._adapters)

    @property
    def num_adapters(self) -> int:
        return len(self._adapters)

    def _entry(self, adapter_id: str) -> _Residency:
        entry = self._adapters.get(adapter_id)
        if entry is None:
            known = ", ".join(sorted(self._adapters))
            raise KeyError(f"unknown adapter {adapter_id!r}; known: {known}")
        return entry

    # -- residency ----------------------------------------------------------------

    def ensure_resident(self, adapter_ids: Sequence[str], now: float) -> float:
        """Make all of ``adapter_ids`` GPU-resident; return the stall time.

        Missing adapters are swapped in (evicting the least-recently-used
        resident adapters not in the requested set).  With async swap most
        of the wire time hides behind compute; the returned stall is what
        the engine must still wait.
        """
        stall, failed = self.try_ensure_resident(adapter_ids, now)
        assert not failed  # no injector -> swaps cannot fail
        return stall

    def try_ensure_resident(
        self, adapter_ids: Sequence[str], now: float, injector=None,
    ) -> "tuple[float, List[str]]":
        """Fault-aware residency: returns ``(stall_seconds, failed_ids)``.

        With a :class:`~repro.runtime.faults.FaultInjector`, a swap-in
        may fail (the attempted transfer time is still paid — the
        failure is detected at completion) or be slowed by an active
        ``ADAPTER_SWAP_SLOW`` window.  Failed adapters stay non-resident;
        the engine is responsible for backoff/retry.
        """
        needed = list(dict.fromkeys(adapter_ids))
        if len(needed) > self.gpu_slots:
            raise RuntimeError(
                f"batch needs {len(needed)} adapters but only "
                f"{self.gpu_slots} GPU slots exist"
            )
        stall = 0.0
        failed: List[str] = []
        for adapter_id in needed:
            entry = self._entry(adapter_id)
            entry.last_used = now
            if entry.on_gpu:
                continue
            wire = self.transfer.swap_seconds(
                entry.spec.ab_bytes, async_overlap=self.async_overlap,
                software_overhead_s=self.swap_software_overhead_s,
            )
            if injector is not None:
                wire *= injector.swap_slowdown(adapter_id, now)
                if injector.swap_should_fail(adapter_id, now):
                    self.swap_failures += 1
                    failed.append(adapter_id)
                    stall += wire  # wasted transfer attempt
                    continue
            self._evict_one(exclude=set(needed))
            entry.on_gpu = True
            entry.swap_ins += 1
            stall += wire
        return stall, failed

    def _evict_one(self, exclude: set) -> None:
        resident = [
            (r.last_used, a) for a, r in self._adapters.items()
            if r.on_gpu and a not in exclude
        ]
        if len(self.resident_ids) < self.gpu_slots:
            return  # free slot available
        if not resident:
            raise RuntimeError("no evictable adapter (all slots pinned)")
        # Soft pins: evict the LRU *unpinned* resident first; fall back
        # to a pinned victim rather than failing the batch (a pin biases
        # placement, it must never wedge the engine).
        unpinned = [entry for entry in resident
                    if entry[1] not in self.pinned]
        (unpinned or resident).sort()
        victim = (unpinned or resident)[0][1]
        # Swap-out is fully asynchronous (write-back can always overlap).
        self._adapters[victim].on_gpu = False

    # -- fleet placement hooks (runtime/placement.py) -----------------------

    def pin(self, adapter_id: str) -> bool:
        """Soft-pin an adapter: eviction prefers other victims."""
        self._entry(adapter_id)  # raise on unknown ids
        if adapter_id in self.pinned:
            return False
        self.pinned.add(adapter_id)
        return True

    def unpin(self, adapter_id: str) -> None:
        self.pinned.discard(adapter_id)

    def demote(self, adapter_id: str) -> bool:
        """Evict one adapter from its GPU slot (fleet-wide cold demotion).

        Swap-out is asynchronous (no stall); returns whether the adapter
        was actually resident.  A demoted adapter simply swaps back in
        on next use — correctness never depends on this call.  The last
        resident adapter is never demoted: the engine assumes at least
        one resident (switch-cost estimation, warm merges).
        """
        entry = self._entry(adapter_id)
        if not entry.on_gpu:
            return False
        if len(self.resident_ids) <= 1:
            return False
        entry.on_gpu = False
        return True

    def make_resident(self, adapter_id: str, now: float) -> bool:
        """Force one adapter GPU-resident (autoscaler warm-up prefetch).

        Counts as a swap-in; evicts LRU residents if the slots are full.
        Returns False when the adapter was already resident.
        """
        entry = self._entry(adapter_id)
        entry.last_used = now
        if entry.on_gpu:
            return False
        self._evict_one(exclude={adapter_id})
        entry.on_gpu = True
        entry.swap_ins += 1
        return True

    # -- stats -------------------------------------------------------------------------

    def total_swap_ins(self) -> int:
        return sum(r.swap_ins for r in self._adapters.values())
