"""LoRA-LMM serving runtime: the online phase of V-LoRA (§4.4, §5).

A discrete-event, iteration-level serving engine in the style of
vLLM/LightLLM, driven by the analytical cost models:

* :mod:`repro.runtime.request` — request lifecycle;
* :mod:`repro.runtime.clock` — the simulated clock;
* :mod:`repro.runtime.kv_cache` — paged KV-cache block manager with
  prefix reuse (§5 "KV cache reuse");
* :mod:`repro.runtime.memory` — unified KV/adapter memory accounting;
* :mod:`repro.runtime.adapters` — adapter residency + async swap;
* :mod:`repro.runtime.modes` — merged / unmerged / mixture (deLoRA)
  execution costs and the deLoRA correctness math (§4.4.2);
* :mod:`repro.runtime.switcher` — swift one-shot mode switch vs. dLoRA's
  per-layer switch (§4.4.1, Fig. 7);
* :mod:`repro.runtime.scheduler` — Algorithm 1 and baseline policies;
* :mod:`repro.runtime.engine` — the iteration-level engine;
* :mod:`repro.runtime.soa_core` — structure-of-arrays batch-advanced
  engine for very large traces (result-identical, opt-in);
* :mod:`repro.runtime.cluster` — multi-GPU dispatch (Table 3);
* :mod:`repro.runtime.autoscaler` — elastic replica lifecycle
  (WARMING/ACTIVE/DRAINING/DEAD) and the scaling policy;
* :mod:`repro.runtime.failure_detection` — φ-accrual heartbeat
  suspicion and lease-fenced exactly-once completion delivery;
* :mod:`repro.runtime.hedging` — tail-tolerant dispatch: hedged
  requests, per-class retry budgets, and the unified deadline/timeout
  policy;
* :mod:`repro.runtime.placement` — fleet-level adapter registry and
  cache-state-aware ``locality`` dispatch (consistent-hash homes,
  load-aware spill, hot-adapter replication, cold demotion);
* :mod:`repro.runtime.disagg` — disaggregated prefill/decode serving:
  pool roles, phase-pinned scheduling policies, and size-proportional
  KV hand-off pricing across the pool boundary;
* :mod:`repro.runtime.metrics` — latency/throughput accounting.
"""

from repro.runtime.request import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    AbortReason,
    Request,
    RequestStatus,
    reset_request_ids,
)
from repro.runtime.clock import SimClock
from repro.runtime.faults import (
    FaultInjector,
    FaultKind,
    FaultSpec,
    FaultSpecError,
)
from repro.runtime.failure_detection import (
    Completion,
    FailureDetector,
    FailureDetectorConfig,
    PhiAccrualDetector,
    SuspicionState,
)
from repro.runtime.kv_cache import BlockAllocationError, PagedKVCache
from repro.runtime.memory import UnifiedMemoryManager
from repro.runtime.adapters import AdapterManager
from repro.runtime.modes import InferenceMode, ModeExecutor, delora_output
from repro.runtime.switcher import DLoRASwitcher, ModeSwitcher, SwiftSwitcher
from repro.runtime.scheduler import (
    DLoRAPolicy,
    MergedOnlyPolicy,
    SchedulerDecision,
    SchedulingPolicy,
    SoADecision,
    SoAScheduleContext,
    UnmergedOnlyPolicy,
    VLoRAPolicy,
)
from repro.runtime.overload import (
    AdapterBreaker,
    AdmissionConfig,
    AdmissionController,
    AdmissionVerdict,
    BreakerConfig,
    BreakerState,
    BrownoutConfig,
    BrownoutController,
    EwmaSignal,
    ReplicaHealth,
)
from repro.runtime.hedging import (
    HedgeConfig,
    HedgeTracker,
    RetryBudget,
    RetryBudgetConfig,
    TimeoutPolicy,
    capped_exponential_backoff,
)
from repro.runtime.engine import EngineConfig, ServingEngine
from repro.runtime.soa_core import SoAServingEngine
from repro.runtime.autoscaler import (
    AutoscaleConfig,
    Autoscaler,
    Replica,
    ReplicaState,
    estimate_cold_start_s,
)
from repro.runtime.placement import AdapterPlacement, PlacementConfig
from repro.runtime.disagg import (
    DECODE_POOL,
    PREFILL_POOL,
    DisaggConfig,
    PhasePinnedPolicy,
)
from repro.runtime.cluster import MultiGPUServer
from repro.runtime.metrics import (
    AbortRecord,
    MetricsCollector,
    RequestRecord,
    ScaleEvent,
    StreamingQuantile,
    percentile,
)

__all__ = [
    "Request",
    "RequestStatus",
    "AbortReason",
    "reset_request_ids",
    "SimClock",
    "FaultInjector",
    "FaultKind",
    "FaultSpec",
    "FaultSpecError",
    "Completion",
    "FailureDetector",
    "FailureDetectorConfig",
    "PhiAccrualDetector",
    "SuspicionState",
    "PagedKVCache",
    "BlockAllocationError",
    "UnifiedMemoryManager",
    "AdapterManager",
    "InferenceMode",
    "ModeExecutor",
    "delora_output",
    "ModeSwitcher",
    "SwiftSwitcher",
    "DLoRASwitcher",
    "SchedulingPolicy",
    "SchedulerDecision",
    "VLoRAPolicy",
    "DLoRAPolicy",
    "MergedOnlyPolicy",
    "UnmergedOnlyPolicy",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_HIGH",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionVerdict",
    "BrownoutConfig",
    "BrownoutController",
    "BreakerConfig",
    "BreakerState",
    "AdapterBreaker",
    "EwmaSignal",
    "ReplicaHealth",
    "HedgeConfig",
    "HedgeTracker",
    "RetryBudget",
    "RetryBudgetConfig",
    "TimeoutPolicy",
    "capped_exponential_backoff",
    "ServingEngine",
    "EngineConfig",
    "SoAServingEngine",
    "SoADecision",
    "SoAScheduleContext",
    "AutoscaleConfig",
    "Autoscaler",
    "Replica",
    "ReplicaState",
    "estimate_cold_start_s",
    "AdapterPlacement",
    "PlacementConfig",
    "DisaggConfig",
    "PhasePinnedPolicy",
    "PREFILL_POOL",
    "DECODE_POOL",
    "MultiGPUServer",
    "MetricsCollector",
    "RequestRecord",
    "AbortRecord",
    "ScaleEvent",
    "StreamingQuantile",
    "percentile",
]
