"""Inference modes: merged, unmerged, and mixture (deLoRA).

* **Merged** (Fig. 2b): one adapter's ΔW is folded into the base weights;
  requests for that adapter run at base-model cost, other adapters'
  requests cannot run.
* **Unmerged** (Fig. 2a): adapters compute as bypass GEMMs batched by the
  LoRA operator; any mix of adapters runs, at extra per-layer cost.
* **Mixture / deLoRA** (§4.4.2, Fig. 13): with adapter 1 merged, requests
  of other adapters still run correctly by routing them through a
  *deLoRA* branch (weights equal to the merged adapter, subtracted) plus
  their own adapter:

  ``out_x = in_x @ (W_merge - W_deLoRA1 + W_LoRAx)
          = in_x @ (W_base + W_LoRAx)``

  Merged-adapter requests pay nothing; others pay roughly double the
  unmerged bypass cost — still cheaper than a mode switch when they are
  the minority.

:func:`delora_output` implements the identity numerically so tests can
verify it with real matrices.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Sequence

import numpy as np

from repro.kernels.base import LoRAOperator
from repro.models.config import ModelConfig


class InferenceMode(enum.Enum):
    MERGED = "merged"
    UNMERGED = "unmerged"
    MIXTURE = "mixture"


#: Disaggregated-pool mode preferences (:mod:`repro.runtime.disagg`):
#: a prefill pool runs MERGED — prefill is one base-model-speed GEMM
#: burst per adapter — while a decode pool must multiplex many adapters
#: per batch, so it prefers UNMERGED (with MIXTURE/deLoRA as the other
#: acceptable multiplexing mode).
POOL_MODE_PREFERENCE = {
    "prefill": InferenceMode.MERGED,
    "decode": InferenceMode.UNMERGED,
}


def delora_output(
    x: np.ndarray,
    w_base: np.ndarray,
    delta_w_merged: np.ndarray,
    delta_w_own: np.ndarray,
) -> np.ndarray:
    """Output of a LoRA_x request under mixture mode (the deLoRA path).

    Computes ``x @ (W_merge - W_deLoRA1 + W_LoRAx)`` the way the kernel
    does — against the *merged* weights with two bypass corrections —
    which by distributivity equals ``x @ (W_base + W_LoRAx)``.
    """
    w_merge = w_base + delta_w_merged
    return x @ w_merge - x @ delta_w_merged + x @ delta_w_own


class ModeExecutor:
    """Per-iteration *extra* LoRA cost of each mode for a token batch."""

    def __init__(
        self,
        model: ModelConfig,
        operator: LoRAOperator,
        num_projections: int = 2,
    ):
        if num_projections <= 0:
            raise ValueError("num_projections must be positive")
        self.model = model
        self.operator = operator
        self.num_projections = num_projections
        # (token_counts, ranks) -> layer_seconds * num_layers.  The
        # operator cost is a pure function of the group token counts and
        # ranks — adapter *identities* never enter it — so signatures
        # that differ only in adapter names (which fragment the
        # engine-level cost cache) collapse onto one entry here.
        self._mean_memo: Dict[tuple, float] = {}

    def extra_seconds(
        self,
        mode: InferenceMode,
        adapter_tokens: Dict[str, int],
        adapter_ranks: Dict[str, int],
        merged_adapter: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Extra latency this iteration pays on top of base-model compute.

        Parameters
        ----------
        adapter_tokens:
            Tokens contributed this iteration per adapter id.
        adapter_ranks:
            Rank per adapter id.
        merged_adapter:
            The adapter currently folded into the base weights (required
            for MERGED and MIXTURE).
        rng:
            Optional generator for operator run-to-run jitter (Fig. 18).
        """
        mean = self.mean_extra_seconds(
            mode, adapter_tokens, adapter_ranks, merged_adapter=merged_adapter
        )
        return self.extra_seconds_from_mean(mean, rng)

    def extra_seconds_from_mean(
        self, mean_seconds: float,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Apply operator run-to-run jitter to a deterministic mean.

        Zero means (merged mode, degenerate mixture) never sample, so the
        rng stream advances exactly as it did before the mean became
        memoizable — a prerequisite for cache-on/off bit-identity.
        """
        if mean_seconds == 0.0:
            return 0.0
        return self.operator.sample_seconds(mean_seconds, rng)

    def mean_extra_seconds(
        self,
        mode: InferenceMode,
        adapter_tokens: Dict[str, int],
        adapter_ranks: Dict[str, int],
        merged_adapter: Optional[str] = None,
    ) -> float:
        """Deterministic (pre-jitter) extra latency of one iteration.

        This is the pure function of ``(mode, merged adapter, adapter
        token groups, ranks)`` that the engine's cost cache memoizes;
        :meth:`extra_seconds` is this plus jitter sampling.
        """
        if not adapter_tokens:
            raise ValueError("need at least one adapter group")
        missing = set(adapter_tokens) - set(adapter_ranks)
        if missing:
            raise ValueError(f"missing ranks for adapters {sorted(missing)}")

        if mode is InferenceMode.MERGED:
            others = set(adapter_tokens) - {merged_adapter}
            if others:
                raise ValueError(
                    f"merged mode cannot serve adapters {sorted(others)}"
                )
            return 0.0

        if mode is InferenceMode.UNMERGED:
            groups = dict(adapter_tokens)
        elif mode is InferenceMode.MIXTURE:
            if merged_adapter is None:
                raise ValueError("mixture mode needs a merged adapter")
            groups = {
                a: t for a, t in adapter_tokens.items() if a != merged_adapter
            }
            if not groups:
                return 0.0  # degenerates to pure merged execution
            # deLoRA branch: the non-merged tokens also run through a
            # bypass copy of the merged adapter (to subtract its ΔW).
            delora_tokens = sum(groups.values())
            groups = dict(groups)
            groups["__delora__"] = delora_tokens
            adapter_ranks = dict(adapter_ranks)
            adapter_ranks["__delora__"] = adapter_ranks[merged_adapter]
        else:
            raise ValueError(f"unknown mode {mode}")

        token_counts = list(groups.values())
        ranks = [adapter_ranks[a] for a in groups]
        key = (tuple(token_counts), tuple(ranks))
        mean = self._mean_memo.get(key)
        if mean is None:
            mean = self.operator.layer_seconds(
                token_counts, ranks, self.model.hidden_dim,
                num_projections=self.num_projections,
            ) * self.model.num_layers
            if len(self._mean_memo) >= 65536:
                self._mean_memo.clear()
            self._mean_memo[key] = mean
        return mean
