"""Heartbeat failure detection and lease-fenced exactly-once dispatch.

Every robustness layer before this one assumed an omniscient failure
oracle: the cluster routed around a replica the instant its fault
schedule said "dead", so detection was free and exactly-once delivery
was trivial.  Real fleets only observe *heartbeats* — a silent replica
might be dead, partitioned, or merely dropping heartbeats while it
keeps computing — and must trade detection latency against false
suspicion.  False suspicion creates duplicate in-flight work, which is
only safe if stale results can be told apart from live ones.

This module supplies both halves:

* **φ-accrual suspicion** (:class:`PhiAccrualDetector`,
  :class:`FailureDetector`).  Each replica emits heartbeats on the sim
  clock; the detector keeps a sliding window of observed inter-arrival
  times and scores the current silence as

      φ(now) = (now − last_heartbeat) / (mean_interval · ln 10)

  (the exponential-arrival form of Hayashibara et al.'s φ-accrual
  detector: φ = k means the silence is 10^k times the expected gap).
  Crossing ``phi_suspect`` moves a replica ALIVE → SUSPECTED (drained,
  not killed); crossing ``phi_confirm`` moves it to CONFIRMED_DEAD
  (permanent — zombies never rejoin).  Heartbeats that resume while
  only SUSPECTED heal the replica back to ALIVE (a *false suspicion*).

* **Lease fencing** (:class:`Completion`).  Every dispatched request is
  stamped with a fencing token ``(replica_id, lease_epoch)``.  A
  fencing-enabled engine defers terminal *recording* into a completion
  outbox; the cluster accepts an outbox entry only while its token
  still matches the request's current lease.  Confirming a replica
  dead bumps its lease epoch and re-dispatches its work, so any result
  the old replica later delivers (a "zombie" completion from a falsely
  suspected, partitioned replica) is stale by construction: it is
  counted in ``fenced_completions`` and discarded, never
  double-terminating the request.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.metrics import AbortRecord, RequestRecord
    from repro.runtime.request import Request

__all__ = [
    "Completion",
    "FailureDetector",
    "FailureDetectorConfig",
    "PhiAccrualDetector",
    "SuspicionState",
]

#: ln(10): φ is the silence measured in powers of ten of the mean gap.
_LN10 = math.log(10.0)


class SuspicionState(enum.Enum):
    """The detector's belief about one replica."""

    ALIVE = "alive"                   # heartbeats arriving on schedule
    SUSPECTED = "suspected"           # silent too long; drain, don't kill
    CONFIRMED_DEAD = "confirmed_dead"  # silence past phi_confirm; permanent


@dataclass(frozen=True)
class FailureDetectorConfig:
    """Knobs for :class:`FailureDetector`.

    ``phi_suspect`` / ``phi_confirm`` are the two φ thresholds: with the
    default heartbeat interval of 0.25 s, ``phi_suspect=2`` suspects a
    replica after ~1.2 s of silence and ``phi_confirm=8`` confirms it
    dead after ~4.6 s.  Lower ``phi_confirm`` detects real failures
    faster but confirms transient partitions as dead — their in-flight
    work is re-dispatched and the partitioned replica's late results
    arrive as fenced duplicates (the detection-latency vs duplicate-work
    frontier ``benchmarks/bench_partition.py`` charts).  ``interval_s``
    is the cluster control epoch used when no autoscaler drives the
    loop; heartbeat delivery and φ evaluation happen at epoch
    boundaries.
    """

    heartbeat_interval_s: float = 0.25
    phi_suspect: float = 2.0
    phi_confirm: float = 8.0
    window: int = 32
    min_samples: int = 3
    interval_s: float = 0.25

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.phi_suspect <= 0:
            raise ValueError("phi_suspect must be positive")
        if self.phi_confirm <= self.phi_suspect:
            raise ValueError("phi_confirm must be > phi_suspect")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")


class PhiAccrualDetector:
    """φ-accrual suspicion level for one replica's heartbeat stream."""

    def __init__(self, config: FailureDetectorConfig, registered_at: float):
        self.config = config
        self.last_heartbeat = registered_at
        self._intervals: Deque[float] = deque(maxlen=config.window)

    def heartbeat(self, t: float) -> None:
        """Fold one delivered heartbeat in (stale timestamps ignored).

        Heartbeats withheld by a partition are delivered late, on heal,
        with their *original* emission timestamps; delivering them in
        order reconstructs the true inter-arrival history, so a healed
        replica's window is not poisoned by one giant delivery gap.
        """
        if t <= self.last_heartbeat:
            return
        self._intervals.append(t - self.last_heartbeat)
        self.last_heartbeat = t

    def mean_interval(self) -> float:
        """Expected heartbeat gap (configured cadence until warmed up)."""
        if len(self._intervals) < self.config.min_samples:
            return self.config.heartbeat_interval_s
        return sum(self._intervals) / len(self._intervals)

    def phi(self, now: float) -> float:
        """Suspicion level of the current silence (0 = heard just now)."""
        silence = now - self.last_heartbeat
        if silence <= 0:
            return 0.0
        return silence / (self.mean_interval() * _LN10)


class FailureDetector:
    """ALIVE / SUSPECTED / CONFIRMED_DEAD state machine over replicas.

    Pure bookkeeping on the sim clock: the cluster registers replicas,
    feeds delivered heartbeats in, and calls :meth:`evaluate` once per
    control epoch to learn which replicas changed state.  CONFIRMED_DEAD
    is sticky — once the cluster has seized a replica's lease, letting
    the old incumbent rejoin would put two writers behind one identity.
    """

    def __init__(self, config: FailureDetectorConfig = FailureDetectorConfig()):
        self.config = config
        self._detectors: Dict[str, PhiAccrualDetector] = {}
        self._states: Dict[str, SuspicionState] = {}

    def register(self, replica_id: str, now: float) -> None:
        """Start watching a replica; its first expected beat is ``now``."""
        if replica_id in self._states:
            raise ValueError(f"replica {replica_id} already registered")
        self._detectors[replica_id] = PhiAccrualDetector(self.config, now)
        self._states[replica_id] = SuspicionState.ALIVE

    def heartbeat(self, replica_id: str, t: float) -> None:
        """Deliver one heartbeat (ignored for confirmed-dead replicas)."""
        if self._states.get(replica_id) is SuspicionState.CONFIRMED_DEAD:
            return
        det = self._detectors.get(replica_id)
        if det is not None:
            det.heartbeat(t)

    def state_of(self, replica_id: str) -> SuspicionState:
        return self._states.get(replica_id, SuspicionState.ALIVE)

    def phi(self, replica_id: str, now: float) -> float:
        det = self._detectors.get(replica_id)
        return 0.0 if det is None else det.phi(now)

    def evaluate(
        self, now: float
    ) -> List[Tuple[str, SuspicionState, SuspicionState]]:
        """Re-score every replica; returns ``(id, old, new)`` transitions.

        Replicas are visited in sorted-id order so the transition list —
        and everything the cluster does with it — is deterministic.
        A replica whose φ blew past both thresholds within one epoch
        reports a single ALIVE → CONFIRMED_DEAD transition.
        """
        transitions: List[Tuple[str, SuspicionState, SuspicionState]] = []
        for rid in sorted(self._states):
            old = self._states[rid]
            if old is SuspicionState.CONFIRMED_DEAD:
                continue
            phi = self._detectors[rid].phi(now)
            if phi >= self.config.phi_confirm:
                new = SuspicionState.CONFIRMED_DEAD
            elif phi >= self.config.phi_suspect:
                new = SuspicionState.SUSPECTED
            else:
                new = SuspicionState.ALIVE
            if new is not old:
                self._states[rid] = new
                transitions.append((rid, old, new))
        return transitions


@dataclass
class Completion:
    """One terminal result awaiting fenced delivery to the cluster.

    The engine snapshots the immutable metrics record at terminal time,
    so the record stays truthful even if the request object is later
    rewound (``reset_for_requeue``) and re-run elsewhere.  ``token`` is
    the fencing token the request carried when this engine worked on
    it; the cluster accepts the completion only while that token still
    equals ``request.lease``.
    """

    request: "Request"
    token: Optional[Tuple[str, int]]
    kind: str  # "finish" | "abort"
    record: "Union[RequestRecord, AbortRecord]" = field(repr=False)
    time: float = 0.0
