"""Per-iteration engine tracing.

An optional :class:`EngineTracer` records what every engine iteration
did — mode, batch composition, token counts, switch and swap stalls —
enabling Fig.-7-style timelines ("slot 1 merged, 53 ms switch, slot 2
unmerged") and utilization analyses without touching the hot path when
disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class IterationEvent:
    """One engine iteration, as observed by the tracer."""

    index: int
    start: float
    duration: float
    mode: str
    merged_adapter: Optional[str]
    batch_size: int
    prefill_tokens: int
    decode_tokens: int
    adapters: Tuple[str, ...]
    switch_seconds: float
    swap_stall_seconds: float
    preemptions: int

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def total_tokens(self) -> int:
        return self.prefill_tokens + self.decode_tokens


class EngineTracer:
    """Collects :class:`IterationEvent` records from one engine."""

    def __init__(self, max_events: int = 1_000_000):
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.max_events = max_events
        self.events: List[IterationEvent] = []
        self._dropped = 0

    def record(self, event: IterationEvent) -> None:
        if len(self.events) >= self.max_events:
            self._dropped += 1
            return
        self.events.append(event)

    @property
    def num_dropped(self) -> int:
        return self._dropped

    # -- summaries -----------------------------------------------------------

    def time_by_mode(self) -> Dict[str, float]:
        """Total iteration time spent in each inference mode."""
        out: Dict[str, float] = {}
        for e in self.events:
            out[e.mode] = out.get(e.mode, 0.0) + e.duration
        return out

    def switch_events(self) -> List[IterationEvent]:
        """Iterations that began with a mode switch."""
        return [e for e in self.events if e.switch_seconds > 0]

    def total_switch_time(self) -> float:
        return sum(e.switch_seconds for e in self.events)

    def total_swap_stall(self) -> float:
        return sum(e.swap_stall_seconds for e in self.events)

    def mode_segments(self) -> List[Tuple[str, float, float]]:
        """Contiguous (mode, start, end) segments of the timeline."""
        segments: List[Tuple[str, float, float]] = []
        for e in self.events:
            if segments and segments[-1][0] == e.mode:
                mode, start, _ = segments[-1]
                segments[-1] = (mode, start, e.end)
            else:
                segments.append((e.mode, e.start, e.end))
        return segments

    def render_timeline(self, width: int = 72) -> str:
        """ASCII mode timeline: M=merged, U=unmerged, X=mixture, |=switch."""
        if not self.events:
            raise ValueError("no events recorded")
        if width < 8:
            raise ValueError("width too small")
        start = self.events[0].start
        end = self.events[-1].end
        span = max(end - start, 1e-9)
        marks = {"merged": "M", "unmerged": "U", "mixture": "X"}
        cells = [" "] * width
        for e in self.events:
            lo = int((e.start - start) / span * (width - 1))
            hi = max(int((e.end - start) / span * (width - 1)), lo)
            for i in range(lo, hi + 1):
                cells[i] = marks.get(e.mode, "?")
            if e.switch_seconds > 0:
                cells[lo] = "|"
        legend = "M=merged U=unmerged X=mixture |=switch"
        return (
            f"t={start:.3f}s [{''.join(cells)}] t={end:.3f}s\n{legend}"
        )
