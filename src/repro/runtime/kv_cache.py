"""Paged KV-cache block manager with prefix reuse.

A faithful (if simplified) PagedAttention-style block manager: KV state
lives in fixed-size blocks; a sequence owns a chain of blocks; blocks of
a shared prefix are reference-counted so multiple requests over the same
image reuse one copy (§5 "KV cache reuse", after CacheBlend / SGLang).

Invariants (property-tested in ``tests/runtime/test_kv_cache.py``):

* ``free_blocks + used_blocks == num_blocks`` at all times;
* every block's refcount is >= 1 while referenced, 0 once freed;
* a sequence's token capacity always covers its token count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class BlockAllocationError(RuntimeError):
    """Raised when the cache cannot serve an allocation."""


@dataclass(slots=True)
class _Block:
    block_id: int
    refcount: int = 0


@dataclass(slots=True)
class _Sequence:
    seq_id: int
    blocks: List[int] = field(default_factory=list)
    num_tokens: int = 0
    prefix_blocks: int = 0      # leading blocks shared via a prefix entry


@dataclass(slots=True)
class _PrefixEntry:
    key: str
    blocks: List[int]
    num_tokens: int
    last_used: float = 0.0


class PagedKVCache:
    """Block-granular KV cache for one model on one GPU."""

    def __init__(self, num_blocks: int, block_size: int = 16,
                 kv_bytes_per_token: int = 0):
        if num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {num_blocks}")
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.kv_bytes_per_token = kv_bytes_per_token
        self._blocks = [_Block(i) for i in range(num_blocks)]
        self._free: List[int] = list(range(num_blocks - 1, -1, -1))
        self._sequences: Dict[int, _Sequence] = {}
        self._prefixes: Dict[str, _PrefixEntry] = {}
        #: Blocks made temporarily unusable (injected memory pressure).
        self.reserved_blocks: int = 0

    # -- capacity ----------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return max(0, len(self._free) - self.reserved_blocks)

    def set_reserved(self, num_blocks: int) -> None:
        """Reserve ``num_blocks`` blocks away from the allocatable pool.

        Models transient memory pressure (fault injection): reserved
        blocks cannot be allocated but already-allocated sequences are
        untouched.  Pass 0 to lift the pressure.
        """
        if num_blocks < 0:
            raise ValueError(f"reserved blocks must be >= 0, got {num_blocks}")
        self.reserved_blocks = min(num_blocks, self.num_blocks)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - self.free_blocks

    def free_tokens(self) -> int:
        return self.free_blocks * self.block_size

    def can_allocate(self, num_tokens: int) -> bool:
        return self._blocks_for(num_tokens) <= self.free_blocks

    def _blocks_for(self, num_tokens: int) -> int:
        return -(-num_tokens // self.block_size)

    # -- allocation ------------------------------------------------------------------

    def _take_blocks(self, count: int) -> List[int]:
        if count > self.free_blocks:
            raise BlockAllocationError(
                f"need {count} blocks, only {self.free_blocks} free "
                f"({self.reserved_blocks} reserved)"
            )
        taken = [self._free.pop() for _ in range(count)]
        for b in taken:
            self._blocks[b].refcount = 1
        return taken

    def allocate(self, seq_id: int, num_tokens: int,
                 prefix_key: Optional[str] = None,
                 prefix_tokens: int = 0,
                 now: float = 0.0) -> int:
        """Allocate KV space for a new sequence's prefill.

        Returns the number of tokens *reused* from a cached prefix (0 if
        no prefix hit).  On a miss with a ``prefix_key``, the prefix's
        full blocks are registered for future reuse.
        """
        if seq_id in self._sequences:
            raise BlockAllocationError(f"sequence {seq_id} already allocated")
        if num_tokens <= 0:
            raise ValueError(f"num_tokens must be positive, got {num_tokens}")
        if not 0 <= prefix_tokens <= num_tokens:
            raise ValueError(
                f"prefix_tokens {prefix_tokens} outside [0, {num_tokens}]"
            )

        reused_tokens = 0
        shared_blocks: List[int] = []
        if prefix_key is not None and prefix_tokens >= self.block_size:
            entry = self._prefixes.get(prefix_key)
            if entry is not None:
                shared_blocks = list(entry.blocks)
                reused_tokens = entry.num_tokens
                entry.last_used = now
                for b in shared_blocks:
                    self._blocks[b].refcount += 1

        remaining = num_tokens - reused_tokens
        own = self._take_blocks(self._blocks_for(remaining) if remaining > 0 else 0)
        seq = _Sequence(
            seq_id=seq_id,
            blocks=shared_blocks + own,
            num_tokens=num_tokens,
            prefix_blocks=len(shared_blocks),
        )
        self._sequences[seq_id] = seq

        # Register a fresh prefix for future requests (only full blocks
        # are shareable).
        if (prefix_key is not None and reused_tokens == 0
                and prefix_tokens >= self.block_size):
            full = prefix_tokens // self.block_size
            prefix_blocks = own[:full]
            for b in prefix_blocks:
                self._blocks[b].refcount += 1
            self._prefixes[prefix_key] = _PrefixEntry(
                key=prefix_key,
                blocks=list(prefix_blocks),
                num_tokens=full * self.block_size,
                last_used=now,
            )
        return reused_tokens

    def append_token(self, seq_id: int) -> None:
        """Extend a sequence by one decoded token, growing it if needed."""
        seq = self._seq(seq_id)
        capacity = len(seq.blocks) * self.block_size
        if seq.num_tokens + 1 > capacity:
            seq.blocks.extend(self._take_blocks(1))
        seq.num_tokens += 1

    def free(self, seq_id: int) -> None:
        """Release a sequence; shared prefix blocks survive while cached."""
        seq = self._sequences.pop(seq_id, None)
        if seq is None:
            raise BlockAllocationError(f"unknown sequence {seq_id}")
        for b in seq.blocks:
            self._release_block(b)

    def _release_block(self, block_id: int) -> None:
        block = self._blocks[block_id]
        if block.refcount <= 0:
            raise BlockAllocationError(f"double free of block {block_id}")
        block.refcount -= 1
        if block.refcount == 0:
            self._free.append(block_id)

    # -- prefix management ----------------------------------------------------------------

    def drop_prefix(self, prefix_key: str) -> None:
        """Evict a cached prefix (its blocks free once no sequence uses them)."""
        entry = self._prefixes.pop(prefix_key, None)
        if entry is None:
            raise KeyError(f"unknown prefix {prefix_key!r}")
        for b in entry.blocks:
            self._release_block(b)

    def evict_stale_prefixes(self, older_than: float) -> int:
        """Drop prefixes unused since ``older_than``; returns count dropped."""
        stale = [k for k, e in self._prefixes.items() if e.last_used < older_than]
        for k in stale:
            self.drop_prefix(k)
        return len(stale)

    @property
    def num_prefixes(self) -> int:
        return len(self._prefixes)

    def has_prefix(self, prefix_key: str) -> bool:
        return prefix_key in self._prefixes

    # -- introspection -------------------------------------------------------------------------

    def sequence_tokens(self, seq_id: int) -> int:
        return self._seq(seq_id).num_tokens

    def has_sequence(self, seq_id: int) -> bool:
        return seq_id in self._sequences

    def _seq(self, seq_id: int) -> _Sequence:
        seq = self._sequences.get(seq_id)
        if seq is None:
            raise BlockAllocationError(f"unknown sequence {seq_id}")
        return seq

    def check_invariants(self) -> None:
        """Assert internal consistency (used by property tests)."""
        free_set = set(self._free)
        if len(free_set) != len(self._free):
            raise AssertionError("duplicate blocks on the free list")
        for b in self._blocks:
            if b.block_id in free_set:
                if b.refcount != 0:
                    raise AssertionError(
                        f"free block {b.block_id} has refcount {b.refcount}"
                    )
            elif b.refcount <= 0:
                raise AssertionError(
                    f"used block {b.block_id} has refcount {b.refcount}"
                )
        for seq in self._sequences.values():
            if seq.num_tokens > len(seq.blocks) * self.block_size:
                raise AssertionError(
                    f"sequence {seq.seq_id} overflows its blocks"
                )
