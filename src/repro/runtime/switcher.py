"""Inference-mode switchers: V-LoRA's swift switch vs. dLoRA's (§4.4.1).

A switch from serving adapter ``i`` merged to serving adapter ``j``
merged (or to unmerged/mixture) requires un-merging and/or merging
all-layer ΔW = B x A into the base weights.

* **SwiftSwitcher** — computes all-layer ΔW in one grouped ATMM launch
  with the merge/unmerge fused into the epilogue, over pre-allocated
  contiguous weight memory (no tensor-reshape copies).  <10 ms on the
  paper's setup; ~5 ms of that is the ATMM ΔW pass (§6.3.2).
* **DLoRASwitcher** — per-layer ``torch.addmm``: one GEMM launch + one
  add pass per layer per projection, each round-tripping ΔW through HBM,
  plus a memory copy caused by non-contiguous adapter tensors and
  per-layer framework dispatch.  ~53 ms (Fig. 7).
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.hardware.memory import FP16_BYTES
from repro.kernels.atmm import ATMMOperator
from repro.kernels.cost_model import GemmCostModel
from repro.kernels.shapes import GemmShape
from repro.kernels.tiling import TilingConfig
from repro.models.config import ModelConfig
from repro.models.lora import LoRAAdapterSpec
from repro.runtime.modes import InferenceMode


class ModeSwitcher(abc.ABC):
    """Costs the transition between inference modes / merged adapters."""

    def __init__(self, model: ModelConfig, num_projections: int = 2):
        self.model = model
        self.num_projections = num_projections

    @abc.abstractmethod
    def merge_seconds(self, adapter: LoRAAdapterSpec) -> float:
        """Cost of merging one adapter's all-layer ΔW into the base."""

    def unmerge_seconds(self, adapter: LoRAAdapterSpec) -> float:
        """Cost of subtracting it back out (same math as merging)."""
        return self.merge_seconds(adapter)

    def switch_seconds(
        self,
        from_mode: InferenceMode,
        to_mode: InferenceMode,
        from_adapter: Optional[LoRAAdapterSpec],
        to_adapter: Optional[LoRAAdapterSpec],
    ) -> float:
        """Total transition cost between two scheduler states.

        The merged adapter changes whenever the target state merges a
        different adapter than the current state has folded in.
        """
        current = from_adapter if from_mode in (
            InferenceMode.MERGED, InferenceMode.MIXTURE) else None
        target = to_adapter if to_mode in (
            InferenceMode.MERGED, InferenceMode.MIXTURE) else None
        cost = 0.0
        if current is not None and (
            target is None or target.adapter_id != current.adapter_id
        ):
            cost += self.unmerge_seconds(current)
        if target is not None and (
            current is None or current.adapter_id != target.adapter_id
        ):
            if target is None:
                raise ValueError("target mode requires a merged adapter")
            cost += self.merge_seconds(target)
        return cost


class SwiftSwitcher(ModeSwitcher):
    """V-LoRA's one-shot, ATMM-backed switcher (§4.4.1)."""

    #: Residual software cost: one fused launch + stream sync.
    SOFTWARE_OVERHEAD_S = 0.3e-3

    def __init__(self, model: ModelConfig, atmm: ATMMOperator,
                 num_projections: int = 2):
        super().__init__(model, num_projections)
        self.atmm = atmm

    def merge_seconds(self, adapter: LoRAAdapterSpec) -> float:
        t = self.atmm.delta_w_seconds(
            num_layers=self.model.num_layers,
            hidden_dim=self.model.hidden_dim,
            rank=adapter.rank,
            num_projections=self.num_projections,
            fuse_merge=True,
        )
        return t + self.SOFTWARE_OVERHEAD_S


class DLoRASwitcher(ModeSwitcher):
    """dLoRA's per-layer addmm switcher (§3.2 C3, Fig. 7)."""

    #: Framework dispatch per layer per projection: python -> aten ->
    #: cuBLAS plus the host synchronization dLoRA's implementation issues
    #: to reuse its staging buffers between layers.
    PER_CALL_OVERHEAD_S = 620e-6

    #: cuBLAS-ish static config used for the per-layer ΔW GEMM.
    GEMM_CONFIG = TilingConfig(bm=128, bk=32, bn=64, wm=64, wk=32, wn=32,
                               double_buffered=False)

    def __init__(self, model: ModelConfig, cost_model: GemmCostModel,
                 num_projections: int = 2):
        super().__init__(model, num_projections)
        self.cost_model = cost_model

    def merge_seconds(self, adapter: LoRAAdapterSpec) -> float:
        d = self.model.hidden_dim
        shape = GemmShape(d, adapter.rank, d)
        calls = self.model.num_layers * self.num_projections
        per_layer = 0.0
        # 1) ΔW = B x A — a standalone GEMM writing ΔW to HBM.
        per_layer += self.cost_model.gemm_with_launch(shape, self.GEMM_CONFIG)
        # 2) addmm: read W and ΔW, write W (a separate elementwise pass).
        w_bytes = d * d * FP16_BYTES
        per_layer += self.cost_model.elementwise_seconds(3 * w_bytes)
        per_layer += self.cost_model.launch_seconds(1)
        # 3) non-contiguous adapter tensors force a reshape copy of ΔW.
        per_layer += self.cost_model.elementwise_seconds(2 * w_bytes)
        per_layer += self.cost_model.launch_seconds(1)
        per_layer += self.PER_CALL_OVERHEAD_S
        return calls * per_layer
