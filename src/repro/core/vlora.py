"""The V-LoRA end-to-end system (Fig. 8).

Offline phase: :meth:`VLoRA.prepare_adapters` runs the accuracy-aware
knowledge-fusion algorithm over the application's knowledge items and
registers the resulting adapters (bundling vision task heads where the
fused knowledge shares a task type, §4.2.2).

Online phase: :meth:`VLoRA.serve` runs the orchestrated engine (ATMM +
Algorithm 1 + swift switcher) over a request stream and returns metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.generation.fusion import (
    AccuracyEvaluator,
    FusionResult,
    KnowledgeFusion,
    KnowledgeItem,
    OracleEvaluator,
)
from repro.generation.heads import TASK_PROFILES
from repro.hardware.gpu import A100_80GB, GPUSpec
from repro.models.config import QWEN_VL_7B, ModelConfig
from repro.models.lora import LoRAAdapterSpec
from repro.runtime.engine import ServingEngine
from repro.runtime.metrics import MetricsCollector
from repro.runtime.request import Request
from repro.core.builder import SystemBuilder

#: Task-family -> head cardinality for bundled vision task heads.
_FAMILY_HEAD_CLASSES = {
    "image_classification": 64,
    "object_detection": 96,
    "video_classification": 101,
    "referring_expression": 64,
}


@dataclass
class VLoRAConfig:
    """Deployment configuration for one V-LoRA instance."""

    model: ModelConfig = QWEN_VL_7B
    gpu: GPUSpec = A100_80GB
    adapter_rank: int = 64
    max_batch_size: int = 32
    theta: float = 0.5
    gpu_adapter_slots: Optional[int] = None
    seed: int = 0


class VLoRA:
    """End-to-end facade: adapter generation + orchestrated serving."""

    def __init__(self, config: Optional[VLoRAConfig] = None):
        self.config = config or VLoRAConfig()
        self._fusion_result: Optional[FusionResult] = None
        self._adapter_specs: List[LoRAAdapterSpec] = []
        self._engine: Optional[ServingEngine] = None

    # -- offline phase -----------------------------------------------------------

    def prepare_adapters(
        self,
        items: Sequence[KnowledgeItem],
        evaluator: Optional[AccuracyEvaluator] = None,
    ) -> FusionResult:
        """Run accuracy-aware knowledge fusion and register the adapters.

        With no ``evaluator`` the calibrated oracle plans the packing
        (serving-scale default); pass a
        :class:`~repro.generation.fusion.TrainerEvaluator` to fuse with
        real TinyLMM training.
        """
        fusion = KnowledgeFusion(evaluator or OracleEvaluator())
        result = fusion.fuse(items)
        self._fusion_result = result
        self._adapter_specs = [
            self._spec_for(adapter) for adapter in result.adapters
        ]
        self._engine = None  # adapters changed; engine must be rebuilt
        return result

    def register_adapters(self, specs: Sequence[LoRAAdapterSpec]) -> None:
        """Register pre-built adapters, skipping the fusion step."""
        if not specs:
            raise ValueError("need at least one adapter spec")
        self._adapter_specs = list(specs)
        self._engine = None

    def _spec_for(self, adapter) -> LoRAAdapterSpec:
        families = {i.family_name for i in adapter.items}
        head_classes = 0
        if len(families) == 1:
            # All fused knowledge shares a task type: bundle a task head.
            head_classes = _FAMILY_HEAD_CLASSES.get(next(iter(families)), 0)
        return LoRAAdapterSpec(
            adapter_id=adapter.adapter_id,
            model=self.config.model,
            rank=self.config.adapter_rank,
            task_head_classes=head_classes,
        )

    @property
    def adapter_specs(self) -> List[LoRAAdapterSpec]:
        if not self._adapter_specs:
            raise RuntimeError(
                "no adapters registered; run prepare_adapters() first"
            )
        return list(self._adapter_specs)

    @property
    def adapter_ids(self) -> List[str]:
        return [s.adapter_id for s in self.adapter_specs]

    @property
    def fusion_result(self) -> FusionResult:
        if self._fusion_result is None:
            raise RuntimeError("prepare_adapters() has not run")
        return self._fusion_result

    # -- online phase -----------------------------------------------------------------

    def engine(self) -> ServingEngine:
        """The (lazily built) orchestrated serving engine."""
        if self._engine is None:
            builder = SystemBuilder(
                model=self.config.model,
                gpu=self.config.gpu,
                adapter_specs=self.adapter_specs,
                adapter_rank=self.config.adapter_rank,
                max_batch_size=self.config.max_batch_size,
                theta=self.config.theta,
                gpu_adapter_slots=self.config.gpu_adapter_slots,
                jitter_seed=self.config.seed,
            )
            self._engine = builder.build("v-lora")
        return self._engine

    def serve(self, requests: Sequence[Request],
              until: Optional[float] = None) -> MetricsCollector:
        """Serve a request stream to completion; returns the metrics."""
        engine = self.engine()
        engine.submit(list(requests))
        return engine.run(until=until)

    def resolve_adapter(self, task_name: str,
                        routing: Dict[str, str]) -> str:
        """Map a task to its adapter via an application routing table."""
        if task_name not in TASK_PROFILES:
            raise KeyError(f"unknown task {task_name!r}")
        adapter = routing.get(task_name)
        if adapter is None or adapter not in self.adapter_ids:
            raise KeyError(
                f"no registered adapter routed for task {task_name!r}"
            )
        return adapter
