"""V-LoRA's end-to-end facade and the system builder.

* :mod:`repro.core.builder` — assembles a complete serving engine
  (operator + policy + switcher + memory) for V-LoRA or any baseline by
  name; every benchmark builds its systems through this single factory.
* :mod:`repro.core.vlora` — the :class:`VLoRA` end-to-end system:
  offline phase (accuracy-aware adapter generation) + online phase
  (orchestrated serving).
"""

from repro.core.builder import SYSTEM_NAMES, SystemBuilder, build_engine
from repro.core.vlora import VLoRA, VLoRAConfig

__all__ = [
    "SystemBuilder",
    "build_engine",
    "SYSTEM_NAMES",
    "VLoRA",
    "VLoRAConfig",
]
