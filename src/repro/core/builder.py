"""System builder: one factory for V-LoRA and every baseline.

Each serving system is the same engine with different pluggable parts
(§6.1 "Baselines"):

========== ================== ==================== ===================
system      LoRA operator      scheduling policy    mode switcher
========== ================== ==================== ===================
v-lora      ATMM               Algorithm 1          swift (one-shot)
s-lora      S-LoRA kernel      unmerged-only FCFS   (never switches)
punica      Punica kernel      unmerged-only FCFS   (never switches)
dlora       Einsum             merged/unmerged      per-layer addmm
merge-only  ATMM               merged-only          swift
unmerge-only ATMM              unmerged-only FCFS   swift
========== ================== ==================== ===================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.hardware.gpu import A100_80GB, GPUSpec
from repro.hardware.memory import TransferModel
from repro.kernels.atmm import ATMMOperator
from repro.kernels.base import LoRAOperator
from repro.kernels.baseline_ops import (
    EinsumOperator,
    PunicaOperator,
    SLoRAOperator,
)
from repro.kernels.cost_model import GemmCostModel
from repro.models.config import QWEN_VL_7B, ModelConfig
from repro.models.lora import LoRAAdapterSpec
from repro.runtime.adapters import AdapterManager
from repro.runtime.engine import EngineConfig, ServingEngine
from repro.runtime.faults import FaultInjector
from repro.runtime.hedging import TimeoutPolicy
from repro.runtime.memory import UnifiedMemoryManager
from repro.runtime.overload import (
    AdmissionConfig,
    BreakerConfig,
    BrownoutConfig,
)
from repro.runtime.placement import PlacementConfig
from repro.runtime.scheduler import (
    DLoRAPolicy,
    MergedOnlyPolicy,
    SchedulingPolicy,
    UnmergedOnlyPolicy,
    VLoRAPolicy,
)
from repro.runtime.switcher import DLoRASwitcher, ModeSwitcher, SwiftSwitcher

SYSTEM_NAMES = (
    "v-lora", "s-lora", "punica", "dlora", "merge-only", "unmerge-only",
)


@dataclass
class SystemBuilder:
    """Reusable configuration for constructing serving engines."""

    model: ModelConfig = QWEN_VL_7B
    gpu: GPUSpec = A100_80GB
    num_adapters: int = 4
    adapter_rank: int = 64
    gpu_adapter_slots: Optional[int] = None
    max_batch_size: int = 32
    theta: float = 0.5
    num_projections: int = 2
    tensor_parallel: int = 1
    jitter_seed: Optional[int] = 0
    enable_prefix_reuse: bool = True
    adapter_specs: Sequence[LoRAAdapterSpec] = field(default_factory=tuple)
    #: Optional deterministic fault schedule shared by built engines.
    fault_injector: Optional[FaultInjector] = None
    #: Abort requests past ``deadline_slo_factor * slo_s`` (see
    #: :class:`~repro.runtime.engine.EngineConfig`).
    deadline_slo_factor: Optional[float] = None
    #: Memoize iteration costs per batch signature (bit-identical
    #: results; ``False`` forces the reference cost path).
    enable_cost_cache: bool = True
    #: Overload protection (all default-off; see
    #: :mod:`repro.runtime.overload` and ``docs/FAULTS.md``).
    admission: Optional[AdmissionConfig] = None
    brownout: Optional[BrownoutConfig] = None
    breaker: Optional[BreakerConfig] = None
    #: Unified deadline/timeout policy (default-off; overrides the
    #: engine's swap-retry backoff and breaker cooldown, and stamps
    #: ``give_up_after_s`` deadlines at cluster submit — see
    #: :mod:`repro.runtime.hedging`).
    timeout_policy: Optional[TimeoutPolicy] = None
    #: Fleet adapter-placement knobs (default-off; consumed by the
    #: cluster layer, not by single engines — carried here so callers
    #: configure one builder end to end.  See
    #: :mod:`repro.runtime.placement`).
    placement: Optional[PlacementConfig] = None

    def __post_init__(self) -> None:
        if self.num_adapters <= 0:
            raise ValueError("num_adapters must be positive")
        if not self.adapter_specs:
            self.adapter_specs = tuple(
                LoRAAdapterSpec(f"lora-{i}", self.model, rank=self.adapter_rank)
                for i in range(self.num_adapters)
            )
        else:
            self.adapter_specs = tuple(self.adapter_specs)
            self.num_adapters = len(self.adapter_specs)
        if self.gpu_adapter_slots is None:
            self.gpu_adapter_slots = min(self.num_adapters, 16)

    @property
    def adapter_ids(self) -> list:
        return [s.adapter_id for s in self.adapter_specs]

    # -- part selection -------------------------------------------------------

    def _operator(self, system: str, cost_model: GemmCostModel) -> LoRAOperator:
        if system in ("v-lora", "merge-only", "unmerge-only"):
            return ATMMOperator(
                cost_model,
                hidden_dims=(self.model.hidden_dim,),
                ranks=tuple(sorted({s.rank for s in self.adapter_specs})),
            )
        if system == "s-lora":
            return SLoRAOperator(cost_model)
        if system == "punica":
            return PunicaOperator(cost_model)
        if system == "dlora":
            return EinsumOperator(cost_model)
        raise ValueError(
            f"unknown system {system!r}; expected one of {SYSTEM_NAMES}"
        )

    def _policy(self, system: str) -> SchedulingPolicy:
        if system == "v-lora":
            return VLoRAPolicy(theta=self.theta)
        if system in ("s-lora", "punica", "unmerge-only"):
            return UnmergedOnlyPolicy()
        if system == "dlora":
            return DLoRAPolicy()
        if system == "merge-only":
            return MergedOnlyPolicy()
        raise ValueError(f"unknown system {system!r}")

    def _switcher(self, system: str, operator: LoRAOperator,
                  cost_model: GemmCostModel) -> ModeSwitcher:
        if system == "dlora":
            return DLoRASwitcher(
                self.model, cost_model, num_projections=self.num_projections
            )
        atmm = (
            operator if isinstance(operator, ATMMOperator)
            else ATMMOperator(cost_model)
        )
        return SwiftSwitcher(
            self.model, atmm, num_projections=self.num_projections
        )

    # -- assembly --------------------------------------------------------------------

    def build(self, system: str, engine_cls=None,
              core: str = "object") -> ServingEngine:
        """Construct a fresh engine for the named system.

        ``engine_cls`` swaps in an alternative engine implementation
        with the same constructor (e.g. the seed-baseline snapshot used
        by ``benchmarks/bench_sim_throughput.py``).  ``core`` selects
        between the default per-object engine (``"object"``) and the
        structure-of-arrays batch-advanced engine (``"soa"``, see
        :mod:`repro.runtime.soa_core`) — result-identical for supported
        configurations, much faster on large traces.
        """
        system = system.lower()
        if system == "vlora":
            system = "v-lora"
        if core not in ("object", "soa"):
            raise ValueError(
                f"unknown core {core!r}; expected 'object' or 'soa'"
            )
        if core == "soa":
            if engine_cls is not None:
                raise ValueError("pass either engine_cls or core='soa'")
            if self.placement is not None:
                # Fleet placement drives the cluster's epoched control
                # loop; the SoA core only supports the static
                # run-to-completion path.  Reject loudly rather than
                # silently ignoring the placement config.
                raise ValueError(
                    "core='soa' does not support adapter placement "
                    "(placement= requires the object core's epoched "
                    "cluster loop); drop placement or use core='object'"
                )
            from repro.runtime.soa_core import SoAServingEngine
            engine_cls = SoAServingEngine
        cost_model = GemmCostModel(self.gpu)
        operator = self._operator(system, cost_model)
        policy = self._policy(system)
        switcher = self._switcher(system, operator, cost_model)
        transfer = TransferModel(self.gpu)
        adapters = AdapterManager(
            self.adapter_specs,
            gpu_slots=self.gpu_adapter_slots,
            transfer_model=transfer,
            async_swap=(system == "v-lora"),
        )
        memory = UnifiedMemoryManager(
            self.model, self.gpu,
            adapter_slots=self.gpu_adapter_slots,
            adapter_spec=self.adapter_specs[0],
            tp_degree=self.tensor_parallel,
        )
        config = EngineConfig(
            max_batch_size=self.max_batch_size,
            num_projections=self.num_projections,
            enable_prefix_reuse=(
                self.enable_prefix_reuse and system == "v-lora"
            ),
            jitter_seed=self.jitter_seed,
            # Punica's decode-centric runtime (BGMV) prefills requests
            # one at a time; every other system batches prefills.
            batch_prefills=(system != "punica"),
            tensor_parallel=self.tensor_parallel,
            deadline_slo_factor=self.deadline_slo_factor,
            enable_cost_cache=self.enable_cost_cache,
            admission=self.admission,
            brownout=self.brownout,
            breaker=self.breaker,
            timeout_policy=self.timeout_policy,
        )
        cls = engine_cls if engine_cls is not None else ServingEngine
        return cls(
            model=self.model,
            gpu=self.gpu,
            operator=operator,
            policy=policy,
            switcher=switcher,
            adapter_manager=adapters,
            memory=memory,
            config=config,
            fault_injector=self.fault_injector,
        )

    def engine_factory(self, system: str, core: str = "object"):
        """Zero-arg callable producing fresh engines for ``system``.

        The shape :class:`repro.runtime.cluster.MultiGPUServer` wants
        for ``engine_factory=`` (replica spawning) and what the CLI and
        benchmarks use to stamp out disaggregated pools — every engine
        comes off the same mold, so fleet-shared caches (cost, transfer)
        stay coherent.
        """
        return lambda: self.build(system, core=core)


def build_engine(system: str, **kwargs) -> ServingEngine:
    """One-shot convenience: ``build_engine("v-lora", num_adapters=8)``."""
    return SystemBuilder(**kwargs).build(system)
