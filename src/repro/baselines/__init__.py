"""Baseline serving systems (§6.1): S-LoRA, Punica, dLoRA, and the
merge-only / unmerge-only ablations.

All systems share the serving engine; they differ in LoRA operator,
scheduling policy, and switcher — see
:mod:`repro.core.builder` for the exact part matrix.  These helpers are
thin named constructors so experiment code reads like the paper.
"""

from repro.baselines.systems import (
    build_dlora,
    build_merge_only,
    build_punica,
    build_slora,
    build_unmerge_only,
    build_vlora,
)

__all__ = [
    "build_vlora",
    "build_slora",
    "build_punica",
    "build_dlora",
    "build_merge_only",
    "build_unmerge_only",
]
