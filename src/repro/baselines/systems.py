"""Named constructors for each serving system under comparison."""

from __future__ import annotations

from repro.core.builder import SystemBuilder
from repro.runtime.engine import ServingEngine


def build_vlora(**kwargs) -> ServingEngine:
    """V-LoRA: ATMM + Algorithm 1 + swift switcher + prefix reuse."""
    return SystemBuilder(**kwargs).build("v-lora")


def build_slora(**kwargs) -> ServingEngine:
    """S-LoRA: unmerged-only FCFS over its fine-grained CUDA-core kernel."""
    return SystemBuilder(**kwargs).build("s-lora")


def build_punica(**kwargs) -> ServingEngine:
    """Punica: unmerged-only FCFS over its static Tensor-core kernel."""
    return SystemBuilder(**kwargs).build("punica")


def build_dlora(**kwargs) -> ServingEngine:
    """dLoRA: merged/unmerged switching over Einsum, per-layer switcher."""
    return SystemBuilder(**kwargs).build("dlora")


def build_merge_only(**kwargs) -> ServingEngine:
    """Ablation (Fig. 19): merged mode only, one adapter at a time."""
    return SystemBuilder(**kwargs).build("merge-only")


def build_unmerge_only(**kwargs) -> ServingEngine:
    """Ablation (Fig. 19): V-LoRA's operator but unmerged mode only."""
    return SystemBuilder(**kwargs).build("unmerge-only")
