"""Dependency-free ASCII charts for figure-shaped results.

Rendering the reproduced figures in a terminal keeps the harness
self-contained (no matplotlib offline).  Charts are deliberately simple:
a scaled scatter of series points for line charts, and horizontal bars
for bar charts.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

_MARKS = "ox+*#@%&"


def line_chart(
    series: Mapping[str, Mapping[float, float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x -> y) series as an ASCII chart.

    Each series gets a mark from ``oX+*``...; collisions show the later
    series' mark.  Returns the chart as one string.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 4:
        raise ValueError("chart too small to render")
    points = [
        (x, y) for vals in series.values() for x, y in vals.items()
    ]
    if not points:
        raise ValueError("series contain no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, vals) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in vals.items():
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.3g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_min:10.3g} +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{x_min:<10.4g}{x_label:^{max(width - 20, 1)}}"
        f"{x_max:>10.4g}"
    )
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend + f"   ({y_label})")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 48,
    title: str = "",
    unit: str = "",
    reference: Optional[str] = None,
) -> str:
    """Render named values as horizontal bars.

    ``reference`` (if given) is marked and other bars show their ratio
    to it.
    """
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar values must be non-negative")
    peak = max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    ref_value = values.get(reference) if reference else None
    for name, value in values.items():
        bar = "#" * max(1, int(round(value / peak * width))) if value else ""
        suffix = f" {value:.3g}{unit}"
        if ref_value and name != reference and ref_value > 0:
            suffix += f" ({value / ref_value:.2f}x)"
        elif reference and name == reference:
            suffix += " (ref)"
        lines.append(f"{name:<{label_w}} |{bar:<{width}}|{suffix}")
    return "\n".join(lines)
