"""Experiment analysis: sweeps, system comparison, and text rendering.

* :mod:`repro.analysis.sweep` — declarative parameter sweeps over
  (system, workload) grids with deterministic seeding;
* :mod:`repro.analysis.compare` — paired system comparisons and the
  paper-style "-NN%" reduction arithmetic;
* :mod:`repro.analysis.textplot` — dependency-free ASCII line charts and
  bar charts for rendering figure-shaped results in a terminal.
"""

from repro.analysis.compare import (
    ComparisonRow,
    SystemComparison,
    saturation_point,
)
from repro.analysis.report import build_report, load_results, render_report
from repro.analysis.sweep import SweepResult, SweepRunner
from repro.analysis.textplot import bar_chart, line_chart

__all__ = [
    "SweepRunner",
    "SweepResult",
    "SystemComparison",
    "ComparisonRow",
    "line_chart",
    "bar_chart",
    "load_results",
    "build_report",
    "render_report",
    "saturation_point",
]
