"""Declarative parameter sweeps over (system, workload) grids.

The evaluation section is a pile of sweeps: rate x system, skew x
system, adapters x system, GPUs x rate.  :class:`SweepRunner` runs one
axis of workload variation against a set of systems with fresh engines
per cell and returns a tidy result table.

``SweepRunner.run(..., parallel=N)`` fans the grid out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Results are identical
to the serial path cell-for-cell: every cell's workload is generated in
the main process in serial order (so global request ids match), each
worker builds its own engine from the pickled builder with the same
deterministic seeds, and any parallel failure falls back to running the
pre-generated cells serially.

Parallelism only pays when there are cores to spread over and enough
cells to amortize worker startup: on a single-CPU machine the pool
*loses* to serial (0.66x in BENCH_sim_throughput.json at
``cpu_count: 1``), so ``run`` auto-degrades to the serial path when the
machine has one effective CPU or the grid is tiny, and records the mode
it actually used in :attr:`SweepResult.metadata`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Grids smaller than this run serially even when ``parallel`` asks for a
#: pool — worker spawn + pickling costs more than the cells themselves.
MIN_PARALLEL_CELLS = 4

from repro.core.builder import SystemBuilder
from repro.runtime.metrics import MetricsCollector
from repro.runtime.request import Request

#: A workload factory: axis value -> request list.  It runs once per
#: (axis value, system) cell so each system sees identical requests
#: (fresh Request objects, same content).
WorkloadFactory = Callable[[object, str], Sequence[Request]]


@dataclass
class SweepCell:
    """One (axis value, system) measurement."""

    axis_value: object
    system: str
    metrics: MetricsCollector

    def value(self, metric: str) -> float:
        summary = self.metrics.summary()
        if metric not in summary:
            raise KeyError(
                f"unknown metric {metric!r}; available: {sorted(summary)}"
            )
        return summary[metric]


@dataclass
class SweepResult:
    """All cells of one sweep, queryable by metric."""

    axis_name: str
    systems: List[str]
    cells: List[SweepCell] = field(default_factory=list)
    #: Execution provenance: ``requested_parallel``, ``cpu_count``, the
    #: ``mode`` actually used ("serial", "parallel", "serial-degraded",
    #: "serial-fallback"), and ``degrade_reason`` when auto-degraded.
    metadata: Dict[str, object] = field(default_factory=dict)

    def series(self, system: str, metric: str) -> Dict[object, float]:
        """metric values along the axis for one system."""
        if system not in self.systems:
            raise KeyError(f"system {system!r} not in sweep {self.systems}")
        return {
            c.axis_value: c.value(metric)
            for c in self.cells if c.system == system
        }

    def table(self, metric: str) -> List[List[object]]:
        """Rows of [axis value, metric per system...] for printing."""
        axis_values = sorted({c.axis_value for c in self.cells},
                             key=lambda v: (str(type(v)), v))
        # Index once by (axis value, system) — the seed's per-row scans
        # made this O(cells^2).  First cell wins on duplicates, matching
        # the scan's ``match[0]``.
        index: Dict[Tuple[object, str], SweepCell] = {}
        for c in self.cells:
            index.setdefault((c.axis_value, c.system), c)
        rows = []
        for value in axis_values:
            row: List[object] = [value]
            for system in self.systems:
                cell = index.get((value, system))
                row.append(
                    round(cell.value(metric), 4) if cell is not None else None
                )
            rows.append(row)
        return rows


def _effective_cpu_count() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _run_sweep_cell(payload: Tuple[SystemBuilder, str, List[Request],
                                   Optional[float]]) -> MetricsCollector:
    """Process-pool worker: build one engine and run one cell.

    Module-level so it pickles under any multiprocessing start method.
    The requests arrive as pickled copies, so worker-side mutation never
    leaks back into the parent's objects (which the serial fallback
    reuses).
    """
    builder, system, requests, until = payload
    engine = builder.build(system)
    engine.submit(requests)
    return engine.run(until=until)


class SweepRunner:
    """Runs a one-axis sweep across systems."""

    def __init__(self, builder: SystemBuilder,
                 systems: Sequence[str] = ("v-lora", "s-lora", "punica",
                                           "dlora")):
        if not systems:
            raise ValueError("need at least one system")
        self.builder = builder
        self.systems = list(systems)

    def run(
        self,
        axis_name: str,
        axis_values: Sequence[object],
        workload_factory: WorkloadFactory,
        until: Optional[float] = None,
        parallel: Optional[int] = None,
    ) -> SweepResult:
        """Execute the grid; every cell gets a fresh engine.

        ``parallel=N`` (N > 1) runs cells on a process pool.  Workloads
        are still generated in the main process, in the same
        ``(axis value, system)`` nesting order as the serial path, so the
        global request-id sequence — and therefore every cell's metrics —
        is identical to ``parallel=None`` down to the last float.  If the
        pool cannot be used (sandboxed interpreter, pickling failure,
        worker crash) the pre-generated cells run serially instead.

        A pool is only actually spun up when it can win: with one
        effective CPU or fewer than ``MIN_PARALLEL_CELLS`` cells the
        request degrades to the serial path (the results are identical
        either way).  ``result.metadata`` records what happened.
        """
        if not axis_values:
            raise ValueError("need at least one axis value")
        result = SweepResult(axis_name=axis_name, systems=self.systems)
        cpu_count = _effective_cpu_count()
        result.metadata = {
            "requested_parallel": parallel,
            "cpu_count": cpu_count,
            "mode": "serial",
        }
        if parallel is not None and parallel > 1:
            num_cells = len(axis_values) * len(self.systems)
            degrade_reason = None
            if cpu_count <= 1:
                degrade_reason = f"cpu_count={cpu_count}"
            elif num_cells < MIN_PARALLEL_CELLS:
                degrade_reason = (
                    f"num_cells={num_cells} < {MIN_PARALLEL_CELLS}"
                )
            if degrade_reason is None:
                cells = self._generate_cells(axis_name, axis_values,
                                             workload_factory)
                metrics_list, used_pool = self._run_cells_parallel(
                    cells, until, parallel
                )
                result.metadata["mode"] = (
                    "parallel" if used_pool else "serial-fallback"
                )
                for (value, system, _), metrics in zip(cells, metrics_list):
                    result.cells.append(SweepCell(value, system, metrics))
                return result
            result.metadata["mode"] = "serial-degraded"
            result.metadata["degrade_reason"] = degrade_reason
        for value in axis_values:
            for system in self.systems:
                engine = self.builder.build(system)
                requests = self._generate_workload(
                    axis_name, value, system, workload_factory
                )
                engine.submit(requests)
                metrics = engine.run(until=until)
                result.cells.append(SweepCell(value, system, metrics))
        return result

    # -- helpers ---------------------------------------------------------------

    def _generate_workload(self, axis_name: str, value: object, system: str,
                           workload_factory: WorkloadFactory,
                           ) -> List[Request]:
        requests = list(workload_factory(value, system))
        if not requests:
            raise ValueError(
                f"workload factory produced no requests for "
                f"{axis_name}={value!r}, system={system!r}"
            )
        return requests

    def _generate_cells(self, axis_name: str, axis_values: Sequence[object],
                        workload_factory: WorkloadFactory,
                        ) -> List[Tuple[object, str, List[Request]]]:
        """Materialise every cell's workload upfront, in serial order."""
        return [
            (value, system,
             self._generate_workload(axis_name, value, system,
                                     workload_factory))
            for value in axis_values
            for system in self.systems
        ]

    def _run_cells_parallel(
        self,
        cells: List[Tuple[object, str, List[Request]]],
        until: Optional[float],
        parallel: int,
    ) -> Tuple[List[MetricsCollector], bool]:
        """Run pre-generated cells on a pool; returns (metrics, used_pool)."""
        payloads = [(self.builder, system, requests, until)
                    for _, system, requests in cells]
        try:
            with ProcessPoolExecutor(max_workers=parallel) as pool:
                return list(pool.map(_run_sweep_cell, payloads)), True
        except Exception:
            # Identical results guaranteed: same requests (workers only
            # saw pickled copies), same builder, fresh engine per cell.
            return [_run_sweep_cell(payload) for payload in payloads], False
