"""Declarative parameter sweeps over (system, workload) grids.

The evaluation section is a pile of sweeps: rate x system, skew x
system, adapters x system, GPUs x rate.  :class:`SweepRunner` runs one
axis of workload variation against a set of systems with fresh engines
per cell and returns a tidy result table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.builder import SystemBuilder
from repro.runtime.metrics import MetricsCollector
from repro.runtime.request import Request

#: A workload factory: axis value -> request list.  It runs once per
#: (axis value, system) cell so each system sees identical requests
#: (fresh Request objects, same content).
WorkloadFactory = Callable[[object, str], Sequence[Request]]


@dataclass
class SweepCell:
    """One (axis value, system) measurement."""

    axis_value: object
    system: str
    metrics: MetricsCollector

    def value(self, metric: str) -> float:
        summary = self.metrics.summary()
        if metric not in summary:
            raise KeyError(
                f"unknown metric {metric!r}; available: {sorted(summary)}"
            )
        return summary[metric]


@dataclass
class SweepResult:
    """All cells of one sweep, queryable by metric."""

    axis_name: str
    systems: List[str]
    cells: List[SweepCell] = field(default_factory=list)

    def series(self, system: str, metric: str) -> Dict[object, float]:
        """metric values along the axis for one system."""
        if system not in self.systems:
            raise KeyError(f"system {system!r} not in sweep {self.systems}")
        return {
            c.axis_value: c.value(metric)
            for c in self.cells if c.system == system
        }

    def table(self, metric: str) -> List[List[object]]:
        """Rows of [axis value, metric per system...] for printing."""
        axis_values = sorted({c.axis_value for c in self.cells},
                             key=lambda v: (str(type(v)), v))
        rows = []
        for value in axis_values:
            row = [value]
            for system in self.systems:
                match = [c for c in self.cells
                         if c.axis_value == value and c.system == system]
                row.append(round(match[0].value(metric), 4) if match else None)
            rows.append(row)
        return rows


class SweepRunner:
    """Runs a one-axis sweep across systems."""

    def __init__(self, builder: SystemBuilder,
                 systems: Sequence[str] = ("v-lora", "s-lora", "punica",
                                           "dlora")):
        if not systems:
            raise ValueError("need at least one system")
        self.builder = builder
        self.systems = list(systems)

    def run(
        self,
        axis_name: str,
        axis_values: Sequence[object],
        workload_factory: WorkloadFactory,
        until: Optional[float] = None,
    ) -> SweepResult:
        """Execute the grid; every cell gets a fresh engine."""
        if not axis_values:
            raise ValueError("need at least one axis value")
        result = SweepResult(axis_name=axis_name, systems=self.systems)
        for value in axis_values:
            for system in self.systems:
                engine = self.builder.build(system)
                requests = list(workload_factory(value, system))
                if not requests:
                    raise ValueError(
                        f"workload factory produced no requests for "
                        f"{axis_name}={value!r}, system={system!r}"
                    )
                engine.submit(requests)
                metrics = engine.run(until=until)
                result.cells.append(SweepCell(value, system, metrics))
        return result
