"""Experiment report: summarize the ``results/*.json`` the benches write.

``python -m repro report`` renders a one-screen digest of every
regenerated table/figure so a reader can check the reproduction without
re-running the benchmark suite.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Tuple, Union

#: experiment id -> (title, function extracting one headline line)
_DIGESTERS = {}


def _digester(experiment_id: str, title: str):
    def wrap(fn):
        _DIGESTERS[experiment_id] = (title, fn)
        return fn
    return wrap


def _fmt(value, digits=2):
    if isinstance(value, (int, float)):
        return f"{value:.{digits}f}"
    return str(value)


@_digester("table1_tiling", "Table 1: adaptive tiling")
def _table1(data):
    adaptive = data.get("adaptive_ms", {})
    return "ATMM per-input latency: " + ", ".join(
        f"{k.split()[0]}={v}ms" for k, v in adaptive.items()
    )


@_digester("fig14_e2e", "Fig 14: end-to-end latency reduction")
def _fig14(data):
    summary = data.get("summary", {})
    parts = []
    for app, row in summary.items():
        if app == "inflection_rps":
            continue
        inner = ", ".join(f"{k} {v.split(' ')[0]}" for k, v in row.items())
        parts.append(f"{app}: {inner}")
    knees = summary.get("inflection_rps")
    if knees:
        parts.append(
            "knee(rps): " + ", ".join(f"{k}={v}" for k, v in knees.items())
        )
    return "; ".join(parts)


@_digester("fig17_operator_latency", "Fig 17: ATMM speedups")
def _fig17(data):
    ratios = data.get("speedups", {})
    return ", ".join(
        f"{k} {v['overall_speedup']}x (decode {v['decode_speedup']}x)"
        for k, v in ratios.items()
    )


@_digester("fig05_fusion_capacity", "Fig 5: fusion capacity (measured)")
def _fig05(data):
    measured = data.get("measured", {})
    return ", ".join(
        f"{fam.split('_')[0]} k=6 -> {curve.get('6', curve.get(6, '?'))}"
        for fam, curve in measured.items()
    )


@_digester("fig07_mode_switch", "Fig 7: mode switch")
def _fig07(data):
    return (f"dLoRA {data['dlora']['switch_ms']}ms vs "
            f"V-LoRA {data['v-lora']['switch_ms']}ms")


@_digester("table3_multigpu", "Table 3: multi-GPU throughput")
def _table3(data):
    return ", ".join(
        f"{gpus} GPU(s)={row['throughput_rps']}rps"
        for gpus, row in sorted(data.items(), key=lambda kv: int(kv[0]))
    )


def _generic(data) -> str:
    """Fallback digest: top-level keys."""
    if isinstance(data, dict):
        keys = list(data)[:6]
        return f"keys: {', '.join(map(str, keys))}"
    return type(data).__name__


def load_results(results_dir: Union[str, pathlib.Path]) -> Dict[str, dict]:
    """Load every ``*.json`` under the results directory."""
    results_dir = pathlib.Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    out = {}
    for path in sorted(results_dir.glob("*.json")):
        try:
            with open(path) as fh:
                out[path.stem] = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: invalid JSON ({exc})") from None
    return out


def build_report(results: Dict[str, dict]) -> List[Tuple[str, str, str]]:
    """(experiment id, title, digest line) per result file."""
    rows = []
    for experiment_id, data in sorted(results.items()):
        title, fn = _DIGESTERS.get(
            experiment_id, (experiment_id, _generic)
        )
        try:
            digest = fn(data)
        except (KeyError, TypeError, AttributeError):
            digest = _generic(data)
        rows.append((experiment_id, title, digest))
    return rows


def render_report(results_dir: Union[str, pathlib.Path]) -> str:
    """The full text report."""
    results = load_results(results_dir)
    if not results:
        return (f"no results in {results_dir}; run "
                "`pytest benchmarks/ --benchmark-only` first")
    lines = [f"reproduction results ({len(results)} experiments)", ""]
    for experiment_id, title, digest in build_report(results):
        lines.append(f"* {title}")
        lines.append(f"    {digest}")
        lines.append(f"    [results/{experiment_id}.json]")
    return "\n".join(lines)
