"""Paired system comparisons with the paper's "-NN%" arithmetic."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.sweep import SweepResult


def saturation_point(series: Dict[object, float],
                     blowup: float = 3.0) -> Optional[object]:
    """The load where latency blows past ``blowup`` x the lightest-load
    latency — the 'inflection point' of Fig. 14 (None if never).

    ``series`` maps load (sortable) -> latency.
    """
    if not series:
        raise ValueError("empty series")
    if blowup <= 1.0:
        raise ValueError(f"blowup must exceed 1, got {blowup}")
    items = sorted(series.items())
    base = items[0][1]
    if base <= 0:
        raise ValueError("latencies must be positive")
    for load, latency in items:
        if latency > blowup * base:
            return load
    return None


def reduction_pct(ours: float, baseline: float) -> float:
    """Latency reduction of ``ours`` vs ``baseline`` in percent.

    Positive = we are faster (the paper's "reduces NN% latency").
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * (1.0 - ours / baseline)


@dataclass
class ComparisonRow:
    """Reduction of the reference system vs one baseline along the axis."""

    baseline: str
    per_axis_pct: Dict[object, float]

    @property
    def mean_pct(self) -> float:
        values = list(self.per_axis_pct.values())
        return sum(values) / len(values)

    @property
    def min_pct(self) -> float:
        return min(self.per_axis_pct.values())

    @property
    def max_pct(self) -> float:
        return max(self.per_axis_pct.values())

    def band(self) -> str:
        """The paper's "NN-MM%" band string."""
        return f"{self.min_pct:.0f}-{self.max_pct:.0f}%"


@dataclass
class SystemComparison:
    """Reference-vs-baselines view over a completed sweep."""

    sweep: SweepResult
    reference: str = "v-lora"
    metric: str = "avg_token_latency_ms"
    rows: List[ComparisonRow] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.reference not in self.sweep.systems:
            raise KeyError(
                f"reference {self.reference!r} not in sweep systems "
                f"{self.sweep.systems}"
            )
        ref_series = self.sweep.series(self.reference, self.metric)
        for system in self.sweep.systems:
            if system == self.reference:
                continue
            base_series = self.sweep.series(system, self.metric)
            per_axis = {
                k: reduction_pct(ref_series[k], base_series[k])
                for k in ref_series if k in base_series
            }
            if per_axis:
                self.rows.append(ComparisonRow(system, per_axis))

    def row(self, baseline: str) -> ComparisonRow:
        for r in self.rows:
            if r.baseline == baseline:
                return r
        raise KeyError(f"no comparison row for {baseline!r}")

    def reference_wins_everywhere(self, tolerance_pct: float = 0.0) -> bool:
        """Whether the reference beats every baseline at every axis value."""
        return all(
            pct >= -tolerance_pct
            for r in self.rows for pct in r.per_axis_pct.values()
        )

    def summary(self) -> Dict[str, str]:
        return {r.baseline: f"-{r.mean_pct:.0f}% (band {r.band()})"
                for r in self.rows}
