"""Checkpointing for the numpy substrate.

The offline phase (§4.2) produces artifacts: the pretrained base model
and one A/B bundle per generated LoRA adapter, which the online phase
loads into its pre-allocated slots.  This module provides both:

* :func:`named_parameters` / :func:`save_model` / :func:`load_model` —
  whole-module checkpoints as ``.npz`` keyed by attribute path;
* :func:`save_adapter` / :func:`load_adapter` — one adapter's LoRA
  snapshots (A, B, alpha per wrapped layer) as a standalone artifact.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.nn.layers import Module
from repro.nn.lora import LoRAAdapterWeights
from repro.nn.tensor import Tensor

PathLike = Union[str, pathlib.Path]


def named_parameters(module: Module, prefix: str = "") -> Dict[str, Tensor]:
    """Parameters keyed by attribute path (e.g. ``blocks.0.attn.q_proj.weight``).

    Deterministic: follows ``__dict__`` insertion order, recursing into
    modules, lists/tuples (indexed), and dicts (keyed).
    """
    out: Dict[str, Tensor] = {}

    def walk(value, path: str) -> None:
        if isinstance(value, Tensor):
            out[path] = value
        elif isinstance(value, Module):
            for name, child in value.__dict__.items():
                if name == "training":
                    continue
                walk(child, f"{path}.{name}" if path else name)
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                walk(item, f"{path}.{i}")
        elif isinstance(value, dict):
            for key, item in value.items():
                walk(item, f"{path}.{key}")

    walk(module, prefix)
    return out


def save_model(module: Module, path: PathLike) -> int:
    """Write every parameter to a compressed ``.npz``; returns the count."""
    params = named_parameters(module)
    if not params:
        raise ValueError("module has no parameters to save")
    np.savez_compressed(path, **{k: p.data for k, p in params.items()})
    return len(params)


def load_model(module: Module, path: PathLike, strict: bool = True) -> int:
    """Load a checkpoint written by :func:`save_model` in place.

    With ``strict`` (default) the checkpoint must cover exactly the
    module's parameters; otherwise matching names load and the rest stay.
    Shapes must always match.
    """
    params = named_parameters(module)
    with np.load(path) as data:
        saved = {k: data[k] for k in data.files}
    missing = set(params) - set(saved)
    unexpected = set(saved) - set(params)
    if strict and (missing or unexpected):
        raise ValueError(
            f"checkpoint mismatch: missing={sorted(missing)[:4]} "
            f"unexpected={sorted(unexpected)[:4]}"
        )
    loaded = 0
    for name, tensor in params.items():
        if name not in saved:
            continue
        if saved[name].shape != tensor.data.shape:
            raise ValueError(
                f"shape mismatch for {name}: checkpoint "
                f"{saved[name].shape} vs model {tensor.data.shape}"
            )
        tensor.data = saved[name].astype(np.float32)
        loaded += 1
    return loaded


def save_adapter(snaps: Sequence[LoRAAdapterWeights],
                 path: PathLike) -> None:
    """Persist one adapter (all wrapped layers' A/B/alpha) as ``.npz``."""
    if not snaps:
        raise ValueError("adapter has no layers")
    arrays = {}
    for i, snap in enumerate(snaps):
        arrays[f"layer{i}.a"] = snap.a
        arrays[f"layer{i}.b"] = snap.b
        arrays[f"layer{i}.alpha"] = np.array(snap.alpha, dtype=np.float32)
    arrays["num_layers"] = np.array(len(snaps))
    np.savez_compressed(path, **arrays)


def load_adapter(path: PathLike) -> List[LoRAAdapterWeights]:
    """Inverse of :func:`save_adapter`."""
    with np.load(path) as data:
        if "num_layers" not in data.files:
            raise ValueError(f"{path} is not an adapter artifact")
        count = int(data["num_layers"])
        snaps = []
        for i in range(count):
            snaps.append(LoRAAdapterWeights(
                a=data[f"layer{i}.a"].astype(np.float32),
                b=data[f"layer{i}.b"].astype(np.float32),
                alpha=float(data[f"layer{i}.alpha"]),
            ))
    return snaps
