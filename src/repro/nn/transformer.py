"""TinyLMM: a laptop-scale stand-in for Qwen-VL / LLaVA.

The serving side of the reproduction treats the LMM as a cost model
(:mod:`repro.models.costs`); the *accuracy* side needs an actual model
that learns, forgets, and saturates.  TinyLMM is a small transformer with
the same moving parts as the paper's LMMs:

* a "visual receptor": a patch projector mapping per-patch feature
  vectors into token embeddings (the ViT + Q-former pipeline of Fig. 1,
  collapsed into one linear map over synthetic features);
* a prompt token (task instruction) prepended to the visual tokens;
* a transformer backbone whose attention projections can be wrapped with
  LoRA adapters;
* an **LM head** over an answer vocabulary — answering a vision task
  through it costs one decode round per answer token;
* pluggable **vision task heads** (§4.2.2) — a single linear layer that
  answers in one round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.layers import (
    Embedding,
    LayerNorm,
    Linear,
    Module,
    TransformerBlock,
    cross_entropy,
)
from repro.nn.lora import LoRAAdapterWeights, LoRALinear
from repro.nn.tensor import Tensor, no_grad


@dataclass(frozen=True)
class TinyLMMConfig:
    """Hyper-parameters of the tiny LMM."""

    feature_dim: int = 32
    dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    mlp_ratio: int = 2
    vocab_size: int = 64
    num_prompts: int = 16
    max_patches: int = 16

    def __post_init__(self) -> None:
        if self.dim % self.num_heads:
            raise ValueError(
                f"dim {self.dim} not divisible by heads {self.num_heads}"
            )


class TaskHead(Module):
    """A vision task head: one linear layer over the pooled feature."""

    def __init__(self, dim: int, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_classes <= 1:
            raise ValueError(f"num_classes must be > 1, got {num_classes}")
        self.proj = Linear(dim, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, pooled: Tensor) -> Tensor:
        return self.proj(pooled)


class TinyLMM(Module):
    """Tiny multimodal transformer with LM head and vision task heads."""

    def __init__(self, config: TinyLMMConfig = TinyLMMConfig(),
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.config = config
        self.patch_proj = Linear(config.feature_dim, config.dim, rng=rng)
        self.prompt_embed = Embedding(config.num_prompts, config.dim, rng=rng)
        self.blocks = [
            TransformerBlock(config.dim, config.num_heads,
                             mlp_ratio=config.mlp_ratio, rng=rng)
            for _ in range(config.num_layers)
        ]
        self.norm = LayerNorm(config.dim)
        self.lm_head = Linear(config.dim, config.vocab_size, rng=rng)
        self.task_heads: Dict[str, TaskHead] = {}
        self._lora_layers: List[LoRALinear] = []

    # -- forward ------------------------------------------------------------------

    def forward_features(
        self, features: np.ndarray, prompt_ids: np.ndarray
    ) -> Tensor:
        """Pooled representation for a batch of (features, prompt) inputs.

        Parameters
        ----------
        features:
            ``(batch, patches, feature_dim)`` visual features.
        prompt_ids:
            ``(batch,)`` integer prompt/task tokens.
        """
        features = np.asarray(features, dtype=np.float32)
        if features.ndim != 3 or features.shape[2] != self.config.feature_dim:
            raise ValueError(
                f"features must be (B, T, {self.config.feature_dim}), "
                f"got {features.shape}"
            )
        batch, patches, _ = features.shape
        if patches > self.config.max_patches:
            raise ValueError(
                f"{patches} patches exceeds max {self.config.max_patches}"
            )
        tokens = self.patch_proj(Tensor(features))
        prompt = self.prompt_embed(np.asarray(prompt_ids))
        # Broadcast the prompt token across the sequence (prefix-style
        # conditioning without ragged concatenation).
        x = tokens + prompt.reshape(batch, 1, self.config.dim)
        for block in self.blocks:
            x = block(x)
        x = self.norm(x)
        return x.mean(axis=1)

    def lm_logits(self, features: np.ndarray, prompt_ids: np.ndarray) -> Tensor:
        """Answer-vocabulary logits through the LM head."""
        return self.lm_head(self.forward_features(features, prompt_ids))

    def task_logits(
        self, features: np.ndarray, prompt_ids: np.ndarray, head_name: str
    ) -> Tensor:
        """Class logits through a registered vision task head."""
        head = self.task_heads.get(head_name)
        if head is None:
            raise KeyError(
                f"no task head {head_name!r}; registered: "
                f"{sorted(self.task_heads)}"
            )
        return head(self.forward_features(features, prompt_ids))

    # -- heads ---------------------------------------------------------------------

    def add_task_head(self, name: str, num_classes: int,
                      rng: Optional[np.random.Generator] = None) -> TaskHead:
        """Register a vision task head (part of an adapter bundle, §4.2.2)."""
        if name in self.task_heads:
            raise ValueError(f"task head {name!r} already registered")
        head = TaskHead(self.config.dim, num_classes, rng=rng)
        self.task_heads[name] = head
        return head

    # -- LoRA management -----------------------------------------------------------------

    def add_lora(self, rank: int,
                 rng: Optional[np.random.Generator] = None,
                 include_projector: bool = True) -> List[LoRALinear]:
        """Wrap the attention q/v projections (and, like common LMM
        fine-tuning recipes, the vision-language projector) with LoRA and
        freeze the base.

        Returns the LoRA layers so trainers can optimize only them.
        """
        if self._lora_layers:
            raise RuntimeError("LoRA already installed on this model")
        rng = rng or np.random.default_rng(0)
        for p in self.parameters():
            p.requires_grad = False
        if include_projector:
            self.patch_proj = LoRALinear(self.patch_proj, rank, rng=rng)
            self._lora_layers.append(self.patch_proj)
        for block in self.blocks:
            attn = block.attn
            for proj_name in ("q_proj", "v_proj"):
                base = getattr(attn, proj_name)
                wrapped = LoRALinear(base, rank, rng=rng)
                setattr(attn, proj_name, wrapped)
                self._lora_layers.append(wrapped)
        return self._lora_layers

    @property
    def lora_layers(self) -> List[LoRALinear]:
        return list(self._lora_layers)

    def lora_parameters(self) -> List[Tensor]:
        """Trainable parameters of the installed adapter (+ task heads)."""
        params: List[Tensor] = []
        for layer in self._lora_layers:
            params.extend([layer.lora_a, layer.lora_b])
        for head in self.task_heads.values():
            params.extend(head.trainable_parameters())
        return params

    def lora_snapshot(self) -> List[LoRAAdapterWeights]:
        """Detached copies of all LoRA layers (rollback / host swap)."""
        return [layer.snapshot() for layer in self._lora_layers]

    def lora_load(self, snaps: Sequence[LoRAAdapterWeights]) -> None:
        if len(snaps) != len(self._lora_layers):
            raise ValueError(
                f"snapshot count {len(snaps)} != layer count "
                f"{len(self._lora_layers)}"
            )
        for layer, snap in zip(self._lora_layers, snaps):
            layer.load(snap)

    def lora_reset(self, rng: Optional[np.random.Generator] = None) -> None:
        """Fresh adapter (a new bin in the fusion algorithm)."""
        rng = rng or np.random.default_rng(0)
        for layer in self._lora_layers:
            layer.reset(rng)

    def merge_loras(self) -> None:
        for layer in self._lora_layers:
            layer.merge()

    def unmerge_loras(self) -> None:
        for layer in self._lora_layers:
            layer.unmerge()

    # -- evaluation helpers ------------------------------------------------------------------

    def accuracy(
        self,
        features: np.ndarray,
        prompt_ids: np.ndarray,
        labels: np.ndarray,
        head_name: Optional[str] = None,
    ) -> float:
        """Top-1 accuracy (fraction in [0,1]) with LM head or a task head."""
        with no_grad():
            if head_name is None:
                logits = self.lm_logits(features, prompt_ids)
            else:
                logits = self.task_logits(features, prompt_ids, head_name)
        preds = logits.data.argmax(axis=1)
        return float((preds == np.asarray(labels)).mean())

    def loss(
        self,
        features: np.ndarray,
        prompt_ids: np.ndarray,
        labels: np.ndarray,
        head_name: Optional[str] = None,
    ) -> Tensor:
        """Cross-entropy through the LM head or a task head."""
        if head_name is None:
            logits = self.lm_logits(features, prompt_ids)
        else:
            logits = self.task_logits(features, prompt_ids, head_name)
        return cross_entropy(logits, labels)
