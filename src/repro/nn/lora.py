"""LoRA layers for the numpy substrate.

:class:`LoRALinear` wraps a frozen :class:`~repro.nn.layers.Linear` with a
trainable low-rank bypass ``x @ A @ B * (alpha / r)`` (Fig. 2a).  It
supports the operations the serving system's correctness rests on:

* ``merge()`` / ``unmerge()`` — fold ΔW = A x B into the base weight and
  take it back out (merged inference, Fig. 2b);
* hot adapter swap via :class:`LoRAAdapterWeights` snapshots — the
  orchestrator moves adapters between host and GPU without touching the
  base model;
* the deLoRA identity (§4.4.2) is property-tested against this layer in
  ``tests/nn/test_lora.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor


@dataclass
class LoRAAdapterWeights:
    """A detached snapshot of one adapter's A/B matrices (host copy)."""

    a: np.ndarray
    b: np.ndarray
    alpha: float

    @property
    def rank(self) -> int:
        return self.a.shape[1]

    def delta_w(self) -> np.ndarray:
        """Materialize ΔW = (alpha / r) * A @ B."""
        return (self.alpha / self.rank) * (self.a @ self.b)

    def nbytes(self) -> int:
        return self.a.nbytes + self.b.nbytes


class LoRALinear(Module):
    """Frozen linear layer with a trainable low-rank bypass."""

    def __init__(
        self,
        base: Linear,
        rank: int,
        alpha: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if rank <= 0:
            raise ValueError(f"rank must be positive, got {rank}")
        if rank > min(base.in_features, base.out_features):
            raise ValueError(
                f"rank {rank} exceeds layer dims "
                f"({base.in_features}, {base.out_features})"
            )
        rng = rng or np.random.default_rng()
        self.base = base.freeze()
        self.rank = rank
        self.alpha = float(alpha if alpha is not None else rank)
        # Standard LoRA init: A ~ N(0, sigma), B = 0 => ΔW starts at zero.
        self.lora_a = Tensor(
            rng.normal(0.0, 0.02, (base.in_features, rank)), requires_grad=True
        )
        self.lora_b = Tensor(
            np.zeros((rank, base.out_features)), requires_grad=True
        )
        self._merged = False

    # -- forward -----------------------------------------------------------------

    @property
    def scaling(self) -> float:
        return self.alpha / self.rank

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        if not self._merged:
            out = out + (x @ self.lora_a @ self.lora_b) * self.scaling
        return out

    # -- merge / unmerge ------------------------------------------------------------

    @property
    def merged(self) -> bool:
        return self._merged

    def delta_w(self) -> np.ndarray:
        return self.scaling * (self.lora_a.data @ self.lora_b.data)

    def merge(self) -> None:
        """Fold ΔW into the base weight (merged inference, Fig. 2b)."""
        if self._merged:
            raise RuntimeError("adapter is already merged")
        self.base.weight.data += self.delta_w()
        self._merged = True

    def unmerge(self) -> None:
        """Subtract ΔW back out of the base weight."""
        if not self._merged:
            raise RuntimeError("adapter is not merged")
        self.base.weight.data -= self.delta_w()
        self._merged = False

    # -- adapter swap -------------------------------------------------------------------

    def snapshot(self) -> LoRAAdapterWeights:
        """Detached host-side copy of the adapter (for swap / rollback)."""
        return LoRAAdapterWeights(
            a=self.lora_a.data.copy(),
            b=self.lora_b.data.copy(),
            alpha=self.alpha,
        )

    def load(self, weights: LoRAAdapterWeights) -> None:
        """Install an adapter snapshot (hot swap).

        Refuses while merged: the resident ΔW would be inconsistent.
        """
        if self._merged:
            raise RuntimeError("unmerge before loading a different adapter")
        if weights.a.shape != self.lora_a.shape or weights.b.shape != self.lora_b.shape:
            raise ValueError(
                f"adapter shapes {weights.a.shape}/{weights.b.shape} do not "
                f"match layer {self.lora_a.shape}/{self.lora_b.shape}"
            )
        self.lora_a.data = weights.a.copy()
        self.lora_b.data = weights.b.copy()
        self.alpha = weights.alpha

    def reset(self, rng: Optional[np.random.Generator] = None) -> None:
        """Re-initialize the adapter (fresh bin in the fusion algorithm)."""
        rng = rng or np.random.default_rng()
        if self._merged:
            self.unmerge()
        self.lora_a.data = rng.normal(
            0.0, 0.02, self.lora_a.shape
        ).astype(np.float32)
        self.lora_b.data = np.zeros(self.lora_b.shape, dtype=np.float32)
