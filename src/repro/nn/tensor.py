"""Reverse-mode automatic differentiation over numpy arrays.

A deliberately small engine: dynamic graph, one backward pass, float32
throughout.  Supports broadcasting (gradients are un-broadcast on the way
back), batched matmul, and the handful of fused ops a transformer needs
(softmax, layer norm, cross entropy live in the layers that use them).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def _as_array(value: ArrayLike) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float32)
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an autograd tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        _op: str = "",
    ):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._backward: Callable[[], None] = lambda: None
        self._prev = _prev if _GRAD_ENABLED else ()
        self._op = _op

    # -- graph plumbing -------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode AD from this tensor.

        ``grad`` defaults to ones (scalar outputs get 1.0).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited: Set[int] = set()

        def build(t: Tensor) -> None:
            if id(t) in visited:
                return
            visited.add(id(t))
            for child in t._prev:
                build(child)
            topo.append(t)

        build(self)
        self.grad = np.asarray(grad, dtype=np.float32)
        for node in reversed(topo):
            node._backward()

    @staticmethod
    def _needs_graph(*tensors: "Tensor") -> bool:
        return _GRAD_ENABLED and any(t.requires_grad for t in tensors)

    # -- binary ops -------------------------------------------------------------

    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other):
        other = self._coerce(other)
        track = Tensor._needs_graph(self, other)
        out = Tensor(self.data + other.data, track,
                     (self, other) if track else (), "add")
        if track:
            def _backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.shape))
            out._backward = _backward
        return out

    def __mul__(self, other):
        other = self._coerce(other)
        track = Tensor._needs_graph(self, other)
        out = Tensor(self.data * other.data, track,
                     (self, other) if track else (), "mul")
        if track:
            def _backward():
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.shape))
            out._backward = _backward
        return out

    def __matmul__(self, other):
        other = self._coerce(other)
        track = Tensor._needs_graph(self, other)
        out = Tensor(self.data @ other.data, track,
                     (self, other) if track else (), "matmul")
        if track:
            def _backward():
                a, b, g = self.data, other.data, out.grad
                if self.requires_grad:
                    if b.ndim == 1:
                        ga = np.outer(g, b) if a.ndim > 1 else g * b
                    else:
                        ga = g @ np.swapaxes(b, -1, -2)
                    self._accumulate(_unbroadcast(ga, self.shape))
                if other.requires_grad:
                    if a.ndim == 1:
                        gb = np.outer(a, g)
                    else:
                        gb = np.swapaxes(a, -1, -2) @ g
                    other._accumulate(_unbroadcast(gb, other.shape))
            out._backward = _backward
        return out

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        track = Tensor._needs_graph(self)
        out = Tensor(self.data ** exponent, track,
                     (self,) if track else (), "pow")
        if track:
            def _backward():
                if self.requires_grad:
                    self._accumulate(
                        out.grad * exponent * self.data ** (exponent - 1)
                    )
            out._backward = _backward
        return out

    def __neg__(self):
        return self * -1.0

    def __sub__(self, other):
        return self + (-self._coerce(other))

    def __rsub__(self, other):
        return self._coerce(other) + (-self)

    def __truediv__(self, other):
        return self * (self._coerce(other) ** -1.0)

    def __rtruediv__(self, other):
        return self._coerce(other) * (self ** -1.0)

    __radd__ = __add__
    __rmul__ = __mul__

    # -- reductions ---------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False):
        track = Tensor._needs_graph(self)
        out = Tensor(self.data.sum(axis=axis, keepdims=keepdims), track,
                     (self,) if track else (), "sum")
        if track:
            def _backward():
                if not self.requires_grad:
                    return
                g = out.grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    g = np.expand_dims(g, axes)
                self._accumulate(np.broadcast_to(g, self.shape).copy())
            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False):
        count = self.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    # -- shape ops -------------------------------------------------------------------

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        track = Tensor._needs_graph(self)
        out = Tensor(self.data.reshape(shape), track,
                     (self,) if track else (), "reshape")
        if track:
            def _backward():
                if self.requires_grad:
                    self._accumulate(out.grad.reshape(self.shape))
            out._backward = _backward
        return out

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        track = Tensor._needs_graph(self)
        out = Tensor(self.data.transpose(axes), track,
                     (self,) if track else (), "transpose")
        if track:
            inv = np.argsort(axes)
            def _backward():
                if self.requires_grad:
                    self._accumulate(out.grad.transpose(inv))
            out._backward = _backward
        return out

    def __getitem__(self, index):
        track = Tensor._needs_graph(self)
        out = Tensor(self.data[index], track,
                     (self,) if track else (), "getitem")
        if track:
            def _backward():
                if self.requires_grad:
                    g = np.zeros_like(self.data)
                    np.add.at(g, index, out.grad)
                    self._accumulate(g)
            out._backward = _backward
        return out

    # -- elementwise nonlinearities -----------------------------------------------------

    def exp(self):
        track = Tensor._needs_graph(self)
        out = Tensor(np.exp(self.data), track, (self,) if track else (), "exp")
        if track:
            def _backward():
                if self.requires_grad:
                    self._accumulate(out.grad * out.data)
            out._backward = _backward
        return out

    def log(self):
        track = Tensor._needs_graph(self)
        out = Tensor(np.log(self.data), track, (self,) if track else (), "log")
        if track:
            def _backward():
                if self.requires_grad:
                    self._accumulate(out.grad / self.data)
            out._backward = _backward
        return out

    def tanh(self):
        track = Tensor._needs_graph(self)
        out = Tensor(np.tanh(self.data), track, (self,) if track else (), "tanh")
        if track:
            def _backward():
                if self.requires_grad:
                    self._accumulate(out.grad * (1.0 - out.data ** 2))
            out._backward = _backward
        return out

    def relu(self):
        track = Tensor._needs_graph(self)
        out = Tensor(np.maximum(self.data, 0.0), track,
                     (self,) if track else (), "relu")
        if track:
            def _backward():
                if self.requires_grad:
                    self._accumulate(out.grad * (self.data > 0))
            out._backward = _backward
        return out

    def gelu(self):
        """Tanh-approximation GELU (as used by most transformer stacks)."""
        c = np.float32(np.sqrt(2.0 / np.pi))
        x = self.data
        inner = c * (x + 0.044715 * x ** 3)
        t = np.tanh(inner)
        track = Tensor._needs_graph(self)
        out = Tensor(0.5 * x * (1.0 + t), track,
                     (self,) if track else (), "gelu")
        if track:
            def _backward():
                if self.requires_grad:
                    dinner = c * (1.0 + 3 * 0.044715 * x ** 2)
                    dgelu = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t ** 2) * dinner
                    self._accumulate(out.grad * dgelu)
            out._backward = _backward
        return out

    def softmax(self, axis: int = -1):
        """Numerically stable softmax along ``axis`` (fused backward)."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        y = e / e.sum(axis=axis, keepdims=True)
        track = Tensor._needs_graph(self)
        out = Tensor(y, track, (self,) if track else (), "softmax")
        if track:
            def _backward():
                if self.requires_grad:
                    g = out.grad
                    dot = (g * y).sum(axis=axis, keepdims=True)
                    self._accumulate(y * (g - dot))
            out._backward = _backward
        return out

    def __repr__(self) -> str:
        return (
            f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, "
            f"op={self._op or 'leaf'})"
        )


def stack_params(tensors: Iterable[Tensor]) -> List[Tensor]:
    """Deduplicate a parameter iterable preserving order."""
    seen: Set[int] = set()
    out: List[Tensor] = []
    for t in tensors:
        if id(t) not in seen:
            seen.add(id(t))
            out.append(t)
    return out
