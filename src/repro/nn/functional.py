"""Functional helpers over the autograd substrate.

Utilities the layers/trainers/tests share: stateless activations and
losses, deterministic dropout, label utilities, and parameter
bookkeeping.  Everything here works on :class:`~repro.nn.tensor.Tensor`
or plain numpy arrays as documented per function.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.nn.layers import cross_entropy
from repro.nn.tensor import Tensor


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to one-hot ``(N, C)`` float32."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError(
            f"labels out of range [0, {num_classes}): "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def accuracy(logits: Tensor, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1] for ``(N, C)`` logits."""
    preds = logits.data.argmax(axis=-1)
    return float((preds == np.asarray(labels)).mean())


def top_k_accuracy(logits: Tensor, labels: np.ndarray, k: int) -> float:
    """Top-k accuracy in [0, 1]."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    labels = np.asarray(labels)
    topk = np.argsort(-logits.data, axis=-1)[:, :k]
    return float((topk == labels[:, None]).any(axis=1).mean())


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout with an explicit generator (deterministic).

    Identity when ``training`` is False or ``p == 0``.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout p must be in [0,1), got {p}")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * Tensor(mask)


def label_smoothing_cross_entropy(
    logits: Tensor, labels: np.ndarray, smoothing: float = 0.1
) -> Tensor:
    """Cross entropy against smoothed targets.

    Implemented as ``(1 - s) * CE(y) + s * mean_c CE(c)`` which equals
    cross entropy against the smoothed distribution up to a constant.
    """
    if not 0.0 <= smoothing < 1.0:
        raise ValueError(f"smoothing must be in [0,1), got {smoothing}")
    hard = cross_entropy(logits, labels)
    if smoothing == 0.0:
        return hard
    # Uniform component: -mean over classes of log softmax.
    z = logits
    shifted = z - Tensor(z.data.max(axis=1, keepdims=True))
    logsumexp = Tensor(
        np.log(np.exp(shifted.data).sum(axis=1, keepdims=True))
    )
    log_probs = shifted - logsumexp
    uniform = -log_probs.mean(axis=1).mean()
    return hard * (1.0 - smoothing) + uniform * smoothing


def num_parameters(params: Iterable[Tensor]) -> int:
    """Total element count of a parameter iterable."""
    return sum(p.size for p in params)


def global_grad_norm(params: Iterable[Tensor]) -> float:
    """L2 norm over all gradients (0 if none)."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad ** 2).sum())
    return float(np.sqrt(total))


def train_test_split(
    x: np.ndarray, y: np.ndarray, test_fraction: float,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split of aligned arrays into train/test parts."""
    if x.shape[0] != y.shape[0]:
        raise ValueError("x and y must align on axis 0")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(
            f"test_fraction must be in (0,1), got {test_fraction}"
        )
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(x.shape[0])
    cut = int(round(x.shape[0] * (1.0 - test_fraction)))
    if cut == 0 or cut == x.shape[0]:
        raise ValueError("split leaves an empty part; adjust test_fraction")
    tr, te = order[:cut], order[cut:]
    return x[tr], y[tr], x[te], y[te]
