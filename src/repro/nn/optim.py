"""Optimizers: SGD with momentum, Adam, and gradient clipping."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Iterable[Tensor]):
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0,1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        if self.momentum and self._velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.params]
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity[i]
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1 ** self._t
        bc2 = 1.0 - b2 ** self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m, v = self._m[i], self._v[i]
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Clip gradients to a global L2 norm; returns the pre-clip norm."""
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
