"""Neural-network modules: Linear, Embedding, LayerNorm, attention, blocks."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.nn.tensor import Tensor, stack_params


class Module:
    """Base class with recursive parameter discovery and train/eval modes."""

    def __init__(self):
        self.training = True

    def parameters(self) -> List[Tensor]:
        """All unique parameters reachable from this module."""
        found: List[Tensor] = []
        for value in self.__dict__.values():
            found.extend(_collect(value))
        return stack_params(found)

    def trainable_parameters(self) -> List[Tensor]:
        return [p for p in self.parameters() if p.requires_grad]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            for module in _collect_modules(value):
                module._set_mode(training)

    def num_parameters(self, trainable_only: bool = False) -> int:
        params = self.trainable_parameters() if trainable_only else self.parameters()
        return sum(p.size for p in params)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


def _collect(value) -> Iterator[Tensor]:
    if isinstance(value, Tensor):
        yield value
    elif isinstance(value, Module):
        yield from value.parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect(item)


def _collect_modules(value) -> Iterator["Module"]:
    if isinstance(value, Module):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_modules(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect_modules(item)


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with Kaiming-uniform init."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in/out features must be positive")
        rng = rng or np.random.default_rng()
        bound = float(np.sqrt(1.0 / in_features))
        self.weight = Tensor(
            rng.uniform(-bound, bound, (in_features, out_features)),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def freeze(self) -> "Linear":
        """Stop gradient flow into this layer's own weights."""
        self.weight.requires_grad = False
        if self.bias is not None:
            self.bias.requires_grad = False
        return self


class Embedding(Module):
    """Token-id to vector lookup with scatter-add backward."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.weight = Tensor(
            rng.normal(0.0, 0.02, (num_embeddings, dim)), requires_grad=True
        )
        self.num_embeddings = num_embeddings
        self.dim = dim

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids)
        if token_ids.min() < 0 or token_ids.max() >= self.num_embeddings:
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings})"
            )
        return self.weight[token_ids]


class LayerNorm(Module):
    """Layer normalization over the last axis (fused backward)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)
        self.eps = eps
        self.dim = dim

    def forward(self, x: Tensor) -> Tensor:
        mu = x.data.mean(axis=-1, keepdims=True)
        var = x.data.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x.data - mu) * inv
        track = Tensor._needs_graph(x, self.gamma, self.beta)
        out = Tensor(xhat * self.gamma.data + self.beta.data, track,
                     (x, self.gamma, self.beta) if track else (), "layernorm")
        if track:
            dim = self.dim
            def _backward():
                g = out.grad
                if self.gamma.requires_grad:
                    self.gamma._accumulate(
                        (g * xhat).reshape(-1, dim).sum(axis=0)
                    )
                if self.beta.requires_grad:
                    self.beta._accumulate(g.reshape(-1, dim).sum(axis=0))
                if x.requires_grad:
                    gx = g * self.gamma.data
                    mean_gx = gx.mean(axis=-1, keepdims=True)
                    mean_gxx = (gx * xhat).mean(axis=-1, keepdims=True)
                    x._accumulate(inv * (gx - mean_gx - xhat * mean_gxx))
            out._backward = _backward
        return out


class MultiHeadSelfAttention(Module):
    """Standard causal-optional multi-head self attention."""

    def __init__(self, dim: int, num_heads: int, causal: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.o_proj = Linear(dim, dim, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        if self.causal:
            mask = np.triu(np.full((seq, seq), -1e9, dtype=np.float32), k=1)
            scores = scores + Tensor(mask)
        attn = scores.softmax(axis=-1)
        ctx = attn @ v
        merged = ctx.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.o_proj(merged)


class FeedForward(Module):
    """Two-layer GELU MLP."""

    def __init__(self, dim: int, hidden: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.up = Linear(dim, hidden, rng=rng)
        self.down = Linear(hidden, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.down(self.up(x).gelu())


class TransformerBlock(Module):
    """Pre-norm transformer block."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: int = 4,
                 causal: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, causal=causal, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = FeedForward(dim, dim * mlp_ratio, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x


class Sequential(Module):
    """Run modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x):
        for module in self.modules:
            x = module(x)
        return x


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits (N, C)`` and integer targets.

    Fused, numerically stable (log-sum-exp), with the classic
    ``softmax - onehot`` backward.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(
            f"targets shape {targets.shape} does not match batch "
            f"{logits.shape[0]}"
        )
    z = logits.data
    zmax = z.max(axis=1, keepdims=True)
    logsumexp = zmax + np.log(np.exp(z - zmax).sum(axis=1, keepdims=True))
    n = z.shape[0]
    nll = (logsumexp.squeeze(1) - z[np.arange(n), targets]).mean()
    track = Tensor._needs_graph(logits)
    out = Tensor(nll, track, (logits,) if track else (), "cross_entropy")
    if track:
        def _backward():
            if logits.requires_grad:
                probs = np.exp(z - logsumexp)
                probs[np.arange(n), targets] -= 1.0
                logits._accumulate(out.grad * probs / n)
        out._backward = _backward
    return out
