"""Minimal numpy neural-network substrate with reverse-mode autograd.

The accuracy-side experiments (Figs. 4, 5, 15) need *real* gradient
descent with capacity-limited low-rank adapters — the fusion-degradation
phenomenon of Fig. 5 cannot be faked with a lookup table.  This package
provides just enough deep-learning machinery to train a tiny
transformer-based "LMM" (:class:`~repro.nn.transformer.TinyLMM`) and its
LoRA adapters entirely in numpy:

* :mod:`repro.nn.tensor` — reverse-mode autograd over numpy arrays;
* :mod:`repro.nn.layers` — Linear / Embedding / LayerNorm / attention /
  transformer blocks;
* :mod:`repro.nn.lora` — :class:`LoRALinear` with frozen base weights,
  runtime merge/unmerge, and hot adapter swap;
* :mod:`repro.nn.optim` — SGD and Adam;
* :mod:`repro.nn.transformer` — the TinyLMM with an LM head and
  pluggable vision task heads (§4.2.2).
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn.layers import (
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    MultiHeadSelfAttention,
    Sequential,
    TransformerBlock,
)
from repro.nn.lora import LoRAAdapterWeights, LoRALinear
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.serialization import (
    load_adapter,
    load_model,
    named_parameters,
    save_adapter,
    save_model,
)
from repro.nn.transformer import TaskHead, TinyLMM, TinyLMMConfig

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "MultiHeadSelfAttention",
    "FeedForward",
    "TransformerBlock",
    "Sequential",
    "LoRALinear",
    "LoRAAdapterWeights",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "TinyLMM",
    "TinyLMMConfig",
    "TaskHead",
    "named_parameters",
    "save_model",
    "load_model",
    "save_adapter",
    "load_adapter",
]
