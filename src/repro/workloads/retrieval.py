"""Visual-retrieval workload (§6.1).

Visual retrieval analyzes images and answers queries; it mixes visual
question answering, image captioning, and specific-target detection
(referring expression).  Arrivals follow the Azure-shaped trace; each
request invokes the adapter serving its task domain, with a controllable
popularity skew (60% same-adapter by default, §6.2).

Multi-round VQA revisits the same image (§5 "KV cache reuse"): a
configurable fraction of requests carries the prefix key of a recently
seen image so the KV cache can reuse its blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.generation.heads import TASK_PROFILES, TaskProfile
from repro.runtime.request import Request
from repro.workloads.azure import AzureTraceConfig, AzureTraceGenerator
from repro.workloads.skew import top_heavy_shares

_DEFAULT_MIX = {
    "visual_qa": 0.5,
    "image_caption": 0.3,
    "referring_expression": 0.2,
}


@dataclass
class RetrievalWorkload:
    """Generates visual-retrieval request streams."""

    adapter_ids: Sequence[str]
    rate_rps: float = 4.0
    duration_s: float = 60.0
    top_adapter_share: float = 0.6
    task_mix: Dict[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_MIX)
    )
    use_task_heads: bool = True
    image_reuse_prob: float = 0.3
    image_pool: int = 12
    #: Temporal adapter correlation: consecutive requests share the
    #: sampled adapter in sessions of this length (1 = i.i.d.).  Real
    #: application traffic arrives in per-application bursts, which is
    #: what makes merged-mode windows possible (§6.2's "merge-friendly
    #: workload pattern").
    adapter_burst: int = 1
    #: Optional per-request latency SLO (seconds) attached to every
    #: request; feeds SLO-attainment and deadline-abort accounting.
    slo_s: Optional[float] = None
    #: Optional explicit adapter popularity distribution (one share per
    #: adapter id, summing to 1).  Overrides the default
    #: ``top_heavy_shares`` skew — e.g. pass
    #: :func:`repro.workloads.skew.zipf_shares` for an S-LoRA-scale
    #: Zipf registry.
    adapter_shares: Optional[Sequence[float]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.adapter_ids:
            raise ValueError("need at least one adapter id")
        total = sum(self.task_mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"task mix must sum to 1, got {total}")
        unknown = set(self.task_mix) - set(TASK_PROFILES)
        if unknown:
            raise ValueError(f"unknown tasks in mix: {sorted(unknown)}")
        if not 0.0 <= self.image_reuse_prob <= 1.0:
            raise ValueError("image_reuse_prob must be in [0,1]")
        if self.adapter_burst < 1:
            raise ValueError("adapter_burst must be >= 1")
        if self.adapter_shares is not None:
            shares = list(self.adapter_shares)
            if len(shares) != len(self.adapter_ids):
                raise ValueError(
                    f"adapter_shares has {len(shares)} entries for "
                    f"{len(self.adapter_ids)} adapters"
                )
            if abs(sum(shares) - 1.0) > 1e-6:
                raise ValueError("adapter_shares must sum to 1")

    def generate(self) -> List[Request]:
        """Build the full request list (sorted by arrival time)."""
        rng = np.random.default_rng(self.seed)
        trace = AzureTraceGenerator(AzureTraceConfig(
            rate_rps=self.rate_rps,
            duration_s=self.duration_s,
            seed=self.seed,
        ))
        tasks = list(self.task_mix)
        task_probs = np.array([self.task_mix[t] for t in tasks])
        if self.adapter_shares is not None:
            adapter_probs = np.asarray(self.adapter_shares, dtype=float)
        else:
            adapter_probs = np.array(
                top_heavy_shares(len(self.adapter_ids),
                                 self.top_adapter_share)
            )
        requests: List[Request] = []
        recent_images: List[str] = []
        burst_adapter: Optional[str] = None
        burst_left = 0
        for event in trace.iter_events():
            task = tasks[int(rng.choice(len(tasks), p=task_probs))]
            profile = TASK_PROFILES[task]
            if burst_left <= 0:
                burst_adapter = self.adapter_ids[
                    int(rng.choice(len(self.adapter_ids), p=adapter_probs))
                ]
                burst_left = self.adapter_burst
            adapter = burst_adapter
            burst_left -= 1
            requests.append(self._make_request(
                event, profile, adapter, rng, recent_images
            ))
        return requests

    def _make_request(self, event, profile: TaskProfile, adapter: str,
                      rng: np.random.Generator,
                      recent_images: List[str]) -> Request:
        use_head = self.use_task_heads and profile.supports_task_head
        output = 1 if use_head else max(
            2, int(round(profile.output_tokens_lm
                         * rng.lognormal(0.0, 0.25)))
        )
        prefix_key: Optional[str] = None
        prefix_tokens = 0
        image_tokens = 256 * profile.images_per_request
        if recent_images and rng.random() < self.image_reuse_prob:
            prefix_key = recent_images[int(rng.integers(len(recent_images)))]
            prefix_tokens = image_tokens
        else:
            prefix_key = f"img-{self.seed}-{len(recent_images)}-{event.arrival_time:.4f}"
            prefix_tokens = image_tokens
            recent_images.append(prefix_key)
            if len(recent_images) > self.image_pool:
                recent_images.pop(0)
        return Request(
            adapter_id=adapter,
            arrival_time=event.arrival_time,
            input_tokens=profile.input_tokens,
            output_tokens=output,
            task_name=profile.name,
            num_images=profile.images_per_request,
            use_task_head=use_head,
            prefix_key=prefix_key,
            prefix_tokens=min(prefix_tokens, profile.input_tokens),
            slo_s=self.slo_s,
        )
