"""Request-trace files: save and replay workloads deterministically.

Serving experiments gain a lot from replayable traces (the paper replays
the Azure trace); this module defines a simple JSONL trace format so any
generated workload can be persisted, shared, inspected, and replayed
byte-identically across systems and runs.

One line per request::

    {"arrival_time": 0.41, "adapter_id": "lora-0", "input_tokens": 288,
     "output_tokens": 180, "task_name": "visual_qa", "num_images": 1,
     "use_task_head": false, "prefix_key": "img-3", "prefix_tokens": 256}
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, List, Sequence, Union

from repro.runtime.request import Request

_FIELDS = (
    "arrival_time", "adapter_id", "input_tokens", "output_tokens",
    "task_name", "num_images", "use_task_head", "prefix_key",
    "prefix_tokens", "slo_s", "priority",
)


def request_to_record(req: Request) -> dict:
    """The JSON-serializable view of one request."""
    return {name: getattr(req, name) for name in _FIELDS}


def record_to_request(record: dict) -> Request:
    """Rebuild a request from its trace record."""
    unknown = set(record) - set(_FIELDS)
    if unknown:
        raise ValueError(f"unknown trace fields: {sorted(unknown)}")
    missing = {"arrival_time", "adapter_id", "input_tokens",
               "output_tokens"} - set(record)
    if missing:
        raise ValueError(f"trace record missing fields: {sorted(missing)}")
    return Request(**record)


def save_trace(path: Union[str, pathlib.Path],
               requests: Sequence[Request]) -> int:
    """Write requests to a JSONL trace; returns the count written."""
    path = pathlib.Path(path)
    with open(path, "w") as fh:
        for req in sorted(requests,
                          key=lambda r: (r.arrival_time, r.request_id)):
            fh.write(json.dumps(request_to_record(req), sort_keys=True))
            fh.write("\n")
    return len(requests)


def load_trace(path: Union[str, pathlib.Path]) -> List[Request]:
    """Read a JSONL trace back into fresh Request objects."""
    path = pathlib.Path(path)
    requests: List[Request] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid JSON ({exc})"
                ) from None
            requests.append(record_to_request(record))
    return requests


def trace_stats(requests: Iterable[Request]) -> dict:
    """Summary statistics of a trace (for inspection / CLI output)."""
    requests = list(requests)
    if not requests:
        raise ValueError("empty trace")
    arrivals = [r.arrival_time for r in requests]
    duration = max(arrivals) - min(arrivals)
    adapters = {}
    tasks = {}
    for r in requests:
        adapters[r.adapter_id] = adapters.get(r.adapter_id, 0) + 1
        tasks[r.task_name or "?"] = tasks.get(r.task_name or "?", 0) + 1
    return {
        "requests": len(requests),
        "duration_s": round(duration, 3),
        "rate_rps": round(len(requests) / duration, 3) if duration else None,
        "input_tokens_total": sum(r.input_tokens for r in requests),
        "output_tokens_total": sum(r.output_tokens for r in requests),
        "adapters": dict(sorted(adapters.items())),
        "tasks": dict(sorted(tasks.items())),
        "top_adapter_share": round(
            max(adapters.values()) / len(requests), 3
        ),
    }
