"""Synthetic trace shaped like the Azure LLM inference trace 2023.

The paper drives visual retrieval with the public Azure trace, randomly
subsampled round-robin at varying rates (§6.1) because the full trace
exceeds one GPU.  Offline we reproduce the trace's published shape:

* bursty arrivals — gamma-distributed inter-arrival times whose mean
  sets the target rate (CV > 1 gives the trace's burstiness);
* long-tailed input lengths and shorter outputs — log-normal token
  counts clipped to the serving window.

Rates, skew, and the task mix are the experimental knobs; everything is
seeded and deterministic.

Trace format note (v2): generation is vectorized — inter-arrival gaps
are drawn as gamma arrays and cumulative-summed, then token lengths as
lognormal arrays, instead of three interleaved scalar draws per event.
Traces remain deterministic per seed and keep the same marginal
distributions, but the RNG stream differs from v1, so individual event
values differ from pre-v2 runs with the same seed.  Comparisons across
engine variants are unaffected: both sides consume the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np


@dataclass(frozen=True)
class AzureTraceConfig:
    """Shape parameters of the synthetic trace."""

    rate_rps: float = 4.0
    duration_s: float = 60.0
    burstiness_cv: float = 1.4
    input_tokens_median: int = 256
    input_tokens_sigma: float = 0.7
    output_tokens_median: int = 150
    output_tokens_sigma: float = 0.6
    max_input_tokens: int = 2048
    max_output_tokens: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.burstiness_cv <= 0:
            raise ValueError("burstiness_cv must be positive")


@dataclass(frozen=True)
class TraceEvent:
    """One arrival in the synthetic trace."""

    arrival_time: float
    input_tokens: int
    output_tokens: int


class AzureTraceGenerator:
    """Generates deterministic arrival/length traces."""

    def __init__(self, config: AzureTraceConfig):
        self.config = config

    def events(self) -> List[TraceEvent]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        # Gamma inter-arrivals: shape k = 1/CV^2, mean = 1/rate.
        k = 1.0 / (cfg.burstiness_cv ** 2)
        theta = (1.0 / cfg.rate_rps) / k
        # Draw gap arrays and cumulative-sum until the horizon is
        # crossed; chunks are sized so one draw usually suffices.
        chunk = max(1024, int(cfg.rate_rps * cfg.duration_s * 1.25) + 16)
        pieces: List[np.ndarray] = []
        t = 0.0
        while True:
            times = t + np.cumsum(rng.gamma(k, theta, size=chunk))
            inside = times[times <= cfg.duration_s]
            pieces.append(inside)
            if inside.size < times.size:
                break
            t = float(times[-1])
        arrivals = np.concatenate(pieces)
        n = arrivals.size
        inputs = self._lognormal_tokens(
            rng, cfg.input_tokens_median, cfg.input_tokens_sigma,
            cfg.max_input_tokens, n,
        )
        outputs = self._lognormal_tokens(
            rng, cfg.output_tokens_median, cfg.output_tokens_sigma,
            cfg.max_output_tokens, n,
        )
        return [
            TraceEvent(arrival_time=float(a), input_tokens=int(i),
                       output_tokens=int(o))
            for a, i, o in zip(arrivals, inputs, outputs)
        ]

    def iter_events(self) -> Iterator[TraceEvent]:
        yield from self.events()

    def event_blocks(self, num_requests: int,
                     block_size: int = 1_000_000,
                     ) -> Iterator[Dict[str, np.ndarray]]:
        """Stream exactly ``num_requests`` arrivals as numpy blocks.

        Count-driven companion to :meth:`events` for traces too large to
        materialize as Python objects (the 10M-request scale bench):
        each yielded block is a dict of parallel arrays —
        ``arrival`` (float64, globally increasing), ``input_tokens`` and
        ``output_tokens`` (int64) — sized ``block_size`` (the last block
        may be shorter), ready for
        :meth:`~repro.runtime.soa_core.SoAServingEngine.submit_arrays`.
        ``duration_s`` is ignored: the horizon is the request count.

        RNG-stream contract: blocks draw from a fresh
        ``default_rng(seed)`` in per-block (gaps, inputs, outputs)
        order, so the stream is deterministic for a fixed
        ``(seed, block_size)`` pair but differs from :meth:`events`'
        whole-trace draw order — and :meth:`events` itself is untouched:
        same seed keeps producing the exact same trace it did before
        this method existed.
        """
        if num_requests <= 0:
            raise ValueError(
                f"num_requests must be positive, got {num_requests}"
            )
        if block_size <= 0:
            raise ValueError(
                f"block_size must be positive, got {block_size}"
            )
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        k = 1.0 / (cfg.burstiness_cv ** 2)
        theta = (1.0 / cfg.rate_rps) / k
        t = 0.0
        remaining = num_requests
        while remaining > 0:
            n = min(block_size, remaining)
            remaining -= n
            arrivals = t + np.cumsum(rng.gamma(k, theta, size=n))
            t = float(arrivals[-1])
            yield {
                "arrival": arrivals,
                "input_tokens": self._lognormal_tokens(
                    rng, cfg.input_tokens_median, cfg.input_tokens_sigma,
                    cfg.max_input_tokens, n,
                ),
                "output_tokens": self._lognormal_tokens(
                    rng, cfg.output_tokens_median, cfg.output_tokens_sigma,
                    cfg.max_output_tokens, n,
                ),
            }

    @staticmethod
    def _lognormal_tokens(rng: np.random.Generator, median: int,
                          sigma: float, cap: int, n: int) -> np.ndarray:
        # np.rint rounds half-to-even, matching the scalar path's
        # builtin round().
        values = np.rint(rng.lognormal(np.log(median), sigma, size=n))
        return np.clip(values, 8, cap).astype(np.int64)
