"""Synthetic trace shaped like the Azure LLM inference trace 2023.

The paper drives visual retrieval with the public Azure trace, randomly
subsampled round-robin at varying rates (§6.1) because the full trace
exceeds one GPU.  Offline we reproduce the trace's published shape:

* bursty arrivals — gamma-distributed inter-arrival times whose mean
  sets the target rate (CV > 1 gives the trace's burstiness);
* long-tailed input lengths and shorter outputs — log-normal token
  counts clipped to the serving window.

Rates, skew, and the task mix are the experimental knobs; everything is
seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np


@dataclass(frozen=True)
class AzureTraceConfig:
    """Shape parameters of the synthetic trace."""

    rate_rps: float = 4.0
    duration_s: float = 60.0
    burstiness_cv: float = 1.4
    input_tokens_median: int = 256
    input_tokens_sigma: float = 0.7
    output_tokens_median: int = 150
    output_tokens_sigma: float = 0.6
    max_input_tokens: int = 2048
    max_output_tokens: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.burstiness_cv <= 0:
            raise ValueError("burstiness_cv must be positive")


@dataclass(frozen=True)
class TraceEvent:
    """One arrival in the synthetic trace."""

    arrival_time: float
    input_tokens: int
    output_tokens: int


class AzureTraceGenerator:
    """Generates deterministic arrival/length traces."""

    def __init__(self, config: AzureTraceConfig):
        self.config = config

    def events(self) -> List[TraceEvent]:
        return list(self.iter_events())

    def iter_events(self) -> Iterator[TraceEvent]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        # Gamma inter-arrivals: shape k = 1/CV^2, mean = 1/rate.
        k = 1.0 / (cfg.burstiness_cv ** 2)
        theta = (1.0 / cfg.rate_rps) / k
        t = 0.0
        while True:
            t += float(rng.gamma(k, theta))
            if t > cfg.duration_s:
                return
            yield TraceEvent(
                arrival_time=t,
                input_tokens=self._lognormal_tokens(
                    rng, cfg.input_tokens_median, cfg.input_tokens_sigma,
                    cfg.max_input_tokens,
                ),
                output_tokens=self._lognormal_tokens(
                    rng, cfg.output_tokens_median, cfg.output_tokens_sigma,
                    cfg.max_output_tokens,
                ),
            )

    @staticmethod
    def _lognormal_tokens(rng: np.random.Generator, median: int,
                          sigma: float, cap: int) -> int:
        value = int(round(rng.lognormal(np.log(median), sigma)))
        return int(np.clip(value, 8, cap))
