"""Adapter-popularity skew (Figs. 19, 22).

The paper defines *skewness* as the proportion of requests asking for the
most-required LoRA adapter (e.g. "60% of requests asking for the same
LoRA adapter", §6.2).  :func:`skewed_adapter_sampler` builds a sampler in
which the top adapter receives exactly the requested share and the rest
split the remainder evenly; :func:`zipf_shares` offers a heavier-tailed
alternative.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np


def top_heavy_shares(num_adapters: int, top_share: float) -> List[float]:
    """Top adapter gets ``top_share``; the rest split the remainder."""
    if num_adapters <= 0:
        raise ValueError(f"num_adapters must be positive, got {num_adapters}")
    if not 0.0 < top_share <= 1.0:
        raise ValueError(f"top_share must be in (0,1], got {top_share}")
    if num_adapters == 1:
        return [1.0]
    if top_share < 1.0 / num_adapters:
        raise ValueError(
            f"top_share {top_share} below uniform share "
            f"{1.0 / num_adapters:.3f} for {num_adapters} adapters"
        )
    rest = (1.0 - top_share) / (num_adapters - 1)
    return [top_share] + [rest] * (num_adapters - 1)


def zipf_shares(num_adapters: int, alpha: float = 1.0) -> List[float]:
    """Zipf(alpha) popularity over ``num_adapters`` adapters.

    Computed in log space — ``(i+1) ** alpha`` as a Python float
    overflows for extreme ``alpha``; ``exp(-alpha * log(i+1))`` merely
    underflows to 0 for the tail, which normalizes fine (rank 1's
    weight is exactly 1, so the total is always >= 1).
    """
    if num_adapters <= 0:
        raise ValueError(f"num_adapters must be positive, got {num_adapters}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    with np.errstate(under="ignore"):
        weights = np.exp(-alpha * np.log(np.arange(1, num_adapters + 1)))
    shares = weights / weights.sum()
    return shares.tolist()


def zipf_adapter_sampler(
    adapter_ids: Sequence[str],
    alpha: float,
    rng: np.random.Generator,
) -> Callable[[], str]:
    """A sampler drawing adapter ids Zipf(alpha)-distributed."""
    ids = list(adapter_ids)
    probs = np.asarray(zipf_shares(len(ids), alpha))

    def sample() -> str:
        return ids[int(rng.choice(len(ids), p=probs))]

    return sample


def skewed_adapter_sampler(
    adapter_ids: Sequence[str],
    top_share: float,
    rng: np.random.Generator,
) -> Callable[[], str]:
    """A sampler drawing adapter ids with the given top-adapter share."""
    ids = list(adapter_ids)
    shares = top_heavy_shares(len(ids), top_share)
    probs = np.asarray(shares)

    def sample() -> str:
        return ids[int(rng.choice(len(ids), p=probs))]

    return sample
