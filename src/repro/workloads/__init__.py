"""Workload generators for the two vision applications (§6.1).

* :mod:`repro.workloads.azure` — synthetic trace shaped like the Azure
  LLM inference trace 2023, subsampled at a target rate (the visual
  retrieval driver).
* :mod:`repro.workloads.video` — video-analytics streams: one 30-frame
  chunk per second per stream.
* :mod:`repro.workloads.retrieval` — the visual-retrieval task mix
  (VQA / captioning / referring expression).
* :mod:`repro.workloads.skew` — adapter-popularity skew control used by
  Figs. 19 and 22.
* :mod:`repro.workloads.burst` — deterministic load-burst shaping for
  overload experiments (``FaultKind.LOAD_BURST``).
"""

from repro.workloads.azure import AzureTraceConfig, AzureTraceGenerator
from repro.workloads.burst import apply_load_bursts
from repro.workloads.diurnal import (
    DiurnalPattern,
    diurnal_burst_trace,
    diurnal_retrieval,
)
from repro.workloads.retrieval import RetrievalWorkload
from repro.workloads.skew import (
    skewed_adapter_sampler,
    zipf_adapter_sampler,
    zipf_shares,
)
from repro.workloads.video import VideoAnalyticsWorkload

__all__ = [
    "AzureTraceConfig",
    "AzureTraceGenerator",
    "apply_load_bursts",
    "RetrievalWorkload",
    "VideoAnalyticsWorkload",
    "skewed_adapter_sampler",
    "zipf_adapter_sampler",
    "zipf_shares",
    "DiurnalPattern",
    "diurnal_retrieval",
    "diurnal_burst_trace",
]
