"""Diurnal (time-varying) load patterns.

Production vision services see daily load swings — the Azure trace's
rate is anything but constant.  :class:`DiurnalPattern` modulates any
target rate over time, and :func:`diurnal_retrieval` builds a retrieval
workload whose arrival intensity follows the pattern via thinning
(keep an arrival at time ``t`` with probability ``rate(t)/peak``), which
preserves the trace generator's burstiness statistics within each level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.runtime.request import Request
from repro.workloads.retrieval import RetrievalWorkload


@dataclass(frozen=True)
class DiurnalPattern:
    """Sinusoidal rate modulation between a trough and a peak.

    ``rate(t) = trough + (peak - trough) *
    ((1 + sin(2π t / period + φ)) / 2) ** sharpness``

    ``sharpness`` > 1 narrows the peaks and widens the trough dwell —
    the shape of real diurnal traces, where the busy hours are a small
    fraction of the day.  ``sharpness == 1`` is the plain sinusoid.
    """

    peak_rps: float
    trough_rps: float
    period_s: float
    phase: float = -math.pi / 2  # start at the trough by default
    sharpness: float = 1.0

    def __post_init__(self) -> None:
        if self.peak_rps <= 0:
            raise ValueError(f"peak_rps must be positive, got {self.peak_rps}")
        if not 0 <= self.trough_rps <= self.peak_rps:
            raise ValueError(
                f"trough_rps must be in [0, peak_rps], got {self.trough_rps}"
            )
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")
        if self.sharpness <= 0:
            raise ValueError(
                f"sharpness must be positive, got {self.sharpness}"
            )

    def rate_at(self, t: float) -> float:
        """Instantaneous target rate at time ``t`` (requests/s)."""
        swing = (1.0 + math.sin(2 * math.pi * t / self.period_s
                                + self.phase)) / 2.0
        if self.sharpness != 1.0:
            swing **= self.sharpness
        return self.trough_rps + (self.peak_rps - self.trough_rps) * swing

    def keep_probability(self, t: float) -> float:
        """Thinning probability for an arrival generated at the peak rate."""
        return self.rate_at(t) / self.peak_rps


def diurnal_retrieval(
    workload: RetrievalWorkload,
    pattern: DiurnalPattern,
    seed: int = 0,
) -> List[Request]:
    """Thin a retrieval workload's arrivals to follow a diurnal pattern.

    ``workload.rate_rps`` should equal ``pattern.peak_rps`` (the thinning
    only removes arrivals); a mismatch is rejected to avoid silently
    generating the wrong intensity.
    """
    if abs(workload.rate_rps - pattern.peak_rps) > 1e-9:
        raise ValueError(
            f"workload rate ({workload.rate_rps}) must equal the "
            f"pattern peak ({pattern.peak_rps}) for thinning"
        )
    rng = np.random.default_rng(seed)
    kept = [
        r for r in workload.generate()
        if rng.random() < pattern.keep_probability(r.arrival_time)
    ]
    if not kept:
        raise ValueError(
            "thinning removed every request; raise trough_rps or duration"
        )
    return kept


def diurnal_burst_trace(
    adapter_ids: Sequence[str],
    *,
    peak_rps: float,
    trough_rps: float,
    period_s: float,
    duration_s: float,
    top_adapter_share: float = 0.6,
    use_task_heads: bool = True,
    slo_s: Optional[float] = None,
    sharpness: float = 1.0,
    seed: int = 0,
    injector=None,
) -> List[Request]:
    """Diurnal retrieval trace, optionally spiked with load bursts.

    The driving workload for elastic-autoscaling experiments: a
    sinusoidal trough-to-peak swing (the signal the autoscaler should
    track) with, when ``injector`` carries ``LOAD_BURST`` windows,
    deterministic arrival-compression spikes inside them (the signal it
    must *survive*).  ``injector`` is a
    :class:`~repro.runtime.faults.FaultInjector` or ``None``.
    """
    pattern = DiurnalPattern(peak_rps=peak_rps, trough_rps=trough_rps,
                             period_s=period_s, sharpness=sharpness)
    workload = RetrievalWorkload(
        adapter_ids, rate_rps=peak_rps, duration_s=duration_s,
        top_adapter_share=top_adapter_share,
        use_task_heads=use_task_heads, slo_s=slo_s, seed=seed,
    )
    requests = diurnal_retrieval(workload, pattern, seed=seed + 1)
    if injector is not None and injector.load_burst_windows():
        from repro.workloads.burst import apply_load_bursts

        requests = apply_load_bursts(requests, injector)
    return requests
