"""Video-analytics workload (§6.1).

Each stream ingests one 30-frame chunk per second (like the paper's
setup, after [31, 78]).  Per chunk a stream issues:

* one **video understanding** request over a 6-frame sample (input
  6 x 256 tokens, 5-10 LM-head output tokens or 1 task-head round);
* ``detection_frames`` **object detection** requests over sampled frames.

Each stream is pinned to the adapter serving its camera's domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.generation.heads import TASK_PROFILES
from repro.runtime.request import Request


@dataclass
class VideoAnalyticsWorkload:
    """Generates fixed-rate video-analytics request streams."""

    adapter_ids: Sequence[str]
    num_streams: int = 3
    duration_s: float = 30.0
    detection_frames: int = 4
    chunk_period_s: float = 1.0
    use_task_heads: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.adapter_ids:
            raise ValueError("need at least one adapter id")
        if self.num_streams <= 0:
            raise ValueError("num_streams must be positive")
        if self.detection_frames < 0:
            raise ValueError("detection_frames must be >= 0")
        if self.chunk_period_s <= 0:
            raise ValueError("chunk_period_s must be positive")

    @property
    def requests_per_second(self) -> float:
        """Aggregate request rate across all streams."""
        per_chunk = 1 + self.detection_frames
        return self.num_streams * per_chunk / self.chunk_period_s

    def generate(self) -> List[Request]:
        """Build the full request list (sorted by arrival time)."""
        rng = np.random.default_rng(self.seed)
        vu = TASK_PROFILES["video_understanding"]
        det = TASK_PROFILES["object_detection"]
        requests: List[Request] = []
        num_chunks = int(self.duration_s / self.chunk_period_s)
        for stream in range(self.num_streams):
            adapter = self.adapter_ids[stream % len(self.adapter_ids)]
            # Streams start with a small phase offset like real cameras.
            phase = float(rng.uniform(0.0, self.chunk_period_s * 0.5))
            for chunk in range(num_chunks):
                t0 = phase + chunk * self.chunk_period_s
                requests.append(self._request(vu, adapter, t0, stream, rng))
                for f in range(self.detection_frames):
                    tf = t0 + (f + 1) * (
                        self.chunk_period_s / (self.detection_frames + 1)
                    )
                    requests.append(
                        self._request(det, adapter, tf, stream, rng)
                    )
        requests.sort(key=lambda r: r.arrival_time)
        return requests

    def _request(self, profile, adapter: str, arrival: float,
                 stream: int, rng: np.random.Generator) -> Request:
        use_head = self.use_task_heads and profile.supports_task_head
        output = 1 if use_head else max(
            2, int(round(profile.output_tokens_lm * rng.lognormal(0.0, 0.2)))
        )
        return Request(
            adapter_id=adapter,
            arrival_time=arrival,
            input_tokens=profile.input_tokens,
            output_tokens=output,
            task_name=profile.name,
            num_images=profile.images_per_request,
            use_task_head=use_head,
        )
