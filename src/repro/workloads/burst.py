"""Load-burst shaping: densify arrivals inside ``LOAD_BURST`` windows.

Overload is a *workload* fault: the engine never sees a "burst event",
it just sees arrivals stacked far beyond the sustainable rate.  The
fault injector schedules deterministic ``LOAD_BURST`` windows
(:meth:`~repro.runtime.faults.FaultInjector.load_burst_windows`); this
module reshapes an already-generated request list so that arrivals
falling inside a window of magnitude ``m`` are time-compressed by
``m×`` — the window's traffic lands in its first ``duration / m``
seconds, driving the instantaneous arrival rate to ``m×`` the base rate
while keeping the request population (counts, tokens, adapters, seeds)
exactly the same as the un-burst run.

The transform is deterministic, preserves arrival order, and never
moves a request outside its window, so burst and no-burst runs stay
request-for-request comparable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from repro.runtime.faults import FaultInjector, FaultKind, FaultSpec
from repro.runtime.request import Request

WindowSource = Union[FaultInjector, Iterable[FaultSpec]]


def _burst_windows(source: WindowSource) -> List[FaultSpec]:
    if isinstance(source, FaultInjector):
        return source.load_burst_windows()
    windows = [s for s in source if s.kind is FaultKind.LOAD_BURST]
    return sorted(windows, key=lambda s: s.start)


def apply_load_bursts(requests: Sequence[Request],
                      source: WindowSource) -> List[Request]:
    """Compress arrivals inside each ``LOAD_BURST`` window in place.

    A request arriving at ``t`` inside window ``[s, s + d)`` with
    magnitude ``m`` is moved to ``s + (t - s) / m``.  When windows
    overlap, the densest (largest magnitude) one wins, matching
    :meth:`FaultInjector.load_burst_factor`.  Returns the same request
    objects sorted by the reshaped arrival times.
    """
    windows = _burst_windows(source)
    for r in requests:
        covering = [w for w in windows if w.active_at(r.arrival_time)]
        if not covering:
            continue
        w = max(covering, key=lambda s: s.magnitude)
        r.arrival_time = w.start + (r.arrival_time - w.start) / w.magnitude
    return sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
